// Aorta's built-in action and function library (Section 2.2: "a library of
// system built-in actions for accessing and operating devices").
//
// Actions:
//   photo(camera_ip String, location Location, directory String)
//       Moves the camera head to aim at `location`, takes a medium photo
//       and stores it under `directory` — the running example of the
//       paper. Cost: sequence-dependent head movement + exposure.
//   sendphoto(phone_no String, photo_pathname String)
//       Sends a photo as MMS to the phone (the paper's user-defined action
//       example, shipped built-in here so examples run out of the box).
//   beep(sensor_id String) / blink(sensor_id String)
//       Sounder / LED actuation on a mote.
//
// Functions:
//   coverage(camera_id String, location Location) -> Bool
//       TRUE iff the camera's view range covers the location (Section 2.2).
//   distance(a Location, b Location) -> Double
#pragma once

#include "comm/comm_module.h"
#include "query/catalog.h"

namespace aorta::core {

void register_builtin_function_library(query::Catalog* catalog,
                                       device::DeviceRegistry* registry);

void register_builtin_action_library(query::Catalog* catalog,
                                     device::DeviceRegistry* registry,
                                     comm::CommLayer* comm);

}  // namespace aorta::core
