// Aorta: the public facade of the pervasive query processing framework.
//
// Assembles the whole stack from Section 2.1's architecture:
//   declarative interface (exec / SQL)          <- top layer
//   action-oriented query engine (src/query)    <- middle layer
//   uniform data communication layer (src/comm) <- bottom layer
// on top of the simulated device network (src/net, src/devices) that
// replaces the paper's physical pervasive lab.
//
// Typical use:
//   aorta::core::Aorta sys(aorta::core::Config{});
//   sys.add_camera("cam1", "192.168.0.90", {{0, 0, 3}, 0.0});
//   sys.add_mote("mote1", {4, 2, 1});
//   sys.exec("CREATE AQ snapshot AS SELECT photo(c.ip, s.loc, 'photos/admin') "
//            "FROM sensor s, camera c "
//            "WHERE s.accel_x > 500 AND coverage(c.id, s.loc)");
//   sys.run_for(aorta::util::Duration::minutes(10));
#pragma once

#include <map>
#include <memory>
#include <string>

#include "comm/comm_module.h"
#include "core/health.h"
#include "devices/camera.h"
#include "devices/mote.h"
#include "devices/phone.h"
#include "net/fabric.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/executor.h"
#include "query/parser.h"
#include "sync/lock_manager.h"
#include "sync/prober.h"
#include "util/fault_plan.h"
#include "util/loop_group.h"

namespace aorta::core {

struct Config {
  std::uint64_t seed = 42;
  aorta::util::Duration epoch = aorta::util::Duration::seconds(1.0);
  // One of the Section 6.3 algorithms: LERFA+SRFE, SRFAE, LS, SA, RANDOM.
  std::string scheduler = "SRFAE";
  // Device synchronization switches (Section 6.2's ablation).
  bool use_probing = true;
  bool use_locks = true;
  // Failover: how many times a failed action request is rescheduled on its
  // remaining candidate devices.
  int max_retries = 1;
  // Shared data-acquisition plane (comm::ScanBroker). When on, co-located
  // queries over the same device table share one batched sensory sweep
  // per epoch and concurrent (device, attr) reads are deduplicated; off
  // reverts to per-query private scans (the pre-broker baseline, kept for
  // bench_shared_scan's ablation).
  bool shared_scans = true;
  // Sensory values younger than this are served from the broker's cache
  // instead of a new radio round trip. Zero disables caching (in-flight
  // dedup still applies).
  aorta::util::Duration scan_freshness = aorta::util::Duration::zero();
  // Predicate-index matching (query/predicate_index.h): registered AQs'
  // compiled event predicates are indexed per device type so each swept
  // tuple evaluates only candidate queries — sub-linear in the AQ count.
  // false reverts to exhaustive per-AQ evaluation (byte-identical output;
  // the ablation arm of bench_eval's matching sweep).
  bool predicate_index = true;
  // Shared-aggregate cache (query/agg_cache.h): continuous aggregate AQs
  // with the same canonical query hash (normalized predicates + window
  // shape, GROUP BY excluded) share one broker subscription and one
  // incremental window accumulation, so N co-hashed dashboard tenants pay
  // one evaluation per tuple instead of N. false reverts to a private
  // cache entry per AQ (byte-identical output; bench_agg_cache's ablation
  // arm).
  bool aggregate_cache = true;
  // Device health supervision: per-device Healthy/Suspect/Quarantined
  // state machine fed by read/probe/action outcomes. Quarantined devices
  // are skipped by broker sweeps and action scheduling and re-probed with
  // capped exponential backoff instead of every epoch.
  bool health_supervision = true;
  HealthOptions health;
  // Degraded-mode results: a quarantined device's sensory attrs are served
  // last-known-good up to this age, with the tuples (and their rows and
  // server deliveries) tagged degraded. Zero disables degraded serving.
  aorta::util::Duration degraded_staleness = aorta::util::Duration::seconds(30.0);
  // Per-query span tracing (src/obs): when on, pipeline stages record
  // virtual-time spans into a ring buffer of `trace_capacity` spans,
  // exportable as Chrome trace-event JSON (Aorta::tracer()). Off by
  // default: instrumentation sites then cost one branch.
  bool tracing = false;
  std::size_t trace_capacity = obs::Tracer::kDefaultCapacity;
  // Parallel deterministic runtime (DESIGN.md §12). `runtime_threads` is
  // the number of OS threads driving the per-shard event loops between
  // epoch barriers: 1 keeps the barrier schedule but runs loops serially
  // (still byte-identical to any other thread count); 0 means hardware
  // concurrency. With no worker loops (unsharded) the group degenerates to
  // the single global loop regardless of this setting.
  int runtime_threads = 1;
  // Epoch-barrier lookahead quantum. Must not exceed the minimum
  // cross-loop link latency — the czar<->worker backplane's 200us one-way
  // hop — or cross-loop deliveries would land inside an open window and
  // get clamped to the next barrier (counted runtime.<i>.posts_clamped).
  aorta::util::Duration runtime_quantum = aorta::util::Duration::micros(400);
  // Reliable backplane (DESIGN.md §14): czar->worker fragment RPCs retry
  // with capped exponential backoff behind per-peer budgets and circuit
  // breakers; workers dedup requests by idempotency key and retain
  // sequenced result messages for NACK-driven retransmission until the
  // czar acks them. false restores the fail-fast pre-§14 path (single
  // attempt, no acks/replay) — the chaos benches' ablation arm.
  bool reliable_backplane = true;
};

// Result of exec(): DDL statements return a message; SELECT returns rows.
struct ExecResult {
  std::string message;
  std::vector<query::Row> rows;
  // Sharded one-shot SELECTs: how many shards contributed a partial out of
  // how many exist. answered < total marks a partial result (some shard
  // timed out or was down). -1/-1 everywhere else (unsharded, DDL).
  int shards_answered = -1;
  int shards_total = -1;
};

// Session-scoped execution options for the multi-tenant service layer
// (src/server). `name_prefix` isolates a session's AQ namespace (CREATE AQ
// and DROP AQ names are prefixed before reaching the executor); `owner`
// tags the registered query; `on_row` receives its continuous rows.
struct ExecOptions {
  std::string owner;
  std::string name_prefix;
  std::function<void(const std::string& query, const query::TimestampedRow&)>
      on_row;
};

struct SystemStats {
  sync::LockStats locks;
  sync::ProbeStats probes;
  net::NetworkStats network;
  net::RpcStats rpc;
};

class Aorta {
 public:
  explicit Aorta(Config config);
  ~Aorta();

  Aorta(const Aorta&) = delete;
  Aorta& operator=(const Aorta&) = delete;

  // ---- world building ----------------------------------------------------
  aorta::util::Status add_camera(const device::DeviceId& id, std::string ip,
                                 devices::CameraPose pose, double range_m = 25.0);
  // `hops` = depth in the multi-hop radio tree; deeper motes get slower,
  // lossier links and higher action costs (Section 2.3).
  aorta::util::Status add_mote(const device::DeviceId& id, device::Location loc,
                               int hops = 1);
  aorta::util::Status add_phone(const device::DeviceId& id, std::string phone_no,
                                device::Location loc);
  aorta::util::Status remove_device(const device::DeviceId& id);

  // Typed access to simulated devices (to script signals, flip power, ...).
  devices::PtzCamera* camera(const device::DeviceId& id);
  devices::Mica2Mote* mote(const device::DeviceId& id);
  devices::MmsPhone* phone(const device::DeviceId& id);

  // ---- declarative interface ----------------------------------------------
  // Execute one statement: CREATE ACTION / CREATE AQ / SELECT / DROP AQ.
  // SELECT runs the simulation until its tuples are acquired.
  aorta::util::Result<ExecResult> exec(const std::string& sql);

  // Asynchronous variant used by the service layer: DDL completes before
  // returning; a one-shot SELECT completes once enough simulated time has
  // passed for tuple acquisition (the caller keeps the event loop moving).
  // `done` is invoked exactly once.
  void exec_async(const std::string& sql, ExecOptions options,
                  std::function<void(aorta::util::Result<ExecResult>)> done);

  // Bind the implementation of a user-defined action registered via
  // CREATE ACTION (this reproduction's stand-in for loading the DLL).
  aorta::util::Status register_action_impl(const std::string& name,
                                           query::ActionImpl impl);

  // Virtual file system backing CREATE ACTION's PROFILE "path" clause.
  void add_virtual_file(const std::string& path, std::string content);

  // Device-type registrations as XML documents (the administrator's
  // profile files of Section 3.1): export every registered type, or
  // register a new type from a document.
  std::map<device::DeviceTypeId, std::string> export_device_types() const;
  aorta::util::Status register_type_from_xml(const std::string& xml);

  // ---- running -------------------------------------------------------------
  // Advance the simulated world (continuous queries evaluate as simulated
  // time passes).
  void run_for(aorta::util::Duration span);

  // Schedule a fault plan's events on the event loop, relative to the
  // current simulated time. Targets are validated up front (unknown
  // devices are an error); the events then fire deterministically as the
  // simulation advances. May be called multiple times (plans compose).
  aorta::util::Status apply_fault_plan(const util::FaultPlan& plan);

  // ---- statistics / internals ----------------------------------------------
  const query::QueryStats* query_stats(const std::string& name) const;
  query::QueryActionStats action_stats(const std::string& name) const;
  SystemStats stats() const;

  aorta::util::EventLoop& loop() { return *loop_; }
  // The parallel runtime: loop 0 is the control loop (czar / server /
  // host engine); the sharded plane adds one loop per worker.
  aorta::util::LoopGroup& runtime() { return *runtime_; }
  net::Fabric& fabric() { return *fabric_; }
  net::Network& network() { return *network_; }
  device::DeviceRegistry& registry() { return *registry_; }
  comm::CommLayer& comm() { return *comm_; }
  comm::ScanBroker& scan_broker() { return *scan_broker_; }
  const comm::ScanBroker& scan_broker() const { return *scan_broker_; }
  sync::LockManager& locks() { return *locks_; }
  sync::Prober& prober() { return *prober_; }
  // nullptr when Config::health_supervision is off.
  HealthSupervisor* health() { return health_.get(); }
  const HealthSupervisor* health() const { return health_.get(); }
  query::Catalog& catalog() { return *catalog_; }
  query::ContinuousQueryExecutor& executor() { return *executor_; }
  // Observability: the registry every subsystem's counters are enrolled on
  // (the server layer adds its own sections), and the span tracer.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }

  // Multi-tracer export: worker stacks register their per-loop tracers so
  // trace_json() yields one merged Chrome trace document in deterministic
  // (virtual time, tracer index) order. Index 0 is the system tracer.
  void register_tracer(const obs::Tracer* t) { tracers_.push_back(t); }
  const std::vector<const obs::Tracer*>& tracers() const { return tracers_; }
  std::string trace_json() const { return obs::merged_chrome_json(tracers_); }
  aorta::util::Status export_trace(const std::string& path) const {
    return obs::export_merged_file(path, tracers_);
  }

  // Enroll runtime.<i>.* metrics for runtime loop `i`: barrier waits,
  // cross-post counters, queue depth, plus a volatile wall-clock barrier
  // stall histogram (excluded from deterministic snapshots). Called for
  // loop 0 at construction; the sharded plane calls it per worker loop.
  void enroll_loop_runtime_metrics(int loop_index);

  // Fork an independent deterministic RNG stream off the system seed. The
  // sharded plane forks one per worker stack so same-seed runs stay
  // byte-identical regardless of how work interleaves across shards.
  aorta::util::Rng fork_rng() { return rng_.fork(); }
  const Config& config() const { return config_; }

 private:
  void register_builtin_types();
  void register_builtin_functions();
  void register_builtin_actions();
  // Synchronous statement kinds (everything but SELECT).
  aorta::util::Result<ExecResult> exec_ddl(query::Statement& s,
                                           const std::string& sql,
                                           const ExecOptions& options);

  void enroll_system_metrics();

  // Declared first so every component (which may hold enrolled counters or
  // a tracer pointer) is destroyed before the observability substrate.
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  Config config_;
  aorta::util::Rng rng_;
  // The runtime owns every loop and clock; declared before the components
  // so it outlives them. `clock_` / `loop_` are views of loop 0.
  std::unique_ptr<aorta::util::LoopGroup> runtime_;
  std::unique_ptr<net::Fabric> fabric_;
  aorta::util::SimClock* clock_ = nullptr;
  aorta::util::EventLoop* loop_ = nullptr;
  std::vector<const obs::Tracer*> tracers_;
  std::vector<std::unique_ptr<obs::LatencyHistogram>> stall_hists_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<device::DeviceRegistry> registry_;
  std::unique_ptr<comm::CommLayer> comm_;
  // Declared after comm_ and before executor_ so the executor (which holds
  // subscriptions) is destroyed first.
  std::unique_ptr<comm::ScanBroker> scan_broker_;
  std::unique_ptr<sync::LockManager> locks_;
  std::unique_ptr<sync::Prober> prober_;
  std::unique_ptr<HealthSupervisor> health_;
  std::unique_ptr<query::Catalog> catalog_;
  std::unique_ptr<query::ContinuousQueryExecutor> executor_;
  std::map<std::string, std::string> virtual_files_;
};

// Schedule a validated fault plan's events on `loop` relative to the
// current simulated time. `find_device` resolves device targets (it may
// search several registries — the sharded plane passes a plane-wide
// lookup); link-level events (partition/heal/loss) are resolved against
// `network` directly. Events carrying a shard index are rejected: callers
// that understand shards (shard::Plane) must rewrite them to node-level
// events before delegating here.
aorta::util::Status schedule_fault_plan(
    const util::FaultPlan& plan, aorta::util::EventLoop* loop,
    net::Network* network,
    std::function<device::Device*(const device::DeviceId&)> find_device);

// Schedule one (already validated) fault event on `loop`, mutating
// `network` / the device returned by `find_device` when it fires. Under
// the parallel runtime the sharded plane calls this per event with the
// *owning* worker's loop and segment, so fault state (partition sets,
// link models, device power) is only ever touched from its home loop.
void schedule_fault_event(
    const util::FaultEvent& e, aorta::util::EventLoop* loop,
    net::Network* network,
    std::function<device::Device*(const device::DeviceId&)> find_device);

}  // namespace aorta::core
