// Device health supervision: per-device failure detection, quarantine with
// capped-backoff re-probes, and the hooks the rest of the stack uses to
// degrade gracefully instead of hammering dead devices.
//
// The paper premises the design on devices that are "intrinsically
// unreliable" (Section 4): lossy MICA2 radios, cameras that glitch under
// load. Without supervision every layer reacts to a crashed device the
// same way — time out, count the failure, and pay the full RPC cost again
// next epoch. The supervisor turns the failure stream the comm layer,
// ScanBroker and action operators already observe into a per-device state
// machine:
//
//   Healthy ──(consecutive failures >= suspect_after)──> Suspect
//   Suspect ──(consecutive failures >= quarantine_after
//              or EWMA success rate < ewma_quarantine)──> Quarantined
//   Suspect ──(one success)──> Healthy
//   Quarantined ──(backoff probe succeeds)──> Healthy
//
// While quarantined, a device receives no sweep or action traffic; the
// supervisor alone re-probes it on a capped exponential backoff schedule
// (backoff_base * 2^k, capped at backoff_cap). The ScanBroker serves
// last-known-good values for it (tagged degraded) and the action
// scheduler drops it from candidate lists.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "comm/comm_module.h"
#include "device/health.h"
#include "device/registry.h"
#include "util/event_loop.h"
#include "util/time.h"

namespace aorta::core {

struct HealthOptions {
  // Consecutive-failure thresholds for the two demotions.
  int suspect_after = 2;
  int quarantine_after = 4;
  // EWMA success-rate demotion: after at least `ewma_min_samples` reports,
  // a rate below `ewma_quarantine` quarantines even without a long
  // consecutive-failure run (catches devices that flap instead of dying).
  double ewma_alpha = 0.3;
  double ewma_quarantine = 0.15;
  int ewma_min_samples = 12;
  // Re-probe schedule while quarantined: backoff_base * 2^k, capped.
  aorta::util::Duration backoff_base = aorta::util::Duration::seconds(2.0);
  aorta::util::Duration backoff_cap = aorta::util::Duration::seconds(16.0);
};

enum class HealthState { kHealthy, kSuspect, kQuarantined };

std::string_view health_state_name(HealthState s);

// Per-device view exposed for stats and tests.
struct DeviceHealth {
  HealthState state = HealthState::kHealthy;
  int consecutive_failures = 0;
  // EWMA of the success indicator (1.0 = all recent reports succeeded).
  double ewma = 1.0;
  std::uint64_t samples = 0;
  // Backoff exponent for the next quarantine re-probe.
  int backoff_exponent = 0;
  aorta::util::TimePoint quarantined_at;
};

struct HealthStats {
  std::uint64_t reports_ok = 0;
  std::uint64_t reports_failed = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_failed = 0;
};

class HealthSupervisor : public device::HealthView {
 public:
  HealthSupervisor(device::DeviceRegistry* registry, comm::CommLayer* comm,
                   aorta::util::EventLoop* loop, HealthOptions options);
  ~HealthSupervisor() override;

  HealthSupervisor(const HealthSupervisor&) = delete;
  HealthSupervisor& operator=(const HealthSupervisor&) = delete;

  // device::HealthView --------------------------------------------------
  bool is_quarantined(const device::DeviceId& id) const override;
  void report(const device::DeviceId& id, device::HealthOutcomeKind kind,
              bool ok) override;

  // ---------------------------------------------------------------------
  HealthState state(const device::DeviceId& id) const;
  const DeviceHealth* device_health(const device::DeviceId& id) const;
  std::size_t quarantined_count() const;
  const HealthStats& stats() const { return stats_; }

  // Invoked on every state transition (wired to the executor's trace so
  // quarantine/recovery shows up next to query events).
  using TransitionHook = std::function<void(
      const device::DeviceId& id, HealthState from, HealthState to)>;
  void set_transition_hook(TransitionHook hook) { hook_ = std::move(hook); }

  const HealthOptions& options() const { return options_; }

 private:
  void transition(const device::DeviceId& id, DeviceHealth* h,
                  HealthState to);
  // Schedule the next quarantine re-probe for `id` at the current backoff.
  void schedule_probe(const device::DeviceId& id);
  void send_probe(const device::DeviceId& id);

  device::DeviceRegistry* registry_;
  comm::CommLayer* comm_;
  aorta::util::EventLoop* loop_;
  HealthOptions options_;
  std::map<device::DeviceId, DeviceHealth> devices_;
  std::map<device::DeviceId, aorta::util::EventId> probe_events_;
  HealthStats stats_;
  TransitionHook hook_;
  // Guards probe callbacks that may fire after destruction.
  std::shared_ptr<bool> alive_;
};

}  // namespace aorta::core
