#include "core/builtins.h"

#include "devices/camera.h"
#include "devices/mote.h"
#include "devices/phone.h"
#include "devices/ptz_math.h"
#include "sched/cost_model.h"
#include "util/strings.h"

namespace aorta::core {

using aorta::util::Result;
using aorta::util::Status;
using device::Value;
using sched::ActionOutcome;

namespace {

// Fetch a Location argument (accepts an actual Location or a "x,y,z" string).
Result<device::Location> location_arg(const std::vector<Value>& args,
                                      std::size_t index) {
  if (index >= args.size()) {
    return Result<device::Location>(
        aorta::util::invalid_argument_error("missing location argument"));
  }
  if (const auto* loc = std::get_if<device::Location>(&args[index])) {
    return *loc;
  }
  if (const auto* text = std::get_if<std::string>(&args[index])) {
    device::Location loc;
    if (device::Location::parse(*text, &loc)) return loc;
  }
  return Result<device::Location>(aorta::util::invalid_argument_error(
      "argument " + std::to_string(index) + " is not a location"));
}

// Cost model for mote actuation: the action profile priced with the
// hop_relay unit count taken from the device's (static) hop depth — the
// Section 2.3 example of device status affecting connection cost.
class MoteOpCostModel : public sched::CostModel {
 public:
  MoteOpCostModel(device::ActionProfile profile,
                  device::AtomicOpCostTable op_costs)
      : profile_(std::move(profile)), op_costs_(std::move(op_costs)) {}

  double cost_s(const sched::ActionRequest& request,
                const sched::DeviceStatus& status) const override {
    auto units_for = [&status](const std::string& op) -> double {
      if (op == "hop_relay") {
        auto it = status.find("hops");
        return it == status.end() ? 1.0 : it->second;
      }
      return -1.0;
    };
    return profile_.estimate_cost_s(op_costs_, units_for) + request.base_cost_s;
  }
  void apply(const sched::ActionRequest&, sched::DeviceStatus*) const override {}

 private:
  device::ActionProfile profile_;
  device::AtomicOpCostTable op_costs_;
};

device::ActionProfile make_mote_op_profile(const std::string& name) {
  using Node = device::ActionProfileNode;
  std::vector<std::unique_ptr<Node>> steps;
  steps.push_back(Node::op("hop_relay"));
  steps.push_back(Node::op(name));
  return device::ActionProfile(name, devices::Mica2Mote::kTypeId,
                               Node::seq(std::move(steps)));
}

}  // namespace

void register_builtin_function_library(query::Catalog* catalog,
                                       device::DeviceRegistry* registry) {
  // coverage(camera_id, location): "returns TRUE if the camera with ID
  // camera_id has a view range that covers location" (Section 2.2).
  (void)catalog->functions().add(
      "coverage",
      [registry](const std::vector<Value>& args) -> Result<Value> {
        if (args.size() != 2) {
          return Result<Value>(aorta::util::invalid_argument_error(
              "coverage(camera_id, location) takes 2 arguments"));
        }
        const auto* id = std::get_if<std::string>(&args[0]);
        if (id == nullptr) return Value{false};
        auto loc = location_arg(args, 1);
        if (!loc.is_ok()) return Value{false};
        const auto* camera =
            dynamic_cast<const devices::PtzCamera*>(registry->find(*id));
        if (camera == nullptr) return Value{false};
        return Value{devices::covers(camera->pose(), loc.value(),
                                     camera->range_m(), camera->limits())};
      });

  (void)catalog->functions().add(
      "distance", [](const std::vector<Value>& args) -> Result<Value> {
        if (args.size() != 2) {
          return Result<Value>(aorta::util::invalid_argument_error(
              "distance(a, b) takes 2 arguments"));
        }
        auto a = location_arg(args, 0);
        auto b = location_arg(args, 1);
        if (!a.is_ok()) return Result<Value>(a.status());
        if (!b.is_ok()) return Result<Value>(b.status());
        return Value{a.value().distance_to(b.value())};
      });

  // abs(x): small numeric helper useful in event predicates
  // (e.g. abs(s.accel_x) > 500 catches movement in both directions).
  (void)catalog->functions().add(
      "abs", [](const std::vector<Value>& args) -> Result<Value> {
        double x;
        if (args.size() != 1 || !device::value_as_double(args[0], &x)) {
          return Result<Value>(
              aorta::util::invalid_argument_error("abs(x) takes 1 number"));
        }
        return Value{std::abs(x)};
      });
}

void register_builtin_action_library(query::Catalog* catalog,
                                     device::DeviceRegistry* registry,
                                     comm::CommLayer* comm) {
  // ---- photo(camera_ip, location, directory) on cameras -------------------
  {
    query::ActionDef def;
    def.name = "photo";
    def.params = {{device::AttrType::kString, "camera_ip"},
                  {device::AttrType::kLocation, "location"},
                  {device::AttrType::kString, "directory"}};
    def.device_type = devices::PtzCamera::kTypeId;
    def.binding_param = 0;
    def.binding_attr = "ip";
    def.profile = sched::PhotoCostModel::make_photo_profile();
    def.cost_model = std::shared_ptr<const sched::CostModel>(
        sched::PhotoCostModel::axis2130().release());
    def.library_path = "<builtin>";

    // Cost-relevant request parameters: the event's world location; each
    // candidate camera aims it with its own pose (see PhotoCostModel).
    def.request_params = [](const std::vector<Value>& args,
                            sched::ActionRequest* request) -> Status {
      auto loc = location_arg(args, 1);
      if (!loc.is_ok()) return loc.status();
      request->params["target_x"] = loc.value().x;
      request->params["target_y"] = loc.value().y;
      request->params["target_z"] = loc.value().z;
      return Status::ok();
    };

    def.impl = [registry, comm](const device::DeviceId& device,
                                const std::vector<Value>& args,
                                std::function<void(Result<ActionOutcome>)> done) {
      auto loc = location_arg(args, 1);
      if (!loc.is_ok()) {
        done(Result<ActionOutcome>(loc.status()));
        return;
      }
      const auto* camera =
          dynamic_cast<const devices::PtzCamera*>(registry->find(device));
      if (camera == nullptr) {
        done(Result<ActionOutcome>(
            aorta::util::not_found_error("no such camera: " + device)));
        return;
      }
      devices::PtzPosition target =
          devices::aim_at(camera->pose(), loc.value(), camera->limits());
      comm->camera().photo(
          device, target, "medium",
          [done = std::move(done)](Result<comm::PhotoOutcome> outcome) {
            if (!outcome.is_ok()) {
              done(Result<ActionOutcome>(outcome.status()));
              return;
            }
            const comm::PhotoOutcome& p = outcome.value();
            ActionOutcome out;
            out.ok = p.ok;
            out.degraded = p.ok && !p.usable();
            if (p.blurred) out.detail = "blurred";
            if (p.wrong_position) out.detail = "wrong_position";
            done(out);
          });
    };
    (void)catalog->register_action(std::move(def));
  }

  // ---- sendphoto(phone_no, photo_pathname) on phones ----------------------
  {
    using Node = device::ActionProfileNode;
    std::vector<std::unique_ptr<Node>> steps;
    steps.push_back(Node::op("transfer", 80.0 * 1024.0));  // ~medium JPEG
    steps.push_back(Node::op("recv_mms"));
    device::ActionProfile profile("sendphoto", devices::MmsPhone::kTypeId,
                                  Node::seq(std::move(steps)));

    query::ActionDef def;
    def.name = "sendphoto";
    def.params = {{device::AttrType::kString, "phone_no"},
                  {device::AttrType::kString, "photo_pathname"}};
    def.device_type = devices::MmsPhone::kTypeId;
    def.binding_param = 0;
    def.binding_attr = "phone_no";
    const device::DeviceTypeInfo* info =
        registry->type_info(devices::MmsPhone::kTypeId);
    def.cost_model = query::ProfileCostModel::from_profile(
        profile, info != nullptr ? info->op_costs
                                 : device::AtomicOpCostTable{});
    def.profile = std::move(profile);
    def.library_path = "<builtin>";

    def.impl = [comm](const device::DeviceId& device,
                      const std::vector<Value>& args,
                      std::function<void(Result<ActionOutcome>)> done) {
      std::string path;
      if (args.size() > 1) {
        if (const auto* s = std::get_if<std::string>(&args[1])) path = *s;
      }
      comm->phone().send_mms(
          device, path, 80 * 1024,
          [done = std::move(done)](Status status) {
            if (!status.is_ok()) {
              done(Result<ActionOutcome>(status));
              return;
            }
            ActionOutcome out;
            out.ok = true;
            done(out);
          });
    };
    (void)catalog->register_action(std::move(def));
  }

  // ---- beep(sensor_id) / blink(sensor_id) on motes -------------------------
  for (const char* name : {"beep", "blink"}) {
    query::ActionDef def;
    def.name = name;
    def.params = {{device::AttrType::kString, "sensor_id"}};
    def.device_type = devices::Mica2Mote::kTypeId;
    def.binding_param = 0;
    def.binding_attr = "id";
    const device::DeviceTypeInfo* info =
        registry->type_info(devices::Mica2Mote::kTypeId);
    def.cost_model = std::make_shared<MoteOpCostModel>(
        make_mote_op_profile(name),
        info != nullptr ? info->op_costs : device::AtomicOpCostTable{});
    def.profile = make_mote_op_profile(name);
    def.library_path = "<builtin>";

    const bool is_beep = std::string(name) == "beep";
    def.impl = [comm, is_beep](const device::DeviceId& device,
                               const std::vector<Value>&,
                               std::function<void(Result<ActionOutcome>)> done) {
      auto cb = [done = std::move(done)](Status status) {
        if (!status.is_ok()) {
          done(Result<ActionOutcome>(status));
          return;
        }
        ActionOutcome out;
        out.ok = true;
        done(out);
      };
      if (is_beep) {
        comm->mote().beep(device, std::move(cb));
      } else {
        comm->mote().blink(device, std::move(cb));
      }
    };
    (void)catalog->register_action(std::move(def));
  }
}

}  // namespace aorta::core
