#include "core/aorta.h"

#include <optional>
#include <thread>

#include "core/builtins.h"
#include "device/profile_io.h"
#include "util/logging.h"
#include "util/strings.h"

// Propagate a Status failure out of exec() as a Result<ExecResult>.
#define AORTA_RETURN_IF_ERROR_EXEC(expr)                            \
  do {                                                              \
    ::aorta::util::Status _s = (expr);                              \
    if (!_s.is_ok()) return ::aorta::util::Result<ExecResult>(_s);  \
  } while (false)

namespace aorta::core {

using aorta::util::Duration;
using aorta::util::Result;
using aorta::util::Status;

Aorta::Aorta(Config config)
    : tracer_(config.trace_capacity), config_(config), rng_(config.seed) {
  tracer_.set_enabled(config_.tracing);
  tracers_.push_back(&tracer_);
  runtime_ = std::make_unique<aorta::util::LoopGroup>(config_.runtime_quantum);
  int threads = config_.runtime_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  runtime_->set_threads(threads);
  fabric_ = std::make_unique<net::Fabric>(runtime_.get());
  clock_ = runtime_->clock(0);
  loop_ = runtime_->control();
  aorta::util::Logger::instance().attach_clock(clock_);

  network_ = std::make_unique<net::Network>(loop_, rng_.fork());
  network_->join_fabric(fabric_.get(), 0);
  registry_ = std::make_unique<device::DeviceRegistry>(network_.get(),
                                                       loop_, rng_.fork());
  comm_ = std::make_unique<comm::CommLayer>(registry_.get(), network_.get());
  comm::ScanBroker::Options broker_options;
  broker_options.coalesce = config_.shared_scans;
  broker_options.freshness = config_.scan_freshness;
  broker_options.degraded_staleness = config_.degraded_staleness;
  scan_broker_ = std::make_unique<comm::ScanBroker>(
      registry_.get(), comm_.get(), loop_, broker_options);
  locks_ = std::make_unique<sync::LockManager>(loop_);
  prober_ = std::make_unique<sync::Prober>(comm_.get(), registry_.get(),
                                           loop_);
  if (config_.health_supervision) {
    health_ = std::make_unique<HealthSupervisor>(registry_.get(), comm_.get(),
                                                 loop_, config_.health);
    comm_->set_health(health_.get());
    scan_broker_->set_health(health_.get());
  }
  catalog_ = std::make_unique<query::Catalog>();

  query::ContinuousQueryExecutor::Options options;
  options.epoch = config_.epoch;
  options.scheduler_name = config_.scheduler;
  options.use_probing = config_.use_probing;
  options.use_locks = config_.use_locks;
  options.max_retries = config_.max_retries;
  options.health = health_.get();
  options.predicate_index = config_.predicate_index;
  options.aggregate_cache = config_.aggregate_cache;
  executor_ = std::make_unique<query::ContinuousQueryExecutor>(
      registry_.get(), comm_.get(), scan_broker_.get(), prober_.get(),
      locks_.get(), loop_, catalog_.get(), rng_.fork(), options);
  if (health_ != nullptr) {
    // Surface quarantine/recovery next to query events in the trace.
    health_->set_transition_hook([this](const device::DeviceId& id,
                                        HealthState from, HealthState to) {
      executor_->record_trace(query::TraceEntry{
          loop_->now(), "", "health",
          id + ": " + std::string(health_state_name(from)) + " -> " +
              std::string(health_state_name(to))});
      AORTA_TRACE_INSTANT(&tracer_, obs::SpanCat::kHealth, "transition:" + id,
                          loop_->now(),
                          std::string(health_state_name(from)) + " -> " +
                              std::string(health_state_name(to)));
    });
  }

  scan_broker_->set_tracer(&tracer_);
  executor_->set_tracer(&tracer_);
  comm_->engine().rpc().set_tracer(&tracer_);
  enroll_system_metrics();

  register_builtin_types();
  register_builtin_functions();
  register_builtin_actions();
  executor_->start();
}

void Aorta::enroll_system_metrics() {
  const net::NetworkStats& net = network_->stats();
  metrics_.enroll_counter("network.sent", &net.sent);
  metrics_.enroll_counter("network.delivered", &net.delivered);
  metrics_.enroll_counter("network.dropped_loss", &net.dropped_loss);
  metrics_.enroll_counter("network.dropped_no_route", &net.dropped_no_route);
  metrics_.enroll_counter("network.dropped_partition", &net.dropped_partition);
  metrics_.enroll_counter("network.dropped_offline", &net.dropped_offline);
  metrics_.enroll_counter("network.bounced", &net.bounced);
  metrics_.enroll_counter("network.dropped_chaos", &net.dropped_chaos);
  metrics_.enroll_counter("network.chaos_dup_copies", &net.chaos_dup_copies);
  metrics_.enroll_counter("network.chaos_reordered", &net.chaos_reordered);
  metrics_.enroll_counter("network.chaos_delayed", &net.chaos_delayed);

  const net::RpcStats& rpc = comm_->engine().rpc().stats();
  metrics_.enroll_counter("network.rpc.completed", &rpc.completed);
  metrics_.enroll_counter("network.rpc.timeouts", &rpc.timeouts);
  metrics_.enroll_counter("network.rpc.late_replies", &rpc.late_replies);
  metrics_.enroll_counter("network.rpc.unreachable", &rpc.unreachable);
  metrics_.enroll_counter("network.rpc.slow_replies", &rpc.slow_replies);

  const sync::LockStats& locks = locks_->stats();
  metrics_.enroll_counter("sync.locks.acquisitions", &locks.acquisitions);
  metrics_.enroll_counter("sync.locks.releases", &locks.releases);
  metrics_.enroll_counter("sync.locks.contentions", &locks.contentions);
  metrics_.enroll_counter("sync.locks.max_queue_depth", &locks.max_queue_depth);
  metrics_.enroll_counter("sync.locks.wait_timeouts", &locks.wait_timeouts);
  const sync::ProbeStats& probes = prober_->stats();
  metrics_.enroll_counter("sync.probes.probes", &probes.probes);
  metrics_.enroll_counter("sync.probes.responses", &probes.responses);
  metrics_.enroll_counter("sync.probes.timeouts", &probes.timeouts);

  metrics_.enroll_gauge_bool("health.enabled",
                             [this]() { return health_ != nullptr; });
  if (health_ != nullptr) {
    const HealthStats& hs = health_->stats();
    metrics_.enroll_gauge("health.quarantined", [this]() {
      return static_cast<std::int64_t>(health_->quarantined_count());
    });
    metrics_.enroll_counter("health.reports_ok", &hs.reports_ok);
    metrics_.enroll_counter("health.reports_failed", &hs.reports_failed);
    metrics_.enroll_counter("health.quarantines", &hs.quarantines);
    metrics_.enroll_counter("health.recoveries", &hs.recoveries);
    metrics_.enroll_counter("health.probes_sent", &hs.probes_sent);
    metrics_.enroll_counter("health.probes_failed", &hs.probes_failed);
  }

  const query::EvalStats& es = executor_->eval_stats();
  metrics_.enroll_counter("eval.programs_compiled", &es.programs_compiled);
  metrics_.enroll_counter("eval.programs_fallback", &es.programs_fallback);
  metrics_.enroll_counter("eval.compiled_evals", &es.compiled_evals);
  metrics_.enroll_counter("eval.fallback_evals", &es.fallback_evals);
  executor_->set_index_metrics(&metrics_, "eval.index.");
  executor_->set_agg_metrics(&metrics_, "eval.agg.", "broker.agg_cache.");

  metrics_.enroll_counter("network.cross_sent", &net.cross_sent);
  metrics_.enroll_gauge("runtime.loops", [this]() {
    return static_cast<std::int64_t>(runtime_->size());
  });
  metrics_.enroll_gauge("runtime.windows", [this]() {
    return static_cast<std::int64_t>(runtime_->windows());
  });
  // Thread count is an execution-environment property, not virtual state:
  // volatile so same-seed snapshots match across thread counts.
  metrics_.enroll_gauge("runtime.threads", [this]() {
    return static_cast<std::int64_t>(runtime_->threads());
  });
  metrics_.mark_volatile("runtime.threads");
  enroll_loop_runtime_metrics(0);

  scan_broker_->set_metrics(&metrics_);
}

void Aorta::enroll_loop_runtime_metrics(int loop_index) {
  const aorta::util::LoopRuntimeStats& rs = runtime_->stats(loop_index);
  const std::string p = "runtime." + std::to_string(loop_index) + ".";
  metrics_.enroll_counter(p + "barrier_waits", &rs.barrier_waits);
  metrics_.enroll_counter(p + "posts_out", &rs.posts_out);
  metrics_.enroll_counter(p + "posts_in", &rs.posts_in);
  metrics_.enroll_counter(p + "posts_clamped", &rs.posts_clamped);
  metrics_.enroll_counter(p + "max_outbox_depth", &rs.max_outbox_depth);
  metrics_.enroll_gauge(p + "queue_depth", [this, loop_index]() {
    return static_cast<std::int64_t>(runtime_->loop(loop_index)->pending());
  });
  // Barrier stall time is wall-clock (how long this loop's thread parked
  // at the rendezvous): enrolled volatile so it never perturbs the
  // deterministic snapshot, visible via snapshot_json(_, true).
  auto hist = std::make_unique<obs::LatencyHistogram>(0.0, 50.0, 50);
  runtime_->set_stall_sink(loop_index,
                           [h = hist.get()](double ms) { h->add(ms); });
  metrics_.enroll_histogram(p + "barrier_stall_ms", hist.get());
  metrics_.mark_volatile(p + "barrier_stall_ms");
  stall_hists_.push_back(std::move(hist));
}

Aorta::~Aorta() { aorta::util::Logger::instance().attach_clock(nullptr); }

void Aorta::register_builtin_types() {
  (void)registry_->register_type(devices::camera_type_info());
  (void)registry_->register_type(devices::sensor_type_info());
  (void)registry_->register_type(devices::phone_type_info());
}

void Aorta::register_builtin_functions() {
  register_builtin_function_library(catalog_.get(), registry_.get());
}

void Aorta::register_builtin_actions() {
  register_builtin_action_library(catalog_.get(), registry_.get(), comm_.get());
}

Status Aorta::add_camera(const device::DeviceId& id, std::string ip,
                         devices::CameraPose pose, double range_m) {
  return registry_->add(std::make_unique<devices::PtzCamera>(
      id, std::move(ip), pose, range_m));
}

Status Aorta::add_mote(const device::DeviceId& id, device::Location loc,
                       int hops) {
  AORTA_RETURN_IF_ERROR(
      registry_->add(std::make_unique<devices::Mica2Mote>(id, loc, hops)));
  // Deeper motes ride a slower, lossier multi-hop path.
  return network_->set_link(id, devices::Mica2Mote::link_for_hops(hops));
}

Status Aorta::add_phone(const device::DeviceId& id, std::string phone_no,
                        device::Location loc) {
  return registry_->add(
      std::make_unique<devices::MmsPhone>(id, std::move(phone_no), loc));
}

Status Aorta::remove_device(const device::DeviceId& id) {
  return registry_->remove(id);
}

devices::PtzCamera* Aorta::camera(const device::DeviceId& id) {
  return dynamic_cast<devices::PtzCamera*>(registry_->find(id));
}
devices::Mica2Mote* Aorta::mote(const device::DeviceId& id) {
  return dynamic_cast<devices::Mica2Mote*>(registry_->find(id));
}
devices::MmsPhone* Aorta::phone(const device::DeviceId& id) {
  return dynamic_cast<devices::MmsPhone*>(registry_->find(id));
}

void Aorta::add_virtual_file(const std::string& path, std::string content) {
  virtual_files_[path] = std::move(content);
}

std::map<device::DeviceTypeId, std::string> Aorta::export_device_types() const {
  std::map<device::DeviceTypeId, std::string> out;
  for (const auto& type_id : registry_->type_ids()) {
    const device::DeviceTypeInfo* info = registry_->type_info(type_id);
    if (info != nullptr) out[type_id] = device::device_type_to_xml(*info);
  }
  return out;
}

Status Aorta::register_type_from_xml(const std::string& xml) {
  auto info = device::device_type_from_xml(xml);
  if (!info.is_ok()) return info.status();
  return registry_->register_type(std::move(info).value());
}

Status Aorta::register_action_impl(const std::string& name,
                                   query::ActionImpl impl) {
  return catalog_->bind_action_impl(name, std::move(impl));
}

Result<ExecResult> Aorta::exec(const std::string& sql) {
  std::optional<Result<ExecResult>> outcome;
  exec_async(sql, ExecOptions{},
             [&outcome](Result<ExecResult> r) { outcome = std::move(r); });
  if (!outcome.has_value()) {
    // One-shot SELECT: sensory acquisition needs simulated time to pass;
    // bounded by the worst per-type probe timeout.
    const Duration kSelectDeadline = Duration::seconds(30.0);
    aorta::util::TimePoint deadline = loop_->now() + kSelectDeadline;
    while (!outcome.has_value() && loop_->now() < deadline &&
           runtime_->pending() > 0) {
      if (runtime_->running()) {
        // Re-entrant exec from inside an event: only the control loop can
        // be advanced from here; worker loops keep running to the barrier.
        loop_->run_until(loop_->now() + Duration::millis(10));
      } else {
        runtime_->run_until(loop_->now() + Duration::millis(10));
      }
    }
    if (!outcome.has_value()) {
      return Result<ExecResult>(
          aorta::util::timeout_error("SELECT did not complete"));
    }
  }
  return std::move(*outcome);
}

void Aorta::exec_async(const std::string& sql, ExecOptions options,
                       std::function<void(Result<ExecResult>)> done) {
  auto stmt = query::parse(sql);
  AORTA_TRACE_INSTANT(&tracer_, obs::SpanCat::kParse, "parse", loop_->now(),
                      stmt.is_ok() ? sql : "error: " + sql);
  if (!stmt.is_ok()) {
    done(Result<ExecResult>(stmt.status()));
    return;
  }
  query::Statement& s = stmt.value();

  if (s.kind == query::Statement::Kind::kSelect) {
    executor_->run_select(
        s.select, [done = std::move(done)](
                      Result<std::vector<query::Row>> outcome) {
          if (!outcome.is_ok()) {
            done(Result<ExecResult>(outcome.status()));
            return;
          }
          ExecResult result;
          result.rows = std::move(outcome).value();
          result.message =
              aorta::util::str_format("%zu row(s)", result.rows.size());
          done(std::move(result));
        });
    return;
  }
  done(exec_ddl(s, sql, options));
}

Result<ExecResult> Aorta::exec_ddl(query::Statement& s, const std::string& sql,
                                   const ExecOptions& options) {
  switch (s.kind) {
    case query::Statement::Kind::kCreateAction: {
      const auto& ca = s.create_action;
      // Load the action profile from the virtual file store.
      auto file = virtual_files_.find(ca.profile_path);
      if (file == virtual_files_.end()) {
        return Result<ExecResult>(aorta::util::not_found_error(
            "profile file not registered: " + ca.profile_path +
            " (use add_virtual_file)"));
      }
      auto profile = device::ActionProfile::from_xml(file->second);
      if (!profile.is_ok()) return Result<ExecResult>(profile.status());

      query::ActionDef def;
      def.name = ca.name;
      for (const auto& p : ca.params) {
        device::AttrType type = device::AttrType::kString;
        std::string lowered = aorta::util::to_lower(p.type_name);
        if (lowered == "double" || lowered == "float") {
          type = device::AttrType::kDouble;
        } else if (lowered == "int" || lowered == "integer") {
          type = device::AttrType::kInt;
        } else if (lowered == "location") {
          type = device::AttrType::kLocation;
        }
        def.params.push_back(query::ActionParam{type, p.name});
      }
      def.device_type = profile.value().device_type();
      def.library_path = ca.library_path;

      const device::DeviceTypeInfo* info =
          registry_->type_info(def.device_type);
      if (info == nullptr) {
        return Result<ExecResult>(aorta::util::not_found_error(
            "action profile references unknown device type: " +
            def.device_type));
      }
      def.cost_model = query::ProfileCostModel::from_profile(profile.value(),
                                                             info->op_costs);
      // Device binding defaults: first parameter against the conventional
      // identity attribute of the device type.
      def.binding_param = 0;
      def.binding_attr = def.device_type == "phone"
                             ? "phone_no"
                             : (def.device_type == "camera" ? "ip" : "id");
      def.profile = std::move(profile).value();
      AORTA_RETURN_IF_ERROR_EXEC(catalog_->register_action(std::move(def)));
      return ExecResult{"action " + ca.name + " registered (bind an "
                        "implementation with register_action_impl)",
                        {}};
    }

    case query::Statement::Kind::kCreateAq: {
      std::string name = options.name_prefix + s.create_aq.name;
      query::ContinuousQueryExecutor::AqHooks hooks;
      hooks.owner = options.owner;
      hooks.on_row = options.on_row;
      AORTA_RETURN_IF_ERROR_EXEC(executor_->register_aq(
          name, s.create_aq.epoch_s, s.create_aq.select, sql,
          std::move(hooks)));
      return ExecResult{"continuous query " + name + " registered", {}};
    }

    case query::Statement::Kind::kDropAq: {
      std::string name = options.name_prefix + s.drop_aq.name;
      AORTA_RETURN_IF_ERROR_EXEC(executor_->drop_aq(name));
      return ExecResult{"continuous query " + name + " dropped", {}};
    }

    case query::Statement::Kind::kExplain: {
      auto compiled = query::compile(s.select, *catalog_, *registry_);
      if (!compiled.is_ok()) return Result<ExecResult>(compiled.status());
      return ExecResult{compiled.value().describe(), {}};
    }

    case query::Statement::Kind::kShow: {
      ExecResult result;
      using Target = query::ShowStmt::Target;
      switch (s.show.target) {
        case Target::kQueries:
          for (const std::string& name : executor_->aq_names()) {
            const query::QueryStats* qs = executor_->query_stats(name);
            query::QueryActionStats as = executor_->action_stats(name);
            query::Row row;
            row.emplace_back("name", name);
            row.emplace_back("events",
                             static_cast<std::int64_t>(qs ? qs->events : 0));
            row.emplace_back("usable", static_cast<std::int64_t>(as.usable));
            row.emplace_back("bad", static_cast<std::int64_t>(as.total_bad()));
            result.rows.push_back(std::move(row));
          }
          break;
        case Target::kActions:
          for (const std::string& name : catalog_->action_names()) {
            const query::ActionDef* def = catalog_->find_action(name);
            query::Row row;
            row.emplace_back("name", name);
            row.emplace_back("device_type", def->device_type);
            row.emplace_back("params",
                             static_cast<std::int64_t>(def->params.size()));
            row.emplace_back("library", def->library_path);
            row.emplace_back("bound", def->impl ? true : false);
            result.rows.push_back(std::move(row));
          }
          break;
        case Target::kDevices:
          for (const auto& type_id : registry_->type_ids()) {
            for (const auto& id : registry_->ids_of_type(type_id)) {
              const device::Device* dev = registry_->find(id);
              query::Row row;
              row.emplace_back("id", id);
              row.emplace_back("type", type_id);
              row.emplace_back("loc", dev->location());
              row.emplace_back("online", dev->online());
              result.rows.push_back(std::move(row));
            }
          }
          break;
      }
      result.message = aorta::util::str_format("%zu row(s)", result.rows.size());
      return result;
    }

    case query::Statement::Kind::kSelect:
      break;  // handled asynchronously in exec_async
  }
  return Result<ExecResult>(aorta::util::internal_error("bad statement kind"));
}

void Aorta::run_for(Duration span) {
  if (runtime_->running()) {
    // Called from inside an event (a test hook, say): the group is already
    // being driven, so only the calling loop may advance.
    loop_->run_for(span);
    return;
  }
  runtime_->run_for(span);
}

Status Aorta::apply_fault_plan(const util::FaultPlan& plan) {
  return schedule_fault_plan(
      plan, loop_, network_.get(),
      [this](const device::DeviceId& id) { return registry_->find(id); });
}

Status schedule_fault_plan(
    const util::FaultPlan& plan, aorta::util::EventLoop* loop,
    net::Network* network,
    std::function<device::Device*(const device::DeviceId&)> find_device) {
  // Validate every target up front so a typo in a plan file fails the
  // whole apply instead of silently no-opping one event mid-run.
  for (const util::FaultEvent& e : plan.events) {
    if (e.shard >= 0) {
      return aorta::util::invalid_argument_error(
          "fault plan targets shard " + std::to_string(e.shard) +
          " but this system has no sharded plane (run with num_shards > 0)");
    }
    switch (e.kind) {
      case util::FaultEvent::Kind::kCrash:
      case util::FaultEvent::Kind::kRevive:
      case util::FaultEvent::Kind::kGlitchSpike:
        if (find_device(e.target) == nullptr) {
          return aorta::util::not_found_error(
              "fault plan targets unknown device: " + e.target);
        }
        break;
      case util::FaultEvent::Kind::kPartition:
      case util::FaultEvent::Kind::kHeal:
      case util::FaultEvent::Kind::kLossSpike:
      case util::FaultEvent::Kind::kDuplicateSpike:
      case util::FaultEvent::Kind::kReorderSpike:
      case util::FaultEvent::Kind::kDelaySpike:
        if (!network->attached(e.target)) {
          return aorta::util::not_found_error(
              "fault plan targets unattached node: " + e.target);
        }
        break;
    }
  }

  for (const util::FaultEvent& e : plan.events) {
    schedule_fault_event(e, loop, network, find_device);
  }
  return Status::ok();
}

void schedule_fault_event(
    const util::FaultEvent& e, aorta::util::EventLoop* loop,
    net::Network* network,
    std::function<device::Device*(const device::DeviceId&)> find_device) {
  loop->schedule(Duration::seconds(e.at_s), [loop, network, find_device,
                                             e]() {
    switch (e.kind) {
      case util::FaultEvent::Kind::kCrash:
      case util::FaultEvent::Kind::kRevive: {
        device::Device* dev = find_device(e.target);
        if (dev != nullptr) {
          dev->set_online(e.kind == util::FaultEvent::Kind::kRevive);
        }
        break;
      }
      case util::FaultEvent::Kind::kPartition:
        network->partition(e.target);
        break;
      case util::FaultEvent::Kind::kHeal:
        network->heal(e.target);
        break;
      case util::FaultEvent::Kind::kLossSpike:
      case util::FaultEvent::Kind::kDuplicateSpike:
      case util::FaultEvent::Kind::kReorderSpike:
      case util::FaultEvent::Kind::kDelaySpike: {
        // Capture the link as it is *now* (it may have changed since the
        // plan was applied) and restore it when the spike interval ends.
        // All four verbs perturb the chaos_* fields, which draw from the
        // network's dedicated chaos RNG: injecting them never shifts the
        // main traffic streams (see net::LinkModel). Spike and restore
        // each touch only this verb's own fields against the link's state
        // at that moment, so overlapping spikes on one link (a storm
        // stacking loss + duplicate + reorder + delay) compose and
        // un-compose independently instead of clobbering each other with
        // whole-link snapshots.
        const net::LinkModel* current = network->link(e.target);
        if (current == nullptr) break;
        const net::LinkModel before = *current;
        net::LinkModel spiked = before;
        switch (e.kind) {
          case util::FaultEvent::Kind::kLossSpike:
            spiked.chaos_loss_prob = e.prob;
            break;
          case util::FaultEvent::Kind::kDuplicateSpike:
            spiked.chaos_dup_factor = e.factor;
            break;
          case util::FaultEvent::Kind::kReorderSpike:
            spiked.chaos_reorder_prob = e.prob;
            spiked.chaos_reorder_window_s = e.window_s;
            break;
          case util::FaultEvent::Kind::kDelaySpike:
            spiked.chaos_delay_s = e.add_s;
            break;
          default:
            break;
        }
        (void)network->set_link(e.target, spiked);
        loop->schedule(Duration::seconds(e.for_s), [network, e, before]() {
          const net::LinkModel* cur = network->link(e.target);
          if (cur == nullptr) return;
          net::LinkModel next = *cur;
          switch (e.kind) {
            case util::FaultEvent::Kind::kLossSpike:
              next.chaos_loss_prob = before.chaos_loss_prob;
              break;
            case util::FaultEvent::Kind::kDuplicateSpike:
              next.chaos_dup_factor = before.chaos_dup_factor;
              break;
            case util::FaultEvent::Kind::kReorderSpike:
              next.chaos_reorder_prob = before.chaos_reorder_prob;
              next.chaos_reorder_window_s = before.chaos_reorder_window_s;
              break;
            case util::FaultEvent::Kind::kDelaySpike:
              next.chaos_delay_s = before.chaos_delay_s;
              break;
            default:
              break;
          }
          (void)network->set_link(e.target, next);
        });
        break;
      }
      case util::FaultEvent::Kind::kGlitchSpike: {
        device::Device* dev = find_device(e.target);
        if (dev == nullptr) break;
        double restored = dev->reliability().glitch_prob;
        dev->reliability().glitch_prob = e.prob;
        loop->schedule(Duration::seconds(e.for_s), [find_device, e,
                                                    restored]() {
          device::Device* d = find_device(e.target);
          if (d != nullptr) d->reliability().glitch_prob = restored;
        });
        break;
      }
    }
    AORTA_LOG(kInfo, "fault")
        << util::fault_event_kind_name(e.kind) << " " << e.target;
  });
}

const query::QueryStats* Aorta::query_stats(const std::string& name) const {
  return executor_->query_stats(name);
}

query::QueryActionStats Aorta::action_stats(const std::string& name) const {
  return executor_->action_stats(name);
}

SystemStats Aorta::stats() const {
  return SystemStats{locks_->stats(), prober_->stats(), network_->stats(),
                     comm_->engine().rpc().stats()};
}

}  // namespace aorta::core
