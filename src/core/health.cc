#include "core/health.h"

#include <algorithm>

#include "util/logging.h"

namespace aorta::core {

using aorta::util::Duration;

std::string_view health_state_name(HealthState s) {
  switch (s) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kSuspect:
      return "suspect";
    case HealthState::kQuarantined:
      return "quarantined";
  }
  return "?";
}

HealthSupervisor::HealthSupervisor(device::DeviceRegistry* registry,
                                   comm::CommLayer* comm,
                                   aorta::util::EventLoop* loop,
                                   HealthOptions options)
    : registry_(registry),
      comm_(comm),
      loop_(loop),
      options_(options),
      alive_(std::make_shared<bool>(true)) {}

HealthSupervisor::~HealthSupervisor() { *alive_ = false; }

bool HealthSupervisor::is_quarantined(const device::DeviceId& id) const {
  auto it = devices_.find(id);
  return it != devices_.end() && it->second.state == HealthState::kQuarantined;
}

HealthState HealthSupervisor::state(const device::DeviceId& id) const {
  auto it = devices_.find(id);
  return it == devices_.end() ? HealthState::kHealthy : it->second.state;
}

const DeviceHealth* HealthSupervisor::device_health(
    const device::DeviceId& id) const {
  auto it = devices_.find(id);
  return it == devices_.end() ? nullptr : &it->second;
}

std::size_t HealthSupervisor::quarantined_count() const {
  std::size_t n = 0;
  for (const auto& [id, h] : devices_) {
    if (h.state == HealthState::kQuarantined) ++n;
  }
  return n;
}

void HealthSupervisor::report(const device::DeviceId& id,
                              device::HealthOutcomeKind kind, bool ok) {
  (void)kind;  // all outcome kinds feed the same state machine
  DeviceHealth& h = devices_[id];
  ++h.samples;
  h.ewma = options_.ewma_alpha * (ok ? 1.0 : 0.0) +
           (1.0 - options_.ewma_alpha) * h.ewma;
  if (ok) {
    ++stats_.reports_ok;
    h.consecutive_failures = 0;
    if (h.state != HealthState::kHealthy) {
      if (h.state == HealthState::kQuarantined) h.ewma = 1.0;
      transition(id, &h, HealthState::kHealthy);
    }
    return;
  }
  ++stats_.reports_failed;
  ++h.consecutive_failures;
  if (h.state == HealthState::kQuarantined) {
    // A failure while quarantined (usually one of our own backoff probes)
    // widens the next re-probe interval.
    h.backoff_exponent = std::min(h.backoff_exponent + 1, 30);
    return;
  }
  const bool quarantine =
      h.consecutive_failures >= options_.quarantine_after ||
      (h.samples >= static_cast<std::uint64_t>(options_.ewma_min_samples) &&
       h.ewma < options_.ewma_quarantine);
  if (quarantine) {
    h.quarantined_at = loop_->now();
    h.backoff_exponent = 0;
    transition(id, &h, HealthState::kQuarantined);
    schedule_probe(id);
  } else if (h.state == HealthState::kHealthy &&
             h.consecutive_failures >= options_.suspect_after) {
    transition(id, &h, HealthState::kSuspect);
  }
}

void HealthSupervisor::transition(const device::DeviceId& id, DeviceHealth* h,
                                  HealthState to) {
  const HealthState from = h->state;
  if (from == to) return;
  h->state = to;
  if (to == HealthState::kQuarantined) {
    ++stats_.quarantines;
  } else if (from == HealthState::kQuarantined) {
    ++stats_.recoveries;
    h->backoff_exponent = 0;
    // A pending re-probe is moot once the device is back; cancel it so the
    // backoff schedule restarts fresh on the next quarantine.
    auto ev = probe_events_.find(id);
    if (ev != probe_events_.end()) {
      loop_->cancel(ev->second);
      probe_events_.erase(ev);
    }
  }
  AORTA_LOG(kInfo, "health")
      << id << ": " << health_state_name(from) << " -> "
      << health_state_name(to);
  if (hook_) hook_(id, from, to);
}

void HealthSupervisor::schedule_probe(const device::DeviceId& id) {
  auto it = devices_.find(id);
  if (it == devices_.end() || it->second.state != HealthState::kQuarantined) {
    return;
  }
  Duration delay = options_.backoff_base;
  for (int k = 0; k < it->second.backoff_exponent && delay < options_.backoff_cap;
       ++k) {
    delay = delay * 2.0;
  }
  if (delay > options_.backoff_cap) delay = options_.backoff_cap;
  std::shared_ptr<bool> alive = alive_;
  probe_events_[id] = loop_->schedule(delay, [this, id, alive] {
    if (!*alive) return;
    probe_events_.erase(id);
    send_probe(id);
  });
}

void HealthSupervisor::send_probe(const device::DeviceId& id) {
  if (state(id) != HealthState::kQuarantined) return;
  device::Device* dev = registry_->find(id);
  if (dev == nullptr) return;  // device left the network; stop probing
  comm::CommModule* module = comm_->module_for(dev->type_id());
  if (module == nullptr) return;
  ++stats_.probes_sent;
  std::shared_ptr<bool> alive = alive_;
  // The comm module reports the probe outcome (kProbe) before this
  // callback runs, so the state transition — recovery on success, wider
  // backoff on failure — has already happened here; all that is left is to
  // keep the re-probe cycle alive while the device stays quarantined.
  module->request(id, "probe", {}, Duration::zero(),
                  [this, id, alive](aorta::util::Result<net::Message> r) {
                    if (!*alive) return;
                    if (!r.is_ok()) ++stats_.probes_failed;
                    if (state(id) == HealthState::kQuarantined) {
                      schedule_probe(id);
                    }
                  });
}

}  // namespace aorta::core
