// Scan operators over virtual device tables.
//
// Section 3.2: the communication layer "provides special 'scan operators'
// as simple interfaces for the query engine to acquire device data tuples
// from these virtual tables ... the implementation of a scan operator on
// different attributes varies by the categories of the attributes.
// Specifically, sensory data must be acquired dynamically whereas
// non-sensory data may be stored statically."
//
// A scan therefore fills non-sensory fields from the registry's static
// cache synchronously and issues one read_attr round trip per *needed*
// sensory field per device (projection pushdown: the query engine passes
// the set of attributes its predicates and actions reference). Devices
// whose sensory reads all time out yield no tuple — an unreachable device
// simply has no row, matching the dynamic-membership view of Section 4.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "comm/comm_module.h"
#include "comm/tuple.h"

namespace aorta::comm {

struct ScanStats {
  std::uint64_t scans = 0;
  std::uint64_t tuples_produced = 0;
  std::uint64_t sensory_reads = 0;
  std::uint64_t sensory_read_failures = 0;
  std::uint64_t devices_skipped = 0;  // all sensory reads failed
};

class ScanOperator {
 public:
  // `needed` lists attribute names the engine actually uses; non-sensory
  // needed attrs come from the cache, sensory needed attrs are fetched.
  // An empty set means "all attributes".
  ScanOperator(device::DeviceRegistry* registry, CommLayer* comm,
               device::DeviceTypeId type_id, std::set<std::string> needed = {});

  const Schema& schema() const { return *schema_; }
  const device::DeviceTypeId& type_id() const { return type_id_; }
  const ScanStats& stats() const { return *stats_; }

  // Produce one tuple per currently-reachable device of the type. The
  // callback fires once, after every per-device acquisition completed or
  // timed out.
  void scan(std::function<void(std::vector<Tuple>)> done);

  // Scan a single device (used by probing-style refreshes).
  void scan_device(const device::DeviceId& id,
                   std::function<void(aorta::util::Result<Tuple>)> done);

 private:
  // Shared bookkeeping for one in-flight multi-device scan.
  struct ScanJob;

  bool needs(const std::string& attr) const {
    return needed_.empty() || needed_.count(attr) > 0;
  }

  device::DeviceRegistry* registry_;
  CommLayer* comm_;
  device::DeviceTypeId type_id_;
  std::set<std::string> needed_;
  // Shared with in-flight scan jobs so a scan survives the operator's
  // destruction (a continuous query may be dropped mid-epoch).
  std::shared_ptr<Schema> schema_;
  std::shared_ptr<ScanStats> stats_;
};

}  // namespace aorta::comm
