// Schemas and tuples for virtual device tables.
//
// Section 3.2: "The communication layer abstracts each type of devices
// into a virtual relational table ... Each tuple of a virtual device table
// (e.g., the sensor table) is from a specific device of the corresponding
// type; it is generated on-the-fly when requested by the query engine."
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "device/profile.h"
#include "device/types.h"

namespace aorta::comm {

struct Field {
  std::string name;
  device::AttrType type = device::AttrType::kDouble;
  bool sensory = true;
};

class Schema {
 public:
  Schema() = default;
  Schema(std::string table_name, std::vector<Field> fields);

  // Build the schema of a device type's virtual table from its catalog.
  static Schema from_catalog(const device::DeviceCatalog& catalog);

  const std::string& table_name() const { return table_name_; }
  const std::vector<Field>& fields() const { return fields_; }
  std::size_t size() const { return fields_.size(); }

  // Index of a field by name, or nullopt. O(1): served from a name->slot
  // hash index built once at construction.
  std::optional<std::size_t> index_of(std::string_view name) const;
  const Field* field(std::string_view name) const;

 private:
  // Transparent hashing so index_of(string_view) probes without
  // materializing a temporary std::string per lookup.
  struct NameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::string table_name_;
  std::vector<Field> fields_;
  std::unordered_map<std::string, std::size_t, NameHash, std::equal_to<>>
      index_;
};

// A row of a virtual device table. Values align with the schema's fields;
// attributes that were not acquired (projection pushdown, or acquisition
// failure on a lossy link) are NULL (monostate).
class Tuple {
 public:
  Tuple() = default;
  Tuple(const Schema* schema, device::DeviceId source);

  const Schema* schema() const { return schema_; }
  const device::DeviceId& source_device() const { return source_; }

  const device::Value& at(std::size_t i) const { return values_[i]; }
  void set(std::size_t i, device::Value v) { values_[i] = std::move(v); }

  // Value by field name. Unknown names (and schema-less tuples) return
  // null_sentinel() — a distinct, immutable NULL whose address never
  // matches a stored value, so callers can tell "no such column" apart
  // from a column whose acquired value is NULL:
  //   &t.get("nope") == &Tuple::null_sentinel()   // missing column
  // The sentinel is never written through, so concurrent readers on
  // different threads cannot observe each other through it.
  const device::Value& get(std::string_view name) const;
  void set_by_name(std::string_view name, device::Value v);

  // The shared immutable NULL returned by get() for unknown names.
  static const device::Value& null_sentinel();

  // Degradation marker: true when the tuple's sensory values were served
  // from the broker's last-known-good cache because the source device is
  // quarantined (not a fresh acquisition). The marker flows with the row
  // through the executor into server deliveries.
  bool degraded() const { return degraded_; }
  void set_degraded(bool degraded) { degraded_ = degraded; }

  std::string to_string() const;

 private:
  const Schema* schema_ = nullptr;
  device::DeviceId source_;
  std::vector<device::Value> values_;
  bool degraded_ = false;
};

}  // namespace aorta::comm
