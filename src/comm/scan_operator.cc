#include "comm/scan_operator.h"

#include <memory>

#include "util/logging.h"

namespace aorta::comm {

using aorta::util::Result;
using device::Value;

ScanOperator::ScanOperator(device::DeviceRegistry* registry, CommLayer* comm,
                           device::DeviceTypeId type_id,
                           std::set<std::string> needed)
    : registry_(registry),
      comm_(comm),
      type_id_(std::move(type_id)),
      needed_(std::move(needed)),
      stats_(std::make_shared<ScanStats>()) {
  const device::DeviceTypeInfo* info = registry_->type_info(type_id_);
  if (info != nullptr) {
    schema_ = std::make_shared<Schema>(Schema::from_catalog(info->catalog));
  } else {
    schema_ = std::make_shared<Schema>();
  }
}

// Bookkeeping for one multi-device scan. The job holds shared ownership of
// the schema and stats so that an in-flight scan stays valid even if the
// ScanOperator is destroyed mid-flight (e.g. its query was dropped) —
// completion callbacks never touch the operator itself.
struct ScanOperator::ScanJob {
  std::vector<Tuple> tuples;        // slot per device, in scan order
  std::vector<int> outstanding;     // in-flight reads per device
  std::vector<int> successes;       // successful sensory reads per device
  std::vector<int> attempts;        // sensory reads attempted per device
  std::size_t devices_pending = 0;  // devices not yet finalized
  std::function<void(std::vector<Tuple>)> done;
  std::shared_ptr<ScanStats> stats;
  std::shared_ptr<Schema> schema;

  void finalize_device_if_done(std::size_t dev_index) {
    if (outstanding[dev_index] > 0) return;
    --devices_pending;
    // A device with sensory reads attempted but none answered is treated
    // as unreachable: it contributes no row.
    if (attempts[dev_index] > 0 && successes[dev_index] == 0) {
      ++stats->devices_skipped;
      tuples[dev_index] = Tuple{};  // cleared; filtered out below
    }
    if (devices_pending == 0) {
      std::vector<Tuple> out;
      out.reserve(tuples.size());
      for (Tuple& t : tuples) {
        if (t.schema() != nullptr) {
          ++stats->tuples_produced;
          out.push_back(std::move(t));
        }
      }
      done(std::move(out));
    }
  }
};

void ScanOperator::scan(std::function<void(std::vector<Tuple>)> done) {
  ++stats_->scans;
  std::vector<device::Device*> devices = registry_->devices_of_type(type_id_);
  if (devices.empty()) {
    done({});
    return;
  }

  auto job = std::make_shared<ScanJob>();
  job->done = std::move(done);
  job->stats = stats_;
  job->schema = schema_;
  job->tuples.resize(devices.size());
  job->outstanding.assign(devices.size(), 0);
  job->successes.assign(devices.size(), 0);
  job->attempts.assign(devices.size(), 0);
  job->devices_pending = devices.size();

  CommModule* module = comm_->module_for(type_id_);

  for (std::size_t d = 0; d < devices.size(); ++d) {
    const device::DeviceId id = devices[d]->id();
    Tuple tuple(job->schema.get(), id);

    // Non-sensory fields come straight from the registry cache.
    if (const auto* cached = registry_->static_attrs(id)) {
      for (const Field& f : job->schema->fields()) {
        if (f.sensory || !needs(f.name)) continue;
        auto it = cached->find(f.name);
        if (it != cached->end()) tuple.set_by_name(f.name, it->second);
      }
    }
    job->tuples[d] = std::move(tuple);

    // Sensory fields need live acquisition.
    for (const Field& f : job->schema->fields()) {
      if (!f.sensory || !needs(f.name) || module == nullptr) continue;
      ++job->outstanding[d];
      ++job->attempts[d];
      ++stats_->sensory_reads;
      module->read_attr(id, f.name,
                        [job, d, name = f.name](Result<Value> value) {
                          if (value.is_ok()) {
                            job->tuples[d].set_by_name(name, std::move(value).value());
                            ++job->successes[d];
                          } else {
                            ++job->stats->sensory_read_failures;
                          }
                          --job->outstanding[d];
                          job->finalize_device_if_done(d);
                        });
    }

    job->finalize_device_if_done(d);  // covers the zero-sensory-reads case
  }
}

void ScanOperator::scan_device(const device::DeviceId& id,
                               std::function<void(Result<Tuple>)> done) {
  device::Device* dev = registry_->find(id);
  if (dev == nullptr || dev->type_id() != type_id_) {
    done(Result<Tuple>(
        aorta::util::not_found_error("no such " + type_id_ + " device: " + id)));
    return;
  }

  // Single-device scans reuse the job machinery so the same lifetime
  // guarantees apply.
  struct OneJob {
    Tuple tuple;
    int outstanding = 0;
    int successes = 0;
    int attempts = 0;
    std::function<void(Result<Tuple>)> done;
    std::shared_ptr<ScanStats> stats;
    std::shared_ptr<Schema> schema;

    void finish_if_done() {
      if (outstanding > 0) return;
      if (attempts > 0 && successes == 0) {
        ++stats->devices_skipped;
        done(Result<Tuple>(aorta::util::unavailable_error(
            "device unreachable: " + tuple.source_device())));
        return;
      }
      ++stats->tuples_produced;
      done(Result<Tuple>(tuple));
    }
  };

  auto job = std::make_shared<OneJob>();
  job->done = std::move(done);
  job->stats = stats_;
  job->schema = schema_;
  job->tuple = Tuple(job->schema.get(), id);

  if (const auto* cached = registry_->static_attrs(id)) {
    for (const Field& f : job->schema->fields()) {
      if (f.sensory || !needs(f.name)) continue;
      auto it = cached->find(f.name);
      if (it != cached->end()) job->tuple.set_by_name(f.name, it->second);
    }
  }

  CommModule* module = comm_->module_for(type_id_);
  for (const Field& f : job->schema->fields()) {
    if (!f.sensory || !needs(f.name) || module == nullptr) continue;
    ++job->outstanding;
    ++job->attempts;
    ++stats_->sensory_reads;
    module->read_attr(id, f.name, [job, name = f.name](Result<Value> value) {
      if (value.is_ok()) {
        job->tuple.set_by_name(name, std::move(value).value());
        ++job->successes;
      } else {
        ++job->stats->sensory_read_failures;
      }
      --job->outstanding;
      job->finish_if_done();
    });
  }
  job->finish_if_done();
}

}  // namespace aorta::comm
