// The uniform data communication layer's basic communication methods.
//
// Section 3.3: "the communication layer implements a common interface that
// defines a set of basic communication methods such as connect(), close(),
// send() and receive(). These methods wrap around the heterogeneous
// networking protocols of the various types of devices ... Each type of
// devices inherits this interface in its own communication module."
//
// The engine is event-driven, so receive() is expressed as a completion
// callback carrying the reply (or a timeout status) rather than a blocking
// read. Typed modules (CameraComm, MoteComm, PhoneComm) layer
// protocol-specific verbs on top of the uniform request primitive — the
// building blocks of scan operators and action operators.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "device/health.h"
#include "device/registry.h"
#include "devices/ptz_math.h"
#include "net/rpc.h"
#include "util/status.h"

namespace aorta::comm {

// The engine's presence on the device network: one endpoint that owns the
// RPC client all comm modules share, and a hook for unsolicited messages
// (device-initiated pushes).
class EngineNode : public net::Endpoint {
 public:
  static constexpr const char* kNodeId = "aorta-engine";

  // `node_id` names the engine's presence on the network. The default is
  // the historic single-engine id; the sharded plane gives each worker
  // engine its own ("shard-0", "shard-1", ...) so N engines can share one
  // simulated network.
  explicit EngineNode(net::Network* network, net::NodeId node_id = kNodeId);
  ~EngineNode() override;

  net::RpcClient& rpc() { return rpc_; }
  const net::NodeId& node_id() const { return node_id_; }

  using PushHandler = std::function<void(const net::Message&)>;
  void set_push_handler(PushHandler handler) { push_handler_ = std::move(handler); }

  void on_message(const net::Message& msg) override;

 private:
  net::Network* network_;
  net::NodeId node_id_;
  net::RpcClient rpc_;
  PushHandler push_handler_;
};

// Completion callback for request/receive round trips.
using ReplyCallback = std::function<void(aorta::util::Result<net::Message>)>;

// Uniform interface over a device type's networking protocol.
class CommModule {
 public:
  CommModule(device::DeviceRegistry* registry, EngineNode* engine,
             device::DeviceTypeId type_id);
  virtual ~CommModule() = default;

  const device::DeviceTypeId& type_id() const { return type_id_; }

  // connect(): verify the device is reachable and mark a logical session
  // open. Implemented as a probe round-trip bounded by the per-type
  // TIMEOUT from the registry's type info.
  virtual void connect(const device::DeviceId& id,
                       std::function<void(aorta::util::Status)> done);

  // close(): tear down the logical session. No network traffic needed for
  // our protocols, but modules may override (e.g. HTTP keep-alive close).
  virtual void close(const device::DeviceId& id);

  bool is_connected(const device::DeviceId& id) const {
    return connected_.count(id) > 0;
  }

  // send()+receive(): one request/reply exchange with the device, bounded
  // by `timeout` (or the type's default when zero).
  void request(const device::DeviceId& id, std::string kind,
               std::map<std::string, std::string> fields,
               aorta::util::Duration timeout, ReplyCallback done,
               std::size_t payload_bytes = 64);

  // Acquire one sensory attribute (the scan operators' building block).
  void read_attr(const device::DeviceId& id, const std::string& attr,
                 std::function<void(aorta::util::Result<device::Value>)> done);

  // The per-type TIMEOUT value (Section 4).
  aorta::util::Duration default_timeout() const;

  // Health supervision tap (nullable = off): probe and read outcomes are
  // reported from this choke point so every caller — prober, broker,
  // supervisor back-probes — feeds the same state machine for free.
  void set_health(device::HealthView* health) { health_ = health; }

 protected:
  device::DeviceRegistry* registry() { return registry_; }
  const device::DeviceRegistry* registry() const { return registry_; }

 private:
  device::DeviceRegistry* registry_;
  EngineNode* engine_;
  device::DeviceTypeId type_id_;
  std::set<device::DeviceId> connected_;
  device::HealthView* health_ = nullptr;
};

// ---------------------------------------------------------------- camera

// Result of a photo() exchange, decoded from the camera protocol.
struct PhotoOutcome {
  bool ok = false;
  bool blurred = false;
  bool wrong_position = false;
  double pan_deg = 0.0;
  double tilt_deg = 0.0;
  std::size_t bytes = 0;

  // A photo "succeeded" in the application sense only if it is sharp and
  // aimed right (Section 6.2 counts blurred/mis-aimed photos as failures).
  bool usable() const { return ok && !blurred && !wrong_position; }
};

class CameraComm : public CommModule {
 public:
  CameraComm(device::DeviceRegistry* registry, EngineNode* engine)
      : CommModule(registry, engine, "camera") {}

  // Drive the camera through a full photo: aim the head at `position` and
  // expose a photo of `size`, delivering the decoded outcome.
  void photo(const device::DeviceId& id, const devices::PtzPosition& position,
             const std::string& size,
             std::function<void(aorta::util::Result<PhotoOutcome>)> done);
};

// ------------------------------------------------------------------ mote

class MoteComm : public CommModule {
 public:
  MoteComm(device::DeviceRegistry* registry, EngineNode* engine)
      : CommModule(registry, engine, "sensor") {}

  void beep(const device::DeviceId& id,
            std::function<void(aorta::util::Status)> done);
  void blink(const device::DeviceId& id,
             std::function<void(aorta::util::Status)> done);
};

// ----------------------------------------------------------------- phone

class PhoneComm : public CommModule {
 public:
  PhoneComm(device::DeviceRegistry* registry, EngineNode* engine)
      : CommModule(registry, engine, "phone") {}

  void send_sms(const device::DeviceId& id, const std::string& text,
                std::function<void(aorta::util::Status)> done);
  // `bytes` is the attachment size; transfer time scales with it over the
  // cellular link.
  void send_mms(const device::DeviceId& id, const std::string& body,
                std::size_t bytes, std::function<void(aorta::util::Status)> done);
};

// Registry of comm modules by device type — how the engine finds the right
// protocol adapter for a device (the extensibility point Section 3.3
// closes with).
class CommLayer {
 public:
  // `node_id` names the engine endpoint this layer attaches (default: the
  // historic single-engine id; workers pass "shard-<i>").
  CommLayer(device::DeviceRegistry* registry, net::Network* network,
            net::NodeId node_id = EngineNode::kNodeId);

  EngineNode& engine() { return engine_; }
  CommModule* module_for(const device::DeviceTypeId& type_id);
  CameraComm& camera() { return camera_; }
  MoteComm& mote() { return mote_; }
  PhoneComm& phone() { return phone_; }

  // Install a module for a new device type (future extension path).
  void register_module(std::unique_ptr<CommModule> module);

  // Wire health supervision into every module (current and future).
  void set_health(device::HealthView* health);

 private:
  device::HealthView* health_ = nullptr;
  EngineNode engine_;
  CameraComm camera_;
  MoteComm mote_;
  PhoneComm phone_;
  std::map<device::DeviceTypeId, std::unique_ptr<CommModule>> extra_;
};

}  // namespace aorta::comm
