// ScanBroker: the shared data-acquisition plane of the communication layer.
//
// The per-query ScanOperator of Section 3.2 gives every continuous query
// its own private acquisition path, so N co-located queries over the same
// device table pay N full sensory sweeps per epoch — O(N x D) read_attr
// round trips where the radio only needs O(D). The broker refactors
// acquisition into a subscription model:
//
//   * AQs (and ad-hoc SELECT scans) register a *subscription* carrying the
//     device type, the set of attributes they actually need (projection
//     pushdown, empty = all) and an epoch period in engine ticks.
//   * Each engine tick the broker finds the due subscriptions per type,
//     takes the union of their needed attributes, and performs ONE batched
//     scan per type — the effective cadence per type is the GCD of the
//     subscriber periods (subscriptions registered at the same tick with
//     the same period share every scan).
//   * Concurrent in-flight (device, attr) reads are deduplicated: a read
//     issued by an earlier batch (or a one-shot SELECT) that is still in
//     flight is joined, not re-issued.
//   * Successful reads are cached; a batch within the configurable
//     freshness window is served from cache without touching the radio.
//   * The resulting tuple batch is fanned out to every due subscriber,
//     each seeing only its own projected attributes, with the per-query
//     unreachable-device semantics of the private operator preserved: a
//     device whose *needed* sensory reads all failed contributes no row
//     to that subscriber.
//
// Subscription ids are never recycled, so an unsubscribe (drop AQ) while
// a batch is in flight simply drops that subscriber from the fan-out —
// the broker-level analogue of the executor's generation counters.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "comm/comm_module.h"
#include "comm/tuple.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/event_loop.h"
#include "util/stats.h"

namespace aorta::comm {

// Per-device-type acquisition counters.
struct BrokerTypeStats {
  std::uint64_t batches = 0;          // batched scans performed
  std::uint64_t rpcs_issued = 0;      // sensory read_attr RPCs sent
  std::uint64_t rpcs_coalesced = 0;   // joined an in-flight (device, attr) read
  std::uint64_t cache_hits = 0;       // served within the freshness window
  std::uint64_t read_failures = 0;    // read_attr RPCs that failed / timed out
  std::uint64_t tuples_delivered = 0; // projected tuples handed to subscribers
  std::uint64_t deliveries = 0;       // subscriber/one-shot callbacks fired
  std::uint64_t devices_skipped = 0;  // per-subscriber unreachable devices
  std::uint64_t quarantined_skips = 0; // device-batches skipped by quarantine
  std::uint64_t degraded_reads = 0;   // attrs served last-known-good
  std::uint64_t degraded_tuples = 0;  // delivered tuples carrying the marker
};

class ScanBroker {
 public:
  using SubscriptionId = std::uint64_t;
  // Periodic fan-out callback. `issue_tick` is the broker tick that issued
  // the batch (tick_count() at issue): consumers that multiplex several
  // logical queries over one subscription (the executor's delivery groups)
  // use it to exclude members that joined after the batch left — the
  // analogue of never-recycled subscription ids for intra-subscription
  // membership.
  using BatchCallback =
      std::function<void(const std::vector<Tuple>&, std::uint64_t issue_tick)>;

  struct Options {
    // Sensory values younger than this are served from cache without a new
    // RPC. Zero disables caching (in-flight dedup still applies).
    aorta::util::Duration freshness = aorta::util::Duration::zero();
    // false = ablation baseline: every subscription performs its own
    // private scan per due tick (no union, no dedup, no cache) — the
    // pre-broker O(N x D) behaviour, used by bench_shared_scan.
    bool coalesce = true;
    // Degraded-mode bound: a quarantined device's sensory attrs are served
    // from the last-known-good cache if the cached value is at most this
    // old, and the tuple is tagged degraded. Zero = no degraded serving
    // (quarantined devices simply contribute no rows).
    aorta::util::Duration degraded_staleness = aorta::util::Duration::zero();
  };

  ScanBroker(device::DeviceRegistry* registry, CommLayer* comm,
             aorta::util::EventLoop* loop);
  ScanBroker(device::DeviceRegistry* registry, CommLayer* comm,
             aorta::util::EventLoop* loop, Options options);
  ~ScanBroker();

  ScanBroker(const ScanBroker&) = delete;
  ScanBroker& operator=(const ScanBroker&) = delete;

  // Register a periodic subscription. `on_batch` fires once per due tick
  // with the subscriber's projected tuples. The phase is fixed at
  // registration (tick_count % period), matching the executor's historic
  // per-AQ phase assignment.
  SubscriptionId subscribe(const device::DeviceTypeId& type,
                           std::set<std::string> needed,
                           std::uint64_t period_ticks, BatchCallback on_batch);

  // Remove a subscription. In-flight batches stop delivering to it.
  void unsubscribe(SubscriptionId id);

  // One-shot acquisition (the SELECT path). Coalesces with any in-flight
  // reads and the freshness cache; `done` fires once with the tuples.
  void acquire_once(const device::DeviceTypeId& type,
                    std::set<std::string> needed,
                    std::function<void(std::vector<Tuple>)> done);

  // Health supervision tap (nullable = off): quarantined devices receive
  // no sweep RPCs; within Options::degraded_staleness their needed attrs
  // are served from the last-known-good cache and tagged degraded.
  void set_health(const device::HealthView* health) { health_ = health; }

  // Metrics enrollment (nullable = off): publishes the subscriber gauge,
  // the batch latency histogram, and — lazily, as device types first see
  // traffic — every per-type counter under "<prefix>types.<type>.*". The
  // default prefix preserves the historic unsharded layout
  // ("scan_broker.*"); the sharded plane enrolls each worker's broker
  // under an indexed prefix ("shard.<i>.scan_broker.") so N brokers don't
  // collide on one registry.
  void set_metrics(obs::MetricsRegistry* metrics,
                   std::string prefix = "scan_broker.");
  // Span tracing (nullable = off): each batch records a `sweep` span from
  // issue to fan-out.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // Delivery epilogue (nullable = off): fires after each batch's fan-out
  // completes — every due waiter served, same virtual time as the last
  // delivery, before the tick barrier advances. The executor's predicate-
  // index path processes its staged per-group batches here so side effects
  // (hooks, actions, traces) run in one deterministic registration-order
  // pass per batch, exactly where the exhaustive per-AQ callbacks ran.
  void set_delivery_epilogue(std::function<void()> epilogue) {
    delivery_epilogue_ = std::move(epilogue);
  }

  // Batches issued to `id` whose fan-out has not completed yet. A consumer
  // attaching state to an existing subscription uses this to discount
  // deliveries already in flight (they predate the attachment).
  std::uint64_t pending_batches(SubscriptionId id) const;

  // Advance the broker clock one engine epoch and issue one batched scan
  // per device type with due subscribers. `all_delivered` fires once every
  // due subscriber received its batch (synchronously when none are due) —
  // the executor flushes its action operators behind it.
  void tick(std::function<void()> all_delivered);

  // ---- observability -------------------------------------------------------
  std::uint64_t tick_count() const { return tick_count_; }
  std::size_t subscriber_count() const { return subs_.size(); }
  std::size_t subscriber_count(const device::DeviceTypeId& type) const;
  // GCD of the subscriber periods for a type: the effective scan cadence.
  std::uint64_t effective_period_ticks(const device::DeviceTypeId& type) const;
  const std::map<device::DeviceTypeId, BrokerTypeStats>& stats() const {
    return stats_;
  }
  // Sum of every per-type counter (convenience for service-level stats).
  BrokerTypeStats totals() const;
  // Tick-to-fanout latency of completed batches, in simulated ms (exact
  // samples; the bucketed export lives on batch_latency_hist()).
  const aorta::util::Summary& batch_latency_ms() const {
    return batch_latency_ms_.summary();
  }
  const obs::LatencyHistogram& batch_latency_hist() const {
    return batch_latency_ms_;
  }

 private:
  struct Subscription {
    device::DeviceTypeId type;
    std::set<std::string> needed;  // empty = all attributes
    std::uint64_t period = 1;
    std::uint64_t phase = 0;
    BatchCallback on_batch;
    std::uint64_t pending = 0;  // issued batches not yet fanned out
  };

  // One consumer of a batch: a periodic subscription (validated against
  // subs_ at fan-out) or a one-shot waiter.
  struct Waiter {
    SubscriptionId sub = 0;  // 0 = one-shot
    std::set<std::string> needed;
    std::function<void(std::vector<Tuple>)> once;
  };

  struct Batch;
  struct TypeState;

  TypeState& type_state(const device::DeviceTypeId& type);

  // Per-type counters, created (and enrolled on the registry) on first use.
  BrokerTypeStats& type_stats(const device::DeviceTypeId& type);
  void enroll_type_stats(const device::DeviceTypeId& type,
                         BrokerTypeStats& stats);

  // Issue one batched acquisition over all devices of `type` for the union
  // of the waiters' needed attributes. `coalesce` selects shared-plane
  // (cache + in-flight dedup) vs private acquisition.
  void run_batch(const device::DeviceTypeId& type, std::vector<Waiter> waiters,
                 bool coalesce, std::shared_ptr<std::size_t> barrier,
                 std::function<void()> barrier_done);

  void finalize_batch(const std::shared_ptr<Batch>& batch);

  device::DeviceRegistry* registry_;
  CommLayer* comm_;
  aorta::util::EventLoop* loop_;
  Options options_;
  const device::HealthView* health_ = nullptr;
  // Prefix-scoped registry view; dead (no-op) until set_metrics. Stored as
  // a scope because per-type counters enroll lazily on first traffic — the
  // prefix must outlive the set_metrics call.
  obs::MetricsRegistry::Scoped metrics_;
  obs::Tracer* tracer_ = nullptr;
  std::function<void()> delivery_epilogue_;

  std::map<device::DeviceTypeId, std::unique_ptr<TypeState>> types_;
  std::map<SubscriptionId, Subscription> subs_;
  std::map<device::DeviceTypeId, BrokerTypeStats> stats_;
  obs::LatencyHistogram batch_latency_ms_;
  SubscriptionId next_sub_id_ = 1;
  std::uint64_t tick_count_ = 0;
  // Shared with completion callbacks queued on the loop: a destroyed
  // broker turns them into no-ops instead of dangling-`this` calls.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace aorta::comm
