#include "comm/tuple.h"

#include "util/strings.h"

namespace aorta::comm {

Schema::Schema(std::string table_name, std::vector<Field> fields)
    : table_name_(std::move(table_name)), fields_(std::move(fields)) {
  index_.reserve(fields_.size());
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    // First declaration wins on duplicate names, matching the old linear
    // scan's behaviour.
    index_.emplace(fields_[i].name, i);
  }
}

Schema Schema::from_catalog(const device::DeviceCatalog& catalog) {
  std::vector<Field> fields;
  fields.reserve(catalog.attrs().size());
  for (const auto& a : catalog.attrs()) {
    fields.push_back(Field{a.name, a.type, a.sensory});
  }
  return Schema(catalog.type_id(), std::move(fields));
}

std::optional<std::size_t> Schema::index_of(std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const Field* Schema::field(std::string_view name) const {
  auto i = index_of(name);
  return i.has_value() ? &fields_[*i] : nullptr;
}

Tuple::Tuple(const Schema* schema, device::DeviceId source)
    : schema_(schema), source_(std::move(source)),
      values_(schema == nullptr ? 0 : schema->size()) {}

const device::Value& Tuple::null_sentinel() {
  static const device::Value kSentinel{};
  return kSentinel;
}

const device::Value& Tuple::get(std::string_view name) const {
  if (schema_ == nullptr) return null_sentinel();
  auto i = schema_->index_of(name);
  return i.has_value() ? values_[*i] : null_sentinel();
}

void Tuple::set_by_name(std::string_view name, device::Value v) {
  if (schema_ == nullptr) return;
  auto i = schema_->index_of(name);
  if (i.has_value()) values_[*i] = std::move(v);
}

std::string Tuple::to_string() const {
  if (schema_ == nullptr) return "{}";
  std::string out = "{";
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema_->fields()[i].name + "=" + device::value_to_string(values_[i]);
  }
  out += "}";
  return out;
}

}  // namespace aorta::comm
