#include "comm/comm_module.h"

#include "devices/camera.h"
#include "util/logging.h"
#include "util/strings.h"

namespace aorta::comm {

using aorta::util::Duration;
using aorta::util::Result;
using aorta::util::Status;
using device::Value;

// -------------------------------------------------------------- EngineNode

EngineNode::EngineNode(net::Network* network, net::NodeId node_id)
    : network_(network), node_id_(std::move(node_id)),
      rpc_(network, node_id_) {
  // The engine host sits on the wired LAN.
  Status attach = network_->attach(node_id_, this, net::LinkModel::lan());
  if (!attach.is_ok()) {
    AORTA_LOG(kError, "comm") << "engine attach failed: " << attach.to_string();
  }
}

EngineNode::~EngineNode() { (void)network_->detach(node_id_); }

void EngineNode::on_message(const net::Message& msg) {
  if (rpc_.on_reply(msg)) return;
  if (push_handler_) push_handler_(msg);
}

// -------------------------------------------------------------- CommModule

CommModule::CommModule(device::DeviceRegistry* registry, EngineNode* engine,
                       device::DeviceTypeId type_id)
    : registry_(registry), engine_(engine), type_id_(std::move(type_id)) {}

Duration CommModule::default_timeout() const {
  const device::DeviceTypeInfo* info = registry_->type_info(type_id_);
  return info == nullptr ? Duration::millis(2000) : info->probe_timeout;
}

void CommModule::connect(const device::DeviceId& id,
                         std::function<void(Status)> done) {
  request(id, "probe", {}, default_timeout(),
          [this, id, done = std::move(done)](Result<net::Message> reply) {
            if (!reply.is_ok()) {
              connected_.erase(id);
              done(reply.status());
              return;
            }
            connected_.insert(id);
            done(Status::ok());
          });
}

void CommModule::close(const device::DeviceId& id) { connected_.erase(id); }

void CommModule::request(const device::DeviceId& id, std::string kind,
                         std::map<std::string, std::string> fields,
                         Duration timeout, ReplyCallback done,
                         std::size_t payload_bytes) {
  if (timeout == Duration::zero()) timeout = default_timeout();
  if (health_ != nullptr && kind == "probe") {
    // Probe outcomes feed health supervision before the caller sees them,
    // so a quarantined device's recovery is visible to whoever probed it.
    done = [health = health_, id, inner = std::move(done)](
               Result<net::Message> reply) {
      health->report(id, device::HealthOutcomeKind::kProbe, reply.is_ok());
      inner(std::move(reply));
    };
  }
  engine_->rpc().call(id, std::move(kind), std::move(fields), timeout,
                      std::move(done), payload_bytes);
}

void CommModule::read_attr(const device::DeviceId& id, const std::string& attr,
                           std::function<void(Result<Value>)> done) {
  if (health_ != nullptr) {
    // Report at the decoded-Result level so application-level failures
    // (glitched reads) count against the device, not just timeouts.
    done = [health = health_, id, inner = std::move(done)](Result<Value> v) {
      health->report(id, device::HealthOutcomeKind::kRead, v.is_ok());
      inner(std::move(v));
    };
  }
  request(id, "read_attr", {{"attr", attr}}, default_timeout(),
          [attr, id, done = std::move(done)](Result<net::Message> reply) {
            if (!reply.is_ok()) {
              done(Result<Value>(reply.status()));
              return;
            }
            const net::Message& msg = reply.value();
            if (msg.field("ok") != "1") {
              done(Result<Value>(aorta::util::action_failed_error(
                  "read_attr(" + attr + ") on " + id + ": " + msg.field("error"))));
              return;
            }
            // Prefer the typed duplicates; fall back to text decoding.
            if (msg.fields.count("value_double") > 0) {
              done(Result<Value>(Value{msg.field_double("value_double")}));
            } else if (msg.fields.count("value_int") > 0) {
              done(Result<Value>(Value{msg.field_int("value_int")}));
            } else {
              std::string text = msg.field("value");
              if (!text.empty() && text.front() == '\'' && text.back() == '\'') {
                done(Result<Value>(Value{text.substr(1, text.size() - 2)}));
              } else {
                done(Result<Value>(Value{text}));
              }
            }
          });
}

// -------------------------------------------------------------- CameraComm

void CameraComm::photo(const device::DeviceId& id,
                       const devices::PtzPosition& position,
                       const std::string& size,
                       std::function<void(Result<PhotoOutcome>)> done) {
  std::map<std::string, std::string> fields;
  net::Message encode;  // reuse the typed setters for consistent formatting
  encode.set_double("pan", position.pan_deg)
      .set_double("tilt", position.tilt_deg)
      .set_double("zoom", position.zoom)
      .set("size", size);
  fields = encode.fields;

  // Allow the worst-case head sweep plus capture and transfer before
  // declaring the camera dead.
  Duration timeout = Duration::seconds(8.0);
  request(id, "photo", std::move(fields), timeout,
          [done = std::move(done)](Result<net::Message> reply) {
            if (!reply.is_ok()) {
              done(Result<PhotoOutcome>(reply.status()));
              return;
            }
            const net::Message& msg = reply.value();
            PhotoOutcome outcome;
            outcome.ok = msg.field("ok") == "1";
            outcome.blurred = msg.field("blurred") == "1";
            outcome.wrong_position = msg.field("wrong_position") == "1";
            outcome.pan_deg = msg.field_double("pan");
            outcome.tilt_deg = msg.field_double("tilt");
            outcome.bytes = msg.payload_bytes;
            done(outcome);
          });
}

// ---------------------------------------------------------------- MoteComm

namespace {
// Shared decoding for simple ok/error acks.
void ack_to_status(Result<net::Message> reply, const std::string& what,
                   const std::function<void(Status)>& done) {
  if (!reply.is_ok()) {
    done(reply.status());
    return;
  }
  if (reply.value().field("ok") != "1") {
    done(aorta::util::action_failed_error(
        what + " failed: " + reply.value().field("error", "device error")));
    return;
  }
  done(Status::ok());
}
}  // namespace

void MoteComm::beep(const device::DeviceId& id,
                    std::function<void(Status)> done) {
  request(id, "beep", {}, default_timeout(),
          [done = std::move(done)](Result<net::Message> reply) {
            ack_to_status(std::move(reply), "beep", done);
          },
          /*payload_bytes=*/36);
}

void MoteComm::blink(const device::DeviceId& id,
                     std::function<void(Status)> done) {
  request(id, "blink", {}, default_timeout(),
          [done = std::move(done)](Result<net::Message> reply) {
            ack_to_status(std::move(reply), "blink", done);
          },
          /*payload_bytes=*/36);
}

// --------------------------------------------------------------- PhoneComm

void PhoneComm::send_sms(const device::DeviceId& id, const std::string& text,
                         std::function<void(Status)> done) {
  request(id, "recv_sms", {{"body", text}}, Duration::seconds(10.0),
          [done = std::move(done)](Result<net::Message> reply) {
            ack_to_status(std::move(reply), "send_sms", done);
          },
          /*payload_bytes=*/text.size() + 40);
}

void PhoneComm::send_mms(const device::DeviceId& id, const std::string& body,
                         std::size_t bytes, std::function<void(Status)> done) {
  request(id, "recv_mms", {{"body", body}}, Duration::seconds(60.0),
          [done = std::move(done)](Result<net::Message> reply) {
            ack_to_status(std::move(reply), "send_mms", done);
          },
          bytes);
}

// --------------------------------------------------------------- CommLayer

CommLayer::CommLayer(device::DeviceRegistry* registry, net::Network* network,
                     net::NodeId node_id)
    : engine_(network, std::move(node_id)),
      camera_(registry, &engine_),
      mote_(registry, &engine_),
      phone_(registry, &engine_) {}

CommModule* CommLayer::module_for(const device::DeviceTypeId& type_id) {
  if (type_id == camera_.type_id()) return &camera_;
  if (type_id == mote_.type_id()) return &mote_;
  if (type_id == phone_.type_id()) return &phone_;
  auto it = extra_.find(type_id);
  return it == extra_.end() ? nullptr : it->second.get();
}

void CommLayer::register_module(std::unique_ptr<CommModule> module) {
  module->set_health(health_);
  extra_[module->type_id()] = std::move(module);
}

void CommLayer::set_health(device::HealthView* health) {
  health_ = health;
  camera_.set_health(health);
  mote_.set_health(health);
  phone_.set_health(health);
  for (auto& [type_id, module] : extra_) module->set_health(health);
}

}  // namespace aorta::comm
