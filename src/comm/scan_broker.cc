#include "comm/scan_broker.h"

#include <numeric>
#include <utility>

#include "util/logging.h"

namespace aorta::comm {

using aorta::util::Result;
using aorta::util::TimePoint;
using device::Value;

// ---------------------------------------------------------------- state

// A cached sensory value with its acquisition time.
struct CachedRead {
  Value value;
  TimePoint at;
};

// An in-flight (device, attr) read other batches can join.
struct InflightRead {
  std::vector<std::function<void(const Result<Value>&)>> joiners;
};

struct ScanBroker::TypeState {
  std::shared_ptr<Schema> schema;
  // Freshness cache and in-flight dedup table, both keyed (device, attr).
  std::map<std::pair<device::DeviceId, std::string>, CachedRead> cache;
  std::map<std::pair<device::DeviceId, std::string>,
           std::shared_ptr<InflightRead>>
      inflight;
};

// Shared bookkeeping for one batched acquisition. Holds shared ownership
// of the schema so tuples stay valid however long completion callbacks
// are queued; never touches the broker after the alive flag drops.
struct ScanBroker::Batch {
  device::DeviceTypeId type;
  std::shared_ptr<Schema> schema;
  std::vector<device::DeviceId> ids;
  std::vector<Tuple> tuples;  // master tuples carrying the attribute union
  // Outcome of every needed sensory read, per device: attr -> ok?
  std::vector<std::map<std::string, bool>> read_ok;
  std::size_t outstanding = 0;  // reads not yet resolved
  bool issued = false;          // all reads dispatched (finalize barrier)
  std::vector<Waiter> waiters;
  TimePoint started;
  std::uint64_t issue_tick = 0;  // tick_count_ when the batch was issued
  // Tick barrier: decremented once per batch of the issuing tick; fires
  // the executor's flush when every due subscriber has been served.
  std::shared_ptr<std::size_t> barrier;
  std::function<void()> barrier_done;
};

// ---------------------------------------------------------------- broker

ScanBroker::ScanBroker(device::DeviceRegistry* registry, CommLayer* comm,
                       aorta::util::EventLoop* loop)
    : ScanBroker(registry, comm, loop, Options()) {}

ScanBroker::ScanBroker(device::DeviceRegistry* registry, CommLayer* comm,
                       aorta::util::EventLoop* loop, Options options)
    : registry_(registry), comm_(comm), loop_(loop), options_(options) {}

ScanBroker::~ScanBroker() { *alive_ = false; }

ScanBroker::TypeState& ScanBroker::type_state(
    const device::DeviceTypeId& type) {
  auto it = types_.find(type);
  if (it == types_.end()) {
    auto state = std::make_unique<TypeState>();
    const device::DeviceTypeInfo* info = registry_->type_info(type);
    state->schema = std::make_shared<Schema>(
        info != nullptr ? Schema::from_catalog(info->catalog) : Schema());
    it = types_.emplace(type, std::move(state)).first;
  }
  return *it->second;
}

void ScanBroker::set_metrics(obs::MetricsRegistry* metrics,
                             std::string prefix) {
  metrics_ = obs::MetricsRegistry::Scoped(metrics, std::move(prefix));
  if (!metrics_.live()) return;
  metrics_.enroll_gauge("subscribers", [this]() {
    return static_cast<std::int64_t>(subs_.size());
  });
  metrics_.enroll_histogram("batch_latency_ms", &batch_latency_ms_);
  for (auto& [type, stats] : stats_) enroll_type_stats(type, stats);
}

BrokerTypeStats& ScanBroker::type_stats(
    const device::DeviceTypeId& type) {
  auto it = stats_.find(type);
  if (it == stats_.end()) {
    it = stats_.emplace(type, BrokerTypeStats{}).first;
    if (metrics_.live()) enroll_type_stats(type, it->second);
  }
  return it->second;
}

void ScanBroker::enroll_type_stats(const device::DeviceTypeId& type,
                                   BrokerTypeStats& stats) {
  std::string prefix =
      "types." + obs::MetricsRegistry::sanitize_component(type) + ".";
  metrics_.enroll_counter(prefix + "batches", &stats.batches);
  metrics_.enroll_counter(prefix + "rpcs_issued", &stats.rpcs_issued);
  metrics_.enroll_counter(prefix + "rpcs_coalesced", &stats.rpcs_coalesced);
  metrics_.enroll_counter(prefix + "cache_hits", &stats.cache_hits);
  metrics_.enroll_counter(prefix + "read_failures", &stats.read_failures);
  metrics_.enroll_counter(prefix + "tuples_delivered",
                          &stats.tuples_delivered);
  metrics_.enroll_counter(prefix + "deliveries", &stats.deliveries);
  metrics_.enroll_counter(prefix + "devices_skipped", &stats.devices_skipped);
  metrics_.enroll_counter(prefix + "quarantined_skips",
                          &stats.quarantined_skips);
  metrics_.enroll_counter(prefix + "degraded_reads", &stats.degraded_reads);
  metrics_.enroll_counter(prefix + "degraded_tuples", &stats.degraded_tuples);
  metrics_.enroll_gauge(prefix + "subscribers", [this, type]() {
    return static_cast<std::int64_t>(subscriber_count(type));
  });
}

ScanBroker::SubscriptionId ScanBroker::subscribe(
    const device::DeviceTypeId& type, std::set<std::string> needed,
    std::uint64_t period_ticks, BatchCallback on_batch) {
  SubscriptionId id = next_sub_id_++;
  Subscription sub;
  sub.type = type;
  sub.needed = std::move(needed);
  sub.period = std::max<std::uint64_t>(1, period_ticks);
  sub.phase = tick_count_ % sub.period;
  sub.on_batch = std::move(on_batch);
  subs_.emplace(id, std::move(sub));
  return id;
}

void ScanBroker::unsubscribe(SubscriptionId id) { subs_.erase(id); }

std::uint64_t ScanBroker::pending_batches(SubscriptionId id) const {
  auto it = subs_.find(id);
  return it == subs_.end() ? 0 : it->second.pending;
}

std::size_t ScanBroker::subscriber_count(
    const device::DeviceTypeId& type) const {
  std::size_t n = 0;
  for (const auto& [id, sub] : subs_) {
    if (sub.type == type) ++n;
  }
  return n;
}

std::uint64_t ScanBroker::effective_period_ticks(
    const device::DeviceTypeId& type) const {
  std::uint64_t g = 0;
  for (const auto& [id, sub] : subs_) {
    if (sub.type == type) g = std::gcd(g, sub.period);
  }
  return g;
}

BrokerTypeStats ScanBroker::totals() const {
  BrokerTypeStats t;
  for (const auto& [type, s] : stats_) {
    t.batches += s.batches;
    t.rpcs_issued += s.rpcs_issued;
    t.rpcs_coalesced += s.rpcs_coalesced;
    t.cache_hits += s.cache_hits;
    t.read_failures += s.read_failures;
    t.tuples_delivered += s.tuples_delivered;
    t.deliveries += s.deliveries;
    t.devices_skipped += s.devices_skipped;
    t.quarantined_skips += s.quarantined_skips;
    t.degraded_reads += s.degraded_reads;
    t.degraded_tuples += s.degraded_tuples;
  }
  return t;
}

void ScanBroker::acquire_once(const device::DeviceTypeId& type,
                              std::set<std::string> needed,
                              std::function<void(std::vector<Tuple>)> done) {
  Waiter w;
  w.needed = std::move(needed);
  w.once = std::move(done);
  run_batch(type, {std::move(w)}, options_.coalesce, nullptr, {});
}

void ScanBroker::tick(std::function<void()> all_delivered) {
  ++tick_count_;

  // Group the due subscriptions by device type. Map iteration orders both
  // groupings by key, so the batch/RPC sequence is deterministic.
  std::map<device::DeviceTypeId, std::vector<Waiter>> due;
  for (auto& [id, sub] : subs_) {
    if ((tick_count_ - 1) % sub.period != sub.phase) continue;
    ++sub.pending;
    Waiter w;
    w.sub = id;
    w.needed = sub.needed;
    due[sub.type].push_back(std::move(w));
  }

  // Count batches this tick so all_delivered fires exactly once, after the
  // last fan-out (+1 sentinel covers the no-due-subscribers case).
  std::size_t batches = 0;
  if (options_.coalesce) {
    batches = due.size();
  } else {
    for (const auto& [type, waiters] : due) batches += waiters.size();
  }
  auto barrier = std::make_shared<std::size_t>(batches + 1);
  auto barrier_done = [all_delivered = std::move(all_delivered)]() {
    if (all_delivered) all_delivered();
  };

  for (auto& [type, waiters] : due) {
    if (options_.coalesce) {
      // One shared scan per type with the union of due needs.
      run_batch(type, std::move(waiters), /*coalesce=*/true, barrier,
                barrier_done);
    } else {
      // Ablation baseline: one private scan per due subscription.
      for (Waiter& w : waiters) {
        run_batch(type, {std::move(w)}, /*coalesce=*/false, barrier,
                  barrier_done);
      }
    }
  }
  if (--*barrier == 0) barrier_done();  // release the sentinel
}

void ScanBroker::run_batch(const device::DeviceTypeId& type,
                           std::vector<Waiter> waiters, bool coalesce,
                           std::shared_ptr<std::size_t> barrier,
                           std::function<void()> barrier_done) {
  TypeState& state = type_state(type);
  BrokerTypeStats& stats = type_stats(type);
  ++stats.batches;

  auto batch = std::make_shared<Batch>();
  batch->type = type;
  batch->schema = state.schema;
  batch->waiters = std::move(waiters);
  batch->started = loop_->now();
  batch->issue_tick = tick_count_;
  batch->barrier = std::move(barrier);
  batch->barrier_done = std::move(barrier_done);

  std::vector<device::Device*> devices = registry_->devices_of_type(type);
  batch->ids.reserve(devices.size());
  for (device::Device* d : devices) batch->ids.push_back(d->id());
  batch->tuples.resize(batch->ids.size());
  batch->read_ok.resize(batch->ids.size());

  // Union of the waiters' needed attributes (any empty set = all).
  std::set<std::string> needed;
  bool all = false;
  for (const Waiter& w : batch->waiters) {
    if (w.needed.empty()) all = true;
    needed.insert(w.needed.begin(), w.needed.end());
  }
  auto needs = [&](const std::string& attr) {
    return all || needed.count(attr) > 0;
  };

  CommModule* module = comm_->module_for(type);
  TimePoint now = loop_->now();

  for (std::size_t d = 0; d < batch->ids.size(); ++d) {
    const device::DeviceId& id = batch->ids[d];
    Tuple tuple(batch->schema.get(), id);

    // Non-sensory fields come straight from the registry cache.
    if (const auto* cached = registry_->static_attrs(id)) {
      for (const Field& f : batch->schema->fields()) {
        if (f.sensory || !needs(f.name)) continue;
        auto it = cached->find(f.name);
        if (it != cached->end()) tuple.set_by_name(f.name, it->second);
      }
    }
    batch->tuples[d] = std::move(tuple);

    // Quarantined devices get no sweep traffic at all: their needed
    // sensory attrs are served last-known-good within the staleness bound
    // (and the tuple tagged degraded), or recorded as failed reads so the
    // per-subscriber unreachable rule applies — without an RPC either way.
    if (health_ != nullptr && health_->is_quarantined(id)) {
      ++stats.quarantined_skips;
      batch->tuples[d].set_degraded(true);
      for (const Field& f : batch->schema->fields()) {
        if (!f.sensory || !needs(f.name)) continue;
        auto key = std::make_pair(id, f.name);
        auto hit = state.cache.find(key);
        if (options_.degraded_staleness > aorta::util::Duration::zero() &&
            hit != state.cache.end() &&
            now - hit->second.at <= options_.degraded_staleness) {
          batch->tuples[d].set_by_name(f.name, hit->second.value);
          batch->read_ok[d][f.name] = true;
          ++stats.degraded_reads;
        } else {
          batch->read_ok[d][f.name] = false;
        }
      }
      continue;
    }

    // Needed sensory fields: freshness cache, then in-flight dedup, then
    // a live read_attr round trip.
    for (const Field& f : batch->schema->fields()) {
      if (!f.sensory || !needs(f.name) || module == nullptr) continue;
      auto key = std::make_pair(id, f.name);

      if (coalesce && options_.freshness > aorta::util::Duration::zero()) {
        auto hit = state.cache.find(key);
        if (hit != state.cache.end() &&
            now - hit->second.at < options_.freshness) {
          batch->tuples[d].set_by_name(f.name, hit->second.value);
          batch->read_ok[d][f.name] = true;
          ++stats.cache_hits;
          continue;
        }
      }

      ++batch->outstanding;
      auto alive = alive_;
      auto on_value = [this, alive, batch, d, name = f.name,
                       type](const Result<Value>& value) {
        if (value.is_ok()) {
          batch->tuples[d].set_by_name(name, value.value());
          batch->read_ok[d][name] = true;
        } else {
          batch->read_ok[d][name] = false;
          if (*alive) ++type_stats(type).read_failures;
        }
        --batch->outstanding;
        if (*alive) finalize_batch(batch);
      };

      if (coalesce) {
        auto flying = state.inflight.find(key);
        if (flying != state.inflight.end()) {
          flying->second->joiners.push_back(std::move(on_value));
          ++stats.rpcs_coalesced;
          continue;
        }
        auto entry = std::make_shared<InflightRead>();
        entry->joiners.push_back(std::move(on_value));
        state.inflight.emplace(key, entry);
        ++stats.rpcs_issued;
        module->read_attr(id, f.name,
                          [this, alive, entry, key, type](Result<Value> value) {
                            if (*alive) {
                              TypeState& st = type_state(type);
                              st.inflight.erase(key);
                              if (value.is_ok()) {
                                st.cache[key] =
                                    CachedRead{value.value(), loop_->now()};
                              }
                            }
                            for (auto& joiner : entry->joiners) joiner(value);
                          });
      } else {
        ++stats.rpcs_issued;
        module->read_attr(id, f.name, std::move(on_value));
      }
    }
  }

  batch->issued = true;
  finalize_batch(batch);
}

void ScanBroker::finalize_batch(const std::shared_ptr<Batch>& batch) {
  if (!batch->issued || batch->outstanding > 0) return;
  BrokerTypeStats& stats = type_stats(batch->type);
  batch_latency_ms_.add((loop_->now() - batch->started).to_millis());
  AORTA_TRACE_SPAN(tracer_, obs::SpanCat::kSweep, "sweep:" + batch->type,
                   batch->started, loop_->now(),
                   std::to_string(batch->ids.size()) + " device(s), " +
                       std::to_string(batch->waiters.size()) + " waiter(s)");

  for (Waiter& w : batch->waiters) {
    BatchCallback periodic;
    if (w.sub != 0) {
      // Validate the subscription still exists: drop-AQ between scan issue
      // and completion removes it, and ids are never recycled, so a stale
      // batch can never feed a re-registered subscriber. Copy the callback
      // so it survives the subscriber unsubscribing from inside it.
      auto it = subs_.find(w.sub);
      if (it == subs_.end()) continue;
      if (it->second.pending > 0) --it->second.pending;
      periodic = it->second.on_batch;
    }

    // Project the master tuples down to this waiter's needed attributes,
    // applying the per-subscriber unreachable-device rule.
    std::vector<Tuple> out;
    out.reserve(batch->tuples.size());
    for (std::size_t d = 0; d < batch->tuples.size(); ++d) {
      bool any_attempt = false;
      bool any_success = false;
      for (const auto& [attr, ok] : batch->read_ok[d]) {
        if (!w.needed.empty() && w.needed.count(attr) == 0) continue;
        any_attempt = true;
        if (ok) any_success = true;
      }
      if (any_attempt && !any_success) {
        ++stats.devices_skipped;
        continue;  // unreachable for this subscriber: no row
      }
      Tuple t(batch->schema.get(), batch->ids[d]);
      for (std::size_t i = 0; i < batch->schema->size(); ++i) {
        const Field& f = batch->schema->fields()[i];
        if (!w.needed.empty() && w.needed.count(f.name) == 0) continue;
        t.set(i, batch->tuples[d].at(i));
      }
      t.set_degraded(batch->tuples[d].degraded());
      if (t.degraded()) ++stats.degraded_tuples;
      out.push_back(std::move(t));
    }

    stats.tuples_delivered += out.size();
    ++stats.deliveries;
    if (periodic) {
      periodic(out, batch->issue_tick);
    } else if (w.once) {
      w.once(std::move(out));
    }
  }
  batch->waiters.clear();

  // Let staged consumers (predicate-index delivery groups) process this
  // batch's fan-out in one pass at the same virtual time, before the tick
  // barrier can fire the executor's flush.
  if (delivery_epilogue_) delivery_epilogue_();

  if (batch->barrier != nullptr && --*batch->barrier == 0) {
    batch->barrier_done();
  }
}

}  // namespace aorta::comm
