// Exhaustive optimal scheduler — the test oracle.
//
// Enumerates every assignment of requests to eligible devices; for each
// assignment, each device's optimal service order is found independently
// (device timelines do not interact), by enumerating permutations. Exact
// but exponential — usable only on tiny instances, exactly the paper's
// point about the optimal MIP being infeasible (Section 5.2 cites 1.5
// hours for n=4, m=8 on 2002 hardware).
#include <algorithm>
#include <chrono>
#include <limits>
#include <map>

#include "sched/algorithms.h"

namespace aorta::sched {

namespace {

constexpr std::uint64_t kMaxStates = 10'000'000;

// Minimal completion time of `seq_requests` on one device, over all
// service orders; fills `best_order` with the winner.
double best_device_order(const std::vector<ActionRequest>& requests,
                         const SchedDevice& device,
                         std::vector<std::size_t> assigned, CountingCost& cost,
                         std::vector<std::size_t>* best_order) {
  if (assigned.empty()) {
    best_order->clear();
    return device.ready_s;
  }
  std::sort(assigned.begin(), assigned.end());
  double best = std::numeric_limits<double>::infinity();
  do {
    DeviceStatus status = device.status;
    double t = device.ready_s;
    for (std::size_t i : assigned) {
      t += cost.cost(requests[i], status);
      cost.apply(requests[i], &status);
    }
    if (t < best) {
      best = t;
      *best_order = assigned;
    }
  } while (std::next_permutation(assigned.begin(), assigned.end()));
  return best;
}

}  // namespace

ScheduleResult ExhaustiveScheduler::schedule(
    const std::vector<ActionRequest>& requests, std::vector<SchedDevice> devices,
    const CostModel& model, aorta::util::Rng& rng) {
  (void)rng;
  auto wall_start = std::chrono::steady_clock::now();
  ScheduleResult result;
  result.algorithm = name();
  CountingCost cost(&model);

  std::map<device::DeviceId, std::size_t> device_index;
  for (std::size_t j = 0; j < devices.size(); ++j) device_index[devices[j].id] = j;

  std::vector<std::vector<std::size_t>> eligible(requests.size());
  std::vector<std::size_t> active;
  std::uint64_t state_estimate = 1;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    for (const auto& cand : requests[i].candidates) {
      auto it = device_index.find(cand);
      if (it != device_index.end()) eligible[i].push_back(it->second);
    }
    if (eligible[i].empty()) {
      result.unassigned.push_back(requests[i].id);
    } else {
      active.push_back(i);
      if (state_estimate < kMaxStates) state_estimate *= eligible[i].size();
    }
  }

  auto give_up = [&]() {
    for (std::size_t i : active) result.unassigned.push_back(requests[i].id);
    auto wall_end = std::chrono::steady_clock::now();
    result.scheduling_wall_s =
        std::chrono::duration<double>(wall_end - wall_start).count();
    result.cost_evaluations = cost.evals();
    return result;
  };
  if (state_estimate >= kMaxStates || active.size() > 9) return give_up();

  std::vector<std::size_t> assignment(active.size(), 0);  // index into eligible
  double best_makespan = std::numeric_limits<double>::infinity();
  std::vector<std::vector<std::size_t>> best_orders(devices.size());

  // Odometer enumeration of assignments.
  while (true) {
    std::vector<std::vector<std::size_t>> per_device(devices.size());
    for (std::size_t k = 0; k < active.size(); ++k) {
      per_device[eligible[active[k]][assignment[k]]].push_back(active[k]);
    }
    double makespan = 0.0;
    std::vector<std::vector<std::size_t>> orders(devices.size());
    for (std::size_t j = 0; j < devices.size(); ++j) {
      if (per_device[j].empty()) continue;
      double finish = best_device_order(requests, devices[j],
                                        per_device[j], cost, &orders[j]);
      makespan = std::max(makespan, finish);
      if (makespan >= best_makespan) break;  // prune
    }
    if (makespan < best_makespan) {
      best_makespan = makespan;
      best_orders = orders;
    }

    // Advance the odometer.
    std::size_t k = 0;
    while (k < active.size()) {
      if (++assignment[k] < eligible[active[k]].size()) break;
      assignment[k] = 0;
      ++k;
    }
    if (k == active.size()) break;
  }

  // Materialize the winning schedule.
  if (std::isfinite(best_makespan)) {
    std::vector<SchedDevice> final_devices = devices;
    result.service_makespan_s = simulate_sequences(requests, final_devices,
                                                   best_orders, cost,
                                                   &result.items);
  }

  auto wall_end = std::chrono::steady_clock::now();
  result.scheduling_wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.cost_evaluations = cost.evals();
  return result;
}

}  // namespace aorta::sched
