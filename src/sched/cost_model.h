// Cost model for action execution on candidate devices.
//
// Section 2.3: "The core component of the cost model is the action
// profile, which specifies the composition of an action in terms of the
// sequential and/or parallel execution of a number of atomic operations.
// The costs of atomic operations are obtained from empirical measurements.
// The cost of an action is then estimated based on the action profile and
// the estimated costs of the atomic operations on the type of devices."
//
// PhotoCostModel is exactly that machinery instantiated for photo(): the
// action profile par(pan, tilt, zoom) -> snap, with per-degree /
// per-factor rates from the camera's atomic_operation_cost table, and the
// unit counts derived from the device's probed head position — the
// sequence-dependent cost at the heart of the scheduling problem.
#pragma once

#include <cstdint>
#include <memory>

#include "device/profile.h"
#include "sched/request.h"

namespace aorta::sched {

class CostModel {
 public:
  virtual ~CostModel() = default;

  // Estimated cost (seconds) of servicing `request` on a device whose
  // current physical status is `status`.
  virtual double cost_s(const ActionRequest& request,
                        const DeviceStatus& status) const = 0;

  // Physical status change caused by executing `request` ("an action
  // execution may change the current physical status of the device and in
  // turn the cost of subsequent action executions", Section 2.3).
  virtual void apply(const ActionRequest& request, DeviceStatus* status) const = 0;
};

// photo() on a PTZ camera. Built from the camera type's atomic op cost
// table and the photo action profile, so the estimate agrees with the
// device simulator by construction of shared calibration data.
class PhotoCostModel : public CostModel {
 public:
  PhotoCostModel(device::AtomicOpCostTable op_costs, device::ActionProfile profile);

  // Convenience: the default calibrated model (AXIS 2130 numbers).
  static std::unique_ptr<PhotoCostModel> axis2130();

  // The photo() action profile: head axes move in parallel, then expose.
  static device::ActionProfile make_photo_profile();

  double cost_s(const ActionRequest& request,
                const DeviceStatus& status) const override;
  void apply(const ActionRequest& request, DeviceStatus* status) const override;

  const device::ActionProfile& profile() const { return profile_; }

 private:
  device::AtomicOpCostTable op_costs_;
  device::ActionProfile profile_;
};

// Fixed-cost model: every request costs its base_cost_s everywhere and
// changes no status. Baseline for tests isolating algorithm behaviour from
// sequence dependence.
class FixedCostModel : public CostModel {
 public:
  double cost_s(const ActionRequest& request, const DeviceStatus&) const override {
    return request.base_cost_s;
  }
  void apply(const ActionRequest&, DeviceStatus*) const override {}
};

// Counting wrapper the schedulers route every estimate through. The count
// is the hardware-independent measure of scheduling effort that the
// benches convert into 2005-grade scheduling time (see EXPERIMENTS.md).
class CountingCost {
 public:
  explicit CountingCost(const CostModel* model) : model_(model) {}

  double cost(const ActionRequest& request, const DeviceStatus& status) {
    ++evals_;
    return model_->cost_s(request, status);
  }
  void apply(const ActionRequest& request, DeviceStatus* status) const {
    model_->apply(request, status);
  }
  std::uint64_t evals() const { return evals_; }

 private:
  const CostModel* model_;
  std::uint64_t evals_ = 0;
};

}  // namespace aorta::sched
