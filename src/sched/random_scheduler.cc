// RANDOM baseline, CAP: uniformly random candidate per request, serviced
// in arrival order. The floor the paper compares everything against.
#include <algorithm>
#include <chrono>
#include <map>

#include "sched/algorithms.h"

namespace aorta::sched {

ScheduleResult RandomScheduler::schedule(const std::vector<ActionRequest>& requests,
                                         std::vector<SchedDevice> devices,
                                         const CostModel& model,
                                         aorta::util::Rng& rng) {
  auto wall_start = std::chrono::steady_clock::now();
  ScheduleResult result;
  result.algorithm = name();
  CountingCost cost(&model);

  std::map<device::DeviceId, std::size_t> device_index;
  for (std::size_t j = 0; j < devices.size(); ++j) device_index[devices[j].id] = j;

  for (const ActionRequest& r : requests) {
    std::vector<std::size_t> live;
    for (const auto& cand : r.candidates) {
      auto it = device_index.find(cand);
      if (it != device_index.end()) live.push_back(it->second);
    }
    if (live.empty()) {
      result.unassigned.push_back(r.id);
      continue;
    }
    SchedDevice& dev = devices[live[rng.index(live.size())]];
    double c = cost.cost(r, dev.status);
    result.items.push_back(ScheduledItem{r.id, dev.id, dev.ready_s, dev.ready_s + c});
    dev.ready_s += c;
    cost.apply(r, &dev.status);
  }

  double makespan = 0.0;
  for (const auto& item : result.items) makespan = std::max(makespan, item.finish_s);
  result.service_makespan_s = makespan;

  auto wall_end = std::chrono::steady_clock::now();
  result.scheduling_wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.cost_evaluations = cost.evals();
  return result;
}

}  // namespace aorta::sched
