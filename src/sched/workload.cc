#include "sched/workload.h"

#include <algorithm>

#include "util/strings.h"

namespace aorta::sched {

Workload make_photo_workload(const WorkloadSpec& spec) {
  aorta::util::Rng rng(spec.seed);
  Workload w;

  // Head positions sampled over the full mechanical ranges the kinematics
  // allow (pan +-169 deg dominates cost; tilt kept within a 60-degree band
  // so the pan axis is the usual bottleneck, as on the ceiling-mounted
  // cameras).
  auto random_head = [&rng]() {
    return std::map<std::string, double>{{"pan", rng.uniform(-169.0, 169.0)},
                                         {"tilt", rng.uniform(-50.0, 10.0)},
                                         {"zoom", 1.0}};
  };

  w.devices.reserve(static_cast<std::size_t>(spec.n_devices));
  for (int j = 0; j < spec.n_devices; ++j) {
    SchedDevice dev;
    dev.id = aorta::util::str_format("cam%d", j + 1);
    dev.status = random_head();
    w.devices.push_back(std::move(dev));
  }

  std::vector<device::DeviceId> all_ids;
  for (const auto& d : w.devices) all_ids.push_back(d.id);

  const int subset_size = std::max(
      1, static_cast<int>(std::lround(spec.skewness * spec.n_devices)));

  w.requests.reserve(static_cast<std::size_t>(spec.n_requests));
  for (int i = 0; i < spec.n_requests; ++i) {
    ActionRequest r;
    r.id = static_cast<std::uint64_t>(i + 1);
    r.query_id = aorta::util::str_format("q%d", i + 1);
    r.action_name = "photo";
    r.params = random_head();

    const bool restricted = spec.skewness < 1.0 && (i % 2 == 1);
    if (!restricted) {
      r.candidates = all_ids;
    } else {
      std::vector<device::DeviceId> pool = all_ids;
      rng.shuffle(pool);
      pool.resize(static_cast<std::size_t>(
          std::min<int>(subset_size, spec.n_devices)));
      r.candidates = std::move(pool);
    }
    w.requests.push_back(std::move(r));
  }
  return w;
}

}  // namespace aorta::sched
