// LPT (Longest Processing Time first) extension baseline.
//
// The classic 4/3-approximation idea for makespan on identical machines,
// adapted to this problem's eligibility restrictions and sequence-
// dependent costs: requests are ranked by their best-case cost (longest
// first) and each is appended to the candidate device where it finishes
// earliest, with per-device status evolving as requests are placed.
#include <algorithm>
#include <chrono>
#include <map>

#include "sched/algorithms.h"

namespace aorta::sched {

ScheduleResult LptScheduler::schedule(const std::vector<ActionRequest>& requests,
                                      std::vector<SchedDevice> devices,
                                      const CostModel& model,
                                      aorta::util::Rng& rng) {
  (void)rng;
  auto wall_start = std::chrono::steady_clock::now();
  ScheduleResult result;
  result.algorithm = name();
  CountingCost cost(&model);

  std::map<device::DeviceId, std::size_t> device_index;
  for (std::size_t j = 0; j < devices.size(); ++j) device_index[devices[j].id] = j;

  // Rank by best-case cost against the devices' initial status.
  struct Ranked {
    std::size_t index;
    double best_cost;
  };
  std::vector<Ranked> ranked;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    double best = -1.0;
    for (const auto& cand : requests[i].candidates) {
      auto it = device_index.find(cand);
      if (it == device_index.end()) continue;
      double c = cost.cost(requests[i], devices[it->second].status);
      if (best < 0.0 || c < best) best = c;
    }
    if (best < 0.0) {
      result.unassigned.push_back(requests[i].id);
      continue;
    }
    ranked.push_back(Ranked{i, best});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Ranked& a, const Ranked& b) {
                     return a.best_cost > b.best_cost;  // longest first
                   });

  double makespan = 0.0;
  for (const Ranked& r : ranked) {
    const ActionRequest& request = requests[r.index];
    std::size_t best_j = 0;
    double best_finish = 0.0, best_cost = 0.0;
    bool first = true;
    for (const auto& cand : request.candidates) {
      auto it = device_index.find(cand);
      if (it == device_index.end()) continue;
      std::size_t j = it->second;
      double c = cost.cost(request, devices[j].status);
      double finish = devices[j].ready_s + c;
      if (first || finish < best_finish) {
        first = false;
        best_finish = finish;
        best_j = j;
        best_cost = c;
      }
    }
    SchedDevice& dev = devices[best_j];
    result.items.push_back(
        ScheduledItem{request.id, dev.id, dev.ready_s, dev.ready_s + best_cost});
    dev.ready_s += best_cost;
    cost.apply(request, &dev.status);
    makespan = std::max(makespan, dev.ready_s);
  }
  result.service_makespan_s = makespan;

  auto wall_end = std::chrono::steady_clock::now();
  result.scheduling_wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.cost_evaluations = cost.evals();
  return result;
}

}  // namespace aorta::sched
