// Algorithm 2: SRFAE (Shortest Request First Assignment and Execution).
// Figure 3, Algorithm 2.
//
// The ordered structure T holds every feasible (request, device) pair
// keyed by "the device's accumulated workload + the request's cost on the
// device given its post-queue status" — lines 16-20's key update rule.
// Extracting the global minimum therefore always services the request
// with the earliest achievable completion. We use std::set as the
// balanced binary search tree of line 3.
#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <tuple>

#include "sched/algorithms.h"

namespace aorta::sched {

ScheduleResult SrfaeScheduler::schedule(const std::vector<ActionRequest>& requests,
                                        std::vector<SchedDevice> devices,
                                        const CostModel& model,
                                        aorta::util::Rng& rng) {
  (void)rng;
  auto wall_start = std::chrono::steady_clock::now();
  ScheduleResult result;
  result.algorithm = name();
  CountingCost cost(&model);

  std::map<device::DeviceId, std::size_t> device_index;
  for (std::size_t j = 0; j < devices.size(); ++j) device_index[devices[j].id] = j;

  // Per-device accumulated workload Wj (doubles as the FIFO queue's
  // completion frontier: a request assigned to a busy device queues and
  // starts when the device drains, line 13) and evolving status.
  std::vector<double> frontier(devices.size());
  for (std::size_t j = 0; j < devices.size(); ++j) {
    frontier[j] = devices[j].ready_s;
  }

  // The tree T: key = (weight, request, device) so keys are unique.
  using TreeKey = std::tuple<double, std::size_t, std::size_t>;
  std::set<TreeKey> tree;
  // Current key of each feasible (request, device) pair, for O(log) update.
  std::map<std::pair<std::size_t, std::size_t>, double> current_key;

  std::vector<bool> serviced(requests.size(), false);

  // Lines 1-3: insert every feasible pair keyed by its weight.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    bool any = false;
    for (const auto& cand : requests[i].candidates) {
      auto it = device_index.find(cand);
      if (it == device_index.end()) continue;
      std::size_t j = it->second;
      double w = frontier[j] + cost.cost(requests[i], devices[j].status);
      tree.insert({w, i, j});
      current_key[{i, j}] = w;
      any = true;
    }
    if (!any) {
      result.unassigned.push_back(requests[i].id);
      serviced[i] = true;  // nothing to do for it
    }
  }

  // Lines 7-20: repeatedly extract the minimum, service, re-key.
  while (!tree.empty()) {
    auto [w, i, j] = *tree.begin();

    // Service ri on dj: it starts when the device's queue drains (line
    // 10-13's free/queued distinction collapses to the frontier time).
    double start = frontier[j];
    double c = w - frontier[j];  // cost embedded in the key
    result.items.push_back(ScheduledItem{requests[i].id, devices[j].id, start, w});
    frontier[j] = w;
    cost.apply(requests[i], &devices[j].status);
    serviced[i] = true;

    // Line 15: delete every node of ri.
    for (const auto& cand : requests[i].candidates) {
      auto it = device_index.find(cand);
      if (it == device_index.end()) continue;
      auto key_it = current_key.find({i, it->second});
      if (key_it == current_key.end()) continue;
      tree.erase({key_it->second, i, it->second});
      current_key.erase(key_it);
    }

    // Lines 16-20: re-key every unserviced request feasible on dj against
    // the device's new status and workload ("Clj + w").
    for (std::size_t l = 0; l < requests.size(); ++l) {
      if (serviced[l]) continue;
      auto key_it = current_key.find({l, j});
      if (key_it == current_key.end()) continue;
      double new_key = frontier[j] + cost.cost(requests[l], devices[j].status);
      tree.erase({key_it->second, l, j});
      tree.insert({new_key, l, j});
      key_it->second = new_key;
    }
    (void)c;
  }

  double makespan = 0.0;
  for (const auto& item : result.items) makespan = std::max(makespan, item.finish_s);
  result.service_makespan_s = makespan;

  auto wall_end = std::chrono::steady_clock::now();
  result.scheduling_wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.cost_evaluations = cost.evals();
  return result;
}

}  // namespace aorta::sched
