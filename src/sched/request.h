// Action requests and the scheduler's view of devices.
//
// Section 5.1: "We define an action request as the request from a query
// for the execution of an action with instantiated input parameter values
// for the action." Each request ri carries its candidate device set Di
// (machine eligibility restrictions), and the cost of servicing ri on dj
// depends on dj's current physical status (sequence-dependent action
// execution time).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "device/types.h"

namespace aorta::sched {

// Physical status snapshot of a device, as gathered by probing: attribute
// name -> value (e.g. {"pan": -42.0, "tilt": -30.0, "zoom": 2.0}).
using DeviceStatus = std::map<std::string, double>;

struct ActionRequest {
  std::uint64_t id = 0;
  std::string query_id;        // originating continuous query
  std::string action_name;     // e.g. "photo"
  // Instantiated action parameters relevant to cost (for photo: the target
  // head position computed from the event location).
  std::map<std::string, double> params;
  // Fixed work independent of device status (e.g. exposure + transfer).
  double base_cost_s = 0.0;
  // Candidate device set Di (must be non-empty for the request to be
  // schedulable).
  std::vector<device::DeviceId> candidates;

  // Instantiated action arguments as evaluated by the query engine
  // (opaque to the scheduler; the action implementation consumes them at
  // execution time).
  std::vector<device::Value> action_args;

  // Worker shard whose scheduler owns this request (-1 = unsharded). In
  // the sharded plane every candidate device hashes to one shard, so the
  // request is deposited with — and scheduled by — that shard's operator;
  // the tag makes the routing auditable in traces and stats.
  int shard = -1;

  bool eligible_on(const device::DeviceId& d) const {
    for (const auto& c : candidates) {
      if (c == d) return true;
    }
    return false;
  }
};

// A device as the scheduler sees it: identity, probed physical status and
// the time its timeline is busy until (0 at the start of a scheduling
// round).
struct SchedDevice {
  device::DeviceId id;
  DeviceStatus status;
  double ready_s = 0.0;
};

}  // namespace aorta::sched
