// Synthetic photo() workload generation for the scheduling experiments.
//
// Section 6.3's setup: m simulated AXIS 2130 cameras, n photo() requests
// whose service times span [0.36 s, 5.36 s] (the measured photo() cost
// range), every camera a candidate in the uniform workloads. Skewed
// workloads restrict half the requests to a random candidate subset of
// size skewness * m.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/request.h"
#include "util/rng.h"

namespace aorta::sched {

struct WorkloadSpec {
  int n_requests = 20;
  int n_devices = 10;
  // 1.0 = uniform (every device a candidate for every request). Below 1.0,
  // half the requests keep all devices and half get a random subset of
  // size max(1, round(skewness * n_devices)) — Section 6.3's skew model.
  double skewness = 1.0;
  std::uint64_t seed = 1;
};

struct Workload {
  std::vector<ActionRequest> requests;
  std::vector<SchedDevice> devices;
};

// Cameras with uniformly random initial head positions; requests with
// uniformly random target head positions. With the AXIS 2130 kinematics
// this yields initial request costs spanning [0.36, 5.36] s.
Workload make_photo_workload(const WorkloadSpec& spec);

// The published cost range of photo() on an AXIS 2130 (Section 6.3).
constexpr double kPhotoMinCostS = 0.36;
constexpr double kPhotoMaxCostS = 5.36;

}  // namespace aorta::sched
