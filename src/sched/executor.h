// Schedule executor: drives a computed schedule against the (simulated)
// physical devices, holding each device's lock for the duration of each
// action — Algorithm 1.2 line 1 / Algorithm 2 line 6's "lock d".
//
// The executor is action-agnostic: callers supply an ExecuteFn that
// performs one action on one device through the communication layer (the
// query engine passes the registered action's implementation; the
// scheduling benches pass photo()). This closes the loop between the
// scheduling layer and the device substrate: estimated per-request costs
// can be compared with observed service times (the cost-model validation
// of Section 2.3), and the actual makespan includes network latency the
// estimates ignore.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "comm/comm_module.h"
#include "sched/scheduler.h"
#include "sync/lock_manager.h"

namespace aorta::sched {

// Result of one action execution on a device.
struct ActionOutcome {
  bool ok = false;        // the device performed the action
  bool degraded = false;  // performed, but unusable (blurred / mis-aimed)
  std::string detail;

  bool usable() const { return ok && !degraded; }
};

// Performs `request` on `device`, invoking `done` exactly once.
using ExecuteFn = std::function<void(
    const device::DeviceId& device, const ActionRequest& request,
    std::function<void(aorta::util::Result<ActionOutcome>)> done)>;

// photo() through the camera comm module: aims at the head position in the
// request params and exposes a medium photo.
ExecuteFn make_photo_execute_fn(comm::CommLayer* comm);

struct ExecutionReport {
  double actual_makespan_s = 0.0;
  std::uint64_t actions_usable = 0;
  std::uint64_t actions_degraded = 0;  // e.g. blurred / wrong position
  std::uint64_t failures = 0;          // device errors or timeouts
  // Measured service time per request id (action dispatch to ack).
  std::map<std::uint64_t, double> actual_cost_s;
  // Outcome per request id (ok=false for device errors and timeouts) — the
  // query layer maps these back to the owning queries' statistics.
  std::map<std::uint64_t, ActionOutcome> outcomes;
};

class ScheduleExecutor {
 public:
  // `use_locks` exists for the Section 6.2 ablation: without it, per-device
  // chains still run in schedule order but concurrent chains of *other*
  // executors / queries are free to interleave on the same device.
  ScheduleExecutor(sync::LockManager* locks, aorta::util::EventLoop* loop,
                   ExecuteFn execute, bool use_locks = true)
      : locks_(locks), loop_(loop), execute_(std::move(execute)),
        use_locks_(use_locks) {}

  // Execute all items of `schedule`. Per device, items run in schedule
  // order, each under the device lock. `done` fires once everything
  // completed (or failed). `requests` must contain every scheduled request.
  void execute(const ScheduleResult& schedule,
               const std::vector<ActionRequest>& requests,
               std::function<void(ExecutionReport)> done);

 private:
  struct Run;  // shared execution state

  // Executes the index-th item of the per-device chain, then recurses.
  void execute_chain(std::shared_ptr<Run> run, const device::DeviceId& device_id,
                     std::size_t index);

  // No-locks path: fire one item immediately (items race on the device).
  void dispatch_unsynchronized(std::shared_ptr<Run> run,
                               const device::DeviceId& device_id,
                               const ScheduledItem* item,
                               std::shared_ptr<std::size_t> outstanding);

  sync::LockManager* locks_;
  aorta::util::EventLoop* loop_;
  ExecuteFn execute_;
  bool use_locks_;
};

}  // namespace aorta::sched
