// Scheduler interface and schedule representation.
//
// The Action Workload Scheduling Problem (Section 5.1, Figure 2): given n
// action requests with candidate device sets and m devices, produce an
// assignment + per-device service order minimizing the makespan, under
// sequence-dependent action execution times and machine eligibility
// restrictions. All five algorithms of Section 6.3 implement this
// interface; benches drive them identically.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/cost_model.h"
#include "sched/request.h"
#include "util/rng.h"
#include "util/status.h"

namespace aorta::sched {

// One serviced request in a schedule. Times are on the virtual service
// timeline that starts at 0 when execution begins.
struct ScheduledItem {
  std::uint64_t request_id = 0;
  device::DeviceId device;
  double start_s = 0.0;
  double finish_s = 0.0;
};

struct ScheduleResult {
  std::string algorithm;
  std::vector<ScheduledItem> items;

  // Completion time of the last request on the service timeline.
  double service_makespan_s = 0.0;

  // Wall-clock time the algorithm itself took on *this* machine.
  double scheduling_wall_s = 0.0;

  // Cost-model evaluations performed — the hardware-independent measure of
  // scheduling effort. Benches convert it to 2005-era scheduling time via
  // a calibrated per-evaluation cost (EXPERIMENTS.md).
  std::uint64_t cost_evaluations = 0;

  // Requests that could not be scheduled (empty candidate set / all
  // candidates unavailable). The paper's workloads never have these, but a
  // library must not lose them silently.
  std::vector<std::uint64_t> unassigned;

  // Scheduling time under the calibrated evaluation-cost model.
  double scheduling_model_s(double per_eval_s) const {
    return static_cast<double>(cost_evaluations) * per_eval_s;
  }
  // Figure 4/6's makespan: scheduling + service.
  double total_s(double per_eval_s) const {
    return service_makespan_s + scheduling_model_s(per_eval_s);
  }

  const ScheduledItem* find(std::uint64_t request_id) const;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;

  // Schedule `requests` on `devices` (passed by value: the scheduler
  // mutates its copy while simulating status changes). Deterministic given
  // `rng`'s state.
  virtual ScheduleResult schedule(const std::vector<ActionRequest>& requests,
                                  std::vector<SchedDevice> devices,
                                  const CostModel& model,
                                  aorta::util::Rng& rng) = 0;
};

// The five algorithms of Section 6.3 by paper name:
//   "LERFA+SRFE" (Algorithm 1, SAP)  "SRFAE" (Algorithm 2, CAP)
//   "LS"  "SA"  "RANDOM"
// plus "OPT" (exhaustive; tiny instances only — the test oracle).
std::unique_ptr<Scheduler> make_scheduler(const std::string& name);

// Names in the order the paper's figures list them.
std::vector<std::string> paper_scheduler_names();

// ------------------------- shared helpers for algorithm implementations

// Validates a schedule against the problem definition: every request
// serviced exactly once, on an eligible device, with non-overlapping
// per-device intervals whose durations match the sequence-dependent cost
// model. Returns OK or a description of the first violation. Used by
// tests and (in debug builds) by the schedulers themselves.
aorta::util::Status validate_schedule(const ScheduleResult& result,
                                      const std::vector<ActionRequest>& requests,
                                      const std::vector<SchedDevice>& devices,
                                      const CostModel& model,
                                      double tolerance_s = 1e-6);

// Computes the service makespan of a fully-specified assignment: for each
// device, services its request sequence in order with status updates.
// Fills `items` and returns the makespan. `sequences[j]` holds indices
// into `requests` for device j.
double simulate_sequences(const std::vector<ActionRequest>& requests,
                          std::vector<SchedDevice>& devices,
                          const std::vector<std::vector<std::size_t>>& sequences,
                          CountingCost& cost, std::vector<ScheduledItem>* items);

}  // namespace aorta::sched
