#include "sched/scheduler.h"

#include <algorithm>
#include <map>

#include "sched/algorithms.h"
#include "util/strings.h"

namespace aorta::sched {

const ScheduledItem* ScheduleResult::find(std::uint64_t request_id) const {
  for (const auto& item : items) {
    if (item.request_id == request_id) return &item;
  }
  return nullptr;
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
  if (name == "LERFA+SRFE") return std::make_unique<LerfaSrfeScheduler>();
  if (name == "SRFAE") return std::make_unique<SrfaeScheduler>();
  if (name == "LS") return std::make_unique<ListScheduler>();
  if (name == "SA") return std::make_unique<SimulatedAnnealingScheduler>();
  if (name == "RANDOM") return std::make_unique<RandomScheduler>();
  if (name == "LPT") return std::make_unique<LptScheduler>();
  if (name == "OPT") return std::make_unique<ExhaustiveScheduler>();
  return nullptr;
}

std::vector<std::string> paper_scheduler_names() {
  return {"LERFA+SRFE", "SRFAE", "LS", "SA", "RANDOM"};
}

aorta::util::Status validate_schedule(const ScheduleResult& result,
                                      const std::vector<ActionRequest>& requests,
                                      const std::vector<SchedDevice>& devices,
                                      const CostModel& model, double tolerance_s) {
  using aorta::util::str_format;

  // Each schedulable request appears exactly once in items or unassigned.
  std::map<std::uint64_t, int> seen;
  for (const auto& item : result.items) ++seen[item.request_id];
  for (std::uint64_t id : result.unassigned) ++seen[id];
  for (const auto& r : requests) {
    auto it = seen.find(r.id);
    if (it == seen.end() || it->second != 1) {
      return aorta::util::internal_error(str_format(
          "request %llu serviced %d times", (unsigned long long)r.id,
          it == seen.end() ? 0 : it->second));
    }
  }

  // Eligibility.
  std::map<std::uint64_t, const ActionRequest*> by_id;
  for (const auto& r : requests) by_id[r.id] = &r;
  for (const auto& item : result.items) {
    const ActionRequest* r = by_id[item.request_id];
    if (r == nullptr) {
      return aorta::util::internal_error(
          str_format("unknown request %llu in schedule",
                     (unsigned long long)item.request_id));
    }
    if (!r->eligible_on(item.device)) {
      return aorta::util::internal_error(
          str_format("request %llu scheduled on ineligible device %s",
                     (unsigned long long)r->id, item.device.c_str()));
    }
  }

  // Per-device: intervals ordered, non-overlapping, durations match the
  // sequence-dependent cost model, and the makespan is the max finish.
  std::map<device::DeviceId, std::vector<const ScheduledItem*>> per_device;
  for (const auto& item : result.items) per_device[item.device].push_back(&item);

  double max_finish = 0.0;
  for (auto& [dev_id, items] : per_device) {
    std::sort(items.begin(), items.end(),
              [](const ScheduledItem* a, const ScheduledItem* b) {
                return a->start_s < b->start_s;
              });
    const SchedDevice* dev = nullptr;
    for (const auto& d : devices) {
      if (d.id == dev_id) dev = &d;
    }
    if (dev == nullptr) {
      return aorta::util::internal_error("schedule uses unknown device " + dev_id);
    }
    DeviceStatus status = dev->status;
    double prev_finish = dev->ready_s;
    for (const ScheduledItem* item : items) {
      if (item->start_s + tolerance_s < prev_finish) {
        return aorta::util::internal_error(str_format(
            "overlap on %s: request %llu starts %.6f before %.6f",
            dev_id.c_str(), (unsigned long long)item->request_id,
            item->start_s, prev_finish));
      }
      const ActionRequest* r = by_id[item->request_id];
      double expected = model.cost_s(*r, status);
      double actual = item->finish_s - item->start_s;
      if (std::abs(expected - actual) > tolerance_s) {
        return aorta::util::internal_error(str_format(
            "duration mismatch on %s for request %llu: expected %.6f got %.6f",
            dev_id.c_str(), (unsigned long long)item->request_id, expected,
            actual));
      }
      model.apply(*r, &status);
      prev_finish = item->finish_s;
      max_finish = std::max(max_finish, item->finish_s);
    }
  }

  if (!result.items.empty() &&
      std::abs(max_finish - result.service_makespan_s) > tolerance_s) {
    return aorta::util::internal_error(
        str_format("makespan mismatch: reported %.6f, max finish %.6f",
                   result.service_makespan_s, max_finish));
  }
  return aorta::util::Status::ok();
}

double simulate_sequences(const std::vector<ActionRequest>& requests,
                          std::vector<SchedDevice>& devices,
                          const std::vector<std::vector<std::size_t>>& sequences,
                          CountingCost& cost, std::vector<ScheduledItem>* items) {
  double makespan = 0.0;
  for (std::size_t j = 0; j < devices.size(); ++j) {
    SchedDevice& dev = devices[j];
    double t = dev.ready_s;
    for (std::size_t req_index : sequences[j]) {
      const ActionRequest& r = requests[req_index];
      double c = cost.cost(r, dev.status);
      if (items != nullptr) {
        items->push_back(ScheduledItem{r.id, dev.id, t, t + c});
      }
      t += c;
      cost.apply(r, &dev.status);
    }
    dev.ready_s = t;
    if (!sequences[j].empty()) makespan = std::max(makespan, t);
  }
  return makespan;
}

}  // namespace aorta::sched
