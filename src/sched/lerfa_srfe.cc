// Algorithm 1: LERFA (Least Eligible Request First Assignment) + SRFE
// (Shortest Request First Execution). Figure 3, Algorithms 1.1 and 1.2.
#include <algorithm>
#include <chrono>
#include <map>

#include "sched/algorithms.h"

namespace aorta::sched {

ScheduleResult LerfaSrfeScheduler::schedule(
    const std::vector<ActionRequest>& requests, std::vector<SchedDevice> devices,
    const CostModel& model, aorta::util::Rng& rng) {
  auto wall_start = std::chrono::steady_clock::now();
  ScheduleResult result;
  result.algorithm = name();
  CountingCost cost(&model);

  std::map<device::DeviceId, std::size_t> device_index;
  for (std::size_t j = 0; j < devices.size(); ++j) device_index[devices[j].id] = j;

  // SRFE re-decides order against actual execution-time status, so keep
  // the probed starting statuses; LERFA works on a projection copy.
  const std::vector<SchedDevice> initial_devices = devices;

  // ---- LERFA (Algorithm 1.1) -------------------------------------------
  // Wj = 0 for all devices (lines 1-2).
  std::vector<double> workload(devices.size(), 0.0);
  std::vector<std::vector<std::size_t>> assigned(devices.size());

  // Bucket requests by candidate-set size; random order inside a bucket
  // ("if two requests have the same number of candidate devices, LERFA
  // assigns them in a random order").
  std::map<std::size_t, std::vector<std::size_t>> by_eligibility;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    std::size_t live = 0;
    for (const auto& c : requests[i].candidates) {
      if (device_index.count(c) > 0) ++live;
    }
    if (live == 0) {
      result.unassigned.push_back(requests[i].id);
      continue;
    }
    by_eligibility[live].push_back(i);
  }

  // "Start with the request that has the least number of candidate
  // devices ... then go on to assign the next least eligible request"
  // (lines 3-12). std::map iterates eligibility counts in increasing order.
  for (auto& [eligibility, bucket] : by_eligibility) {
    (void)eligibility;
    rng.shuffle(bucket);
    for (std::size_t i : bucket) {
      const ActionRequest& r = requests[i];
      std::size_t best_j = 0;
      double best_e = 0.0, best_c = 0.0;
      bool first = true;
      for (const auto& cand : r.candidates) {
        auto it = device_index.find(cand);
        if (it == device_index.end()) continue;
        std::size_t j = it->second;
        // Crk = estimated cost of servicing r on dk given the status the
        // device will have after its already-assigned work (lines 6-8).
        double c = cost.cost(r, devices[j].status);
        double e = workload[j] + c;  // Ek = Wk + Crk
        if (first || e < best_e) {
          first = false;
          best_e = e;
          best_j = j;
          best_c = c;
        }
      }
      assigned[best_j].push_back(i);       // assign r to dl (line 9)
      workload[best_j] += best_c;          // Wl += Crl (lines 10-11)
      cost.apply(r, &devices[best_j].status);
    }
  }

  // ---- SRFE (Algorithm 1.2), independently per (locked) device -----------
  double makespan = 0.0;
  for (std::size_t j = 0; j < devices.size(); ++j) {
    DeviceStatus status = initial_devices[j].status;  // line 3: live status
    double t = initial_devices[j].ready_s;
    std::vector<std::size_t> remaining = assigned[j];
    while (!remaining.empty()) {
      // Lines 4-6: re-estimate every remaining request against the
      // device's current status and service the cheapest.
      std::size_t best_pos = 0;
      double best_c = 0.0;
      for (std::size_t pos = 0; pos < remaining.size(); ++pos) {
        double c = cost.cost(requests[remaining[pos]], status);
        if (pos == 0 || c < best_c) {
          best_c = c;
          best_pos = pos;
        }
      }
      const ActionRequest& r = requests[remaining[best_pos]];
      result.items.push_back(ScheduledItem{r.id, devices[j].id, t, t + best_c});
      t += best_c;
      cost.apply(r, &status);
      remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best_pos));
    }
    if (!assigned[j].empty()) makespan = std::max(makespan, t);
  }
  result.service_makespan_s = makespan;

  auto wall_end = std::chrono::steady_clock::now();
  result.scheduling_wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.cost_evaluations = cost.evals();
  return result;
}

}  // namespace aorta::sched
