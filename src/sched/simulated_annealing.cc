// Simulated Annealing baseline (SAP), after Anagnostopoulos & Rabadi's SA
// for unrelated parallel machine scheduling with sequence-dependent setup
// times and machine eligibility restrictions [2].
//
// State: a complete assignment + per-device service sequences. Moves
// relocate one request to a random device/position or swap two requests.
// Every candidate state is evaluated by re-simulating all device
// timelines against the sequence-dependent cost model, so each move costs
// O(n) cost evaluations — the source of SA's scheduling-time wall in
// Figures 5 and 6. Relocations sample from *all* devices with an
// infeasibility penalty (the generic formulation of [2]); under skewed
// workloads a growing share of the annealing budget is burnt on penalized
// moves, which is how Figure 6's SA degradation arises.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>

#include "sched/algorithms.h"

namespace aorta::sched {

namespace {

struct SaState {
  // sequences[j] = indices into `requests` serviced by device j, in order.
  std::vector<std::vector<std::size_t>> sequences;
};

double evaluate(const std::vector<ActionRequest>& requests,
                const std::vector<SchedDevice>& initial_devices,
                const SaState& state, CountingCost& cost) {
  std::vector<SchedDevice> devices = initial_devices;
  return simulate_sequences(requests, devices, state.sequences, cost, nullptr);
}

}  // namespace

ScheduleResult SimulatedAnnealingScheduler::schedule(
    const std::vector<ActionRequest>& requests, std::vector<SchedDevice> devices,
    const CostModel& model, aorta::util::Rng& rng) {
  auto wall_start = std::chrono::steady_clock::now();
  ScheduleResult result;
  result.algorithm = name();
  CountingCost cost(&model);

  const std::vector<SchedDevice> initial_devices = devices;
  std::map<device::DeviceId, std::size_t> device_index;
  for (std::size_t j = 0; j < devices.size(); ++j) device_index[devices[j].id] = j;

  // Live candidate device indices per request; unservable requests out.
  std::vector<std::vector<std::size_t>> eligible(requests.size());
  std::vector<std::size_t> active;  // schedulable request indices
  for (std::size_t i = 0; i < requests.size(); ++i) {
    for (const auto& cand : requests[i].candidates) {
      auto it = device_index.find(cand);
      if (it != device_index.end()) eligible[i].push_back(it->second);
    }
    if (eligible[i].empty()) {
      result.unassigned.push_back(requests[i].id);
    } else {
      active.push_back(i);
    }
  }

  auto finish_result = [&](const SaState& best) {
    std::vector<SchedDevice> final_devices = initial_devices;
    result.service_makespan_s = simulate_sequences(
        requests, final_devices, best.sequences, cost, &result.items);
    auto wall_end = std::chrono::steady_clock::now();
    result.scheduling_wall_s =
        std::chrono::duration<double>(wall_end - wall_start).count();
    result.cost_evaluations = cost.evals();
    return result;
  };

  SaState current;
  current.sequences.assign(devices.size(), {});
  if (active.empty()) return finish_result(current);

  // Constructive initial solution (cheapest completion-time insertion in
  // random request order), the standard seeding for annealing on machine
  // scheduling; the annealing then polishes it with sequence moves.
  {
    std::vector<std::size_t> order = active;
    rng.shuffle(order);
    std::vector<double> frontier(devices.size());
    std::vector<DeviceStatus> status(devices.size());
    for (std::size_t j = 0; j < devices.size(); ++j) {
      frontier[j] = devices[j].ready_s;
      status[j] = devices[j].status;
    }
    for (std::size_t i : order) {
      std::size_t best_j = eligible[i][0];
      double best_finish = 0.0;
      bool first = true;
      for (std::size_t j : eligible[i]) {
        double finish = frontier[j] + cost.cost(requests[i], status[j]);
        if (first || finish < best_finish) {
          first = false;
          best_finish = finish;
          best_j = j;
        }
      }
      current.sequences[best_j].push_back(i);
      frontier[best_j] = best_finish;
      cost.apply(requests[i], &status[best_j]);
    }
  }

  double current_obj = evaluate(requests, initial_devices, current, cost);
  SaState best = current;
  double best_obj = current_obj;

  const std::size_t n = active.size();
  const std::size_t m = devices.size();
  double temperature = params_.initial_temp_factor * current_obj;
  const int moves_per_stage = std::max<int>(
      16, params_.moves_per_temp_per_nm * static_cast<int>(n * m));
  int stalled_stages = 0;

  // Helper: locate request i in the sequences; returns (device, position).
  auto locate = [&](std::size_t i) -> std::pair<std::size_t, std::size_t> {
    for (std::size_t j = 0; j < current.sequences.size(); ++j) {
      const auto& seq = current.sequences[j];
      for (std::size_t p = 0; p < seq.size(); ++p) {
        if (seq[p] == i) return {j, p};
      }
    }
    return {current.sequences.size(), 0};
  };

  while (temperature > params_.min_temp_s && stalled_stages < params_.max_stalled_stages) {
    bool improved_this_stage = false;
    for (int move = 0; move < moves_per_stage; ++move) {
      SaState candidate = current;
      bool feasible = true;

      if (rng.chance(0.5) || n == 1) {
        // Relocate: random active request to a random device (any of the m
        // machines — infeasible targets get the eligibility penalty) at a
        // random position.
        std::size_t i = active[rng.index(n)];
        auto [from_j, from_p] = locate(i);
        candidate.sequences[from_j].erase(candidate.sequences[from_j].begin() +
                                          static_cast<std::ptrdiff_t>(from_p));
        std::size_t to_j = rng.index(m);
        auto& seq = candidate.sequences[to_j];
        std::size_t pos = seq.empty() ? 0 : rng.index(seq.size() + 1);
        seq.insert(seq.begin() + static_cast<std::ptrdiff_t>(pos), i);
        feasible = requests[i].eligible_on(devices[to_j].id);
      } else {
        // Swap the slots of two random active requests.
        std::size_t a = active[rng.index(n)];
        std::size_t b = active[rng.index(n)];
        if (a == b) continue;
        auto [ja, pa] = locate(a);
        auto [jb, pb] = locate(b);
        candidate.sequences[ja][pa] = b;
        candidate.sequences[jb][pb] = a;
        feasible = requests[a].eligible_on(devices[jb].id) &&
                   requests[b].eligible_on(devices[ja].id);
      }

      // The objective is always evaluated ([2]'s penalty formulation);
      // infeasible states are then rejected outright.
      double obj = evaluate(requests, initial_devices, candidate, cost);
      if (!feasible) obj = std::numeric_limits<double>::infinity();

      double delta = obj - current_obj;
      if (delta <= 0.0 ||
          (std::isfinite(obj) && rng.chance(std::exp(-delta / temperature)))) {
        current = std::move(candidate);
        current_obj = obj;
        if (current_obj < best_obj - 1e-12) {
          best = current;
          best_obj = current_obj;
          improved_this_stage = true;
        }
      }
    }
    temperature *= params_.cooling;
    stalled_stages = improved_this_stage ? 0 : stalled_stages + 1;
  }

  return finish_result(best);
}

}  // namespace aorta::sched
