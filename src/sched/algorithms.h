// The scheduling algorithms evaluated in Section 6.3.
//
// SAP algorithms (sequential assignment and processing) complete the whole
// assignment before any request is serviced; CAP algorithms (concurrent
// assignment and processing) service a request the moment it is assigned
// (Section 5.2). In either case the service timeline starts at 0 and the
// benches add scheduling time on top, matching Figure 5's decomposition.
#pragma once

#include "sched/scheduler.h"

namespace aorta::sched {

// Algorithm 1 (ours, SAP): LERFA assignment — least eligible request
// first, placed on the candidate minimizing accumulated workload — then
// SRFE execution — each device repeatedly re-estimates the remaining
// requests against its *current* physical status and services the
// cheapest (Figure 3, Algorithms 1.1 and 1.2).
class LerfaSrfeScheduler : public Scheduler {
 public:
  std::string name() const override { return "LERFA+SRFE"; }
  ScheduleResult schedule(const std::vector<ActionRequest>& requests,
                          std::vector<SchedDevice> devices,
                          const CostModel& model, aorta::util::Rng& rng) override;
};

// Algorithm 2 (ours, CAP): SRFAE — keep every feasible (request, device)
// pair in an ordered structure keyed by completion-relevant cost; extract
// the global minimum, assign+service immediately (FIFO queue when the
// device is busy), then re-key that device's remaining pairs against its
// post-execution status and workload (Figure 3, Algorithm 2).
class SrfaeScheduler : public Scheduler {
 public:
  std::string name() const override { return "SRFAE"; }
  ScheduleResult schedule(const std::vector<ActionRequest>& requests,
                          std::vector<SchedDevice> devices,
                          const CostModel& model, aorta::util::Rng& rng) override;
};

// List Scheduling (baseline, CAP): "whenever a machine becomes idle, the
// LS algorithm schedules any eligible job that has not yet been scheduled
// on the machine" [Pinedo]. "Any" = arrival order — LS is cost-oblivious
// in its pick, which is exactly why cost-aware ordering beats it under
// sequence-dependent execution times.
class ListScheduler : public Scheduler {
 public:
  std::string name() const override { return "LS"; }
  ScheduleResult schedule(const std::vector<ActionRequest>& requests,
                          std::vector<SchedDevice> devices,
                          const CostModel& model, aorta::util::Rng& rng) override;
};

// Simulated Annealing (baseline, SAP), after Anagnostopoulos & Rabadi's SA
// for unrelated parallel machines with sequence-dependent setup times.
// State = full assignment + per-device sequences; moves relocate or swap
// requests; each candidate state is re-simulated end-to-end, so SA burns
// orders of magnitude more cost evaluations than the greedy algorithms —
// the scheduling-time wall the paper shows in Figures 5 and 6. Moves that
// violate machine eligibility are evaluated as infeasible (+inf) and
// rejected, so restricted candidate sets (skewed workloads) waste
// proportionally more of the annealing budget, reproducing Figure 6's SA
// blow-up.
class SimulatedAnnealingScheduler : public Scheduler {
 public:
  struct Params {
    double initial_temp_factor = 0.3;   // T0 = factor * initial makespan
    double cooling = 0.95;              // geometric cooling rate
    int moves_per_temp_per_nm = 3;      // moves per stage = this * n * m
    int max_stalled_stages = 12;         // stop after this many stages
                                        // without improving the best
    double min_temp_s = 1e-3;
  };

  SimulatedAnnealingScheduler() = default;
  explicit SimulatedAnnealingScheduler(Params params) : params_(params) {}

  std::string name() const override { return "SA"; }
  ScheduleResult schedule(const std::vector<ActionRequest>& requests,
                          std::vector<SchedDevice> devices,
                          const CostModel& model, aorta::util::Rng& rng) override;

 private:
  Params params_;
};

// RANDOM (baseline, CAP): each request goes to a uniformly random
// candidate, serviced in arrival order.
class RandomScheduler : public Scheduler {
 public:
  std::string name() const override { return "RANDOM"; }
  ScheduleResult schedule(const std::vector<ActionRequest>& requests,
                          std::vector<SchedDevice> devices,
                          const CostModel& model, aorta::util::Rng& rng) override;
};

// LPT (Longest Processing Time first) — a classic makespan heuristic
// added as an extension baseline (not in the paper): requests sorted by
// decreasing best-case cost, each placed on the candidate minimizing its
// completion time given evolving status, then serviced in placement order.
class LptScheduler : public Scheduler {
 public:
  std::string name() const override { return "LPT"; }
  ScheduleResult schedule(const std::vector<ActionRequest>& requests,
                          std::vector<SchedDevice> devices,
                          const CostModel& model, aorta::util::Rng& rng) override;
};

// Exhaustive optimal schedule, the moral equivalent of the 0/1 MIP the
// paper deems "too computationally expensive to be feasible" (Section
// 5.2) — usable only as a test oracle on tiny instances. Enumerates every
// assignment and every per-device service order. Hard-capped: returns an
// empty schedule (all requests unassigned) beyond ~10^7 states.
class ExhaustiveScheduler : public Scheduler {
 public:
  std::string name() const override { return "OPT"; }
  ScheduleResult schedule(const std::vector<ActionRequest>& requests,
                          std::vector<SchedDevice> devices,
                          const CostModel& model, aorta::util::Rng& rng) override;
};

}  // namespace aorta::sched
