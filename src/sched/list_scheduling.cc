// List Scheduling (LS) baseline, CAP.
//
// "Whenever a machine becomes idle, the LS algorithm schedules any
// eligible job that has not yet been scheduled on the machine" (Section
// 5.2, after Pinedo). The pick is arrival order — LS balances load well
// but is oblivious to sequence-dependent costs, so it pays for head
// movement our algorithms avoid.
#include <algorithm>
#include <chrono>
#include <map>

#include "sched/algorithms.h"

namespace aorta::sched {

ScheduleResult ListScheduler::schedule(const std::vector<ActionRequest>& requests,
                                       std::vector<SchedDevice> devices,
                                       const CostModel& model,
                                       aorta::util::Rng& rng) {
  (void)rng;
  auto wall_start = std::chrono::steady_clock::now();
  ScheduleResult result;
  result.algorithm = name();
  CountingCost cost(&model);

  std::map<device::DeviceId, std::size_t> device_index;
  for (std::size_t j = 0; j < devices.size(); ++j) device_index[devices[j].id] = j;

  std::vector<bool> scheduled(requests.size(), false);
  std::size_t remaining = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    bool any = false;
    for (const auto& cand : requests[i].candidates) {
      if (device_index.count(cand) > 0) any = true;
    }
    if (any) {
      ++remaining;
    } else {
      scheduled[i] = true;
      result.unassigned.push_back(requests[i].id);
    }
  }

  // Event-driven: repeatedly take the earliest-idle device and hand it the
  // first (arrival-order) eligible unscheduled job. A device with no
  // eligible jobs left is retired from consideration.
  std::vector<bool> retired(devices.size(), false);
  while (remaining > 0) {
    // Earliest-idle live device.
    std::size_t best_j = devices.size();
    for (std::size_t j = 0; j < devices.size(); ++j) {
      if (retired[j]) continue;
      if (best_j == devices.size() || devices[j].ready_s < devices[best_j].ready_s) {
        best_j = j;
      }
    }
    if (best_j == devices.size()) break;  // no live device can serve the rest

    // First unscheduled job eligible on it.
    std::size_t pick = requests.size();
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (!scheduled[i] && requests[i].eligible_on(devices[best_j].id)) {
        pick = i;
        break;
      }
    }
    if (pick == requests.size()) {
      retired[best_j] = true;
      continue;
    }

    SchedDevice& dev = devices[best_j];
    double c = cost.cost(requests[pick], dev.status);
    result.items.push_back(
        ScheduledItem{requests[pick].id, dev.id, dev.ready_s, dev.ready_s + c});
    dev.ready_s += c;
    cost.apply(requests[pick], &dev.status);
    scheduled[pick] = true;
    --remaining;
  }

  double makespan = 0.0;
  for (const auto& item : result.items) makespan = std::max(makespan, item.finish_s);
  result.service_makespan_s = makespan;

  auto wall_end = std::chrono::steady_clock::now();
  result.scheduling_wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.cost_evaluations = cost.evals();
  return result;
}

}  // namespace aorta::sched
