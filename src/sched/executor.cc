#include "sched/executor.h"

#include <algorithm>

#include "devices/ptz_math.h"
#include "util/logging.h"

namespace aorta::sched {

using aorta::util::Result;

ExecuteFn make_photo_execute_fn(comm::CommLayer* comm) {
  return [comm](const device::DeviceId& device, const ActionRequest& request,
                std::function<void(Result<ActionOutcome>)> done) {
    auto get = [&request](const char* key, double fallback) {
      auto it = request.params.find(key);
      return it == request.params.end() ? fallback : it->second;
    };
    devices::PtzPosition target{get("pan", 0.0), get("tilt", 0.0),
                                get("zoom", 1.0)};
    comm->camera().photo(
        device, target, "medium",
        [done = std::move(done)](Result<comm::PhotoOutcome> outcome) {
          if (!outcome.is_ok()) {
            done(Result<ActionOutcome>(outcome.status()));
            return;
          }
          const comm::PhotoOutcome& p = outcome.value();
          ActionOutcome out;
          out.ok = p.ok;
          out.degraded = p.ok && !p.usable();
          if (p.blurred) out.detail = "blurred";
          if (p.wrong_position) out.detail = "wrong_position";
          done(out);
        });
  };
}

struct ScheduleExecutor::Run {
  ExecutionReport report;
  std::map<device::DeviceId, std::vector<const ScheduledItem*>> per_device;
  std::map<std::uint64_t, const ActionRequest*> requests_by_id;
  std::size_t devices_pending = 0;
  aorta::util::TimePoint started_at;
  std::function<void(ExecutionReport)> done;
  // Keeps the schedule's items alive for the duration of the run.
  std::vector<ScheduledItem> items_storage;
  std::vector<ActionRequest> requests_storage;
};

void ScheduleExecutor::execute(const ScheduleResult& schedule,
                               const std::vector<ActionRequest>& requests,
                               std::function<void(ExecutionReport)> done) {
  auto run = std::make_shared<Run>();
  run->done = std::move(done);
  run->started_at = loop_->now();
  run->items_storage = schedule.items;
  run->requests_storage = requests;
  for (const auto& r : run->requests_storage) run->requests_by_id[r.id] = &r;
  for (const auto& item : run->items_storage) {
    run->per_device[item.device].push_back(&item);
  }
  for (auto& [id, items] : run->per_device) {
    std::sort(items.begin(), items.end(),
              [](const ScheduledItem* a, const ScheduledItem* b) {
                return a->start_s < b->start_s;
              });
  }
  run->devices_pending = run->per_device.size();
  if (run->devices_pending == 0) {
    run->done(run->report);
    return;
  }

  if (!use_locks_) {
    // No synchronization (Section 6.2 ablation): every action is fired the
    // moment it is assigned, with nothing serializing access to a device.
    // Concurrent commands then interfere inside the device exactly as the
    // paper observed on the real cameras. Completion is tracked by count.
    std::size_t total = 0;
    for (const auto& [device_id, items] : run->per_device) total += items.size();
    auto outstanding = std::make_shared<std::size_t>(total);
    for (const auto& [device_id, items] : run->per_device) {
      for (const ScheduledItem* item : items) {
        dispatch_unsynchronized(run, device_id, item, outstanding);
      }
    }
    return;
  }

  // Collect device ids first: execute_chain may complete synchronously-ish
  // and mutate the map during iteration otherwise.
  std::vector<device::DeviceId> device_ids;
  for (const auto& [device_id, items] : run->per_device) {
    device_ids.push_back(device_id);
  }
  for (const auto& device_id : device_ids) {
    execute_chain(run, device_id, 0);
  }
}

void ScheduleExecutor::dispatch_unsynchronized(
    std::shared_ptr<Run> run, const device::DeviceId& device_id,
    const ScheduledItem* item, std::shared_ptr<std::size_t> outstanding) {
  const ActionRequest* request = run->requests_by_id[item->request_id];
  auto finish_one = [this, run, outstanding]() {
    if (--*outstanding == 0) {
      run->report.actual_makespan_s =
          (loop_->now() - run->started_at).to_seconds();
      run->done(run->report);
    }
  };
  if (request == nullptr) {
    ++run->report.failures;
    finish_one();
    return;
  }
  aorta::util::TimePoint dispatched = loop_->now();
  execute_(device_id, *request,
           [run, item, dispatched, finish_one, this](Result<ActionOutcome> outcome) {
             run->report.actual_cost_s[item->request_id] =
                 (loop_->now() - dispatched).to_seconds();
             ActionOutcome recorded;
             if (outcome.is_ok()) {
               recorded = outcome.value();
             } else {
               recorded.ok = false;
               recorded.detail = outcome.status().to_string();
             }
             run->report.outcomes[item->request_id] = recorded;
             if (!recorded.ok) {
               ++run->report.failures;
             } else if (recorded.usable()) {
               ++run->report.actions_usable;
             } else {
               ++run->report.actions_degraded;
             }
             finish_one();
           });
}

void ScheduleExecutor::execute_chain(std::shared_ptr<Run> run,
                                     const device::DeviceId& device_id,
                                     std::size_t index) {
  auto& items = run->per_device[device_id];
  if (index >= items.size()) {
    if (--run->devices_pending == 0) {
      run->report.actual_makespan_s = (loop_->now() - run->started_at).to_seconds();
      run->done(run->report);
    }
    return;
  }

  const ScheduledItem* item = items[index];
  const ActionRequest* request = run->requests_by_id[item->request_id];
  if (request == nullptr) {  // schedule references an unknown request
    ++run->report.failures;
    execute_chain(run, device_id, index + 1);
    return;
  }
  const std::string owner = "req-" + std::to_string(item->request_id);

  auto dispatch = [this, run, device_id, index, item, request, owner]() {
    aorta::util::TimePoint dispatched = loop_->now();
    execute_(device_id, *request,
             [this, run, device_id, index, item, owner,
              dispatched](Result<ActionOutcome> outcome) {
               run->report.actual_cost_s[item->request_id] =
                   (loop_->now() - dispatched).to_seconds();
               ActionOutcome recorded;
               if (outcome.is_ok()) {
                 recorded = outcome.value();
               } else {
                 recorded.ok = false;
                 recorded.detail = outcome.status().to_string();
               }
               run->report.outcomes[item->request_id] = recorded;
               if (!recorded.ok) {
                 ++run->report.failures;
               } else if (recorded.usable()) {
                 ++run->report.actions_usable;
               } else {
                 ++run->report.actions_degraded;
               }
               if (use_locks_) {
                 aorta::util::Status unlock = locks_->unlock(device_id, owner);
                 if (!unlock.is_ok()) {
                   AORTA_LOG(kError, "sched") << unlock.to_string();
                 }
               }
               execute_chain(run, device_id, index + 1);
             });
  };

  if (use_locks_) {
    locks_->lock(device_id, owner, dispatch);
  } else {
    dispatch();
  }
}

}  // namespace aorta::sched
