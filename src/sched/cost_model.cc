#include "sched/cost_model.h"

#include <cmath>

#include "devices/camera.h"
#include "devices/ptz_math.h"

namespace aorta::sched {

namespace {

double status_value(const DeviceStatus& status, const std::string& key,
                    double fallback) {
  auto it = status.find(key);
  return it == status.end() ? fallback : it->second;
}

double param_value(const ActionRequest& request, const std::string& key,
                   double fallback) {
  auto it = request.params.find(key);
  return it == request.params.end() ? fallback : it->second;
}

// Resolve the target head position of a photo request on a device.
// Synthetic scheduling workloads carry an absolute head target (pan/tilt/
// zoom); engine-issued requests carry the event's world location
// (target_x/y/z), which must be aimed per candidate camera using the pose
// the probe merged into the status (pose_x/y/z, yaw) — different cameras
// need different head sweeps for the same event.
devices::PtzPosition resolve_target(const ActionRequest& request,
                                    const DeviceStatus& status) {
  if (request.params.count("pan") > 0 || request.params.count("tilt") > 0) {
    return devices::PtzPosition{param_value(request, "pan", 0.0),
                                param_value(request, "tilt", 0.0),
                                param_value(request, "zoom", 1.0)};
  }
  devices::CameraPose pose;
  pose.location = device::Location{status_value(status, "pose_x", 0.0),
                                   status_value(status, "pose_y", 0.0),
                                   status_value(status, "pose_z", 0.0)};
  pose.yaw_deg = status_value(status, "yaw", 0.0);
  device::Location target{param_value(request, "target_x", 0.0),
                          param_value(request, "target_y", 0.0),
                          param_value(request, "target_z", 0.0)};
  return devices::aim_at(pose, target);
}

}  // namespace

device::ActionProfile PhotoCostModel::make_photo_profile() {
  using Node = device::ActionProfileNode;
  std::vector<std::unique_ptr<Node>> axes;
  axes.push_back(Node::op("pan"));
  axes.push_back(Node::op("tilt"));
  axes.push_back(Node::op("zoom"));
  std::vector<std::unique_ptr<Node>> steps;
  steps.push_back(Node::par(std::move(axes)));
  steps.push_back(Node::op("snap_medium"));
  return device::ActionProfile("photo", "camera", Node::seq(std::move(steps)),
                               {"pan", "tilt", "zoom"});
}

PhotoCostModel::PhotoCostModel(device::AtomicOpCostTable op_costs,
                               device::ActionProfile profile)
    : op_costs_(std::move(op_costs)), profile_(std::move(profile)) {}

std::unique_ptr<PhotoCostModel> PhotoCostModel::axis2130() {
  device::DeviceTypeInfo info = devices::camera_type_info();
  return std::make_unique<PhotoCostModel>(std::move(info.op_costs),
                                          make_photo_profile());
}

double PhotoCostModel::cost_s(const ActionRequest& request,
                              const DeviceStatus& status) const {
  const devices::PtzPosition target = resolve_target(request, status);
  // Unit counts for the rate ops are the axis sweeps this request needs
  // from the device's current head position; fixed ops (snap) ignore them.
  auto units_for = [&](const std::string& op) -> double {
    if (op == "pan") {
      return std::abs(target.pan_deg - status_value(status, "pan", 0.0));
    }
    if (op == "tilt") {
      return std::abs(target.tilt_deg - status_value(status, "tilt", 0.0));
    }
    if (op == "zoom") {
      return std::abs(target.zoom - status_value(status, "zoom", 1.0));
    }
    return -1.0;  // profile default
  };
  return profile_.estimate_cost_s(op_costs_, units_for) + request.base_cost_s;
}

void PhotoCostModel::apply(const ActionRequest& request, DeviceStatus* status) const {
  const devices::PtzPosition target = resolve_target(request, *status);
  (*status)["pan"] = target.pan_deg;
  (*status)["tilt"] = target.tilt_deg;
  (*status)["zoom"] = target.zoom;
}

}  // namespace aorta::sched
