// MetricsRegistry: the named-metric substrate every subsystem's counters
// live on.
//
// Before this layer, each module kept a private stats struct and the
// service's stats_json() hand-concatenated five sections (server
// admission, ScanBroker, network/RPC, health, compiled eval) with no
// common naming or rendering. The registry replaces that with one
// substrate:
//
//   * modules *enroll* their counters under dotted names
//     ("network.rpc.completed", "scan_broker.types.sensor.batches") — the
//     counter storage stays in the owning module, so hot-path increments
//     remain a plain `++field` with zero indirection;
//   * gauges are enrolled as callbacks, sampled at snapshot time
//     ("sessions.active", "health.quarantined");
//   * latency distributions are LatencyHistograms: fixed-width export
//     buckets plus the exact sample summary the historic stats_json
//     percentiles were computed from (so migrated output values are
//     bit-identical);
//   * one renderer walks the registry in sorted name order and emits the
//     nested JSON document — deterministic across same-seed runs.
//
// Naming scheme (DESIGN.md section 10): lowercase dotted paths,
// `<section>.<subsystem...>.<metric>`; dynamic components (tenant ids,
// device types) are sanitized with sanitize_component() so they cannot
// open unintended nesting levels.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <variant>

#include "util/json_writer.h"
#include "util/stats.h"

namespace aorta::obs {

// A latency distribution: exact samples (count / percentiles / max, the
// values stats_json has always published) plus a fixed-bucket histogram
// for export — bounded-resolution data a dashboard can diff cheaply.
class LatencyHistogram {
 public:
  // Buckets span [lo_ms, hi_ms) in `buckets` equal steps; out-of-range
  // samples land in under/overflow. Defaults fit the simulated stack's
  // admission and sweep latencies (sub-second, ms resolution).
  explicit LatencyHistogram(double lo_ms = 0.0, double hi_ms = 1000.0,
                            std::size_t buckets = 50)
      : hist_(lo_ms, hi_ms, buckets) {}

  void add(double ms) {
    summary_.add(ms);
    hist_.add(ms);
  }

  const aorta::util::Summary& summary() const { return summary_; }
  const aorta::util::Histogram& buckets() const { return hist_; }

  // {"count": N, "p50": x, "p99": x, "max": x} — the historic stats_json
  // shape; include_buckets appends the fixed-bucket export.
  void write_json(aorta::util::JsonWriter& w, bool include_buckets) const;

 private:
  aorta::util::Summary summary_;
  aorta::util::Histogram hist_;
};

class MetricsRegistry {
 public:
  using GaugeFn = std::function<std::int64_t()>;
  using BoolGaugeFn = std::function<bool()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Enrollment registers a *view* of module-owned storage; the module must
  // outlive the registry or unenroll first (components with a shorter
  // lifetime than the system — e.g. the server layer — unenroll their
  // prefix on destruction). Re-enrolling a name replaces the old entry.
  void enroll_counter(std::string name, const std::uint64_t* counter);
  void enroll_gauge(std::string name, GaugeFn fn);
  void enroll_gauge_bool(std::string name, BoolGaugeFn fn);
  void enroll_histogram(std::string name, const LatencyHistogram* hist);

  // Mark an enrolled metric *volatile*: its value depends on wall-clock
  // timing (barrier stall histograms, host-side timings), not on the
  // virtual-clock execution. Volatile metrics are excluded from the
  // default deterministic JSON rendering so same-seed snapshots stay
  // byte-identical across thread counts; pass include_volatile to see
  // them. No-op if the name is not enrolled.
  void mark_volatile(const std::string& name);

  void unenroll(const std::string& name);
  // Remove every metric whose name starts with `prefix`.
  void unenroll_prefix(std::string_view prefix);

  // A registry view that prepends a fixed prefix to every enrolled name,
  // so the same view schema can be enrolled N times under indexed
  // namespaces ("shard.0.scan_broker.*", "shard.1.scan_broker.*") without
  // colliding. A default-constructed Scoped (or one on a null registry)
  // turns every enrollment into a no-op, which lets modules keep a single
  // unconditional enrollment path.
  class Scoped {
   public:
    Scoped() = default;
    Scoped(MetricsRegistry* registry, std::string prefix)
        : registry_(registry), prefix_(std::move(prefix)) {}

    bool live() const { return registry_ != nullptr; }
    const std::string& prefix() const { return prefix_; }
    MetricsRegistry* registry() const { return registry_; }

    void enroll_counter(const std::string& name, const std::uint64_t* c) {
      if (registry_ != nullptr) registry_->enroll_counter(prefix_ + name, c);
    }
    void enroll_gauge(const std::string& name, GaugeFn fn) {
      if (registry_ != nullptr) {
        registry_->enroll_gauge(prefix_ + name, std::move(fn));
      }
    }
    void enroll_gauge_bool(const std::string& name, BoolGaugeFn fn) {
      if (registry_ != nullptr) {
        registry_->enroll_gauge_bool(prefix_ + name, std::move(fn));
      }
    }
    void enroll_histogram(const std::string& name, const LatencyHistogram* h) {
      if (registry_ != nullptr) registry_->enroll_histogram(prefix_ + name, h);
    }
    void mark_volatile(const std::string& name) {
      if (registry_ != nullptr) registry_->mark_volatile(prefix_ + name);
    }
    // Withdraw everything this scope enrolled.
    void unenroll_all() {
      if (registry_ != nullptr && !prefix_.empty()) {
        registry_->unenroll_prefix(prefix_);
      }
    }

   private:
    MetricsRegistry* registry_ = nullptr;
    std::string prefix_;
  };

  Scoped scoped(std::string prefix) { return Scoped(this, std::move(prefix)); }

  std::size_t size() const { return metrics_.size(); }
  bool contains(const std::string& name) const {
    return metrics_.count(name) > 0;
  }

  // Point reads (tests / gates). Missing or differently-typed names
  // return 0 / false.
  std::uint64_t counter_value(const std::string& name) const;
  std::int64_t gauge_value(const std::string& name) const;

  // Walk every metric in sorted name order, rendering dotted names as
  // nested objects. The whole document is deterministic: same counters in,
  // same bytes out. Volatile (wall-clock) metrics are excluded unless
  // include_volatile is set.
  void write_json(aorta::util::JsonWriter& w, bool include_buckets = false,
                  bool include_volatile = false) const;
  std::string snapshot_json(bool include_buckets = false,
                            bool include_volatile = false) const;

  // Make a dynamic name component safe for dotted paths ('.' -> '_').
  static std::string sanitize_component(std::string_view raw);

 private:
  using Metric = std::variant<const std::uint64_t*, GaugeFn, BoolGaugeFn,
                              const LatencyHistogram*>;
  struct Entry {
    Metric metric;
    bool volatile_metric = false;  // wall-clock dependent; see mark_volatile
  };
  std::map<std::string, Entry> metrics_;
};

}  // namespace aorta::obs
