#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <fstream>

namespace aorta::obs {

std::string_view span_cat_name(SpanCat cat) {
  static constexpr std::array<std::string_view, kSpanCatCount> kNames = {
      "parse",  "register", "sweep", "rpc",    "eval",    "action",
      "delivery", "epoch",  "health", "fragment", "merge",
  };
  auto idx = static_cast<std::size_t>(cat);
  return idx < kNames.size() ? kNames[idx] : "unknown";
}

Tracer::Tracer(std::size_t capacity) : ring_(capacity > 0 ? capacity : 1) {}

void Tracer::record(SpanCat cat, std::string name, util::TimePoint start,
                    util::TimePoint end, std::string detail) {
  if (!enabled_) return;
  Span& slot = ring_[next_];
  slot.start = start;
  slot.dur = end - start;
  slot.cat = cat;
  slot.name = std::move(name);
  slot.detail = std::move(detail);
  next_ = (next_ + 1) % ring_.size();
  ++recorded_;
}

void Tracer::instant(SpanCat cat, std::string name, util::TimePoint at,
                     std::string detail) {
  record(cat, std::move(name), at, at, std::move(detail));
}

std::size_t Tracer::size() const {
  return recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                                  : ring_.size();
}

std::uint64_t Tracer::dropped() const {
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

std::vector<Span> Tracer::snapshot() const {
  std::vector<Span> out;
  std::size_t n = size();
  out.reserve(n);
  // Oldest retained span sits at the write cursor once the ring has wrapped.
  std::size_t start = recorded_ > ring_.size() ? next_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void Tracer::clear() {
  next_ = 0;
  recorded_ = 0;
  for (Span& s : ring_) s = Span{};
}

namespace {

// Shared renderer for single-tracer and merged exports.
void write_spans_chrome_json(util::JsonWriter& w,
                             const std::vector<Span>& spans) {
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  // Metadata: name the process and one thread per category so Perfetto
  // renders a labelled track per pipeline stage.
  w.begin_object();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", 1);
  w.kv("tid", 0);
  w.key("args").begin_object().kv("name", "aorta").end_object();
  w.end_object();
  std::array<bool, kSpanCatCount> present{};
  for (const Span& s : spans) {
    auto idx = static_cast<std::size_t>(s.cat);
    if (idx < present.size()) present[idx] = true;
  }
  for (int c = 0; c < kSpanCatCount; ++c) {
    if (!present[static_cast<std::size_t>(c)]) continue;
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 1);
    w.kv("tid", c + 1);
    w.key("args")
        .begin_object()
        .kv("name", span_cat_name(static_cast<SpanCat>(c)))
        .end_object();
    w.end_object();
  }
  // Sort indices give thread_sort_index = tid implicitly via tid order.
  for (const Span& s : spans) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("cat", span_cat_name(s.cat));
    w.kv("ph", "X");
    w.kv("ts", s.start.to_micros());
    w.kv("dur", s.dur.to_micros());
    w.kv("pid", 1);
    w.kv("tid", static_cast<int>(s.cat) + 1);
    if (!s.detail.empty()) {
      w.key("args").begin_object().kv("detail", s.detail).end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

void Tracer::write_chrome_json(util::JsonWriter& w) const {
  write_spans_chrome_json(w, snapshot());
}

std::string Tracer::chrome_json() const {
  util::JsonWriter w(0);  // compact: trace files get large
  write_chrome_json(w);
  return w.take();
}

util::Status Tracer::export_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return util::internal_error("cannot open trace file: " + path);
  }
  out << chrome_json() << '\n';
  if (!out) {
    return util::internal_error("failed writing trace file: " + path);
  }
  return util::Status::ok();
}

void write_merged_chrome_json(util::JsonWriter& w,
                              const std::vector<const Tracer*>& tracers) {
  // Tag each span with (tracer index, per-tracer position) so the merge
  // order is fully determined by virtual time and the tracer list — never
  // by wall-clock interleaving of the loops that recorded them.
  struct Tagged {
    Span span;
    std::size_t tracer;
    std::size_t pos;
  };
  std::vector<Tagged> tagged;
  for (std::size_t t = 0; t < tracers.size(); ++t) {
    if (tracers[t] == nullptr) continue;
    auto spans = tracers[t]->snapshot();
    tagged.reserve(tagged.size() + spans.size());
    for (std::size_t i = 0; i < spans.size(); ++i) {
      tagged.push_back(Tagged{std::move(spans[i]), t, i});
    }
  }
  std::sort(tagged.begin(), tagged.end(),
            [](const Tagged& a, const Tagged& b) {
              if (a.span.start != b.span.start) {
                return a.span.start < b.span.start;
              }
              if (a.tracer != b.tracer) return a.tracer < b.tracer;
              return a.pos < b.pos;
            });
  std::vector<Span> merged;
  merged.reserve(tagged.size());
  for (Tagged& t : tagged) merged.push_back(std::move(t.span));
  write_spans_chrome_json(w, merged);
}

std::string merged_chrome_json(const std::vector<const Tracer*>& tracers) {
  util::JsonWriter w(0);
  write_merged_chrome_json(w, tracers);
  return w.take();
}

util::Status export_merged_file(const std::string& path,
                                const std::vector<const Tracer*>& tracers) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return util::internal_error("cannot open trace file: " + path);
  }
  out << merged_chrome_json(tracers) << '\n';
  if (!out) {
    return util::internal_error("failed writing trace file: " + path);
  }
  return util::Status::ok();
}

}  // namespace aorta::obs
