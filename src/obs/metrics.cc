#include "obs/metrics.h"

#include <vector>

namespace aorta::obs {

namespace {

// Split a dotted metric name into components.
std::vector<std::string_view> split_name(std::string_view name) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= name.size()) {
    std::size_t dot = name.find('.', start);
    if (dot == std::string_view::npos) {
      parts.push_back(name.substr(start));
      break;
    }
    parts.push_back(name.substr(start, dot - start));
    start = dot + 1;
  }
  return parts;
}

}  // namespace

void LatencyHistogram::write_json(aorta::util::JsonWriter& w,
                                  bool include_buckets) const {
  w.begin_object();
  w.kv("count", static_cast<std::uint64_t>(summary_.count()));
  w.kv("p50", summary_.empty() ? 0.0 : summary_.percentile(50));
  w.kv("p99", summary_.empty() ? 0.0 : summary_.percentile(99));
  w.kv("max", summary_.empty() ? 0.0 : summary_.max());
  if (include_buckets) {
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i < hist_.bucket_count(); ++i) {
      w.value(static_cast<std::uint64_t>(hist_.bucket(i)));
    }
    w.end_array();
    w.kv("bucket_lo", hist_.bucket_count() > 0 ? hist_.bucket_lo(0) : 0.0);
    w.kv("bucket_hi",
         hist_.bucket_count() > 0 ? hist_.bucket_lo(hist_.bucket_count() - 1) +
                                        (hist_.bucket_lo(1) - hist_.bucket_lo(0))
                                  : 0.0);
    w.kv("underflow", static_cast<std::uint64_t>(hist_.underflow()));
    w.kv("overflow", static_cast<std::uint64_t>(hist_.overflow()));
  }
  w.end_object();
}

void MetricsRegistry::enroll_counter(std::string name,
                                     const std::uint64_t* counter) {
  metrics_[std::move(name)] = Entry{counter, false};
}

void MetricsRegistry::enroll_gauge(std::string name, GaugeFn fn) {
  metrics_[std::move(name)] = Entry{std::move(fn), false};
}

void MetricsRegistry::enroll_gauge_bool(std::string name, BoolGaugeFn fn) {
  metrics_[std::move(name)] = Entry{std::move(fn), false};
}

void MetricsRegistry::enroll_histogram(std::string name,
                                       const LatencyHistogram* hist) {
  metrics_[std::move(name)] = Entry{hist, false};
}

void MetricsRegistry::mark_volatile(const std::string& name) {
  auto it = metrics_.find(name);
  if (it != metrics_.end()) it->second.volatile_metric = true;
}

void MetricsRegistry::unenroll(const std::string& name) {
  metrics_.erase(name);
}

void MetricsRegistry::unenroll_prefix(std::string_view prefix) {
  auto it = metrics_.lower_bound(std::string(prefix));
  while (it != metrics_.end() &&
         std::string_view(it->first).substr(0, prefix.size()) == prefix) {
    it = metrics_.erase(it);
  }
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) return 0;
  if (const auto* c = std::get_if<const std::uint64_t*>(&it->second.metric)) {
    return **c;
  }
  return 0;
}

std::int64_t MetricsRegistry::gauge_value(const std::string& name) const {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) return 0;
  if (const auto* g = std::get_if<GaugeFn>(&it->second.metric)) return (*g)();
  if (const auto* b = std::get_if<BoolGaugeFn>(&it->second.metric)) {
    return (*b)() ? 1 : 0;
  }
  return 0;
}

void MetricsRegistry::write_json(aorta::util::JsonWriter& w,
                                 bool include_buckets,
                                 bool include_volatile) const {
  w.begin_object();
  // `open` is the stack of object components currently open; dotted names
  // arrive in sorted order, so shared prefixes nest naturally.
  std::vector<std::string> open;
  for (const auto& [name, entry] : metrics_) {
    if (entry.volatile_metric && !include_volatile) continue;
    auto parts = split_name(name);
    // All but the last component are nesting levels; the last is the key.
    std::size_t dirs = parts.size() - 1;
    std::size_t common = 0;
    while (common < open.size() && common < dirs &&
           open[common] == parts[common]) {
      ++common;
    }
    while (open.size() > common) {
      w.end_object();
      open.pop_back();
    }
    while (open.size() < dirs) {
      w.key(parts[open.size()]).begin_object();
      open.emplace_back(parts[open.size()]);
    }
    w.key(parts.back());
    std::visit(
        [&](const auto& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, const std::uint64_t*>) {
            w.value(*m);
          } else if constexpr (std::is_same_v<T, GaugeFn>) {
            w.value(static_cast<std::int64_t>(m()));
          } else if constexpr (std::is_same_v<T, BoolGaugeFn>) {
            w.value(m());
          } else {
            m->write_json(w, include_buckets);
          }
        },
        entry.metric);
  }
  while (!open.empty()) {
    w.end_object();
    open.pop_back();
  }
  w.end_object();
}

std::string MetricsRegistry::snapshot_json(bool include_buckets,
                                           bool include_volatile) const {
  aorta::util::JsonWriter w(2);
  write_json(w, include_buckets, include_volatile);
  return w.take();
}

std::string MetricsRegistry::sanitize_component(std::string_view raw) {
  std::string out(raw);
  for (char& c : out) {
    if (c == '.') c = '_';
  }
  return out;
}

}  // namespace aorta::obs
