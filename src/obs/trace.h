// Per-query span tracing stamped with virtual-clock times.
//
// The paper's evaluation (PAPER.md §4, Fig. 5) decomposes end-to-end query
// latency into device access / network / query processing stages. The
// Tracer records those stages as *spans* — (category, name, start, end,
// detail) — over the simulation clock, so a single run yields the same
// per-stage breakdown the paper measures, for every query, without
// bench-specific plumbing.
//
// Span taxonomy (one category per pipeline stage, DESIGN.md §10):
//
//   parse     SQL text -> AST                   (server / executor entry)
//   register  AQ registration + scan subscribe  (executor)
//   sweep     one ScanBroker batch: issue ->    (comm)
//             barrier for a device type
//   rpc       a single device RPC in flight     (net)
//   eval      predicate evaluation over a batch (query, per AQ)
//   action    action-operator flush             (query)
//   delivery  tuple hand-off to the tenant      (server)
//   epoch     one executor tick: sweep + flush  (query, brackets the rest)
//   health    quarantine / recovery transitions (core)
//   fragment  czar fragment dispatch / worker    (shard)
//             registration of a query fragment
//   merge     czar merge of per-shard result    (shard)
//             streams up to a watermark frontier
//
// Spans land in a fixed-capacity ring buffer (bounded memory; oldest spans
// are overwritten) and export as Chrome trace-event JSON ("X" complete
// events, ts/dur in virtual microseconds, one tid per category) which
// loads directly in Perfetto / chrome://tracing.
//
// Cost when off: instrumentation sites use AORTA_TRACE_SPAN, which guards
// on the enabled flag *before* evaluating its name/detail arguments — a
// disabled tracer costs one predictable branch and zero allocations.
// Compiling with -DAORTA_DISABLE_TRACING removes even the branch.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/json_writer.h"
#include "util/status.h"
#include "util/time.h"

namespace aorta::obs {

enum class SpanCat : std::uint8_t {
  kParse = 0,
  kRegister,
  kSweep,
  kRpc,
  kEval,
  kAction,
  kDelivery,
  kEpoch,
  kHealth,
  kFragment,
  kMerge,
};
inline constexpr int kSpanCatCount = 11;

std::string_view span_cat_name(SpanCat cat);

struct Span {
  util::TimePoint start;
  util::Duration dur;
  SpanCat cat = SpanCat::kParse;
  std::string name;
  std::string detail;  // query id / device / reason; empty = none
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // Record a completed span [start, end]. No-op when disabled.
  void record(SpanCat cat, std::string name, util::TimePoint start,
              util::TimePoint end, std::string detail = {});
  // Zero-duration marker (rendered as a 0-dur complete event).
  void instant(SpanCat cat, std::string name, util::TimePoint at,
               std::string detail = {});

  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const;               // spans currently retained
  std::uint64_t recorded() const { return recorded_; }  // lifetime total
  std::uint64_t dropped() const;          // overwritten by ring wrap

  // Retained spans, oldest first.
  std::vector<Span> snapshot() const;
  void clear();

  // Chrome trace-event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}.
  // Categories become named threads (metadata "M" events) so Perfetto
  // shows one track per pipeline stage.
  void write_chrome_json(util::JsonWriter& w) const;
  std::string chrome_json() const;
  util::Status export_file(const std::string& path) const;

 private:
  std::vector<Span> ring_;
  std::size_t next_ = 0;        // ring write cursor
  std::uint64_t recorded_ = 0;  // lifetime spans recorded
  bool enabled_ = false;
};

// Merged export over several tracers (one per runtime loop under the
// parallel runtime). Spans are interleaved in (start time, tracer index,
// per-tracer order) order — a pure function of virtual time and the fixed
// tracer list, so the merged document is byte-identical across thread
// counts for same-seed runs. Null tracers in the list are skipped.
void write_merged_chrome_json(util::JsonWriter& w,
                              const std::vector<const Tracer*>& tracers);
std::string merged_chrome_json(const std::vector<const Tracer*>& tracers);
util::Status export_merged_file(const std::string& path,
                                const std::vector<const Tracer*>& tracers);

}  // namespace aorta::obs

// Instrumentation macros. `tracer` is an `obs::Tracer*` (may be null).
// AORTA_TRACE_SPAN's name/detail arguments are only evaluated when the
// tracer is live — string formatting at call sites is free when tracing
// is off. AORTA_DISABLE_TRACING compiles the sites away entirely.
#if defined(AORTA_DISABLE_TRACING)
#define AORTA_TRACE_ENABLED(tracer) false
#define AORTA_TRACE_SPAN(tracer, cat, name, start, end, detail) \
  do {                                                          \
  } while (false)
#define AORTA_TRACE_INSTANT(tracer, cat, name, at, detail) \
  do {                                                     \
  } while (false)
#else
#define AORTA_TRACE_ENABLED(tracer) ((tracer) != nullptr && (tracer)->enabled())
#define AORTA_TRACE_SPAN(tracer, cat, name, start, end, detail)   \
  do {                                                            \
    if (AORTA_TRACE_ENABLED(tracer)) {                            \
      (tracer)->record((cat), (name), (start), (end), (detail));  \
    }                                                             \
  } while (false)
#define AORTA_TRACE_INSTANT(tracer, cat, name, at, detail)  \
  do {                                                      \
    if (AORTA_TRACE_ENABLED(tracer)) {                      \
      (tracer)->instant((cat), (name), (at), (detail));     \
    }                                                       \
  } while (false)
#endif
