#include "net/rpc.h"

#include "util/logging.h"

namespace aorta::net {

using aorta::util::Result;

namespace {
// Bound on the timed-out id memory: enough to recognise any straggler
// that is still in flight, without growing with total call count.
constexpr std::size_t kTimedOutMemory = 1024;
}  // namespace

void RpcClient::call(NodeId dst, std::string kind,
                     std::map<std::string, std::string> fields,
                     aorta::util::Duration timeout, RpcCallback callback,
                     std::size_t payload_bytes) {
  std::uint64_t id = next_request_id_++;

  Message msg;
  msg.src = self_;
  msg.dst = std::move(dst);
  msg.kind = std::move(kind);
  msg.fields = std::move(fields);
  msg.request_id = id;
  msg.payload_bytes = payload_bytes;
  msg.is_request = true;

  aorta::util::EventId timeout_event = network_->loop().schedule(
      timeout, [this, id]() {
        auto it = pending_.find(id);
        if (it == pending_.end()) return;  // reply won the race
        Pending pending = std::move(it->second);
        pending_.erase(it);
        ++stats_.timeouts;
        settle_endpoint(pending, /*timed_out=*/true, /*completed=*/false);
        trace_span(pending, "timeout");
        if (timed_out_.size() >= kTimedOutMemory) {
          timed_out_.erase(timed_out_.begin());
        }
        timed_out_.insert(id);
        pending.callback(Result<Message>(aorta::util::timeout_error(
            "rpc request " + std::to_string(id) + " timed out")));
      });

  Pending pending{std::move(callback), timeout_event};
  pending.started = network_->loop().now();
  pending.dst = msg.dst;
  if (AORTA_TRACE_ENABLED(tracer_)) {
    pending.trace_kind = msg.kind;
  }
  RpcEndpointStats& ep = endpoint_stats_[pending.dst];
  ++ep.calls;
  ++ep.in_flight;
  ep.max_in_flight = std::max(ep.max_in_flight, ep.in_flight);
  pending_.emplace(id, std::move(pending));
  network_->send(std::move(msg));
}

void RpcClient::settle_endpoint(const Pending& pending, bool timed_out,
                                bool completed) {
  RpcEndpointStats& ep = endpoint_stats_[pending.dst];
  if (ep.in_flight > 0) --ep.in_flight;
  if (timed_out) ++ep.timeouts;
  if (completed &&
      network_->loop().now() - pending.started > slow_threshold_) {
    ++ep.slow_replies;
    ++stats_.slow_replies;
  }
}

void RpcClient::trace_span(const Pending& pending, const char* outcome) {
  if (pending.trace_kind.empty()) return;  // call predates tracing-on
  AORTA_TRACE_SPAN(tracer_, obs::SpanCat::kRpc, pending.trace_kind,
                   pending.started, network_->loop().now(),
                   pending.dst + " " + outcome);
}

bool RpcClient::on_reply(const Message& msg) {
  if (msg.request_id == 0) return false;
  auto it = pending_.find(msg.request_id);
  if (it == pending_.end()) {
    // Not pending: either a late reply to a call whose timeout already
    // fired, or not ours at all. Late replies are consumed (a stale
    // reply must not masquerade as a device-initiated push) and counted.
    auto late = timed_out_.find(msg.request_id);
    if (late == timed_out_.end()) return false;
    timed_out_.erase(late);
    ++stats_.late_replies;
    AORTA_LOG(kDebug, "rpc")
        << "late reply from " << msg.src << " for request "
        << msg.request_id << " (already timed out)";
    return true;
  }
  network_->loop().cancel(it->second.timeout_event);
  Pending pending = std::move(it->second);
  pending_.erase(it);
  if (msg.kind == "rpc_unreachable") {
    // The network bounced the request: destination offline or detached.
    ++stats_.unreachable;
    settle_endpoint(pending, /*timed_out=*/false, /*completed=*/false);
    trace_span(pending, "unreachable");
    pending.callback(Result<Message>(aorta::util::unavailable_error(
        "device unreachable: " + msg.src)));
    return true;
  }
  ++stats_.completed;
  settle_endpoint(pending, /*timed_out=*/false, /*completed=*/true);
  trace_span(pending, "ok");
  pending.callback(Result<Message>(msg));
  return true;
}

Message make_reply(const Message& request, std::string kind,
                   std::size_t payload_bytes) {
  Message reply;
  reply.src = request.dst;
  reply.dst = request.src;
  reply.kind = std::move(kind);
  reply.request_id = request.request_id;
  reply.payload_bytes = payload_bytes;
  return reply;
}

}  // namespace aorta::net
