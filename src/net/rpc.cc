#include "net/rpc.h"

namespace aorta::net {

using aorta::util::Result;

void RpcClient::call(NodeId dst, std::string kind,
                     std::map<std::string, std::string> fields,
                     aorta::util::Duration timeout, RpcCallback callback,
                     std::size_t payload_bytes) {
  std::uint64_t id = next_request_id_++;

  Message msg;
  msg.src = self_;
  msg.dst = std::move(dst);
  msg.kind = std::move(kind);
  msg.fields = std::move(fields);
  msg.request_id = id;
  msg.payload_bytes = payload_bytes;

  aorta::util::EventId timeout_event = network_->loop().schedule(
      timeout, [this, id]() {
        auto it = pending_.find(id);
        if (it == pending_.end()) return;  // reply won the race
        RpcCallback cb = std::move(it->second.callback);
        pending_.erase(it);
        ++timeouts_;
        cb(Result<Message>(aorta::util::timeout_error(
            "rpc request " + std::to_string(id) + " timed out")));
      });

  pending_.emplace(id, Pending{std::move(callback), timeout_event});
  network_->send(std::move(msg));
}

bool RpcClient::on_reply(const Message& msg) {
  if (msg.request_id == 0) return false;
  auto it = pending_.find(msg.request_id);
  if (it == pending_.end()) return false;  // late reply after timeout
  network_->loop().cancel(it->second.timeout_event);
  RpcCallback cb = std::move(it->second.callback);
  pending_.erase(it);
  ++completed_;
  cb(Result<Message>(msg));
  return true;
}

Message make_reply(const Message& request, std::string kind,
                   std::size_t payload_bytes) {
  Message reply;
  reply.src = request.dst;
  reply.dst = request.src;
  reply.kind = std::move(kind);
  reply.request_id = request.request_id;
  reply.payload_bytes = payload_bytes;
  return reply;
}

}  // namespace aorta::net
