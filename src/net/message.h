// Messages exchanged on the simulated device network.
//
// Real Aorta spoke many protocols (HTTP to AXIS cameras, serial/radio to
// MICA2 motes, MMS to phones). In the reproduction every protocol message
// is reified as a Message routed by net::Network; the per-device-type comm
// modules (src/comm) translate between this wire format and the uniform
// communication interface, exactly where protocol adapters sat in the
// original system.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace aorta::net {

using NodeId = std::string;

struct Message {
  NodeId src;
  NodeId dst;
  std::string kind;  // protocol verb, e.g. "probe", "ptz_move", "read_attr"
  std::map<std::string, std::string> fields;

  // Approximate on-the-wire size, used by the bandwidth model. A photo
  // transfer is ~50-200 KB, a mote reading ~36 bytes.
  std::size_t payload_bytes = 64;

  // Correlates requests with responses (0 = one-way message).
  std::uint64_t request_id = 0;

  // True for the request half of an RPC (set by RpcClient::call). The
  // network bounces undeliverable requests back to the caller as
  // "rpc_unreachable" so it can fail fast instead of waiting out the
  // timeout; replies and one-way messages are never bounced.
  bool is_request = false;

  std::string field(const std::string& key, const std::string& fallback = "") const {
    auto it = fields.find(key);
    return it == fields.end() ? fallback : it->second;
  }
  double field_double(const std::string& key, double fallback = 0.0) const;
  std::int64_t field_int(const std::string& key, std::int64_t fallback = 0) const;

  Message& set(const std::string& key, const std::string& value) {
    fields[key] = value;
    return *this;
  }
  Message& set_double(const std::string& key, double value);
  Message& set_int(const std::string& key, std::int64_t value);
};

}  // namespace aorta::net
