#include "net/reliable.h"

#include <algorithm>
#include <utility>

#include "util/status.h"

namespace aorta::net {

using aorta::util::Duration;
using aorta::util::Result;
using aorta::util::TimePoint;

void ReliableCall::call(NodeId dst, std::string kind,
                        std::map<std::string, std::string> fields,
                        RpcCallback callback, std::size_t payload_bytes) {
  ++stats_.calls;
  Peer& p = peer(dst);
  const TimePoint now = loop_->now();
  if (p.state == BreakerState::kOpen) {
    if (now < p.open_until) {
      ++stats_.breaker_rejects;
      // Fail asynchronously so callers never re-enter themselves.
      loop_->schedule(Duration::zero(),
                      [cb = std::move(callback), dst]() {
                        cb(Result<Message>(aorta::util::unavailable_error(
                            "circuit open to " + dst)));
                      });
      return;
    }
    p.state = BreakerState::kHalfOpen;
    p.probe_in_flight = false;
    ++stats_.breaker_half_opens;
  }
  if (p.state == BreakerState::kHalfOpen && p.probe_in_flight) {
    ++stats_.breaker_rejects;
    loop_->schedule(Duration::zero(), [cb = std::move(callback), dst]() {
      cb(Result<Message>(aorta::util::unavailable_error(
          "circuit half-open to " + dst + ": probe outstanding")));
    });
    return;
  }

  auto call_state = std::make_shared<Call>();
  call_state->dst = std::move(dst);
  call_state->kind = std::move(kind);
  call_state->fields = std::move(fields);
  call_state->callback = std::move(callback);
  call_state->payload_bytes = payload_bytes;
  attempt(std::move(call_state));
}

void ReliableCall::attempt(std::shared_ptr<Call> call) {
  ++stats_.attempts;
  ++call->attempt;
  Peer& p = peer(call->dst);
  if (p.state == BreakerState::kHalfOpen) p.probe_in_flight = true;
  auto alive = alive_;
  rpc_->call(call->dst, call->kind, call->fields, options_.attempt_timeout,
             [this, alive, call](Result<Message> result) {
               if (!*alive) return;
               on_attempt_result(call, std::move(result));
             },
             call->payload_bytes);
}

void ReliableCall::on_attempt_result(std::shared_ptr<Call> call,
                                     Result<Message> result) {
  Peer& p = peer(call->dst);
  p.probe_in_flight = false;
  if (result.is_ok()) {
    // Any reply — including an application-level error — proves the peer
    // and the link are alive.
    p.consecutive_failures = 0;
    if (p.state != BreakerState::kClosed) {
      p.state = BreakerState::kClosed;
      ++stats_.breaker_closes;
    }
    call->callback(std::move(result));
    return;
  }

  // Timeout or bounce: count toward the breaker.
  ++p.consecutive_failures;
  if (p.state == BreakerState::kHalfOpen) {
    open_breaker(call->dst, p);  // failed probe: back to Open
  } else if (p.state == BreakerState::kClosed &&
             p.consecutive_failures >= options_.breaker_threshold) {
    open_breaker(call->dst, p);
  }

  if (call->attempt >= options_.max_attempts) {
    ++stats_.giveups;
    call->callback(std::move(result));
    return;
  }
  if (p.state == BreakerState::kOpen) {
    // The breaker opened under this call: surface the failure now rather
    // than queueing retries behind a peer supervision just declared dead.
    call->callback(std::move(result));
    return;
  }
  if (!take_retry_token(p)) {
    ++stats_.budget_exhausted;
    call->callback(std::move(result));
    return;
  }

  ++stats_.retries;
  double backoff_s = options_.backoff_base.to_seconds();
  for (int i = 1; i < call->attempt; ++i) backoff_s *= 2.0;
  backoff_s = std::min(backoff_s, options_.backoff_cap.to_seconds());
  if (options_.jitter_frac > 0.0) {
    backoff_s *= rng_.uniform(1.0 - options_.jitter_frac,
                              1.0 + options_.jitter_frac);
  }
  auto alive = alive_;
  loop_->schedule(Duration::seconds(backoff_s),
                  [this, alive, call = std::move(call)]() mutable {
                    if (!*alive) return;
                    attempt(std::move(call));
                  });
}

bool ReliableCall::take_retry_token(Peer& p) {
  const TimePoint now = loop_->now();
  if (!p.tokens_init) {
    p.tokens = options_.retry_budget;
    p.tokens_init = true;
  } else {
    const double elapsed_s = (now - p.last_refill).to_seconds();
    p.tokens = std::min(options_.retry_budget,
                        p.tokens + elapsed_s * options_.retry_refill_per_s);
  }
  p.last_refill = now;
  if (p.tokens < 1.0) return false;
  p.tokens -= 1.0;
  return true;
}

void ReliableCall::open_breaker(const NodeId& dst, Peer& p) {
  p.state = BreakerState::kOpen;
  p.open_until = loop_->now() + options_.breaker_open_for;
  ++stats_.breaker_opens;
  if (peer_down_) peer_down_(dst);
}

void ReliableCall::reset_peer(const NodeId& dst) { peers_.erase(dst); }

BreakerState ReliableCall::breaker_state(const NodeId& dst) const {
  auto it = peers_.find(dst);
  return it == peers_.end() ? BreakerState::kClosed : it->second.state;
}

}  // namespace aorta::net
