// Fabric: the cross-segment router of the parallel runtime.
//
// Under util::LoopGroup each loop owns its own net::Network *segment*
// holding the nodes homed on that loop (a worker's devices and its
// "shard-<i>" endpoint live on the worker's segment; the czar, server and
// host engine live on the control segment). Local traffic — the hot
// device path — never leaves the segment and stays lock-free.
//
// The fabric is the shared routing directory consulted only on a local
// miss: it maps every attached node to (home loop, link-model copy). The
// sender samples both link delays from its *own* segment's RNG (the
// czar<->worker backplane has zero jitter and zero loss, so those sends
// draw nothing) and hands the delivery to the destination loop through
// LoopGroup::post — delivered at the next epoch barrier in deterministic
// (time, source loop, sequence) order. Delivery-time checks (partition,
// offline, detach) run on the destination loop against the destination
// segment's own state.
//
// The directory is guarded by a shared mutex: sends take a shared lock on
// the miss path only; attach/detach/set_link (world building, fault
// events) take the exclusive lock.
#pragma once

#include <map>
#include <mutex>
#include <shared_mutex>

#include "net/network.h"
#include "util/loop_group.h"

namespace aorta::net {

class Fabric {
 public:
  explicit Fabric(aorta::util::LoopGroup* group) : group_(group) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  aorta::util::LoopGroup* group() { return group_; }

  struct Route {
    int loop_index = 0;
    LinkModel link;
  };

  // Segment registration; Network::join_fabric calls this.
  void add_segment(int loop_index, Network* segment) {
    std::unique_lock lock(mutex_);
    segments_[loop_index] = segment;
  }
  Network* segment(int loop_index) const {
    std::shared_lock lock(mutex_);
    auto it = segments_.find(loop_index);
    return it == segments_.end() ? nullptr : it->second;
  }
  // Withdraw a segment and every route homed on it (segment teardown —
  // Network's destructor calls this so no dangling routes survive it).
  void remove_segment(int loop_index) {
    std::unique_lock lock(mutex_);
    segments_.erase(loop_index);
    for (auto it = routes_.begin(); it != routes_.end();) {
      if (it->second.loop_index == loop_index) {
        it = routes_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Home of an attached node, or false if no segment knows it.
  bool route(const NodeId& id, Route* out) const {
    std::shared_lock lock(mutex_);
    auto it = routes_.find(id);
    if (it == routes_.end()) return false;
    *out = it->second;
    return true;
  }

  // Directory maintenance (driven by the owning segment).
  void node_attached(const NodeId& id, int loop_index, const LinkModel& link) {
    std::unique_lock lock(mutex_);
    routes_[id] = Route{loop_index, link};
  }
  void node_detached(const NodeId& id) {
    std::unique_lock lock(mutex_);
    routes_.erase(id);
  }
  void node_link_changed(const NodeId& id, const LinkModel& link) {
    std::unique_lock lock(mutex_);
    auto it = routes_.find(id);
    if (it != routes_.end()) it->second.link = link;
  }

 private:
  aorta::util::LoopGroup* group_;
  mutable std::shared_mutex mutex_;
  std::map<int, Network*> segments_;
  std::map<NodeId, Route> routes_;
};

}  // namespace aorta::net
