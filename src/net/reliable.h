// Reliable request dispatch over RpcClient: retries, budgets, breakers.
//
// RpcClient deliberately has no retries ("Aorta's policy on loss is to
// time out ... and move on") — the right policy for lossy sensor links,
// but not for the czar<->worker backplane, where a lost fragment RPC must
// not strand a statement. ReliableCall wraps RpcClient with:
//
//   * capped-exponential-backoff retries per call (deterministic jitter
//     drawn from a dedicated, constant-derived RNG stream so retrying
//     never perturbs any other stream);
//   * a per-peer retry token bucket, so a dead peer cannot amplify load;
//   * a per-peer circuit breaker (Closed -> Open -> HalfOpen): after
//     `breaker_threshold` consecutive failures the peer is short-circuited
//     for `breaker_open_for` instead of burning full timeouts, and the
//     owner's peer-down hook fires so supervision can react immediately.
//
// Retried requests re-send the exact same fields (including any
// idempotency key) under a fresh request_id; dedup is the receiver's job
// (see shard/fragment.h). DESIGN.md §14 documents the whole protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/rpc.h"
#include "util/event_loop.h"
#include "util/rng.h"

namespace aorta::net {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

struct ReliableCallOptions {
  int max_attempts = 4;
  aorta::util::Duration attempt_timeout = aorta::util::Duration::seconds(1.0);
  aorta::util::Duration backoff_base = aorta::util::Duration::millis(100);
  aorta::util::Duration backoff_cap = aorta::util::Duration::seconds(1.0);
  double jitter_frac = 0.2;  // backoff scaled by uniform(1-j, 1+j)

  // Per-peer retry token bucket: a retry spends one token; tokens refill
  // at `retry_refill_per_s` up to `retry_budget`.
  double retry_budget = 16.0;
  double retry_refill_per_s = 4.0;

  // Per-peer circuit breaker.
  int breaker_threshold = 4;  // consecutive failures before opening
  aorta::util::Duration breaker_open_for = aorta::util::Duration::seconds(2.0);
};

struct ReliableCallStats {
  std::uint64_t calls = 0;             // logical calls issued by the owner
  std::uint64_t attempts = 0;          // physical RPC attempts
  std::uint64_t retries = 0;           // attempts beyond the first
  std::uint64_t giveups = 0;           // calls failed after the last attempt
  std::uint64_t budget_exhausted = 0;  // retries denied by an empty bucket
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_half_opens = 0;
  std::uint64_t breaker_closes = 0;
  std::uint64_t breaker_rejects = 0;   // calls short-circuited while open
};

class ReliableCall {
 public:
  // Fired (once per transition to Open) when a peer's breaker opens —
  // the fast supervision signal.
  using PeerDownHook = std::function<void(const NodeId&)>;

  ReliableCall(RpcClient* rpc, aorta::util::EventLoop* loop,
               aorta::util::Rng rng, ReliableCallOptions options)
      : rpc_(rpc), loop_(loop), rng_(std::move(rng)),
        options_(options), alive_(std::make_shared<bool>(true)) {}
  ~ReliableCall() { *alive_ = false; }

  ReliableCall(const ReliableCall&) = delete;
  ReliableCall& operator=(const ReliableCall&) = delete;

  // Issue a call. `callback` fires exactly once: with the first reply, or
  // with the last attempt's error once retries are exhausted / denied.
  void call(NodeId dst, std::string kind,
            std::map<std::string, std::string> fields, RpcCallback callback,
            std::size_t payload_bytes = 64);

  // Forget a peer's breaker/budget state (supervision recovered it).
  void reset_peer(const NodeId& dst);

  BreakerState breaker_state(const NodeId& dst) const;
  void set_peer_down_hook(PeerDownHook hook) { peer_down_ = std::move(hook); }
  const ReliableCallStats& stats() const { return stats_; }

 private:
  struct Peer {
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    double tokens = 0.0;  // initialised to retry_budget on first use
    bool tokens_init = false;
    aorta::util::TimePoint last_refill;
    aorta::util::TimePoint open_until;
    bool probe_in_flight = false;  // HalfOpen admits a single probe
  };

  struct Call {
    NodeId dst;
    std::string kind;
    std::map<std::string, std::string> fields;
    RpcCallback callback;
    std::size_t payload_bytes = 0;
    int attempt = 0;
  };

  void attempt(std::shared_ptr<Call> call);
  void on_attempt_result(std::shared_ptr<Call> call,
                         aorta::util::Result<Message> result);
  bool take_retry_token(Peer& peer);
  void open_breaker(const NodeId& dst, Peer& peer);
  Peer& peer(const NodeId& dst) { return peers_[dst]; }

  RpcClient* rpc_;
  aorta::util::EventLoop* loop_;
  aorta::util::Rng rng_;
  ReliableCallOptions options_;
  std::shared_ptr<bool> alive_;
  PeerDownHook peer_down_;
  std::map<NodeId, Peer> peers_;
  ReliableCallStats stats_;
};

}  // namespace aorta::net
