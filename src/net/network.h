// Simulated heterogeneous device network.
//
// Replaces the pervasive lab's physical links (Ethernet to cameras,
// 433 MHz radio to motes, the cellular network to phones) with a
// discrete-event model: each attached node has a LinkModel giving its
// one-way latency distribution, loss probability and bandwidth. Delivery
// of a message samples both endpoints' links, so a camera->engine path is
// fast and reliable while a mote->engine path is slow and lossy — the
// heterogeneity Section 3 is about.
//
// Under the parallel runtime a Network instance is one *segment*: the
// slice of the world homed on a single event loop. A send whose
// destination is not attached locally consults the net::Fabric directory
// and hands delivery to the destination loop at the next epoch barrier
// (see fabric.h); a standalone Network (no fabric joined) behaves exactly
// as before.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>

#include "net/message.h"
#include "util/event_loop.h"
#include "util/rng.h"
#include "util/status.h"

namespace aorta::net {

// Per-node link characteristics. Latency is sampled per message as
// max(0, normal(latency_mean, latency_jitter)).
//
// The chaos_* fields are fault-injection perturbations (FaultPlan loss /
// duplicate / reorder / delay spikes). They draw from a *separate*,
// constant-seeded RNG stream so that enabling them never shifts the main
// traffic streams: a chaotic run and a clean run of the same seed produce
// bit-identical device traffic, which is what lets the reliable backplane
// prove byte-identical delivery under a 10%-loss storm (DESIGN.md §14).
// Each traversal's chaos is applied by the segment that owns the link's
// canonical state: the source link at send time, and — for cross-segment
// traffic — the destination link at delivery time on its home loop, so a
// mid-run spike takes effect at one exact virtual instant per loop
// regardless of the thread count.
struct LinkModel {
  double latency_mean_s = 0.002;
  double latency_jitter_s = 0.0005;
  double loss_prob = 0.0;               // per-traversal drop probability
  double bandwidth_bytes_per_s = 1e7;   // serialization delay = size/bw

  // Injected perturbations (all inert at their defaults).
  double chaos_loss_prob = 0.0;         // extra per-traversal drop probability
  double chaos_dup_factor = 1.0;        // mean delivered copies per message (>= 1)
  double chaos_reorder_prob = 0.0;      // probability of an extra reorder delay
  double chaos_reorder_window_s = 0.0;  // reorder delay ~ uniform(0, window)
  double chaos_delay_s = 0.0;           // fixed added one-way latency

  bool has_chaos() const {
    return chaos_loss_prob > 0.0 || chaos_dup_factor > 1.0 ||
           chaos_reorder_prob > 0.0 || chaos_delay_s > 0.0;
  }

  // Preset links modelled after the paper's testbed (Section 6.1).
  static LinkModel lan();          // engine <-> camera: fast, reliable
  static LinkModel mote_radio();   // engine <-> mote: slow, lossy (Crossbow MICA2)
  static LinkModel cellular();     // engine <-> phone: high latency, variable
  static LinkModel perfect();      // zero latency/loss (unit tests)
};

// A node that can receive messages from the network.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void on_message(const Message& msg) = 0;

  // Whether the node currently accepts traffic. Powered-off devices return
  // false: messages to them are counted dropped_offline and requests are
  // bounced back to the caller (fail fast instead of a silent timeout).
  virtual bool accepting() const { return true; }
};

struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_loss = 0;       // random loss on a link
  std::uint64_t dropped_no_route = 0;   // destination not attached
  std::uint64_t dropped_partition = 0;  // destination partitioned away
  std::uint64_t dropped_offline = 0;    // destination attached but offline
  std::uint64_t bounced = 0;            // requests bounced as rpc_unreachable
  std::uint64_t cross_sent = 0;         // handed to another loop's segment
  std::uint64_t dropped_chaos = 0;      // injected chaos_loss_prob drops
  std::uint64_t chaos_dup_copies = 0;   // extra copies injected by duplication
  std::uint64_t chaos_reordered = 0;    // messages given an extra reorder delay
  std::uint64_t chaos_delayed = 0;      // messages given the fixed chaos delay
};

class Fabric;

class Network {
 public:
  Network(aorta::util::EventLoop* loop, aorta::util::Rng rng)
      : loop_(loop), rng_(std::move(rng)), chaos_rng_(kChaosSeed) {}
  ~Network();

  // Constant base seed for the chaos perturbation stream (see chaos_rng_).
  static constexpr std::uint64_t kChaosSeed = 0x9e3779b97f4a7c15ull;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Enroll this network as the segment for `loop_index` on a fabric.
  // Nodes already attached are published to the routing directory.
  void join_fabric(Fabric* fabric, int loop_index);
  int loop_index() const { return loop_index_; }

  // Attach / detach nodes. Detaching models a device leaving the network
  // ("devices may join, move around, or leave ... unpredictably", §4).
  aorta::util::Status attach(const NodeId& id, Endpoint* endpoint, LinkModel link);
  aorta::util::Status detach(const NodeId& id);
  bool attached(const NodeId& id) const { return nodes_.count(id) > 0; }

  // Partition a node: it stays attached but all traffic to/from it is
  // dropped (a phone out of coverage). heal() reverses it. Partition
  // state lives in the node's home segment.
  //
  // set_link/link/partition/heal/is_partitioned forward through the fabric
  // to the node's home segment on a local miss. That forwarding mutates
  // another loop's state and is for world building and fault injection
  // only: call it while the runtime is idle or from the owning loop (fault
  // plans are scheduled onto the target's home loop for this reason).
  aorta::util::Status set_link(const NodeId& id, LinkModel link);
  const LinkModel* link(const NodeId& id) const;
  void partition(const NodeId& id);
  void heal(const NodeId& id);
  bool is_partitioned(const NodeId& id) const;

  // Fire-and-forget send. The message is delivered (or dropped) after the
  // modelled delay. Send never fails synchronously: senders cannot observe
  // loss except by timeout, as on a real network.
  void send(Message msg);

  const NetworkStats& stats() const { return stats_; }
  aorta::util::EventLoop& loop() { return *loop_; }

 private:
  friend class Fabric;

  struct Node {
    Endpoint* endpoint;
    LinkModel link;
  };

  // Sampled one-way delay across a link for a message of `bytes` size.
  double sample_delay_s(const LinkModel& link, std::size_t bytes);

  // Applies one link's chaos perturbations (fault-injected loss /
  // duplication / reordering / delay) to an in-flight message. Draws
  // exclusively from chaos_rng_ so the main traffic streams are
  // untouched. Returns false when the message is dropped; otherwise adds
  // any injected delay to *delay_s and multiplies *copies by the sampled
  // per-traversal duplication count.
  bool apply_chaos(const LinkModel& link, double* delay_s, int* copies);
  // Extra scheduling offset for duplicated copies so they do not land at
  // the exact same instant as the original.
  double chaos_copy_spread_s(const LinkModel& link);
  // Schedules one delivery attempt of `msg` on the local loop after
  // `delay_s` (with the usual delivery-time re-checks).
  void schedule_local_delivery(Message msg, double delay_s);

  // Home segment of a node not attached here (nullptr when the node is
  // local, unknown, or no fabric is joined). Backs the forwarding
  // convenience documented at partition().
  Network* resolve_home(const NodeId& id) const;

  // Return an undeliverable request to its sender as "rpc_unreachable" so
  // the RPC layer can fail it fast. No-op for non-request messages.
  void bounce(const Message& msg);

  // Cross-segment path: the destination is homed on another loop. Both
  // link delays are sampled from *this* segment's RNG (using the fabric's
  // copy of the destination link) so the draw count stays a function of
  // this loop's own execution; delivery is posted to the owning loop.
  void cross_send(Message msg, int dst_loop, const LinkModel& dst_link);
  // Runs on this segment's loop: delivery-time checks + hand-off to the
  // endpoint for a message that arrived over the fabric.
  void deliver_remote(Message msg, int src_loop);
  // Bounce an undeliverable fabric message back to its source segment.
  void bounce_remote(const Message& msg, int src_loop);
  // Hand a bounce notice produced on another segment to the local caller.
  void deliver_notice(const Message& notice);

  aorta::util::EventLoop* loop_;
  aorta::util::Rng rng_;
  // Dedicated stream for chaos perturbations. Seeded with a constant (not
  // forked from rng_, which would shift existing streams) and re-salted
  // with the loop index in join_fabric so segments stay independent.
  aorta::util::Rng chaos_rng_;
  Fabric* fabric_ = nullptr;
  int loop_index_ = 0;
  std::map<NodeId, Node> nodes_;
  std::set<NodeId> partitioned_;
  NetworkStats stats_;
};

}  // namespace aorta::net
