#include "net/network.h"

#include <algorithm>

#include "net/fabric.h"
#include "util/logging.h"

namespace aorta::net {

using aorta::util::Duration;
using aorta::util::Status;

LinkModel LinkModel::lan() {
  // 100 Mbit LAN to an AXIS network camera.
  return LinkModel{.latency_mean_s = 0.002,
                   .latency_jitter_s = 0.0005,
                   .loss_prob = 0.001,
                   .bandwidth_bytes_per_s = 12.5e6};
}

LinkModel LinkModel::mote_radio() {
  // MICA2 433 MHz radio: ~38.4 kbaud, high packet loss (§4 cites [6]).
  return LinkModel{.latency_mean_s = 0.035,
                   .latency_jitter_s = 0.010,
                   .loss_prob = 0.08,
                   .bandwidth_bytes_per_s = 4800.0};
}

LinkModel LinkModel::cellular() {
  // 2005-era GPRS/MMS path.
  return LinkModel{.latency_mean_s = 0.400,
                   .latency_jitter_s = 0.150,
                   .loss_prob = 0.02,
                   .bandwidth_bytes_per_s = 5000.0};
}

LinkModel LinkModel::perfect() {
  return LinkModel{.latency_mean_s = 0.0,
                   .latency_jitter_s = 0.0,
                   .loss_prob = 0.0,
                   .bandwidth_bytes_per_s = 1e12};
}

Network::~Network() {
  if (fabric_ != nullptr) fabric_->remove_segment(loop_index_);
}

void Network::join_fabric(Fabric* fabric, int loop_index) {
  fabric_ = fabric;
  loop_index_ = loop_index;
  // Re-salt the chaos stream per segment so each loop's perturbations are
  // independent yet reproducible (constant-derived, never forked from the
  // main rng — see the header).
  chaos_rng_ = aorta::util::Rng(kChaosSeed ^ static_cast<std::uint64_t>(loop_index));
  fabric_->add_segment(loop_index, this);
  for (const auto& [id, node] : nodes_) {
    fabric_->node_attached(id, loop_index_, node.link);
  }
}

Status Network::attach(const NodeId& id, Endpoint* endpoint, LinkModel link) {
  if (endpoint == nullptr) {
    return aorta::util::invalid_argument_error("null endpoint for node " + id);
  }
  auto [it, inserted] = nodes_.emplace(id, Node{endpoint, link});
  (void)it;
  if (!inserted) {
    return aorta::util::already_exists_error("node already attached: " + id);
  }
  if (fabric_ != nullptr) fabric_->node_attached(id, loop_index_, link);
  return Status::ok();
}

Status Network::detach(const NodeId& id) {
  if (nodes_.erase(id) == 0) {
    return aorta::util::not_found_error("node not attached: " + id);
  }
  partitioned_.erase(id);
  if (fabric_ != nullptr) fabric_->node_detached(id);
  return Status::ok();
}

Network* Network::resolve_home(const NodeId& id) const {
  if (fabric_ == nullptr || nodes_.count(id) > 0) return nullptr;
  Fabric::Route route;
  if (!fabric_->route(id, &route) || route.loop_index == loop_index_) {
    return nullptr;
  }
  return fabric_->segment(route.loop_index);
}

Status Network::set_link(const NodeId& id, LinkModel link) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    if (Network* home = resolve_home(id)) return home->set_link(id, link);
    return aorta::util::not_found_error("node not attached: " + id);
  }
  it->second.link = link;
  if (fabric_ != nullptr) fabric_->node_link_changed(id, link);
  return Status::ok();
}

const LinkModel* Network::link(const NodeId& id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    const Network* home = resolve_home(id);
    return home == nullptr ? nullptr : home->link(id);
  }
  return &it->second.link;
}

void Network::partition(const NodeId& id) {
  if (nodes_.count(id) == 0) {
    if (Network* home = resolve_home(id)) {
      home->partition(id);
      return;
    }
  }
  partitioned_.insert(id);
}

void Network::heal(const NodeId& id) {
  if (nodes_.count(id) == 0) {
    if (Network* home = resolve_home(id)) {
      home->heal(id);
      return;
    }
  }
  partitioned_.erase(id);
}

bool Network::is_partitioned(const NodeId& id) const {
  if (partitioned_.count(id) > 0) return true;
  if (nodes_.count(id) == 0) {
    if (const Network* home = resolve_home(id)) return home->is_partitioned(id);
  }
  return false;
}

double Network::sample_delay_s(const LinkModel& link, std::size_t bytes) {
  double latency = link.latency_mean_s;
  if (link.latency_jitter_s > 0.0) {
    latency = rng_.normal(link.latency_mean_s, link.latency_jitter_s);
  }
  double serialization = static_cast<double>(bytes) / link.bandwidth_bytes_per_s;
  return std::max(0.0, latency) + serialization;
}

bool Network::apply_chaos(const LinkModel& link, double* delay_s, int* copies) {
  if (!link.has_chaos()) return true;
  if (link.chaos_loss_prob > 0.0 && chaos_rng_.chance(link.chaos_loss_prob)) {
    ++stats_.dropped_chaos;
    return false;
  }
  if (link.chaos_delay_s > 0.0) {
    *delay_s += link.chaos_delay_s;
    ++stats_.chaos_delayed;
  }
  if (link.chaos_reorder_prob > 0.0 &&
      chaos_rng_.chance(link.chaos_reorder_prob)) {
    *delay_s += chaos_rng_.uniform(0.0, link.chaos_reorder_window_s);
    ++stats_.chaos_reordered;
  }
  if (link.chaos_dup_factor > 1.0) {
    const double extra = link.chaos_dup_factor - 1.0;
    int n = 1 + static_cast<int>(extra);
    if (chaos_rng_.chance(extra - static_cast<int>(extra))) ++n;
    *copies *= n;
  }
  return true;
}

double Network::chaos_copy_spread_s(const LinkModel& link) {
  const double window = std::max(link.chaos_reorder_window_s, 0.001);
  return chaos_rng_.uniform(0.0, window);
}

void Network::send(Message msg) {
  ++stats_.sent;

  auto src_it = nodes_.find(msg.src);
  auto dst_it = nodes_.find(msg.dst);
  if (dst_it == nodes_.end()) {
    // Local miss: the destination may be homed on another loop's segment.
    if (fabric_ != nullptr) {
      Fabric::Route route;
      if (fabric_->route(msg.dst, &route) &&
          route.loop_index != loop_index_) {
        cross_send(std::move(msg), route.loop_index, route.link);
        return;
      }
    }
    ++stats_.dropped_no_route;
    bounce(msg);
    return;
  }
  if (is_partitioned(msg.src) || is_partitioned(msg.dst)) {
    // Partitions are indistinguishable from loss to the sender (a phone
    // out of coverage does not NAK); no bounce.
    ++stats_.dropped_partition;
    return;
  }

  // Traverse the source link (if the source is a modelled node) and the
  // destination link; loss on either drops the message. Main-rng draws
  // (loss, latency) keep their historic order; chaos perturbations draw
  // from the separate chaos stream after each traversal.
  double delay_s = 0.0;
  int copies = 1;
  if (src_it != nodes_.end()) {
    if (rng_.chance(src_it->second.link.loss_prob)) {
      ++stats_.dropped_loss;
      return;
    }
    delay_s += sample_delay_s(src_it->second.link, msg.payload_bytes);
    if (!apply_chaos(src_it->second.link, &delay_s, &copies)) return;
  }
  if (rng_.chance(dst_it->second.link.loss_prob)) {
    ++stats_.dropped_loss;
    return;
  }
  delay_s += sample_delay_s(dst_it->second.link, msg.payload_bytes);
  if (!apply_chaos(dst_it->second.link, &delay_s, &copies)) return;

  for (int i = 1; i < copies; ++i) {
    ++stats_.chaos_dup_copies;
    schedule_local_delivery(msg,
                            delay_s + chaos_copy_spread_s(dst_it->second.link));
  }
  schedule_local_delivery(std::move(msg), delay_s);
}

void Network::schedule_local_delivery(Message msg, double delay_s) {
  NodeId dst = msg.dst;
  loop_->schedule(Duration::seconds(delay_s),
                  [this, dst, m = std::move(msg)]() {
                    // Re-check at delivery time: the node may have left or
                    // been partitioned while the message was in flight.
                    auto it = nodes_.find(dst);
                    if (it == nodes_.end()) {
                      ++stats_.dropped_no_route;
                      bounce(m);
                      return;
                    }
                    if (is_partitioned(dst)) {
                      ++stats_.dropped_partition;
                      return;
                    }
                    if (!it->second.endpoint->accepting()) {
                      // Attached but powered off: the physical layer sees
                      // the dead interface immediately, so requests fail
                      // fast instead of burning the full RPC timeout.
                      ++stats_.dropped_offline;
                      bounce(m);
                      return;
                    }
                    ++stats_.delivered;
                    it->second.endpoint->on_message(m);
                  });
}

void Network::cross_send(Message msg, int dst_loop, const LinkModel& dst_link) {
  if (is_partitioned(msg.src)) {
    ++stats_.dropped_partition;
    return;
  }
  double delay_s = 0.0;
  int copies = 1;
  auto src_it = nodes_.find(msg.src);
  if (src_it != nodes_.end()) {
    if (rng_.chance(src_it->second.link.loss_prob)) {
      ++stats_.dropped_loss;
      return;
    }
    delay_s += sample_delay_s(src_it->second.link, msg.payload_bytes);
    if (!apply_chaos(src_it->second.link, &delay_s, &copies)) return;
  }
  // Base destination-link traversal is sampled here, from the sender's
  // streams (the fabric's link-model copy; the backplane draws nothing).
  // The destination link's *chaos* is NOT applied here: a fault-plan spike
  // mutates the link at a virtual instant on its home loop, and whether a
  // remote sender's directory read sees it would depend on physical thread
  // timing. deliver_remote applies it on the destination loop instead,
  // against the canonical link state — deterministic at any thread count.
  if (rng_.chance(dst_link.loss_prob)) {
    ++stats_.dropped_loss;
    return;
  }
  delay_s += sample_delay_s(dst_link, msg.payload_bytes);
  ++stats_.cross_sent;

  Network* dst_segment = fabric_->segment(dst_loop);
  const int src_loop = loop_index_;
  for (int i = 1; i < copies; ++i) {
    ++stats_.chaos_dup_copies;
    Message copy = msg;
    fabric_->group()->post(
        loop_index_, dst_loop,
        loop_->now() +
            Duration::seconds(delay_s + chaos_copy_spread_s(dst_link)),
        [dst_segment, src_loop, m = std::move(copy)]() mutable {
          dst_segment->deliver_remote(std::move(m), src_loop);
        });
  }
  fabric_->group()->post(
      loop_index_, dst_loop, loop_->now() + Duration::seconds(delay_s),
      [dst_segment, src_loop, m = std::move(msg)]() mutable {
        dst_segment->deliver_remote(std::move(m), src_loop);
      });
}

void Network::deliver_remote(Message msg, int src_loop) {
  // Runs on this segment's loop. Same delivery-time checks as the local
  // path: the destination may have left, been partitioned or powered off
  // while the message was in flight.
  auto it = nodes_.find(msg.dst);
  if (it == nodes_.end()) {
    ++stats_.dropped_no_route;
    bounce_remote(msg, src_loop);
    return;
  }
  // Destination-link chaos for cross-segment traffic is applied here, on
  // the loop that owns the link's canonical state and chaos stream (see
  // cross_send). The chaos-free path falls straight through.
  if (it->second.link.has_chaos()) {
    double delay_s = 0.0;
    int copies = 1;
    if (!apply_chaos(it->second.link, &delay_s, &copies)) return;
    if (delay_s > 0.0 || copies > 1) {
      for (int i = 1; i < copies; ++i) {
        ++stats_.chaos_dup_copies;
        schedule_local_delivery(
            msg, delay_s + chaos_copy_spread_s(it->second.link));
      }
      schedule_local_delivery(std::move(msg), delay_s);
      return;
    }
  }
  if (is_partitioned(msg.dst)) {
    ++stats_.dropped_partition;
    return;
  }
  if (!it->second.endpoint->accepting()) {
    ++stats_.dropped_offline;
    bounce_remote(msg, src_loop);
    return;
  }
  ++stats_.delivered;
  it->second.endpoint->on_message(msg);
}

void Network::bounce_remote(const Message& msg, int src_loop) {
  if (!msg.is_request || msg.request_id == 0) return;
  Message notice;
  notice.src = msg.dst;
  notice.dst = msg.src;
  notice.kind = "rpc_unreachable";
  notice.request_id = msg.request_id;
  notice.payload_bytes = 0;
  ++stats_.bounced;
  Network* src_segment = fabric_->segment(src_loop);
  if (src_segment == nullptr) return;
  fabric_->group()->post(loop_index_, src_loop, loop_->now(),
                         [src_segment, notice = std::move(notice)]() {
                           src_segment->deliver_notice(notice);
                         });
}

void Network::deliver_notice(const Message& notice) {
  auto it = nodes_.find(notice.dst);
  if (it == nodes_.end()) return;
  it->second.endpoint->on_message(notice);
}

void Network::bounce(const Message& msg) {
  if (!msg.is_request || msg.request_id == 0) return;
  if (nodes_.find(msg.src) == nodes_.end()) return;
  Message notice;
  notice.src = msg.dst;
  notice.dst = msg.src;
  notice.kind = "rpc_unreachable";
  notice.request_id = msg.request_id;
  notice.payload_bytes = 0;
  ++stats_.bounced;
  // Delivered directly to the caller's endpoint (no link traversal: this
  // models the local stack reporting an unreachable peer, not a packet).
  NodeId src = msg.src;
  loop_->schedule(Duration::zero(), [this, src, notice = std::move(notice)]() {
    auto it = nodes_.find(src);
    if (it == nodes_.end()) return;
    it->second.endpoint->on_message(notice);
  });
}

}  // namespace aorta::net
