// Request/response messaging with timeouts over the simulated network.
//
// The probing mechanism (Section 4) and the basic communication methods
// (Section 3.3) both need "send a request, wait bounded time for a reply"
// semantics; RpcClient provides that. There are no retries at this layer —
// Aorta's policy on loss is to time out, exclude the device from device
// selection, and move on, which is what the paper describes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "net/network.h"
#include "obs/trace.h"
#include "util/status.h"

namespace aorta::net {

// Completion callback: a reply Message, a kTimeout status, or a
// kUnavailable status when the network bounced the request (destination
// offline or detached).
using RpcCallback = std::function<void(aorta::util::Result<Message>)>;

struct RpcStats {
  std::uint64_t completed = 0;     // replies delivered to callers
  std::uint64_t timeouts = 0;      // calls that expired with no reply
  std::uint64_t late_replies = 0;  // replies that lost the race to a timeout
  std::uint64_t unreachable = 0;   // calls failed fast by a network bounce
  std::uint64_t slow_replies = 0;  // replies slower than the slow-peer bound
};

// Per-destination counters: queue depth (in-flight calls awaiting a reply
// or timeout) and how often the peer answered slower than the slow-peer
// bound — the backpressure signal a czar needs about each worker.
struct RpcEndpointStats {
  std::uint64_t calls = 0;          // requests issued to this peer
  std::uint64_t in_flight = 0;      // outstanding right now
  std::uint64_t max_in_flight = 0;  // high-water queue depth
  std::uint64_t timeouts = 0;       // calls to this peer that expired
  std::uint64_t slow_replies = 0;   // replies past the slow-peer bound
};

// Client half. Owns a node id on the network and demultiplexes replies by
// request_id. The owner must route inbound messages for that node id to
// on_reply() (typically from its Endpoint::on_message).
class RpcClient {
 public:
  RpcClient(Network* network, NodeId self) : network_(network), self_(std::move(self)) {}

  // Issue a request. `callback` fires exactly once: with the reply, or
  // with kTimeout after `timeout` if no reply arrived.
  void call(NodeId dst, std::string kind,
            std::map<std::string, std::string> fields,
            aorta::util::Duration timeout, RpcCallback callback,
            std::size_t payload_bytes = 64);

  // Feed a message received on the owner's endpoint. Returns true if it
  // was a reply to an outstanding or recently-timed-out call (and was
  // consumed — late replies must not leak to the push handler).
  bool on_reply(const Message& msg);

  const NodeId& self() const { return self_; }
  const RpcStats& stats() const { return stats_; }
  std::uint64_t timeouts() const { return stats_.timeouts; }
  std::uint64_t completed() const { return stats_.completed; }

  // Per-destination queue-depth / slow-peer counters, keyed by node id.
  // Entries appear on first call to a destination and are never dropped.
  const std::map<NodeId, RpcEndpointStats>& endpoint_stats() const {
    return endpoint_stats_;
  }

  // A completed reply counts as slow when its round trip exceeds this
  // bound (globally in RpcStats::slow_replies and per destination).
  // Default 1 s: well past any healthy simulated link's round trip.
  void set_slow_threshold(aorta::util::Duration d) { slow_threshold_ = d; }
  aorta::util::Duration slow_threshold() const { return slow_threshold_; }

  // Span tracing (nullable = off): every call records an `rpc` span from
  // issue to reply/timeout/bounce. The per-call labels are only captured
  // while the tracer is live, so a disabled tracer costs nothing.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct Pending {
    RpcCallback callback;
    aorta::util::EventId timeout_event;
    aorta::util::TimePoint started;
    NodeId dst;
    std::string trace_kind;  // non-empty only when traced
  };

  void trace_span(const Pending& pending, const char* outcome);
  // Close out one in-flight call against its endpoint entry; counts the
  // reply as slow when `completed_rtt` (replies only) exceeds the bound.
  void settle_endpoint(const Pending& pending, bool timed_out,
                       bool completed);

  Network* network_;
  NodeId self_;
  obs::Tracer* tracer_ = nullptr;
  std::uint64_t next_request_id_ = 1;
  std::map<std::uint64_t, Pending> pending_;
  // Request ids whose timeout already fired, kept (bounded) so a straggler
  // reply is recognised and counted instead of silently dropped.
  std::set<std::uint64_t> timed_out_;
  RpcStats stats_;
  std::map<NodeId, RpcEndpointStats> endpoint_stats_;
  aorta::util::Duration slow_threshold_ = aorta::util::Duration::seconds(1.0);
};

// Server-side helper: build a reply to `request` with the same request_id.
Message make_reply(const Message& request, std::string kind,
                   std::size_t payload_bytes = 64);

}  // namespace aorta::net
