// Request/response messaging with timeouts over the simulated network.
//
// The probing mechanism (Section 4) and the basic communication methods
// (Section 3.3) both need "send a request, wait bounded time for a reply"
// semantics; RpcClient provides that. There are no retries at this layer —
// Aorta's policy on loss is to time out, exclude the device from device
// selection, and move on, which is what the paper describes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/network.h"
#include "util/status.h"

namespace aorta::net {

// Completion callback: a reply Message or a kTimeout status.
using RpcCallback = std::function<void(aorta::util::Result<Message>)>;

// Client half. Owns a node id on the network and demultiplexes replies by
// request_id. The owner must route inbound messages for that node id to
// on_reply() (typically from its Endpoint::on_message).
class RpcClient {
 public:
  RpcClient(Network* network, NodeId self) : network_(network), self_(std::move(self)) {}

  // Issue a request. `callback` fires exactly once: with the reply, or
  // with kTimeout after `timeout` if no reply arrived.
  void call(NodeId dst, std::string kind,
            std::map<std::string, std::string> fields,
            aorta::util::Duration timeout, RpcCallback callback,
            std::size_t payload_bytes = 64);

  // Feed a message received on the owner's endpoint. Returns true if it
  // was a reply to an outstanding call (and was consumed).
  bool on_reply(const Message& msg);

  const NodeId& self() const { return self_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t completed() const { return completed_; }

 private:
  struct Pending {
    RpcCallback callback;
    aorta::util::EventId timeout_event;
  };

  Network* network_;
  NodeId self_;
  std::uint64_t next_request_id_ = 1;
  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t timeouts_ = 0;
  std::uint64_t completed_ = 0;
};

// Server-side helper: build a reply to `request` with the same request_id.
Message make_reply(const Message& request, std::string kind,
                   std::size_t payload_bytes = 64);

}  // namespace aorta::net
