#include "net/message.h"

#include <cstdlib>

#include "util/strings.h"

namespace aorta::net {

double Message::field_double(const std::string& key, double fallback) const {
  auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  return end != it->second.c_str() ? v : fallback;
}

std::int64_t Message::field_int(const std::string& key, std::int64_t fallback) const {
  auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  return end != it->second.c_str() ? v : fallback;
}

Message& Message::set_double(const std::string& key, double value) {
  fields[key] = aorta::util::str_format("%.9g", value);
  return *this;
}

Message& Message::set_int(const std::string& key, std::int64_t value) {
  fields[key] = std::to_string(value);
  return *this;
}

}  // namespace aorta::net
