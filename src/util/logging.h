// Leveled logging with simulated-time stamps.
//
// Log lines carry the *simulated* timestamp when a SimClock is attached,
// which makes traces of device/network behaviour directly comparable
// across runs.
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>

#include "util/time.h"

namespace aorta::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

std::string_view log_level_name(LogLevel level);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  // Process-wide logger instance.
  static Logger& instance();

  void set_min_level(LogLevel level) { min_level_ = level; }
  LogLevel min_level() const { return min_level_; }

  // Attach the simulation clock so log lines carry virtual timestamps.
  void attach_clock(const SimClock* clock) { clock_ = clock; }

  // Replace the output sink (default: stderr). Used by tests to capture.
  void set_sink(Sink sink);

  void log(LogLevel level, std::string_view module, const std::string& msg);

 private:
  Logger();
  LogLevel min_level_ = LogLevel::kWarn;
  const SimClock* clock_ = nullptr;
  Sink sink_;
  // Shard loops log from their own threads under the parallel runtime;
  // formatting + the sink call are serialized so lines never interleave.
  std::mutex mutex_;
};

// Stream-style helper: AORTA_LOG(kInfo, "sched") << "assigned " << id;
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view module)
      : level_(level), module_(module) {}
  ~LogMessage() { Logger::instance().log(level_, module_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string module_;
  std::ostringstream stream_;
};

}  // namespace aorta::util

#define AORTA_LOG(level, module)                                      \
  if (::aorta::util::LogLevel::level <                                \
      ::aorta::util::Logger::instance().min_level()) {                \
  } else                                                              \
    ::aorta::util::LogMessage(::aorta::util::LogLevel::level, module)
