// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace aorta::util {

// Split on a delimiter character; empty fields preserved.
std::vector<std::string> split(std::string_view s, char delim);

// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

// ASCII lowercase copy.
std::string to_lower(std::string_view s);

// Case-insensitive ASCII equality (SQL keywords are case-insensitive).
bool iequals(std::string_view a, std::string_view b);

bool starts_with(std::string_view s, std::string_view prefix);

// printf-style formatting into a std::string.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Join elements with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace aorta::util
