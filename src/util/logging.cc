#include "util/logging.h"

#include <cstdio>

#include "util/strings.h"

namespace aorta::util {

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

Logger::Logger() {
  sink_ = [](LogLevel, const std::string& line) {
    std::fputs(line.c_str(), stderr);
    std::fputc('\n', stderr);
  };
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, std::string_view module, const std::string& msg) {
  if (level < min_level_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::string line;
  if (clock_ != nullptr) {
    line = str_format("[%10.6f] ", clock_->now().to_seconds());
  }
  line += log_level_name(level);
  line += " [";
  line += module;
  line += "] ";
  line += msg;
  sink_(level, line);
}

}  // namespace aorta::util
