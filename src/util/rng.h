// Seeded random number generation.
//
// Every stochastic element of the reproduction (link loss, device glitches,
// workload generation, the SA scheduler's moves) draws from an explicitly
// seeded Rng so experiments are reproducible and benches can average over
// independent seeded runs, mirroring the paper's "average of ten
// independent runs".
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace aorta::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
  }

  // Bernoulli trial.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  // Gaussian.
  double normal(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  // Exponential with the given mean (> 0).
  double exponential(double mean) {
    std::exponential_distribution<double> dist(1.0 / mean);
    return dist(engine_);
  }

  // Pick a uniformly random index into a container of size n (n > 0).
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  // Derive an independent child generator (for giving each subsystem its
  // own stream so adding draws in one place does not perturb another).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace aorta::util
