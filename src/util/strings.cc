#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace aorta::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace aorta::util
