#include "util/realtime.h"

#include <chrono>
#include <thread>

namespace aorta::util {

double run_realtime(EventLoop& loop, Duration span, RealTimeOptions options) {
  if (options.speed <= 0.0) options.speed = 1.0;
  const auto wall_start = std::chrono::steady_clock::now();
  const TimePoint sim_start = loop.now();
  const TimePoint sim_end = sim_start + span;

  while (loop.now() < sim_end) {
    TimePoint next = loop.now() + options.quantum;
    if (next > sim_end) next = sim_end;
    loop.run_until(next);

    // Sleep until the wall clock catches up with the simulated progress.
    double sim_elapsed_s = (loop.now() - sim_start).to_seconds();
    double wall_target_s = sim_elapsed_s / options.speed;
    auto wall_deadline =
        wall_start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(wall_target_s));
    std::this_thread::sleep_until(wall_deadline);
  }

  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       wall_start)
      .count();
}

}  // namespace aorta::util
