// LoopGroup: N discrete-event loops stepped in lockstep virtual-time
// windows — the parallel deterministic runtime (DESIGN.md §12).
//
// One global EventLoop serializes the whole simulated world, so added
// cores buy nothing. The LoopGroup instead owns K loops (loop 0 is the
// control loop for the czar/server/host; the sharded plane adds one loop
// per worker), each with its own SimClock, and advances them with a
// conservative epoch-barrier protocol:
//
//   1. BARRIER (serial): every cross-loop message posted during the last
//      window is flushed into its destination loop in deterministic
//      (deliver-time, source loop, per-source sequence) order; then the
//      next window [T, W] is computed as W = min(until, next_event + Q)
//      where next_event is the earliest pending event across all loops
//      and Q is the lookahead quantum.
//   2. RUN (parallel): each loop independently executes its events up to
//      W on its assigned thread. Loops share no mutable state during this
//      phase — cross-loop sends only append to the sender's own outbox.
//
// Determinism: each loop's execution within a window is a fixed function
// of its own event queue and its own seeded RNGs; the only inter-loop
// coupling is the barrier flush, whose order is a sorted merge independent
// of wall-clock interleaving. The window schedule itself depends only on
// virtual event times. Hence the delivered-event stream, metrics and trace
// of a run are byte-identical whether the group runs on 1 thread or 8 —
// the property runtime_determinism_test locks in.
//
// Correctness bound (lookahead): a cross-loop message sent at time t
// carries a modelled link delay d and is delivered at t + d, but it can
// only be *flushed* at the next barrier, i.e. at or after W. Keeping
// Q <= min cross-loop link latency guarantees t + d >= W, so the flush
// never has to move a delivery; if a configuration violates the bound the
// delivery is clamped to the barrier time (counted in posts_clamped) —
// still deterministic, since the barrier grid is virtual-time-derived.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/event_loop.h"
#include "util/time.h"

namespace aorta::util {

// Per-loop runtime counters, all deterministic (window counts and message
// counts depend only on virtual time). Exposed in stats_json() as
// "runtime.<i>.*".
struct LoopRuntimeStats {
  std::uint64_t barrier_waits = 0;    // windows this loop rendezvoused for
  std::uint64_t posts_out = 0;        // cross-loop messages sent
  std::uint64_t posts_in = 0;         // cross-loop messages delivered
  std::uint64_t posts_clamped = 0;    // deliveries moved up to the barrier
  std::uint64_t max_outbox_depth = 0; // peak cross-loop queue depth
};

class LoopGroup {
 public:
  // `quantum` is the barrier lookahead Q described above.
  explicit LoopGroup(Duration quantum = Duration::micros(400));
  ~LoopGroup();

  LoopGroup(const LoopGroup&) = delete;
  LoopGroup& operator=(const LoopGroup&) = delete;

  // Loop 0 (the control loop) exists from construction. add_loop() appends
  // a loop whose clock starts at the control loop's current time; call it
  // only while the group is quiescent (not inside run_until).
  int add_loop();
  int size() const { return static_cast<int>(loops_.size()); }

  EventLoop* loop(int i) { return loops_[static_cast<std::size_t>(i)]->loop.get(); }
  SimClock* clock(int i) { return loops_[static_cast<std::size_t>(i)]->clock.get(); }
  EventLoop* control() { return loop(0); }

  // How many OS threads drive the run phase. 1 (default) executes the
  // loops serially on the caller's thread — same windows, same flush
  // order, byte-identical results. Values above the loop count are capped.
  void set_threads(int n) { threads_ = n < 1 ? 1 : n; }
  int threads() const { return threads_; }
  Duration quantum() const { return quantum_; }

  // Post `fn` to run on loop `dst` at virtual time `when`. Must be called
  // from code executing on loop `src` (or from the caller's thread while
  // the group is quiescent). Lock-free: appends to the source's outbox,
  // which only the barrier's serial phase drains.
  void post(int src, int dst, TimePoint when, std::function<void()> fn);

  // Advance every loop to `until` through barrier-stepped windows. On
  // return all clocks read `until` and no event at or before `until`
  // remains pending. Not re-entrant (asserted via running()).
  void run_until(TimePoint until);
  void run_for(Duration span) { run_until(control()->now() + span); }
  bool running() const { return running_; }

  // Pending events across all loops plus undelivered cross-loop posts.
  std::size_t pending() const;

  const LoopRuntimeStats& stats(int i) const {
    return loops_[static_cast<std::size_t>(i)]->stats;
  }
  std::uint64_t windows() const { return windows_run_; }

  // Wall-clock barrier stall reporting: after each rendezvous the sink of
  // every loop the resuming thread owns is invoked (from that thread) with
  // the milliseconds spent waiting for stragglers. Wall-clock, hence
  // nondeterministic — feed it only into volatile metrics.
  using StallSink = std::function<void(double stall_ms)>;
  void set_stall_sink(int i, StallSink sink) {
    loops_[static_cast<std::size_t>(i)]->stall_sink = std::move(sink);
  }

 private:
  struct CrossPost {
    TimePoint when;
    std::uint64_t seq;  // per-source, monotone
    int src;
    int dst;
    std::function<void()> fn;
  };
  struct PerLoop {
    std::unique_ptr<SimClock> clock;
    std::unique_ptr<EventLoop> loop;
    std::vector<CrossPost> outbox;  // written only by this loop's thread
    std::uint64_t next_post_seq = 1;
    LoopRuntimeStats stats;
    StallSink stall_sink;
  };

  // Serial phase: drain every outbox into the destination loops in sorted
  // (when, src, seq) order, clamping deliveries to `floor`.
  void flush_posts(TimePoint floor);
  // Earliest pending event across all loops; false when all queues empty.
  bool next_event_time(TimePoint* out);
  // Compute the next window end, flushing posts first. Returns false when
  // nothing remains at or before `until`.
  bool plan_window(TimePoint until, TimePoint* window);

  void run_serial(TimePoint until);
  void run_threaded(TimePoint until, int nthreads);

  Duration quantum_;
  int threads_ = 1;
  std::vector<std::unique_ptr<PerLoop>> loops_;
  std::uint64_t windows_run_ = 0;
  bool running_ = false;
};

}  // namespace aorta::util
