// Virtual time for Aorta's discrete-event simulation substrate.
//
// The paper's prototype drove real devices in real time; our reproduction
// replaces the physical testbed with a deterministic simulation (see
// DESIGN.md, substitution table). All durations and timestamps below are
// *simulated* time, counted in integer microseconds so that event ordering
// is exact and runs are reproducible.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace aorta::util {

// A duration in simulated microseconds.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration micros(std::int64_t us) { return Duration(us); }
  static constexpr Duration millis(std::int64_t ms) { return Duration(ms * 1000); }
  static constexpr Duration seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e6));
  }
  static constexpr Duration minutes(double m) { return seconds(m * 60.0); }
  static constexpr Duration zero() { return Duration(0); }

  constexpr std::int64_t to_micros() const { return us_; }
  constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }
  constexpr double to_millis() const { return static_cast<double>(us_) / 1e3; }

  constexpr Duration operator+(Duration other) const { return Duration(us_ + other.us_); }
  constexpr Duration operator-(Duration other) const { return Duration(us_ - other.us_); }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<std::int64_t>(static_cast<double>(us_) * k));
  }
  Duration& operator+=(Duration other) {
    us_ += other.us_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

  std::string to_string() const;  // "1.234s", "56ms", ...

 private:
  explicit constexpr Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

// An absolute point in simulated time (microseconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint from_micros(std::int64_t us) { return TimePoint(us); }
  static constexpr TimePoint origin() { return TimePoint(0); }

  constexpr std::int64_t to_micros() const { return us_; }
  constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint(us_ + d.to_micros()); }
  constexpr Duration operator-(TimePoint other) const {
    return Duration::micros(us_ - other.us_);
  }
  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string to_string() const;

 private:
  explicit constexpr TimePoint(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

// The simulation clock. Only the EventLoop advances it; everything else
// reads it. Separate from EventLoop so leaf components can depend on the
// clock without seeing the scheduler. Storage is a relaxed atomic: under
// the parallel runtime (util::LoopGroup) the logger and observability
// layers may read a clock from another shard's thread while its owning
// loop advances it — each loop is still advanced by exactly one thread
// per window, so no stronger ordering is needed.
class SimClock {
 public:
  TimePoint now() const {
    return TimePoint::from_micros(now_us_.load(std::memory_order_relaxed));
  }

  // Advance to an absolute time. Precondition: monotone (asserts in debug).
  void advance_to(TimePoint t);

 private:
  std::atomic<std::int64_t> now_us_{0};
};

}  // namespace aorta::util
