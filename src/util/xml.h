// Minimal XML parser for Aorta profile files.
//
// The paper stores device catalogs, per-device-type atomic operation cost
// tables ("atomic_operation_cost.xml", Section 3.1) and action profiles
// (Section 2.2/2.3) as XML text files. This parser supports the subset
// those files need: nested elements, attributes (single or double quoted),
// text content, comments, XML declarations, and the five standard entity
// references. It does not support namespaces, CDATA, DTDs, or processing
// instructions beyond the declaration.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace aorta::util {

struct XmlNode {
  std::string name;
  std::map<std::string, std::string> attrs;
  std::vector<std::unique_ptr<XmlNode>> children;
  std::string text;  // concatenated character data directly under this node

  // First child with the given element name, or nullptr.
  const XmlNode* child(std::string_view child_name) const;

  // All children with the given element name.
  std::vector<const XmlNode*> children_named(std::string_view child_name) const;

  // Attribute access with default.
  std::string attr(std::string_view key, std::string_view fallback = "") const;
  bool has_attr(std::string_view key) const;

  // Attribute parsed as double/int; returns fallback when absent/malformed.
  double attr_double(std::string_view key, double fallback = 0.0) const;
  std::int64_t attr_int(std::string_view key, std::int64_t fallback = 0) const;

  // Checked variants: an absent attribute still yields the fallback, but a
  // present-yet-unparsable value (including trailing garbage like "12xy")
  // is a kParseError naming the element and attribute, so hand-written
  // profile files fail loudly instead of silently defaulting fields.
  Result<double> attr_double_checked(std::string_view key,
                                     double fallback = 0.0) const;
  Result<std::int64_t> attr_int_checked(std::string_view key,
                                        std::int64_t fallback = 0) const;

  // Text content of a named child (trimmed), or fallback.
  std::string child_text(std::string_view child_name,
                         std::string_view fallback = "") const;

  // Serialize back to XML (round-trip used in tests and by profile
  // writers).
  std::string to_string(int indent = 0) const;
};

// Parse a document; returns the single root element.
Result<std::unique_ptr<XmlNode>> xml_parse(std::string_view input);

// Escape text for inclusion in XML character data / attribute values.
std::string xml_escape(std::string_view s);

}  // namespace aorta::util
