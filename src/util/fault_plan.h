// Scripted fault injection: chaos scenarios as data.
//
// A FaultPlan is an ordered list of timed fault events — crash/revive a
// device, partition/heal its link, spike a link's loss rate or a device's
// glitch probability over an interval — loaded from an XML document the
// same way device profiles are. The plan itself is pure data; core::Aorta
// applies it by scheduling the events deterministically on the event loop
// (see Aorta::apply_fault_plan), so the same seed plus the same plan
// always yields the same run.
//
// Schema:
//   <fault_plan>
//     <event at="10" kind="crash" device="m1"/>
//     <event at="40" kind="revive" device="m1"/>
//     <event at="15" kind="partition" device="m2"/>
//     <event at="25" kind="heal" device="m2"/>
//     <event at="50" kind="loss" device="m2" prob="0.9" for="10"/>
//     <event at="60" kind="glitch" device="cam1" prob="0.5" for="5"/>
//     <event at="70" kind="partition" shard="1"/>
//     <event at="90" kind="heal" shard="1"/>
//     <event at="5" kind="duplicate" shard="0" factor="1.5" for="45"/>
//     <event at="5" kind="reorder" shard="1" prob="0.3" window="0.004" for="45"/>
//     <event at="5" kind="delay" device="czar" add="0.002" for="45"/>
//   </fault_plan>
//
// `at` is seconds from the moment the plan is applied; `for` (spikes only)
// is the interval length in seconds after which the original value is
// restored; `prob` is the spiked probability in [0, 1].
//
// The backplane verbs perturb a link for the interval: `duplicate`
// delivers each message an average of `factor` (>= 1) times, `reorder`
// adds a uniform(0, window) extra delay with probability `prob`, and
// `delay` adds a fixed `add` seconds of one-way latency. Together with
// `loss` they draw from the network's dedicated chaos RNG stream, so the
// main traffic streams are unperturbed (see net::LinkModel).
//
// crash/revive/partition/heal and the link verbs (loss/duplicate/
// reorder/delay) may name a worker shard index (`shard="1"`) instead of a
// device: the sharded plane resolves the index to that worker engine's
// network node, so bench_chaos can kill one worker — or storm its
// backplane link — and watch the czar ride it out. Exactly one of
// device/shard must be given; unsharded Aorta rejects plans carrying
// shard events. `glitch` is device-only (it perturbs the device itself,
// not a link).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace aorta::util {

struct FaultEvent {
  enum class Kind {
    kCrash,       // device goes offline
    kRevive,      // device comes back online
    kPartition,   // device's link is partitioned from the network
    kHeal,        // partition is lifted
    kLossSpike,   // link loss probability spiked to `prob` for `for_s`
    kGlitchSpike, // device glitch probability spiked to `prob` for `for_s`
    kDuplicateSpike,  // link delivers ~`factor` copies per message for `for_s`
    kReorderSpike,    // link adds uniform(0, window) delay w.p. `prob`
    kDelaySpike,      // link adds a fixed `add_s` one-way latency
  };

  Kind kind = Kind::kCrash;
  std::string target;   // device id (empty when shard >= 0)
  int shard = -1;       // worker shard index; -1 = device-targeted event
  double at_s = 0.0;    // seconds after the plan is applied
  double for_s = 0.0;   // spike duration (spikes only)
  double prob = 0.0;    // spiked probability (loss/glitch/reorder)
  double factor = 1.0;  // mean delivered copies (duplicate only, >= 1)
  double window_s = 0.0;  // reorder delay window (reorder only, > 0)
  double add_s = 0.0;   // fixed added latency (delay only, >= 0)
};

std::string_view fault_event_kind_name(FaultEvent::Kind k);

// Spikes perturb a value for `for_s` then restore it.
bool fault_event_is_spike(FaultEvent::Kind k);
// Link-directed events (may target a shard's backplane link).
bool fault_event_is_link_spike(FaultEvent::Kind k);

struct FaultPlan {
  // Events sorted by at_s (stable: document order breaks ties).
  std::vector<FaultEvent> events;

  // Parse from the XML schema above. Unknown kinds, missing targets,
  // negative times and out-of-range probabilities are kParseError.
  static Result<FaultPlan> from_xml(std::string_view xml);

  // Serialize back to the XML schema (round-trips through from_xml).
  std::string to_xml() const;
};

}  // namespace aorta::util
