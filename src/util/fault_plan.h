// Scripted fault injection: chaos scenarios as data.
//
// A FaultPlan is an ordered list of timed fault events — crash/revive a
// device, partition/heal its link, spike a link's loss rate or a device's
// glitch probability over an interval — loaded from an XML document the
// same way device profiles are. The plan itself is pure data; core::Aorta
// applies it by scheduling the events deterministically on the event loop
// (see Aorta::apply_fault_plan), so the same seed plus the same plan
// always yields the same run.
//
// Schema:
//   <fault_plan>
//     <event at="10" kind="crash" device="m1"/>
//     <event at="40" kind="revive" device="m1"/>
//     <event at="15" kind="partition" device="m2"/>
//     <event at="25" kind="heal" device="m2"/>
//     <event at="50" kind="loss" device="m2" prob="0.9" for="10"/>
//     <event at="60" kind="glitch" device="cam1" prob="0.5" for="5"/>
//     <event at="70" kind="partition" shard="1"/>
//     <event at="90" kind="heal" shard="1"/>
//   </fault_plan>
//
// `at` is seconds from the moment the plan is applied; `for` (loss/glitch
// spikes only) is the interval length in seconds after which the original
// value is restored; `prob` is the spiked probability in [0, 1].
//
// crash/revive/partition/heal events may name a worker shard index
// (`shard="1"`) instead of a device: the sharded plane resolves the index
// to that worker engine's network node, so bench_chaos can kill one worker
// and watch the czar re-route its fragments. Exactly one of device/shard
// must be given; unsharded Aorta rejects plans carrying shard events.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace aorta::util {

struct FaultEvent {
  enum class Kind {
    kCrash,       // device goes offline
    kRevive,      // device comes back online
    kPartition,   // device's link is partitioned from the network
    kHeal,        // partition is lifted
    kLossSpike,   // link loss probability spiked to `prob` for `for_s`
    kGlitchSpike, // device glitch probability spiked to `prob` for `for_s`
  };

  Kind kind = Kind::kCrash;
  std::string target;   // device id (empty when shard >= 0)
  int shard = -1;       // worker shard index; -1 = device-targeted event
  double at_s = 0.0;    // seconds after the plan is applied
  double for_s = 0.0;   // spike duration (loss/glitch only)
  double prob = 0.0;    // spiked probability (loss/glitch only)
};

std::string_view fault_event_kind_name(FaultEvent::Kind k);

struct FaultPlan {
  // Events sorted by at_s (stable: document order breaks ties).
  std::vector<FaultEvent> events;

  // Parse from the XML schema above. Unknown kinds, missing targets,
  // negative times and out-of-range probabilities are kParseError.
  static Result<FaultPlan> from_xml(std::string_view xml);

  // Serialize back to the XML schema (round-trips through from_xml).
  std::string to_xml() const;
};

}  // namespace aorta::util
