// Streaming JSON writer with correct string escaping.
//
// The service's stats_json() and every bench JSON emitter used to build
// documents by hand-concatenating string literals — none of them escaped
// quotes or control characters, so a tenant id (or SQL fragment) with a
// '"' in it produced invalid JSON. JsonWriter centralises rendering:
// callers describe structure (objects, arrays, keys, values) and the
// writer handles commas, indentation and escaping. Output is fully
// deterministic — no locale, no pointer ordering — so same-seed runs
// produce byte-identical documents (the determinism the server and
// observability tests pin).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace aorta::util {

class JsonWriter {
 public:
  // `indent` spaces per nesting level; 0 renders compact single-line JSON.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  // ---- structure -----------------------------------------------------------
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view name);

  // ---- values --------------------------------------------------------------
  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  // Fixed-point rendering ("%.*f"); the default 3 matches the historic
  // stats_json latency formatting. NaN/Inf render as null (JSON has no
  // representation for them).
  JsonWriter& value(double v, int precision = 3);
  JsonWriter& value_null();
  // Pre-rendered JSON fragment spliced in verbatim (trusted input only).
  JsonWriter& value_raw(std::string_view json);

  // Convenience: key + value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }
  JsonWriter& kv(std::string_view name, double v, int precision) {
    key(name);
    return value(v, precision);
  }

  // The rendered document. Structure must be balanced by the time this is
  // read (debug-asserted).
  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

  // JSON string-escape `s` per RFC 8259 (quotes, backslash, control
  // characters as \uXXXX, \n \t \r \b \f shorthands). No surrounding
  // quotes.
  static std::string escape(std::string_view s);

 private:
  enum class Ctx : std::uint8_t { kObject, kArray };
  struct Level {
    Ctx ctx;
    bool has_items = false;
  };

  // Called before writing any value or key: emits the separating comma and
  // newline/indent for the current context.
  void prepare_slot();
  void newline_indent();

  std::string out_;
  std::vector<Level> stack_;
  int indent_;
  bool key_pending_ = false;
};

}  // namespace aorta::util
