// Bounded FIFO with explicit overflow policy and drop accounting.
//
// The service layer (src/server) bounds every buffer a tenant can fill —
// submission queues and result mailboxes — so one hot client cannot grow
// memory without limit. Overflow either rejects the new item or sheds the
// oldest one; both outcomes are counted so benches and tests can report
// shed rates instead of guessing.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

namespace aorta::util {

enum class OverflowPolicy {
  kRejectNew,   // push fails, queue unchanged
  kShedOldest,  // oldest item dropped to make room
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity,
                        OverflowPolicy policy = OverflowPolicy::kRejectNew)
      : capacity_(capacity), policy_(policy) {}

  // Returns false iff the item was rejected (kRejectNew on a full queue).
  bool push(T item) {
    if (items_.size() >= capacity_) {
      if (policy_ == OverflowPolicy::kRejectNew) {
        ++rejected_;
        return false;
      }
      items_.pop_front();
      ++shed_;
    }
    items_.push_back(std::move(item));
    return true;
  }

  std::optional<T> pop() {
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  const T* front() const { return items_.empty() ? nullptr : &items_.front(); }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  std::size_t capacity() const { return capacity_; }
  OverflowPolicy policy() const { return policy_; }

  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t shed() const { return shed_; }
  std::uint64_t dropped() const { return rejected_ + shed_; }

  // Iteration over queued items, oldest first (inspection only).
  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

 private:
  std::size_t capacity_;
  OverflowPolicy policy_;
  std::deque<T> items_;
  std::uint64_t rejected_ = 0;
  std::uint64_t shed_ = 0;
};

}  // namespace aorta::util
