#include "util/loop_group.h"

#include <algorithm>
#include <barrier>
#include <cassert>
#include <chrono>
#include <thread>

namespace aorta::util {

LoopGroup::LoopGroup(Duration quantum) : quantum_(quantum) {
  (void)add_loop();  // loop 0: the control loop
}

LoopGroup::~LoopGroup() = default;

int LoopGroup::add_loop() {
  assert(!running_ && "add_loop while the group is running");
  auto pl = std::make_unique<PerLoop>();
  pl->clock = std::make_unique<SimClock>();
  if (!loops_.empty()) pl->clock->advance_to(loops_[0]->clock->now());
  pl->loop = std::make_unique<EventLoop>(pl->clock.get());
  loops_.push_back(std::move(pl));
  return static_cast<int>(loops_.size()) - 1;
}

void LoopGroup::post(int src, int dst, TimePoint when,
                     std::function<void()> fn) {
  assert(dst >= 0 && dst < size());
  PerLoop& s = *loops_[static_cast<std::size_t>(src)];
  s.outbox.push_back(CrossPost{when, s.next_post_seq++, src, dst,
                               std::move(fn)});
  ++s.stats.posts_out;
  s.stats.max_outbox_depth =
      std::max(s.stats.max_outbox_depth,
               static_cast<std::uint64_t>(s.outbox.size()));
}

void LoopGroup::flush_posts(TimePoint floor) {
  std::vector<CrossPost> all;
  for (auto& pl : loops_) {
    if (pl->outbox.empty()) continue;
    all.insert(all.end(), std::make_move_iterator(pl->outbox.begin()),
               std::make_move_iterator(pl->outbox.end()));
    pl->outbox.clear();
  }
  if (all.empty()) return;
  // The deterministic merge: deliver-time, then source loop, then the
  // source's own send order. Wall-clock interleaving cannot perturb it.
  std::sort(all.begin(), all.end(),
            [](const CrossPost& a, const CrossPost& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (CrossPost& p : all) {
    PerLoop& d = *loops_[static_cast<std::size_t>(p.dst)];
    TimePoint when = p.when;
    if (when < floor) {
      when = floor;  // lookahead violated: land on the barrier instead
      ++d.stats.posts_clamped;
    }
    ++d.stats.posts_in;
    (void)d.loop->schedule_at(when, std::move(p.fn));
  }
}

bool LoopGroup::next_event_time(TimePoint* out) {
  bool any = false;
  TimePoint best;
  for (auto& pl : loops_) {
    TimePoint t;
    if (!pl->loop->next_event_time(&t)) continue;
    if (!any || t < best) best = t;
    any = true;
  }
  if (any) *out = best;
  return any;
}

bool LoopGroup::plan_window(TimePoint until, TimePoint* window) {
  // The barrier time: all loops have met it (clocks only drift apart
  // within a window, and every window ends at the same W).
  TimePoint floor = loops_[0]->clock->now();
  for (auto& pl : loops_) floor = std::max(floor, pl->clock->now());
  flush_posts(floor);
  TimePoint next;
  if (!next_event_time(&next) || next > until) return false;
  // Adaptive window: jump straight to the next event, then extend by the
  // lookahead quantum so a window amortizes more than one event.
  *window = std::min(until, next + quantum_);
  ++windows_run_;
  return true;
}

void LoopGroup::run_serial(TimePoint until) {
  TimePoint window;
  while (plan_window(until, &window)) {
    for (auto& pl : loops_) {
      pl->loop->run_until(window);
      ++pl->stats.barrier_waits;
    }
  }
  for (auto& pl : loops_) pl->loop->run_until(until);
}

void LoopGroup::run_threaded(TimePoint until, int nthreads) {
  struct Plan {
    TimePoint window;
    bool done = false;
  };
  Plan plan;
  const int n = size();
  // The completion function is the serial barrier phase: exactly one
  // thread runs it while every other thread is parked inside the barrier,
  // so flush_posts / plan_window need no further synchronization.
  std::barrier sync(nthreads, [this, until, &plan]() noexcept {
    plan.done = !plan_window(until, &plan.window);
  });
  auto drive = [&](int tid) {
    for (;;) {
      const auto wait_start = std::chrono::steady_clock::now();
      sync.arrive_and_wait();
      const double stall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - wait_start)
              .count();
      if (plan.done) break;
      for (int i = tid; i < n; i += nthreads) {
        PerLoop& pl = *loops_[static_cast<std::size_t>(i)];
        if (pl.stall_sink) pl.stall_sink(stall_ms);
        pl.loop->run_until(plan.window);
        ++pl.stats.barrier_waits;
      }
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(nthreads - 1));
  for (int t = 1; t < nthreads; ++t) workers.emplace_back(drive, t);
  drive(0);
  for (auto& th : workers) th.join();
  for (auto& pl : loops_) pl->loop->run_until(until);
}

void LoopGroup::run_until(TimePoint until) {
  assert(!running_ && "LoopGroup::run_until is not re-entrant");
  running_ = true;
  if (size() == 1) {
    // Degenerate group: behaves exactly like the single global loop.
    PerLoop& pl = *loops_[0];
    do {
      flush_posts(pl.clock->now());
      pl.loop->run_until(until);
    } while (!pl.outbox.empty());
  } else if (std::min(threads_, size()) <= 1) {
    run_serial(until);
  } else {
    run_threaded(until, std::min(threads_, size()));
  }
  running_ = false;
}

std::size_t LoopGroup::pending() const {
  std::size_t total = 0;
  for (const auto& pl : loops_) {
    total += pl->loop->pending() + pl->outbox.size();
  }
  return total;
}

}  // namespace aorta::util
