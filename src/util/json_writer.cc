#include "util/json_writer.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace aorta::util {

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
}

void JsonWriter::prepare_slot() {
  if (key_pending_) {
    key_pending_ = false;  // value follows its key on the same line
    return;
  }
  if (stack_.empty()) return;  // top-level value
  Level& level = stack_.back();
  if (level.has_items) out_ += ',';
  level.has_items = true;
  newline_indent();
}

JsonWriter& JsonWriter::begin_object() {
  prepare_slot();
  out_ += '{';
  stack_.push_back({Ctx::kObject});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back().ctx == Ctx::kObject);
  bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prepare_slot();
  out_ += '[';
  stack_.push_back({Ctx::kArray});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back().ctx == Ctx::kArray);
  bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  assert(!stack_.empty() && stack_.back().ctx == Ctx::kObject);
  assert(!key_pending_);
  prepare_slot();
  out_ += '"';
  out_ += escape(name);
  out_ += indent_ > 0 ? "\": " : "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  prepare_slot();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  prepare_slot();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  prepare_slot();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  prepare_slot();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v, int precision) {
  prepare_slot();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value_null() {
  prepare_slot();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::value_raw(std::string_view json) {
  prepare_slot();
  out_ += json;
  return *this;
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace aorta::util
