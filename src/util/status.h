// Status / Result<T>: lightweight error propagation for Aorta.
//
// Aorta runs over intrinsically unreliable physical devices (lossy radios,
// cameras that time out, phones out of coverage), so most device-facing
// operations return a Status or Result<T> instead of throwing. Exceptions
// are reserved for programming errors (violated preconditions).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace aorta::util {

// Error categories. Modelled on the failure modes the paper discusses:
// timeouts on probes (Section 4), action failures on devices (Section 6.2),
// malformed queries / unknown actions at the declarative interface
// (Section 2.2).
enum class StatusCode {
  kOk = 0,
  kTimeout,          // probe or RPC exceeded the per-device-type TIMEOUT
  kUnavailable,      // device left the network / out of coverage
  kBusy,             // device locked by another action request
  kActionFailed,     // action executed but failed on the device
  kInvalidArgument,  // bad parameter from caller
  kNotFound,         // unknown device / action / query / attribute
  kAlreadyExists,    // duplicate registration
  kParseError,       // declarative interface: malformed statement / XML
  kInternal,         // bug or unexpected state
};

std::string_view status_code_name(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status{}; }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "TIMEOUT: probe to cam1 exceeded 2000ms" style rendering.
  std::string to_string() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

Status timeout_error(std::string message);
Status unavailable_error(std::string message);
Status busy_error(std::string message);
Status action_failed_error(std::string message);
Status invalid_argument_error(std::string message);
Status not_found_error(std::string message);
Status already_exists_error(std::string message);
Status parse_error(std::string message);
Status internal_error(std::string message);

// Minimal expected<T, Status>. Holds either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    // A Result must never hold an OK status without a value.
    if (std::get<Status>(data_).is_ok()) {
      data_ = Status(StatusCode::kInternal, "Result constructed from OK status");
    }
  }

  bool is_ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(data_);
  }

  T value_or(T fallback) const& {
    return is_ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace aorta::util

// Propagate a non-OK status to the caller.
#define AORTA_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::aorta::util::Status _aorta_status = (expr);    \
    if (!_aorta_status.is_ok()) return _aorta_status; \
  } while (false)

// Two-level paste so __LINE__ expands (several uses in one scope are fine).
#define AORTA_CONCAT_INNER(a, b) a##b
#define AORTA_CONCAT(a, b) AORTA_CONCAT_INNER(a, b)

// Assign the value of a Result or propagate its error.
#define AORTA_ASSIGN_OR_RETURN(lhs, expr)                     \
  auto AORTA_CONCAT(_aorta_result_, __LINE__) = (expr);       \
  if (!AORTA_CONCAT(_aorta_result_, __LINE__).is_ok())        \
    return AORTA_CONCAT(_aorta_result_, __LINE__).status();   \
  lhs = std::move(AORTA_CONCAT(_aorta_result_, __LINE__)).value()

// Same, for callers that return Result<U>: the error is re-wrapped.
#define AORTA_ASSIGN_OR_RETURN_RESULT(lhs, expr, U)           \
  auto AORTA_CONCAT(_aorta_result_, __LINE__) = (expr);       \
  if (!AORTA_CONCAT(_aorta_result_, __LINE__).is_ok())        \
    return ::aorta::util::Result<U>(                          \
        AORTA_CONCAT(_aorta_result_, __LINE__).status());     \
  lhs = std::move(AORTA_CONCAT(_aorta_result_, __LINE__)).value()
