#include "util/stats.h"

#include <cstdio>
#include <numeric>

namespace aorta::util {

double Summary::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  return sum() / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

std::vector<double> Summary::sorted() const {
  std::vector<double> s = samples_;
  std::sort(s.begin(), s.end());
  return s;
}

double Summary::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> s = sorted();
  if (s.size() == 1) return s[0];
  double rank = (p / 100.0) * static_cast<double>(s.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  auto hi = std::min(lo + 1, s.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

std::string Summary::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "mean=%.3f sd=%.3f min=%.3f max=%.3f n=%zu",
                mean(), stddev(), min(), max(), samples_.size());
  return buf;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;  // float edge case
    ++counts_[i];
  }
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

std::string Histogram::render(std::size_t max_width) const {
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char buf[96];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::size_t bar =
        peak == 0 ? 0 : counts_[i] * max_width / peak;
    std::snprintf(buf, sizeof(buf), "[%8.3f, %8.3f) %6zu ", bucket_lo(i),
                  bucket_lo(i) + width_, counts_[i]);
    out += buf;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace aorta::util
