#include "util/status.h"

namespace aorta::util {

std::string_view status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kBusy:
      return "BUSY";
    case StatusCode::kActionFailed:
      return "ACTION_FAILED";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out{status_code_name(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status timeout_error(std::string message) {
  return Status(StatusCode::kTimeout, std::move(message));
}
Status unavailable_error(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status busy_error(std::string message) {
  return Status(StatusCode::kBusy, std::move(message));
}
Status action_failed_error(std::string message) {
  return Status(StatusCode::kActionFailed, std::move(message));
}
Status invalid_argument_error(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status not_found_error(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status already_exists_error(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status parse_error(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status internal_error(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace aorta::util
