#include "util/xml.h"

#include <cctype>
#include <cstdlib>

#include "util/strings.h"

namespace aorta::util {

namespace {

// Recursive-descent parser over the input buffer.
class Parser {
 public:
  explicit Parser(std::string_view input) : in_(input) {}

  Result<std::unique_ptr<XmlNode>> parse_document() {
    skip_prolog();
    auto root = parse_element();
    if (!root.is_ok()) return root;
    skip_misc();
    if (pos_ != in_.size()) {
      return parse_error(str_format("trailing content at offset %zu", pos_));
    }
    return root;
  }

 private:
  bool eof() const { return pos_ >= in_.size(); }
  char peek() const { return in_[pos_]; }
  bool looking_at(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }

  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  // Skip <?xml ...?> declarations and comments before the root element.
  void skip_prolog() { skip_misc(); }

  void skip_misc() {
    while (true) {
      skip_ws();
      if (looking_at("<?")) {
        std::size_t end = in_.find("?>", pos_);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 2;
      } else if (looking_at("<!--")) {
        std::size_t end = in_.find("-->", pos_);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 3;
      } else {
        return;
      }
    }
  }

  static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
           c == '.' || c == ':';
  }

  Result<std::string> parse_name() {
    std::size_t start = pos_;
    while (!eof() && is_name_char(peek())) ++pos_;
    if (pos_ == start) {
      return Result<std::string>(
          parse_error(str_format("expected name at offset %zu", pos_)));
    }
    return std::string(in_.substr(start, pos_ - start));
  }

  Result<std::string> parse_attr_value() {
    if (eof() || (peek() != '"' && peek() != '\'')) {
      return Result<std::string>(
          parse_error(str_format("expected quoted value at offset %zu", pos_)));
    }
    char quote = peek();
    ++pos_;
    std::size_t start = pos_;
    while (!eof() && peek() != quote) ++pos_;
    if (eof()) {
      return Result<std::string>(parse_error("unterminated attribute value"));
    }
    std::string raw(in_.substr(start, pos_ - start));
    ++pos_;  // closing quote
    return unescape(raw);
  }

  static std::string unescape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size();) {
      if (s[i] == '&') {
        if (s.substr(i, 4) == "&lt;") {
          out += '<';
          i += 4;
        } else if (s.substr(i, 4) == "&gt;") {
          out += '>';
          i += 4;
        } else if (s.substr(i, 5) == "&amp;") {
          out += '&';
          i += 5;
        } else if (s.substr(i, 6) == "&quot;") {
          out += '"';
          i += 6;
        } else if (s.substr(i, 6) == "&apos;") {
          out += '\'';
          i += 6;
        } else {
          out += s[i++];
        }
      } else {
        out += s[i++];
      }
    }
    return out;
  }

  Result<std::unique_ptr<XmlNode>> parse_element() {
    if (eof() || peek() != '<') {
      return Result<std::unique_ptr<XmlNode>>(
          parse_error(str_format("expected '<' at offset %zu", pos_)));
    }
    ++pos_;
    auto name = parse_name();
    if (!name.is_ok()) return Result<std::unique_ptr<XmlNode>>(name.status());

    auto node = std::make_unique<XmlNode>();
    node->name = std::move(name).value();

    // Attributes.
    while (true) {
      skip_ws();
      if (eof()) {
        return Result<std::unique_ptr<XmlNode>>(
            parse_error("unexpected end inside tag <" + node->name + ">"));
      }
      if (looking_at("/>")) {
        pos_ += 2;
        return node;  // empty element
      }
      if (peek() == '>') {
        ++pos_;
        break;
      }
      auto key = parse_name();
      if (!key.is_ok()) return Result<std::unique_ptr<XmlNode>>(key.status());
      skip_ws();
      if (eof() || peek() != '=') {
        return Result<std::unique_ptr<XmlNode>>(
            parse_error("expected '=' after attribute " + key.value()));
      }
      ++pos_;
      skip_ws();
      auto value = parse_attr_value();
      if (!value.is_ok()) return Result<std::unique_ptr<XmlNode>>(value.status());
      node->attrs[std::move(key).value()] = std::move(value).value();
    }

    // Content: text, children, comments, until matching close tag.
    while (true) {
      if (eof()) {
        return Result<std::unique_ptr<XmlNode>>(
            parse_error("missing close tag for <" + node->name + ">"));
      }
      if (looking_at("<!--")) {
        std::size_t end = in_.find("-->", pos_);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 3;
        continue;
      }
      if (looking_at("</")) {
        pos_ += 2;
        auto close = parse_name();
        if (!close.is_ok()) return Result<std::unique_ptr<XmlNode>>(close.status());
        if (close.value() != node->name) {
          return Result<std::unique_ptr<XmlNode>>(parse_error(
              "mismatched close tag </" + close.value() + "> for <" + node->name + ">"));
        }
        skip_ws();
        if (eof() || peek() != '>') {
          return Result<std::unique_ptr<XmlNode>>(
              parse_error("malformed close tag for <" + node->name + ">"));
        }
        ++pos_;
        node->text = std::string(trim(node->text));
        return node;
      }
      if (peek() == '<') {
        auto child = parse_element();
        if (!child.is_ok()) return child;
        node->children.push_back(std::move(child).value());
        continue;
      }
      // Character data up to the next markup.
      std::size_t end = in_.find('<', pos_);
      if (end == std::string_view::npos) end = in_.size();
      node->text += unescape(in_.substr(pos_, end - pos_));
      pos_ = end;
    }
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

}  // namespace

const XmlNode* XmlNode::child(std::string_view child_name) const {
  for (const auto& c : children) {
    if (c->name == child_name) return c.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(std::string_view child_name) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children) {
    if (c->name == child_name) out.push_back(c.get());
  }
  return out;
}

std::string XmlNode::attr(std::string_view key, std::string_view fallback) const {
  auto it = attrs.find(std::string(key));
  return it == attrs.end() ? std::string(fallback) : it->second;
}

bool XmlNode::has_attr(std::string_view key) const {
  return attrs.count(std::string(key)) > 0;
}

double XmlNode::attr_double(std::string_view key, double fallback) const {
  auto it = attrs.find(std::string(key));
  if (it == attrs.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  return (end != it->second.c_str()) ? v : fallback;
}

std::int64_t XmlNode::attr_int(std::string_view key, std::int64_t fallback) const {
  auto it = attrs.find(std::string(key));
  if (it == attrs.end()) return fallback;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  return (end != it->second.c_str()) ? v : fallback;
}

Result<double> XmlNode::attr_double_checked(std::string_view key,
                                            double fallback) const {
  auto it = attrs.find(std::string(key));
  if (it == attrs.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Result<double>(parse_error("<" + name + "> attribute " +
                                      std::string(key) + "=\"" + it->second +
                                      "\" is not a number"));
  }
  return v;
}

Result<std::int64_t> XmlNode::attr_int_checked(std::string_view key,
                                               std::int64_t fallback) const {
  auto it = attrs.find(std::string(key));
  if (it == attrs.end()) return fallback;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Result<std::int64_t>(parse_error("<" + name + "> attribute " +
                                            std::string(key) + "=\"" +
                                            it->second +
                                            "\" is not an integer"));
  }
  return static_cast<std::int64_t>(v);
}

std::string XmlNode::child_text(std::string_view child_name,
                                std::string_view fallback) const {
  const XmlNode* c = child(child_name);
  return c == nullptr ? std::string(fallback) : c->text;
}

std::string xml_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string XmlNode::to_string(int indent) const {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::string out = pad + "<" + name;
  for (const auto& [k, v] : attrs) {
    out += " " + k + "=\"" + xml_escape(v) + "\"";
  }
  if (children.empty() && text.empty()) {
    out += "/>\n";
    return out;
  }
  out += ">";
  if (!text.empty()) out += xml_escape(text);
  if (!children.empty()) {
    out += "\n";
    for (const auto& c : children) out += c->to_string(indent + 1);
    out += pad;
  }
  out += "</" + name + ">\n";
  return out;
}

Result<std::unique_ptr<XmlNode>> xml_parse(std::string_view input) {
  Parser parser(input);
  return parser.parse_document();
}

}  // namespace aorta::util
