#include "util/time.h"

#include <cassert>
#include <cstdio>

namespace aorta::util {

std::string Duration::to_string() const {
  char buf[48];
  if (us_ % 1'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(us_ / 1'000'000));
  } else if (us_ % 1'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(us_ / 1'000));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6fs", to_seconds());
  }
  return buf;
}

std::string TimePoint::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "t=%.6fs", to_seconds());
  return buf;
}

void SimClock::advance_to(TimePoint t) {
  assert(t.to_micros() >= now_us_.load(std::memory_order_relaxed) &&
         "simulation clock must be monotone");
  now_us_.store(t.to_micros(), std::memory_order_relaxed);
}

}  // namespace aorta::util
