// Discrete-event loop driving Aorta's simulated world.
//
// All asynchrony in the reproduction — network message delivery, device
// action completion, sensor sampling epochs, probe timeouts — is expressed
// as events on this loop. Events at equal timestamps fire in submission
// order (a monotone sequence number breaks ties), which makes every run
// with a fixed RNG seed fully deterministic.
//
// A system may run several loops side by side (one per shard) under a
// util::LoopGroup, which steps them in lockstep virtual-time windows; each
// individual EventLoop stays single-threaded — only one thread ever runs a
// given loop's events during a window.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "util/time.h"

namespace aorta::util {

// Handle used to cancel a pending event (e.g. a timeout that was beaten by
// the response it guarded).
using EventId = std::uint64_t;

class EventLoop {
 public:
  explicit EventLoop(SimClock* clock) : clock_(clock) {}

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimClock& clock() { return *clock_; }
  TimePoint now() const { return clock_->now(); }

  // Schedule `fn` to run `delay` after the current simulated time.
  EventId schedule(Duration delay, std::function<void()> fn);

  // Schedule `fn` at an absolute simulated time (>= now).
  EventId schedule_at(TimePoint when, std::function<void()> fn);

  // Cancel a pending event. Returns false if it already fired or was
  // cancelled. O(1) amortized: marks a tombstone consumed lazily by the
  // run loop; when tombstones outnumber half the heap the heap is
  // compacted in one pass so long-running workloads that cancel heavily
  // (RPC timeouts beaten by replies) stay bounded.
  bool cancel(EventId id);

  // Run events until the queue is empty or the simulated time would exceed
  // `until`. The clock is advanced to `until` on return.
  void run_until(TimePoint until);

  // Convenience: run for a simulated span from the current time.
  void run_for(Duration span) { run_until(now() + span); }

  // Run until the queue drains completely.
  void run_all();

  // Timestamp of the earliest pending (non-cancelled) event. Returns false
  // when the queue is empty. The LoopGroup barrier scheduler uses this to
  // size the next window.
  bool next_event_time(TimePoint* out);

  // Pending (non-cancelled) event count.
  std::size_t pending() const { return live_.size(); }

  // Total events executed since construction (statistics / tests).
  std::uint64_t executed() const { return executed_; }

  // Tombstone bookkeeping (tests / stats).
  std::size_t tombstones() const { return cancelled_.size(); }
  std::uint64_t compactions() const { return compactions_; }

 private:
  struct Event {
    TimePoint when;
    EventId id;  // also the tie-breaker: lower id fires first at equal time
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  // Pops and runs the earliest event. Precondition: heap non-empty.
  void run_one();
  // Discard cancelled events sitting at the top of the heap.
  void prune_top();
  // One-pass removal of every tombstoned event once tombstones exceed half
  // the heap. Clears the tombstone set (stale tombstones for events that
  // already fired vanish with it).
  void maybe_compact();

  SimClock* clock_;
  std::vector<Event> heap_;  // binary heap via std::push_heap / pop_heap
  std::unordered_set<EventId> live_;       // scheduled, not fired/cancelled
  std::unordered_set<EventId> cancelled_;  // tombstones pending in heap_
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace aorta::util
