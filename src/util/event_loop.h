// Discrete-event loop driving Aorta's simulated world.
//
// All asynchrony in the reproduction — network message delivery, device
// action completion, sensor sampling epochs, probe timeouts — is expressed
// as events on this loop. Events at equal timestamps fire in submission
// order (a monotone sequence number breaks ties), which makes every run
// with a fixed RNG seed fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.h"

namespace aorta::util {

// Handle used to cancel a pending event (e.g. a timeout that was beaten by
// the response it guarded).
using EventId = std::uint64_t;

class EventLoop {
 public:
  explicit EventLoop(SimClock* clock) : clock_(clock) {}

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimClock& clock() { return *clock_; }
  TimePoint now() const { return clock_->now(); }

  // Schedule `fn` to run `delay` after the current simulated time.
  EventId schedule(Duration delay, std::function<void()> fn);

  // Schedule `fn` at an absolute simulated time (>= now).
  EventId schedule_at(TimePoint when, std::function<void()> fn);

  // Cancel a pending event. Returns false if it already fired or was
  // cancelled. O(1): marks a tombstone consumed lazily by the run loop.
  bool cancel(EventId id);

  // Run events until the queue is empty or the simulated time would exceed
  // `until`. The clock is advanced to `until` on return.
  void run_until(TimePoint until);

  // Convenience: run for a simulated span from the current time.
  void run_for(Duration span) { run_until(now() + span); }

  // Run until the queue drains completely.
  void run_all();

  // Pending (non-cancelled) event count.
  std::size_t pending() const { return heap_.size() - cancelled_count_; }

  // Total events executed since construction (statistics / tests).
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    TimePoint when;
    EventId id;  // also the tie-breaker: lower id fires first at equal time
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  // Pops and runs the earliest event. Precondition: heap non-empty.
  void run_one();

  SimClock* clock_;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::vector<EventId> cancelled_;  // tombstones, sorted lazily on lookup
  std::size_t cancelled_count_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace aorta::util
