#include "util/event_loop.h"

#include <algorithm>
#include <cassert>

namespace aorta::util {

EventId EventLoop::schedule(Duration delay, std::function<void()> fn) {
  return schedule_at(now() + delay, std::move(fn));
}

EventId EventLoop::schedule_at(TimePoint when, std::function<void()> fn) {
  assert(when >= now() && "cannot schedule an event in the past");
  EventId id = next_id_++;
  heap_.push_back(Event{when, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  live_.insert(id);
  return id;
}

bool EventLoop::cancel(EventId id) {
  if (live_.erase(id) == 0) return false;  // unknown, fired, or cancelled
  cancelled_.insert(id);
  maybe_compact();
  return true;
}

void EventLoop::maybe_compact() {
  if (cancelled_.size() * 2 <= heap_.size()) return;
  std::erase_if(heap_, [this](const Event& e) {
    return cancelled_.count(e.id) != 0;
  });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  cancelled_.clear();
  ++compactions_;
}

void EventLoop::prune_top() {
  while (!heap_.empty() && cancelled_.erase(heap_.front().id) > 0) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventLoop::next_event_time(TimePoint* out) {
  prune_top();
  if (heap_.empty()) return false;
  *out = heap_.front().when;
  return true;
}

void EventLoop::run_one() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  if (cancelled_.erase(ev.id) > 0) return;
  live_.erase(ev.id);
  clock_->advance_to(ev.when);
  ++executed_;
  ev.fn();  // may schedule further events
}

void EventLoop::run_until(TimePoint until) {
  for (;;) {
    prune_top();
    if (heap_.empty() || heap_.front().when > until) break;
    run_one();
  }
  if (now() < until) clock_->advance_to(until);
}

void EventLoop::run_all() {
  for (;;) {
    prune_top();
    if (heap_.empty()) break;
    run_one();
  }
}

}  // namespace aorta::util
