#include "util/event_loop.h"

#include <algorithm>
#include <cassert>

namespace aorta::util {

EventId EventLoop::schedule(Duration delay, std::function<void()> fn) {
  return schedule_at(now() + delay, std::move(fn));
}

EventId EventLoop::schedule_at(TimePoint when, std::function<void()> fn) {
  assert(when >= now() && "cannot schedule an event in the past");
  EventId id = next_id_++;
  heap_.push(Event{when, id, std::move(fn)});
  return id;
}

bool EventLoop::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  if (std::find(cancelled_.begin(), cancelled_.end(), id) != cancelled_.end()) {
    return false;
  }
  cancelled_.push_back(id);
  ++cancelled_count_;
  return true;
}

void EventLoop::run_one() {
  Event ev = heap_.top();
  heap_.pop();
  auto it = std::find(cancelled_.begin(), cancelled_.end(), ev.id);
  if (it != cancelled_.end()) {
    cancelled_.erase(it);
    --cancelled_count_;
    return;
  }
  clock_->advance_to(ev.when);
  ++executed_;
  ev.fn();  // may schedule further events
}

void EventLoop::run_until(TimePoint until) {
  while (!heap_.empty() && heap_.top().when <= until) {
    run_one();
  }
  if (now() < until) clock_->advance_to(until);
}

void EventLoop::run_all() {
  while (!heap_.empty()) {
    run_one();
  }
}

}  // namespace aorta::util
