// Streaming statistics accumulators used by experiment harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

namespace aorta::util {

// Accumulates scalar samples; supports mean / stddev / min / max and exact
// percentiles (keeps all samples — experiment scale is small).
class Summary {
 public:
  void add(double x) { samples_.push_back(x); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double sum() const;
  double mean() const;
  double stddev() const;  // sample stddev (n-1); 0 for n < 2
  double min() const;
  double max() const;

  // p in [0, 100]; linear interpolation between closest ranks.
  double percentile(double p) const;

  // "mean=1.23 sd=0.45 min=0.36 max=5.36 n=20"
  std::string to_string() const;

 private:
  std::vector<double> sorted() const;
  std::vector<double> samples_;
};

// Fixed-width bucket histogram over [lo, hi); under/overflow tracked.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t bucket(std::size_t i) const { return counts_[i]; }
  double bucket_lo(std::size_t i) const;
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }

  // ASCII rendering for bench output.
  std::string render(std::size_t max_width = 50) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace aorta::util
