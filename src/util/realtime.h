// Real-time driver for the discrete-event loop.
//
// Experiments run the simulation as fast as the host allows; interactive
// demos sometimes want simulated time to track wall-clock time (scaled by
// a speed factor) so a human can watch events unfold. The driver advances
// the loop in fixed simulated quanta and sleeps the corresponding wall
// interval between steps — deterministic event ordering is preserved
// because the loop itself is untouched.
#pragma once

#include "util/event_loop.h"

namespace aorta::util {

struct RealTimeOptions {
  // Simulated seconds per wall-clock second. 1.0 = real time; 60.0 = a
  // simulated minute per wall second.
  double speed = 1.0;
  // Simulated step size per iteration; smaller = smoother pacing, more
  // wakeups.
  Duration quantum = Duration::millis(50);
};

// Run the loop for `span` of simulated time, pacing against the wall
// clock. Returns the wall seconds actually spent.
double run_realtime(EventLoop& loop, Duration span,
                    RealTimeOptions options = {});

}  // namespace aorta::util
