#include "util/fault_plan.h"

#include <algorithm>

#include "util/strings.h"
#include "util/xml.h"

namespace aorta::util {

namespace {

bool kind_from_name(std::string_view name, FaultEvent::Kind* out) {
  if (name == "crash") *out = FaultEvent::Kind::kCrash;
  else if (name == "revive") *out = FaultEvent::Kind::kRevive;
  else if (name == "partition") *out = FaultEvent::Kind::kPartition;
  else if (name == "heal") *out = FaultEvent::Kind::kHeal;
  else if (name == "loss") *out = FaultEvent::Kind::kLossSpike;
  else if (name == "glitch") *out = FaultEvent::Kind::kGlitchSpike;
  else if (name == "duplicate") *out = FaultEvent::Kind::kDuplicateSpike;
  else if (name == "reorder") *out = FaultEvent::Kind::kReorderSpike;
  else if (name == "delay") *out = FaultEvent::Kind::kDelaySpike;
  else return false;
  return true;
}

}  // namespace

bool fault_event_is_spike(FaultEvent::Kind k) {
  return k == FaultEvent::Kind::kLossSpike ||
         k == FaultEvent::Kind::kGlitchSpike ||
         fault_event_is_link_spike(k);
}

bool fault_event_is_link_spike(FaultEvent::Kind k) {
  return k == FaultEvent::Kind::kDuplicateSpike ||
         k == FaultEvent::Kind::kReorderSpike ||
         k == FaultEvent::Kind::kDelaySpike;
}

std::string_view fault_event_kind_name(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::kCrash:
      return "crash";
    case FaultEvent::Kind::kRevive:
      return "revive";
    case FaultEvent::Kind::kPartition:
      return "partition";
    case FaultEvent::Kind::kHeal:
      return "heal";
    case FaultEvent::Kind::kLossSpike:
      return "loss";
    case FaultEvent::Kind::kGlitchSpike:
      return "glitch";
    case FaultEvent::Kind::kDuplicateSpike:
      return "duplicate";
    case FaultEvent::Kind::kReorderSpike:
      return "reorder";
    case FaultEvent::Kind::kDelaySpike:
      return "delay";
  }
  return "?";
}

Result<FaultPlan> FaultPlan::from_xml(std::string_view xml) {
  AORTA_ASSIGN_OR_RETURN_RESULT(std::unique_ptr<XmlNode> root, xml_parse(xml),
                                FaultPlan);
  if (root->name != "fault_plan") {
    return Result<FaultPlan>(
        parse_error("expected <fault_plan> root, got <" + root->name + ">"));
  }
  FaultPlan plan;
  for (const XmlNode* node : root->children_named("event")) {
    FaultEvent e;
    const std::string kind = node->attr("kind");
    if (!kind_from_name(kind, &e.kind)) {
      return Result<FaultPlan>(
          parse_error("unknown fault event kind '" + kind + "'"));
    }
    e.target = node->attr("device");
    if (node->has_attr("shard")) {
      if (!e.target.empty()) {
        return Result<FaultPlan>(parse_error(
            str_format("<event kind=\"%s\"> has both device and shard",
                       kind.c_str())));
      }
      if (fault_event_is_spike(e.kind) &&
          !fault_event_is_link_spike(e.kind)) {
        return Result<FaultPlan>(parse_error(
            str_format("<event kind=\"%s\"> cannot target a shard",
                       kind.c_str())));
      }
      AORTA_ASSIGN_OR_RETURN_RESULT(std::int64_t shard,
                                    node->attr_int_checked("shard"),
                                    FaultPlan);
      if (shard < 0) {
        return Result<FaultPlan>(parse_error(
            str_format("<event kind=\"%s\"> shard index is negative",
                       kind.c_str())));
      }
      e.shard = static_cast<int>(shard);
    } else if (e.target.empty()) {
      return Result<FaultPlan>(parse_error(
          str_format("<event kind=\"%s\"> missing device attribute",
                     kind.c_str())));
    }
    AORTA_ASSIGN_OR_RETURN_RESULT(e.at_s, node->attr_double_checked("at"),
                                  FaultPlan);
    AORTA_ASSIGN_OR_RETURN_RESULT(e.for_s, node->attr_double_checked("for"),
                                  FaultPlan);
    AORTA_ASSIGN_OR_RETURN_RESULT(e.prob, node->attr_double_checked("prob"),
                                  FaultPlan);
    if (e.at_s < 0.0 || e.for_s < 0.0) {
      return Result<FaultPlan>(parse_error(
          str_format("<event kind=\"%s\" device=\"%s\"> has negative time",
                     kind.c_str(), e.target.c_str())));
    }
    if (e.prob < 0.0 || e.prob > 1.0) {
      return Result<FaultPlan>(parse_error(
          str_format("<event kind=\"%s\" device=\"%s\"> prob out of [0,1]",
                     kind.c_str(), e.target.c_str())));
    }
    if (fault_event_is_spike(e.kind) && e.for_s <= 0.0) {
      return Result<FaultPlan>(parse_error(
          str_format("<event kind=\"%s\" device=\"%s\"> needs for > 0",
                     kind.c_str(), e.target.c_str())));
    }
    if (e.kind == FaultEvent::Kind::kDuplicateSpike) {
      AORTA_ASSIGN_OR_RETURN_RESULT(e.factor,
                                    node->attr_double_checked("factor"),
                                    FaultPlan);
      if (e.factor < 1.0) {
        return Result<FaultPlan>(parse_error(str_format(
            "<event kind=\"duplicate\"> needs factor >= 1 (got %g)",
            e.factor)));
      }
    }
    if (e.kind == FaultEvent::Kind::kReorderSpike) {
      AORTA_ASSIGN_OR_RETURN_RESULT(e.window_s,
                                    node->attr_double_checked("window"),
                                    FaultPlan);
      if (e.window_s <= 0.0) {
        return Result<FaultPlan>(parse_error(str_format(
            "<event kind=\"reorder\"> needs window > 0 (got %g)",
            e.window_s)));
      }
    }
    if (e.kind == FaultEvent::Kind::kDelaySpike) {
      AORTA_ASSIGN_OR_RETURN_RESULT(e.add_s, node->attr_double_checked("add"),
                                    FaultPlan);
      if (e.add_s < 0.0) {
        return Result<FaultPlan>(parse_error(str_format(
            "<event kind=\"delay\"> has negative delay add=%g", e.add_s)));
      }
    }
    plan.events.push_back(std::move(e));
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_s < b.at_s;
                   });
  return plan;
}

std::string FaultPlan::to_xml() const {
  std::string out = "<fault_plan>\n";
  for (const FaultEvent& e : events) {
    out += str_format("  <event at=\"%g\" kind=\"%s\"", e.at_s,
                      std::string(fault_event_kind_name(e.kind)).c_str());
    if (e.shard >= 0) {
      out += str_format(" shard=\"%d\"", e.shard);
    } else {
      out += str_format(" device=\"%s\"", xml_escape(e.target).c_str());
    }
    switch (e.kind) {
      case FaultEvent::Kind::kLossSpike:
      case FaultEvent::Kind::kGlitchSpike:
        out += str_format(" prob=\"%g\" for=\"%g\"", e.prob, e.for_s);
        break;
      case FaultEvent::Kind::kDuplicateSpike:
        out += str_format(" factor=\"%g\" for=\"%g\"", e.factor, e.for_s);
        break;
      case FaultEvent::Kind::kReorderSpike:
        out += str_format(" prob=\"%g\" window=\"%g\" for=\"%g\"", e.prob,
                          e.window_s, e.for_s);
        break;
      case FaultEvent::Kind::kDelaySpike:
        out += str_format(" add=\"%g\" for=\"%g\"", e.add_s, e.for_s);
        break;
      default:
        break;
    }
    out += "/>\n";
  }
  out += "</fault_plan>\n";
  return out;
}

}  // namespace aorta::util
