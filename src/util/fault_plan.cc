#include "util/fault_plan.h"

#include <algorithm>

#include "util/strings.h"
#include "util/xml.h"

namespace aorta::util {

namespace {

bool kind_from_name(std::string_view name, FaultEvent::Kind* out) {
  if (name == "crash") *out = FaultEvent::Kind::kCrash;
  else if (name == "revive") *out = FaultEvent::Kind::kRevive;
  else if (name == "partition") *out = FaultEvent::Kind::kPartition;
  else if (name == "heal") *out = FaultEvent::Kind::kHeal;
  else if (name == "loss") *out = FaultEvent::Kind::kLossSpike;
  else if (name == "glitch") *out = FaultEvent::Kind::kGlitchSpike;
  else return false;
  return true;
}

bool is_spike(FaultEvent::Kind k) {
  return k == FaultEvent::Kind::kLossSpike ||
         k == FaultEvent::Kind::kGlitchSpike;
}

}  // namespace

std::string_view fault_event_kind_name(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::kCrash:
      return "crash";
    case FaultEvent::Kind::kRevive:
      return "revive";
    case FaultEvent::Kind::kPartition:
      return "partition";
    case FaultEvent::Kind::kHeal:
      return "heal";
    case FaultEvent::Kind::kLossSpike:
      return "loss";
    case FaultEvent::Kind::kGlitchSpike:
      return "glitch";
  }
  return "?";
}

Result<FaultPlan> FaultPlan::from_xml(std::string_view xml) {
  AORTA_ASSIGN_OR_RETURN_RESULT(std::unique_ptr<XmlNode> root, xml_parse(xml),
                                FaultPlan);
  if (root->name != "fault_plan") {
    return Result<FaultPlan>(
        parse_error("expected <fault_plan> root, got <" + root->name + ">"));
  }
  FaultPlan plan;
  for (const XmlNode* node : root->children_named("event")) {
    FaultEvent e;
    const std::string kind = node->attr("kind");
    if (!kind_from_name(kind, &e.kind)) {
      return Result<FaultPlan>(
          parse_error("unknown fault event kind '" + kind + "'"));
    }
    e.target = node->attr("device");
    if (node->has_attr("shard")) {
      if (!e.target.empty()) {
        return Result<FaultPlan>(parse_error(
            str_format("<event kind=\"%s\"> has both device and shard",
                       kind.c_str())));
      }
      if (is_spike(e.kind)) {
        return Result<FaultPlan>(parse_error(
            str_format("<event kind=\"%s\"> cannot target a shard",
                       kind.c_str())));
      }
      AORTA_ASSIGN_OR_RETURN_RESULT(std::int64_t shard,
                                    node->attr_int_checked("shard"),
                                    FaultPlan);
      if (shard < 0) {
        return Result<FaultPlan>(parse_error(
            str_format("<event kind=\"%s\"> shard index is negative",
                       kind.c_str())));
      }
      e.shard = static_cast<int>(shard);
    } else if (e.target.empty()) {
      return Result<FaultPlan>(parse_error(
          str_format("<event kind=\"%s\"> missing device attribute",
                     kind.c_str())));
    }
    AORTA_ASSIGN_OR_RETURN_RESULT(e.at_s, node->attr_double_checked("at"),
                                  FaultPlan);
    AORTA_ASSIGN_OR_RETURN_RESULT(e.for_s, node->attr_double_checked("for"),
                                  FaultPlan);
    AORTA_ASSIGN_OR_RETURN_RESULT(e.prob, node->attr_double_checked("prob"),
                                  FaultPlan);
    if (e.at_s < 0.0 || e.for_s < 0.0) {
      return Result<FaultPlan>(parse_error(
          str_format("<event kind=\"%s\" device=\"%s\"> has negative time",
                     kind.c_str(), e.target.c_str())));
    }
    if (e.prob < 0.0 || e.prob > 1.0) {
      return Result<FaultPlan>(parse_error(
          str_format("<event kind=\"%s\" device=\"%s\"> prob out of [0,1]",
                     kind.c_str(), e.target.c_str())));
    }
    if (is_spike(e.kind) && e.for_s <= 0.0) {
      return Result<FaultPlan>(parse_error(
          str_format("<event kind=\"%s\" device=\"%s\"> needs for > 0",
                     kind.c_str(), e.target.c_str())));
    }
    plan.events.push_back(std::move(e));
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_s < b.at_s;
                   });
  return plan;
}

std::string FaultPlan::to_xml() const {
  std::string out = "<fault_plan>\n";
  for (const FaultEvent& e : events) {
    out += str_format("  <event at=\"%g\" kind=\"%s\"", e.at_s,
                      std::string(fault_event_kind_name(e.kind)).c_str());
    if (e.shard >= 0) {
      out += str_format(" shard=\"%d\"", e.shard);
    } else {
      out += str_format(" device=\"%s\"", xml_escape(e.target).c_str());
    }
    if (is_spike(e.kind)) {
      out += str_format(" prob=\"%g\" for=\"%g\"", e.prob, e.for_s);
    }
    out += "/>\n";
  }
  out += "</fault_plan>\n";
  return out;
}

}  // namespace aorta::util
