// Simulated smart door lock — the reproduction's demonstration of the
// paper's stated future work: "extending the uniform data communication
// layer to support new types of devices" (Section 8).
//
// The type integrates with everything through the same extension points a
// third party would use:
//  - a DeviceTypeInfo (catalog + atomic op costs + link model) registered
//    with the DeviceRegistry,
//  - a CommModule subclass registered with CommLayer::register_module
//    (see examples/extension_doorlock.cpp and the extension tests),
//  - an ActionDef registered with the catalog so queries can embed
//    engage_lock()/release_lock() actions.
//
// Protocol:
//   engage   -> engage_ack  ok          (bolt extends; ~0.8 s)
//   release  -> release_ack ok          (bolt retracts; ~0.8 s)
#pragma once

#include "device/device.h"
#include "device/registry.h"

namespace aorta::devices {

class SmartLock : public device::Device {
 public:
  SmartLock(device::DeviceId id, device::Location location);

  static constexpr const char* kTypeId = "doorlock";

  bool is_engaged() const { return engaged_; }
  std::uint64_t transitions() const { return transitions_; }

  // device::Device
  std::map<std::string, device::Value> static_attrs() const override;
  aorta::util::Result<device::Value> read_attribute(const std::string& name) override;
  std::map<std::string, double> status_snapshot() const override;

 protected:
  void handle_op(const net::Message& msg) override;

 private:
  bool engaged_ = false;
  double battery_v_ = 6.0;
  std::uint64_t transitions_ = 0;
};

device::DeviceTypeInfo doorlock_type_info();

}  // namespace aorta::devices
