// Simulated cell phone with SMS/MMS support.
//
// Target of the user-defined sendphoto() action (Section 2.2). Coverage
// loss ("a phone may become unreachable when its owner moves into an area
// that is out of the coverage of the service provider", Section 4) is
// modelled with the network partition mechanism, so probes and sends time
// out exactly as they would against a dark handset.
#pragma once

#include <string>
#include <vector>

#include "device/device.h"
#include "device/registry.h"

namespace aorta::devices {

struct InboxEntry {
  aorta::util::TimePoint received_at;
  std::string kind;  // "sms" | "mms"
  std::string body;  // text, or attachment pathname for MMS
  std::size_t bytes = 0;
};

class MmsPhone : public device::Device {
 public:
  MmsPhone(device::DeviceId id, std::string phone_no, device::Location location);

  static constexpr const char* kTypeId = "phone";

  const std::string& phone_no() const { return phone_no_; }
  const std::vector<InboxEntry>& inbox() const { return inbox_; }

  // device::Device
  std::map<std::string, device::Value> static_attrs() const override;
  aorta::util::Result<device::Value> read_attribute(const std::string& name) override;
  std::map<std::string, double> status_snapshot() const override;

 protected:
  void handle_op(const net::Message& msg) override;

 private:
  std::string phone_no_;
  std::vector<InboxEntry> inbox_;
  double battery_v_ = 4.0;
};

device::DeviceTypeInfo phone_type_info();

}  // namespace aorta::devices
