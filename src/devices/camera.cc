#include "devices/camera.h"

#include <cmath>

#include "util/logging.h"
#include "util/strings.h"

namespace aorta::devices {

using aorta::util::Duration;
using aorta::util::Result;
using device::Value;

double capture_time_s(const std::string& size) {
  if (size == "small") return 0.18;
  if (size == "large") return 0.72;
  return 0.36;  // medium — photo()'s default (Section 2.2)
}

std::size_t photo_bytes(const std::string& size) {
  if (size == "small") return 30 * 1024;
  if (size == "large") return 200 * 1024;
  return 80 * 1024;
}

PtzCamera::PtzCamera(device::DeviceId id, std::string ip, CameraPose pose,
                     double range_m)
    : Device(std::move(id), kTypeId, pose.location),
      ip_(std::move(ip)),
      pose_(pose),
      range_m_(range_m) {
  // Failure model presets observed on the lab cameras (Section 6.2):
  // occasional spontaneous failures, and substantial trouble when two
  // actions hit the camera concurrently.
  reliability().glitch_prob = 0.01;
  reliability().busy_drop_base = 0.25;
  reliability().busy_drop_per_op = 0.10;
  reliability().busy_slowdown_per_op = 0.30;
}

std::map<std::string, Value> PtzCamera::static_attrs() const {
  return {{"id", PtzCamera::id()},
          {"ip", ip_},
          {"loc", location()},
          {"yaw", pose_.yaw_deg},
          {"range", range_m_}};
}

Result<Value> PtzCamera::read_attribute(const std::string& name) {
  // Sensory attributes: current physical status ("we categorize the
  // attributes that describe device status ... into sensory attributes",
  // Section 3.2).
  if (name == "pan") return Value{head_.pan_deg};
  if (name == "tilt") return Value{head_.tilt_deg};
  if (name == "zoom") return Value{head_.zoom};
  if (name == "busy") return Value{static_cast<std::int64_t>(active_ops())};
  return Result<Value>(
      aorta::util::not_found_error("camera has no attribute " + name));
}

std::map<std::string, double> PtzCamera::status_snapshot() const {
  return {{"pan", head_.pan_deg}, {"tilt", head_.tilt_deg}, {"zoom", head_.zoom}};
}

double PtzCamera::current_utilization() const {
  // Accumulator decays with time constant kUtilizationWindowS.
  double age_s =
      (loop() == nullptr) ? 0.0 : (loop()->now() - busy_accum_at_).to_seconds();
  double decayed = busy_accum_s_ * std::exp(-age_s / kUtilizationWindowS);
  return std::min(1.0, decayed / kUtilizationWindowS);
}

void PtzCamera::note_busy_time(double busy_s) {
  double age_s = (loop()->now() - busy_accum_at_).to_seconds();
  busy_accum_s_ = busy_accum_s_ * std::exp(-age_s / kUtilizationWindowS) + busy_s;
  busy_accum_at_ = loop()->now();
}

void PtzCamera::handle_op(const net::Message& msg) {
  if (msg.kind == "photo") {
    start_photo(msg);
  } else if (msg.kind == "ptz_move") {
    start_move(msg);
  } else if (msg.kind == "snap") {
    start_snap(msg);
  } else {
    net::Message reply = make_reply(msg, "error");
    reply.set("error", "unknown camera op: " + msg.kind);
    send_reply(msg, std::move(reply));
  }
}

void PtzCamera::interfere_active_sessions() {
  for (Session& s : active_sessions_) s.interfered = true;
}

PtzCamera::Session* PtzCamera::find_session(std::uint64_t id) {
  for (Session& s : active_sessions_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

void PtzCamera::finish_session(std::uint64_t id) {
  std::erase_if(active_sessions_, [id](const Session& s) { return s.id == id; });
}

void PtzCamera::start_photo(const net::Message& msg) {
  PtzPosition target{msg.field_double("pan"), msg.field_double("tilt"),
                     msg.field_double("zoom", 1.0)};
  target = limits_.clamp(target);
  std::string size = msg.field("size", "medium");

  // A command arriving while other sessions hold the head interferes with
  // all of them — and they with it.
  bool contended = !active_sessions_.empty();
  if (contended) interfere_active_sessions();

  std::uint64_t session_id = next_session_++;
  active_sessions_.push_back(Session{session_id, contended});

  double service_s = move_time_s(head_, target, speeds_) + capture_time_s(size);
  note_busy_time(service_s);

  // The head starts moving immediately; later commands see it en route to
  // (and after completion, at) the newest target.
  head_ = target;

  net::Message request = msg;  // captured for the deferred reply
  run_op(service_s, [this, request, target, size, session_id]() {
    Session* session = find_session(session_id);
    bool interfered = session != nullptr && session->interfered;
    finish_session(session_id);

    net::Message reply = make_reply(request, "photo_ack");
    // Failure sources compose: the base per-operation glitch plus the
    // fatigue term that grows with sustained utilization (Section 6.2's
    // residual failures under heavy workload).
    double fatigue_p = fatigue_coeff_ * current_utilization();
    if (roll_glitch() || rng().chance(std::min(0.9, fatigue_p))) {
      ++camera_stats_.photos_failed;
      reply.set("ok", "0");
      reply.set("error", "camera failed to take photo");
    } else if (interfered) {
      // Interference manifests as either a blurred photo (head moved
      // during exposure) or a photo of the wrong spot (head re-aimed by
      // the competing command) — both observed in practice (Section 4).
      bool blurred = rng().chance(0.5);
      reply.set("ok", "1");
      reply.set("blurred", blurred ? "1" : "0");
      reply.set("wrong_position", blurred ? "0" : "1");
      reply.set_double("pan", head_.pan_deg);
      reply.set_double("tilt", head_.tilt_deg);
      reply.payload_bytes = photo_bytes(size);
      if (blurred) {
        ++camera_stats_.photos_blurred;
      } else {
        ++camera_stats_.photos_wrong_position;
      }
    } else {
      ++camera_stats_.photos_ok;
      reply.set("ok", "1");
      reply.set("blurred", "0");
      reply.set("wrong_position", "0");
      reply.set_double("pan", target.pan_deg);
      reply.set_double("tilt", target.tilt_deg);
      reply.payload_bytes = photo_bytes(size);
    }
    send_reply(request, std::move(reply));
  });
}

void PtzCamera::start_move(const net::Message& msg) {
  PtzPosition target{msg.field_double("pan"), msg.field_double("tilt"),
                     msg.field_double("zoom", 1.0)};
  target = limits_.clamp(target);
  if (!active_sessions_.empty()) interfere_active_sessions();

  double service_s = move_time_s(head_, target, speeds_);
  note_busy_time(service_s);
  head_ = target;

  net::Message request = msg;
  run_op(service_s, [this, request]() {
    net::Message reply = make_reply(request, "ptz_ack");
    reply.set("ok", "1");
    send_reply(request, std::move(reply));
  });
}

void PtzCamera::start_snap(const net::Message& msg) {
  std::string size = msg.field("size", "medium");
  bool contended = !active_sessions_.empty();
  if (contended) interfere_active_sessions();
  std::uint64_t session_id = next_session_++;
  active_sessions_.push_back(Session{session_id, contended});

  double service_s = capture_time_s(size);
  note_busy_time(service_s);

  net::Message request = msg;
  run_op(service_s, [this, request, size, session_id]() {
    Session* session = find_session(session_id);
    bool interfered = session != nullptr && session->interfered;
    finish_session(session_id);

    net::Message reply = make_reply(request, "snap_ack");
    if (roll_glitch()) {
      ++camera_stats_.photos_failed;
      reply.set("ok", "0");
    } else {
      reply.set("ok", "1");
      reply.set("blurred", interfered ? "1" : "0");
      reply.payload_bytes = photo_bytes(size);
      if (interfered) {
        ++camera_stats_.photos_blurred;
      } else {
        ++camera_stats_.photos_ok;
      }
    }
    send_reply(request, std::move(reply));
  });
}

device::DeviceTypeInfo camera_type_info() {
  device::DeviceTypeInfo info;
  info.type_id = PtzCamera::kTypeId;

  info.catalog = device::DeviceCatalog(
      PtzCamera::kTypeId,
      {
          {"id", device::AttrType::kString, false, "", "", "device identifier"},
          {"ip", device::AttrType::kString, false, "", "", "camera IP address"},
          {"loc", device::AttrType::kLocation, false, "", "m", "mounting position"},
          {"yaw", device::AttrType::kDouble, false, "", "deg", "mounting yaw"},
          {"range", device::AttrType::kDouble, false, "", "m", "coverage range"},
          {"pan", device::AttrType::kDouble, true, "read_attr", "deg",
           "current head pan"},
          {"tilt", device::AttrType::kDouble, true, "read_attr", "deg",
           "current head tilt"},
          {"zoom", device::AttrType::kDouble, true, "read_attr", "x",
           "current zoom factor"},
          {"busy", device::AttrType::kInt, true, "read_attr", "",
           "operations in flight"},
      });

  // Atomic operations and rates: the engine-side cost model estimates
  // photo() as max(pan, tilt, zoom axis times) + snap cost, using exactly
  // these numbers (Section 3.1's atomic_operation_cost.xml).
  PtzSpeeds speeds;
  auto& ops = info.op_costs;
  ops = device::AtomicOpCostTable(PtzCamera::kTypeId);
  (void)ops.add({"pan", 0.0, 1.0 / speeds.pan_deg_per_s, "degree"});
  (void)ops.add({"tilt", 0.0, 1.0 / speeds.tilt_deg_per_s, "degree"});
  (void)ops.add({"zoom", 0.0, 1.0 / speeds.zoom_per_s, "factor"});
  (void)ops.add({"snap_small", capture_time_s("small"), 0.0, ""});
  (void)ops.add({"snap_medium", capture_time_s("medium"), 0.0, ""});
  (void)ops.add({"snap_large", capture_time_s("large"), 0.0, ""});

  info.link = net::LinkModel::lan();
  info.probe_timeout = aorta::util::Duration::millis(1000);
  return info;
}

}  // namespace aorta::devices
