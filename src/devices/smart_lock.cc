#include "devices/smart_lock.h"

namespace aorta::devices {

using aorta::util::Result;
using device::Value;

SmartLock::SmartLock(device::DeviceId id, device::Location location)
    : Device(std::move(id), kTypeId, location) {
  reliability().glitch_prob = 0.005;
}

std::map<std::string, Value> SmartLock::static_attrs() const {
  return {{"id", id()}, {"loc", location()}};
}

Result<Value> SmartLock::read_attribute(const std::string& name) {
  if (name == "engaged") return Value{static_cast<std::int64_t>(engaged_ ? 1 : 0)};
  if (name == "battery_v") return Value{battery_v_};
  return Result<Value>(
      aorta::util::not_found_error("doorlock has no attribute " + name));
}

std::map<std::string, double> SmartLock::status_snapshot() const {
  return {{"engaged", engaged_ ? 1.0 : 0.0}, {"battery_v", battery_v_}};
}

void SmartLock::handle_op(const net::Message& msg) {
  if (msg.kind == "engage" || msg.kind == "release") {
    const bool want_engaged = msg.kind == "engage";
    net::Message request = msg;
    run_op(/*service_s=*/0.8, [this, request, want_engaged]() {
      net::Message reply = make_reply(request, request.kind + "_ack");
      if (roll_glitch()) {
        reply.set("ok", "0");
        reply.set("error", "bolt jammed");
      } else {
        if (engaged_ != want_engaged) ++transitions_;
        engaged_ = want_engaged;
        battery_v_ = std::max(4.0, battery_v_ - 2e-3);
        reply.set("ok", "1");
        reply.set_int("engaged", engaged_ ? 1 : 0);
      }
      send_reply(request, std::move(reply));
    });
    return;
  }
  net::Message reply = make_reply(msg, "error");
  reply.set("error", "unknown doorlock op: " + msg.kind);
  send_reply(msg, std::move(reply));
}

device::DeviceTypeInfo doorlock_type_info() {
  device::DeviceTypeInfo info;
  info.type_id = SmartLock::kTypeId;
  info.catalog = device::DeviceCatalog(
      SmartLock::kTypeId,
      {
          {"id", device::AttrType::kString, false, "", "", "device identifier"},
          {"loc", device::AttrType::kLocation, false, "", "m", "door position"},
          {"engaged", device::AttrType::kInt, true, "read_attr", "",
           "1 if the bolt is extended"},
          {"battery_v", device::AttrType::kDouble, true, "read_attr", "V",
           "battery voltage"},
      });
  info.op_costs = device::AtomicOpCostTable(SmartLock::kTypeId);
  (void)info.op_costs.add({"engage", 0.8, 0.0, ""});
  (void)info.op_costs.add({"release", 0.8, 0.0, ""});
  info.link = net::LinkModel::lan();
  info.probe_timeout = aorta::util::Duration::millis(1500);
  return info;
}

}  // namespace aorta::devices
