// Pan/tilt/zoom geometry and kinematics shared by the camera simulator and
// the engine-side cost model.
//
// Both sides must compute the same head movement for a target location:
// the device to simulate its motor time, the cost model to *estimate* that
// time from probed status (Section 2.3's sequence-dependent photo() cost).
// Keeping the math in one header is the moral equivalent of the paper
// tuning their camera simulator against the real cameras.
#pragma once

#include <algorithm>
#include <cmath>

#include "device/types.h"

namespace aorta::devices {

// Head position: pan/tilt in degrees, zoom as a magnification factor.
struct PtzPosition {
  double pan_deg = 0.0;
  double tilt_deg = 0.0;
  double zoom = 1.0;

  bool operator==(const PtzPosition&) const = default;
};

// Mechanical limits of the PTZ head (AXIS 2130 figures).
struct PtzLimits {
  double pan_min_deg = -169.0;
  double pan_max_deg = 169.0;
  double tilt_min_deg = -90.0;
  double tilt_max_deg = 10.0;
  double zoom_min = 1.0;
  double zoom_max = 16.0;

  PtzPosition clamp(PtzPosition p) const {
    p.pan_deg = std::clamp(p.pan_deg, pan_min_deg, pan_max_deg);
    p.tilt_deg = std::clamp(p.tilt_deg, tilt_min_deg, tilt_max_deg);
    p.zoom = std::clamp(p.zoom, zoom_min, zoom_max);
    return p;
  }
};

// Axis motor speeds. Calibrated so the photo() action cost spans the
// paper's measured range [0.36 s, 5.36 s]: the worst-case pan sweep
// (338 degrees) takes 5.0 s, and a medium snapshot takes 0.36 s.
struct PtzSpeeds {
  double pan_deg_per_s = 67.6;
  double tilt_deg_per_s = 25.0;
  double zoom_per_s = 6.0;
};

// Time for the head to move between two positions: the three motors run
// concurrently, so the move takes as long as the slowest axis.
inline double move_time_s(const PtzPosition& from, const PtzPosition& to,
                          const PtzSpeeds& speeds) {
  double pan_t = std::abs(to.pan_deg - from.pan_deg) / speeds.pan_deg_per_s;
  double tilt_t = std::abs(to.tilt_deg - from.tilt_deg) / speeds.tilt_deg_per_s;
  double zoom_t = std::abs(to.zoom - from.zoom) / speeds.zoom_per_s;
  return std::max({pan_t, tilt_t, zoom_t});
}

// Camera mounting: position plus the yaw of its pan-zero direction.
struct CameraPose {
  device::Location location;
  double yaw_deg = 0.0;
};

// The head position needed to aim at `target` from `pose`, with the zoom
// chosen from distance so photos of any target have similar view size
// (Section 6.1: "each camera ... automatically tune[s] its zoom level
// based on the distance between itself and the target location").
PtzPosition aim_at(const CameraPose& pose, const device::Location& target,
                   const PtzLimits& limits = PtzLimits{});

// Whether `target` falls inside the camera's coverage: within pan limits
// relative to the mounting yaw and within `range_m`. This implements the
// system-provided Boolean function coverage(camera_id, location) of the
// example snapshot query.
bool covers(const CameraPose& pose, const device::Location& target,
            double range_m, const PtzLimits& limits = PtzLimits{});

// Normalize an angle to (-180, 180].
double normalize_deg(double deg);

}  // namespace aorta::devices
