// Simulated Berkeley MICA2 mote with an MTS310CA sensor board.
//
// Sensory attributes (accel_x/accel_y in mg, light in lux, temp in degC,
// battery voltage) are backed by pluggable Signals; actuation ops are the
// board's sounder ("beep") and LEDs ("blink"). The lossy 433 MHz radio is
// modelled by the mote's LinkModel in the registry type info — Section 4
// notes "current generation sensors usually communicate via a wireless
// radio channel of a high packet loss rate".
#pragma once

#include <map>
#include <string>

#include "device/device.h"
#include "device/registry.h"
#include "devices/signal.h"

namespace aorta::devices {

class Mica2Mote : public device::Device {
 public:
  // `hops` is the mote's depth in the multi-hop radio tree rooted at the
  // engine's gateway; Section 2.3 notes this depth affects the cost of
  // operating the mote, and each extra hop compounds radio loss/latency.
  Mica2Mote(device::DeviceId id, device::Location location, int hops = 1);

  static constexpr const char* kTypeId = "sensor";

  // Replace the generator behind a sensory attribute. Unknown attribute
  // names are rejected so experiment scripts fail loudly on typos.
  aorta::util::Status set_signal(const std::string& attr, SignalPtr signal);

  // Access the generator (e.g. to add spikes to a ScriptedSignal).
  Signal* signal(const std::string& attr);

  std::uint64_t beeps() const { return beeps_; }
  std::uint64_t blinks() const { return blinks_; }
  int hops() const { return hops_; }

  // The link model for a mote `hops` deep: per-hop latency adds up and
  // per-hop loss compounds.
  static net::LinkModel link_for_hops(int hops);

  // device::Device
  std::map<std::string, device::Value> static_attrs() const override;
  aorta::util::Result<device::Value> read_attribute(const std::string& name) override;
  std::map<std::string, double> status_snapshot() const override;

 protected:
  void handle_op(const net::Message& msg) override;

 private:
  std::map<std::string, SignalPtr> signals_;
  int hops_ = 1;
  double battery_v_ = 3.0;  // drains slowly as the mote works
  std::uint64_t beeps_ = 0;
  std::uint64_t blinks_ = 0;
};

device::DeviceTypeInfo sensor_type_info();

}  // namespace aorta::devices
