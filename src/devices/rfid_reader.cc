#include "devices/rfid_reader.h"

namespace aorta::devices {

using aorta::util::Result;
using device::Value;

RfidReader::RfidReader(device::DeviceId id, device::Location location)
    : Device(std::move(id), kTypeId, location) {
  reliability().glitch_prob = 0.01;  // occasional misreads
}

std::map<std::string, Value> RfidReader::static_attrs() const {
  return {{"id", id()}, {"loc", location()}};
}

std::string RfidReader::current_tag() const {
  if (loop() == nullptr) return "";
  aorta::util::TimePoint now = loop()->now();
  std::string tag;
  for (const TagPassage& p : passages_) {
    if (now >= p.at && now < p.at + p.dwell) tag = p.tag;
  }
  return tag;
}

std::uint64_t RfidReader::passages_seen() const {
  if (loop() == nullptr) return 0;
  aorta::util::TimePoint now = loop()->now();
  std::uint64_t count = 0;
  for (const TagPassage& p : passages_) {
    if (now >= p.at) ++count;
  }
  return count;
}

Result<Value> RfidReader::read_attribute(const std::string& name) {
  if (name == "last_tag") return Value{current_tag()};
  if (name == "tags_seen") {
    return Value{static_cast<std::int64_t>(passages_seen())};
  }
  return Result<Value>(
      aorta::util::not_found_error("rfid reader has no attribute " + name));
}

std::map<std::string, double> RfidReader::status_snapshot() const {
  return {{"tags_seen", static_cast<double>(passages_seen())}};
}

void RfidReader::handle_op(const net::Message& msg) {
  net::Message reply = make_reply(msg, "error");
  reply.set("error", "rfid reader supports no operations: " + msg.kind);
  send_reply(msg, std::move(reply));
}

device::DeviceTypeInfo rfid_type_info() {
  device::DeviceTypeInfo info;
  info.type_id = RfidReader::kTypeId;
  info.catalog = device::DeviceCatalog(
      RfidReader::kTypeId,
      {
          {"id", device::AttrType::kString, false, "", "", "device identifier"},
          {"loc", device::AttrType::kLocation, false, "", "m", "gate position"},
          {"last_tag", device::AttrType::kString, true, "read_attr", "",
           "tag currently in the field ('' when none)"},
          {"tags_seen", device::AttrType::kInt, true, "read_attr", "",
           "passages observed so far"},
      });
  info.op_costs = device::AtomicOpCostTable(RfidReader::kTypeId);
  (void)info.op_costs.add({"read", 0.02, 0.0, ""});
  info.link = net::LinkModel::lan();
  info.probe_timeout = aorta::util::Duration::millis(1000);
  return info;
}

}  // namespace aorta::devices
