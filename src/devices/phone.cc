#include "devices/phone.h"

namespace aorta::devices {

using aorta::util::Result;
using device::Value;

MmsPhone::MmsPhone(device::DeviceId id, std::string phone_no,
                   device::Location location)
    : Device(std::move(id), kTypeId, location), phone_no_(std::move(phone_no)) {
  reliability().glitch_prob = 0.01;
}

std::map<std::string, Value> MmsPhone::static_attrs() const {
  return {{"id", id()}, {"phone_no", phone_no_}, {"loc", location()}};
}

Result<Value> MmsPhone::read_attribute(const std::string& name) {
  if (name == "battery_v") return Value{battery_v_};
  if (name == "inbox_size") {
    return Value{static_cast<std::int64_t>(inbox_.size())};
  }
  return Result<Value>(
      aorta::util::not_found_error("phone has no attribute " + name));
}

std::map<std::string, double> MmsPhone::status_snapshot() const {
  return {{"battery_v", battery_v_},
          {"inbox_size", static_cast<double>(inbox_.size())}};
}

void MmsPhone::handle_op(const net::Message& msg) {
  if (msg.kind == "recv_sms" || msg.kind == "recv_mms") {
    const bool is_mms = msg.kind == "recv_mms";
    // Handset-side processing: decode and store. Radio transfer time is
    // already modelled by the cellular LinkModel.
    double service_s = is_mms ? 1.5 : 0.3;
    net::Message request = msg;
    run_op(service_s, [this, request, is_mms]() {
      net::Message reply = make_reply(request, request.kind + "_ack");
      if (roll_glitch()) {
        reply.set("ok", "0");
        reply.set("error", "handset rejected message");
      } else {
        inbox_.push_back(InboxEntry{loop()->now(), is_mms ? "mms" : "sms",
                                    request.field("body"),
                                    request.payload_bytes});
        battery_v_ = std::max(3.0, battery_v_ - 1e-3);
        reply.set("ok", "1");
      }
      send_reply(request, std::move(reply));
    });
    return;
  }
  net::Message reply = make_reply(msg, "error");
  reply.set("error", "unknown phone op: " + msg.kind);
  send_reply(msg, std::move(reply));
}

device::DeviceTypeInfo phone_type_info() {
  device::DeviceTypeInfo info;
  info.type_id = MmsPhone::kTypeId;

  info.catalog = device::DeviceCatalog(
      MmsPhone::kTypeId,
      {
          {"id", device::AttrType::kString, false, "", "", "device identifier"},
          {"phone_no", device::AttrType::kString, false, "", "",
           "subscriber number"},
          {"loc", device::AttrType::kLocation, false, "", "m", "last known position"},
          {"battery_v", device::AttrType::kDouble, true, "read_attr", "V",
           "battery voltage"},
          {"inbox_size", device::AttrType::kInt, true, "read_attr", "",
           "messages stored"},
      });

  info.op_costs = device::AtomicOpCostTable(MmsPhone::kTypeId);
  (void)info.op_costs.add({"recv_sms", 0.3, 0.0, ""});
  (void)info.op_costs.add({"recv_mms", 1.5, 0.0, ""});
  (void)info.op_costs.add({"transfer", 0.0, 1.0 / 5000.0, "byte"});

  info.link = net::LinkModel::cellular();
  info.probe_timeout = aorta::util::Duration::millis(5000);
  return info;
}

}  // namespace aorta::devices
