#include "devices/signal.h"

namespace aorta::devices {

namespace {

class ConstantSignal : public Signal {
 public:
  explicit ConstantSignal(double base) : base_(base) {}
  double sample(aorta::util::TimePoint) override { return base_; }

 private:
  double base_;
};

class SineSignal : public Signal {
 public:
  SineSignal(double base, double amplitude, double period_s, double phase_rad)
      : base_(base), amplitude_(amplitude), period_s_(period_s), phase_(phase_rad) {}

  double sample(aorta::util::TimePoint t) override {
    return base_ +
           amplitude_ * std::sin(2.0 * M_PI * t.to_seconds() / period_s_ + phase_);
  }

 private:
  double base_, amplitude_, period_s_, phase_;
};

class NoisySignal : public Signal {
 public:
  NoisySignal(double base, double stddev, aorta::util::Rng rng)
      : base_(base), stddev_(stddev), rng_(std::move(rng)) {}

  double sample(aorta::util::TimePoint) override {
    return base_ + rng_.normal(0.0, stddev_);
  }

 private:
  double base_, stddev_;
  aorta::util::Rng rng_;
};

class PeriodicSpikeSignal : public Signal {
 public:
  PeriodicSpikeSignal(double base, double value, aorta::util::Duration period,
                      aorta::util::Duration width, aorta::util::Duration phase)
      : base_(base),
        value_(value),
        period_us_(period.to_micros()),
        width_us_(width.to_micros()),
        phase_us_(phase.to_micros()) {}

  double sample(aorta::util::TimePoint t) override {
    std::int64_t offset = t.to_micros() - phase_us_;
    if (offset < 0 || period_us_ <= 0) return base_;
    return (offset % period_us_) < width_us_ ? value_ : base_;
  }

 private:
  double base_, value_;
  std::int64_t period_us_, width_us_, phase_us_;
};

}  // namespace

SignalPtr constant_signal(double base) {
  return std::make_unique<ConstantSignal>(base);
}

SignalPtr sine_signal(double base, double amplitude, double period_s,
                      double phase_rad) {
  return std::make_unique<SineSignal>(base, amplitude, period_s, phase_rad);
}

SignalPtr noisy_signal(double base, double stddev, aorta::util::Rng rng) {
  return std::make_unique<NoisySignal>(base, stddev, std::move(rng));
}

SignalPtr periodic_spike_signal(double base, double value,
                                aorta::util::Duration period,
                                aorta::util::Duration width,
                                aorta::util::Duration phase) {
  return std::make_unique<PeriodicSpikeSignal>(base, value, period, width, phase);
}

}  // namespace aorta::devices
