#include "devices/mote.h"

#include <cmath>

namespace aorta::devices {

using aorta::util::Result;
using device::Value;

Mica2Mote::Mica2Mote(device::DeviceId id, device::Location location, int hops)
    : Device(std::move(id), kTypeId, location), hops_(std::max(1, hops)) {
  // Quiet defaults; experiments override with scripted signals.
  signals_["accel_x"] = constant_signal(0.0);
  signals_["accel_y"] = constant_signal(0.0);
  signals_["light"] = constant_signal(300.0);
  signals_["temp"] = constant_signal(22.0);
  reliability().glitch_prob = 0.02;  // flaky sensor board reads
}

aorta::util::Status Mica2Mote::set_signal(const std::string& attr, SignalPtr sig) {
  auto it = signals_.find(attr);
  if (it == signals_.end()) {
    return aorta::util::not_found_error("mote has no sensory attribute " + attr);
  }
  it->second = std::move(sig);
  return aorta::util::Status::ok();
}

Signal* Mica2Mote::signal(const std::string& attr) {
  auto it = signals_.find(attr);
  return it == signals_.end() ? nullptr : it->second.get();
}

std::map<std::string, Value> Mica2Mote::static_attrs() const {
  return {{"id", id()},
          {"loc", location()},
          {"hops", static_cast<std::int64_t>(hops_)}};
}

net::LinkModel Mica2Mote::link_for_hops(int hops) {
  hops = std::max(1, hops);
  net::LinkModel base = net::LinkModel::mote_radio();
  net::LinkModel link = base;
  link.latency_mean_s = base.latency_mean_s * hops;
  link.latency_jitter_s = base.latency_jitter_s * hops;
  // Per-traversal survival compounds per hop.
  link.loss_prob = 1.0 - std::pow(1.0 - base.loss_prob, hops);
  return link;
}

Result<Value> Mica2Mote::read_attribute(const std::string& name) {
  if (name == "battery_v") return Value{battery_v_};
  auto it = signals_.find(name);
  if (it == signals_.end()) {
    return Result<Value>(
        aorta::util::not_found_error("mote has no attribute " + name));
  }
  if (loop() == nullptr) {
    return Result<Value>(aorta::util::internal_error("mote not bound"));
  }
  // Each read drains the battery a little.
  battery_v_ = std::max(2.0, battery_v_ - 1e-6);
  return Value{it->second->sample(loop()->now())};
}

std::map<std::string, double> Mica2Mote::status_snapshot() const {
  return {{"battery_v", battery_v_}};
}

void Mica2Mote::handle_op(const net::Message& msg) {
  if (msg.kind == "beep" || msg.kind == "blink") {
    const bool is_beep = msg.kind == "beep";
    double service_s = is_beep ? 0.10 : 0.05;
    net::Message request = msg;
    run_op(service_s, [this, request, is_beep]() {
      net::Message reply = make_reply(request, request.kind + "_ack");
      if (roll_glitch()) {
        reply.set("ok", "0");
      } else {
        if (is_beep) {
          ++beeps_;
        } else {
          ++blinks_;
        }
        battery_v_ = std::max(2.0, battery_v_ - 1e-4);
        reply.set("ok", "1");
      }
      reply.payload_bytes = 36;  // one TinyOS-sized packet
      send_reply(request, std::move(reply));
    });
    return;
  }
  net::Message reply = make_reply(msg, "error");
  reply.set("error", "unknown mote op: " + msg.kind);
  send_reply(msg, std::move(reply));
}

device::DeviceTypeInfo sensor_type_info() {
  device::DeviceTypeInfo info;
  info.type_id = Mica2Mote::kTypeId;

  info.catalog = device::DeviceCatalog(
      Mica2Mote::kTypeId,
      {
          {"id", device::AttrType::kString, false, "", "", "device identifier"},
          {"loc", device::AttrType::kLocation, false, "", "m", "fixed position"},
          {"hops", device::AttrType::kInt, false, "", "",
           "depth in the multi-hop radio tree"},
          {"accel_x", device::AttrType::kDouble, true, "read_attr", "mg",
           "x-axis acceleration"},
          {"accel_y", device::AttrType::kDouble, true, "read_attr", "mg",
           "y-axis acceleration"},
          {"light", device::AttrType::kDouble, true, "read_attr", "lux",
           "ambient light"},
          {"temp", device::AttrType::kDouble, true, "read_attr", "degC",
           "temperature"},
          {"battery_v", device::AttrType::kDouble, true, "read_attr", "V",
           "battery voltage"},
      });

  info.op_costs = device::AtomicOpCostTable(Mica2Mote::kTypeId);
  (void)info.op_costs.add({"beep", 0.10, 0.0, ""});
  (void)info.op_costs.add({"blink", 0.05, 0.0, ""});
  (void)info.op_costs.add({"sample", 0.005, 0.0, ""});
  // Connecting through each radio hop costs a store-and-forward delay
  // (Section 2.3's "depth of a sensor in a multi-hop network").
  (void)info.op_costs.add({"hop_relay", 0.0, 0.05, "hop"});

  info.link = net::LinkModel::mote_radio();
  info.probe_timeout = aorta::util::Duration::millis(2000);
  return info;
}

}  // namespace aorta::devices
