// Simulated RFID gate reader.
//
// The related work Aorta positions itself against includes RFID-based
// smart identification frameworks (the paper's reference [14]); this
// device type brings that modality into the reproduction: a fixed reader
// whose *string-valued* sensory attribute `last_tag` carries the id of
// the tag currently in the gate's field (empty when none). Tag passages
// are scripted like mote signals, so experiments can replay workloads.
//
// Integration uses the same extension points as the door lock: the type
// info here plus a generic comm::CommModule registered by the embedder
// (read_attr is all the engine needs — the reader has no actions).
#pragma once

#include <string>
#include <vector>

#include "device/device.h"
#include "device/registry.h"

namespace aorta::devices {

// One scripted tag passage: the tag is in the field during [at, at+dwell).
struct TagPassage {
  aorta::util::TimePoint at;
  aorta::util::Duration dwell = aorta::util::Duration::seconds(1.0);
  std::string tag;
};

class RfidReader : public device::Device {
 public:
  RfidReader(device::DeviceId id, device::Location location);

  static constexpr const char* kTypeId = "rfid";

  void add_passage(TagPassage passage) { passages_.push_back(std::move(passage)); }

  // Total distinct passages whose window has opened by now.
  std::uint64_t passages_seen() const;

  // device::Device
  std::map<std::string, device::Value> static_attrs() const override;
  aorta::util::Result<device::Value> read_attribute(const std::string& name) override;
  std::map<std::string, double> status_snapshot() const override;

 protected:
  void handle_op(const net::Message& msg) override;

 private:
  // The tag in the field at the current simulated time ("" when none;
  // later passages win on overlap, like ScriptedSignal).
  std::string current_tag() const;

  std::vector<TagPassage> passages_;
};

device::DeviceTypeInfo rfid_type_info();

}  // namespace aorta::devices
