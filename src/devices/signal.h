// Synthetic sensor signal generators.
//
// The paper's motes sensed real phenomena (door pushes moving the sensor,
// light, temperature). In the reproduction each sensory attribute of a
// mote is backed by a Signal: a deterministic function of simulated time
// plus optional seeded noise. Experiment harnesses script event windows
// (e.g. an acceleration spike when "someone pushes the door") to trigger
// the event-detection path of action-embedded queries.
#pragma once

#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "util/rng.h"
#include "util/time.h"

namespace aorta::devices {

// A signal maps simulated time to a reading. Implementations must be
// deterministic given their seed so experiments replay identically.
class Signal {
 public:
  virtual ~Signal() = default;
  virtual double sample(aorta::util::TimePoint t) = 0;
};

using SignalPtr = std::unique_ptr<Signal>;

// value == base at all times.
SignalPtr constant_signal(double base);

// base + amplitude * sin(2*pi*t/period). Models diurnal light/temperature.
SignalPtr sine_signal(double base, double amplitude, double period_s,
                      double phase_rad = 0.0);

// base + gaussian(0, stddev) noise per sample.
SignalPtr noisy_signal(double base, double stddev, aorta::util::Rng rng);

// One scripted excursion: the signal reads `value` inside [start, end).
struct SignalEvent {
  aorta::util::TimePoint start;
  aorta::util::TimePoint end;
  double value;
};

// base outside event windows, the event value inside. Later events win on
// overlap. add_event() may be called while the simulation runs (a test
// injecting a new door push).
class ScriptedSignal : public Signal {
 public:
  explicit ScriptedSignal(double base) : base_(base) {}

  void add_event(SignalEvent event) { events_.push_back(event); }

  // Convenience: spike of `value` lasting `duration` starting at `start`.
  void add_spike(aorta::util::TimePoint start, aorta::util::Duration duration,
                 double value) {
    add_event(SignalEvent{start, start + duration, value});
  }

  double sample(aorta::util::TimePoint t) override {
    double v = base_;
    for (const SignalEvent& e : events_) {
      if (t >= e.start && t < e.end) v = e.value;
    }
    return v;
  }

 private:
  double base_;
  std::vector<SignalEvent> events_;
};

// Periodic spikes: every `period`, the signal reads `value` for `width`.
// Drives steady event workloads (one event per query per minute, §6.2).
SignalPtr periodic_spike_signal(double base, double value,
                                aorta::util::Duration period,
                                aorta::util::Duration width,
                                aorta::util::Duration phase =
                                    aorta::util::Duration::zero());

}  // namespace aorta::devices
