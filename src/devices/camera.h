// Simulated AXIS-2130-style PTZ network camera.
//
// This is the reproduction's counterpart of the paper's "homegrown camera
// simulator ... tuned through extensive tests on the real cameras"
// (Section 6.1). It models:
//  - PTZ kinematics: moving the head costs time proportional to the
//    largest axis sweep (Section 2.3's sequence-dependent photo() cost);
//  - capture time per photo size (small/medium/large);
//  - interference between concurrent actions: overlapping photo commands
//    redirect the head mid-exposure, yielding blurred photos or photos
//    taken at wrong positions (the failure modes of Section 4 / 6.2);
//  - fatigue under sustained workload: failure probability rises with
//    recent utilization (the residual ~10% failures of Section 6.2).
//
// Protocol (all request/response over the network):
//   photo    pan,tilt,zoom,size        -> photo_ack  ok,blurred,pan,tilt,bytes
//   ptz_move pan,tilt,zoom             -> ptz_ack
//   snap     size                      -> snap_ack   ok,blurred,bytes
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "device/device.h"
#include "device/registry.h"
#include "devices/ptz_math.h"

namespace aorta::devices {

// Exposure time by photo size; medium is photo()'s default and anchors the
// lower end of the published cost range.
double capture_time_s(const std::string& size);

// Approximate JPEG size by photo size (drives the transfer-time model).
std::size_t photo_bytes(const std::string& size);

struct CameraStats {
  std::uint64_t photos_ok = 0;
  std::uint64_t photos_blurred = 0;
  std::uint64_t photos_wrong_position = 0;
  std::uint64_t photos_failed = 0;  // glitch / fatigue failures
};

class PtzCamera : public device::Device {
 public:
  // `ip` is the static camera.ip attribute the snapshot query passes to
  // photo(); `pose` fixes mounting position/orientation; `range_m` bounds
  // coverage().
  PtzCamera(device::DeviceId id, std::string ip, CameraPose pose,
            double range_m = 25.0);

  static constexpr const char* kTypeId = "camera";

  const CameraPose& pose() const { return pose_; }
  double range_m() const { return range_m_; }
  const PtzPosition& head() const { return head_; }
  void set_head(PtzPosition p) { head_ = limits_.clamp(p); }
  const PtzLimits& limits() const { return limits_; }
  const PtzSpeeds& speeds() const { return speeds_; }
  const CameraStats& camera_stats() const { return camera_stats_; }

  // Fatigue model: effective per-photo failure probability is
  // glitch_prob + fatigue_coeff * utilization, where utilization is the
  // busy fraction over (roughly) the last minute.
  void set_fatigue_coeff(double c) { fatigue_coeff_ = c; }
  double current_utilization() const;

  // device::Device
  std::map<std::string, device::Value> static_attrs() const override;
  aorta::util::Result<device::Value> read_attribute(const std::string& name) override;
  std::map<std::string, double> status_snapshot() const override;

 protected:
  void handle_op(const net::Message& msg) override;

 private:
  struct Session {
    std::uint64_t id;
    bool interfered = false;
  };

  void start_photo(const net::Message& msg);
  void start_move(const net::Message& msg);
  void start_snap(const net::Message& msg);

  // Marks every in-flight session interfered (a new command arrived while
  // the head was already committed elsewhere).
  void interfere_active_sessions();

  Session* find_session(std::uint64_t id);
  void finish_session(std::uint64_t id);

  // Records `busy_s` of work into the decaying utilization accumulator.
  void note_busy_time(double busy_s);

  std::string ip_;
  CameraPose pose_;
  double range_m_;
  PtzLimits limits_;
  PtzSpeeds speeds_;
  PtzPosition head_;

  std::uint64_t next_session_ = 1;
  std::vector<Session> active_sessions_;

  // Exponentially-decayed busy-seconds, and when it was last decayed.
  double busy_accum_s_ = 0.0;
  aorta::util::TimePoint busy_accum_at_;
  double fatigue_coeff_ = 1.0;
  static constexpr double kUtilizationWindowS = 60.0;

  CameraStats camera_stats_;
};

// Registry wiring for the camera type: catalog, atomic op cost table
// (pan/tilt/zoom rates + snap costs, the numbers the cost model consumes),
// link model and probe timeout.
device::DeviceTypeInfo camera_type_info();

}  // namespace aorta::devices
