#include "devices/ptz_math.h"

namespace aorta::devices {

double normalize_deg(double deg) {
  while (deg > 180.0) deg -= 360.0;
  while (deg <= -180.0) deg += 360.0;
  return deg;
}

PtzPosition aim_at(const CameraPose& pose, const device::Location& target,
                   const PtzLimits& limits) {
  double dx = target.x - pose.location.x;
  double dy = target.y - pose.location.y;
  double dz = target.z - pose.location.z;
  double ground = std::sqrt(dx * dx + dy * dy);

  PtzPosition p;
  p.pan_deg = normalize_deg(std::atan2(dy, dx) * 180.0 / M_PI - pose.yaw_deg);
  // Ceiling-mounted cameras look down at floor-level targets: dz < 0.
  p.tilt_deg = (ground < 1e-9 && std::abs(dz) < 1e-9)
                   ? 0.0
                   : std::atan2(dz, ground) * 180.0 / M_PI;
  // Constant-view-size zoom: 1x at 2 m, +1x per additional metre.
  double dist = std::sqrt(ground * ground + dz * dz);
  p.zoom = 1.0 + std::max(0.0, dist - 2.0);
  return limits.clamp(p);
}

bool covers(const CameraPose& pose, const device::Location& target,
            double range_m, const PtzLimits& limits) {
  double dist = pose.location.distance_to(target);
  if (dist > range_m) return false;
  double dx = target.x - pose.location.x;
  double dy = target.y - pose.location.y;
  double pan = normalize_deg(std::atan2(dy, dx) * 180.0 / M_PI - pose.yaw_deg);
  return pan >= limits.pan_min_deg && pan <= limits.pan_max_deg;
}

}  // namespace aorta::devices
