// Worker: one shard's complete query engine behind the czar.
//
// A worker owns a full vertical slice of the unsharded stack — device
// registry, comm layer (attached to the shared simulated network as
// "shard-<i>"), ScanBroker, lock manager, prober, optional
// HealthSupervisor, catalog and continuous-query executor — over the
// hash-partitioned subset of devices the Plane routed to it. It speaks the
// fragment protocol (shard/fragment.h) with the czar:
//
//   * fragment_register (once=0): compile + register the AQ fragment on
//     the local executor; its rows are buffered and shipped to the czar as
//     sequenced fragment_results bursts (a zero-delay event coalesces all
//     rows produced at one instant into one message per query).
//   * fragment_register (once=1): run the one-shot SELECT locally and ride
//     the partial rows back on the RPC reply.
//   * fragment_drop: drop the fragment.
//   * shard_heartbeat every heartbeat_interval: liveness + watermark (the
//     merge frontier's input).
//
// A register carrying a new generation resets the worker's seq counter and
// re-registers over any existing fragment of the same name — the czar's
// recovery path after this worker was partitioned away and healed. One
// carrying an *older* generation (a delayed retry or chaos duplicate from
// before a bump) is answered fragment_stale and otherwise ignored.
//
// Reliable backplane (DESIGN.md §14, Config::reliable_backplane): requests
// are deduplicated by their (idem_gen, idem_seq) key through a bounded
// window that caches the reply — duplicates get the cached reply verbatim,
// or queue as waiters while the first copy is still executing (one-shot
// SELECTs reply asynchronously). Sequenced result messages are retained in
// a bounded replay buffer until a shard_ack covers them; a shard_nack
// retransmits the stored range byte-for-byte.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/aorta.h"
#include "shard/fragment.h"

namespace aorta::shard {

struct WorkerStats {
  std::uint64_t fragments_registered = 0;
  std::uint64_t fragments_dropped = 0;
  std::uint64_t selects_served = 0;
  std::uint64_t rows_sent = 0;
  std::uint64_t results_msgs = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t bad_requests = 0;  // malformed / unparsable fragments
  // Reliable backplane (DESIGN.md §14).
  std::uint64_t dup_requests = 0;       // idempotency-window hits
  std::uint64_t stale_gen_requests = 0; // registers from a superseded gen
  std::uint64_t acks_received = 0;
  std::uint64_t nacks_received = 0;
  std::uint64_t replay_sent = 0;        // messages retransmitted on NACK
  std::uint64_t replay_overflow = 0;    // unacked messages evicted (bound)
  std::uint64_t replay_hwm = 0;         // replay-buffer high-water mark
};

class Worker {
 public:
  struct Options {
    int index = 0;                 // shard index; node id is "shard-<index>"
    net::NodeId czar = "czar";     // where results and heartbeats go
    aorta::util::Duration heartbeat_interval =
        aorta::util::Duration::seconds(1.0);
    // Engine knobs, copied from the host system's Config by the Plane.
    core::Config config;
    // The czar<->worker backplane link (zero loss: the machine-room TCP
    // fabric, not a device radio).
    net::LinkModel interconnect;
  };

  // Builds the worker stack on its *own* runtime loop and network segment
  // (allocated from the host's LoopGroup / Fabric, see DESIGN.md §12) with
  // its own span tracer, registered with the host for merged export.
  // Metrics are enrolled under "shard.<index>." on the host registry, plus
  // "runtime.<loop>." for the worker's loop.
  Worker(core::Aorta* host, Options options);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  // ---- world building (the Plane routes device adds here) -----------------
  aorta::util::Status add_camera(const device::DeviceId& id, std::string ip,
                                 devices::CameraPose pose,
                                 double range_m = 25.0);
  aorta::util::Status add_mote(const device::DeviceId& id,
                               device::Location loc, int hops = 1);
  aorta::util::Status add_phone(const device::DeviceId& id,
                                std::string phone_no, device::Location loc);
  devices::Mica2Mote* mote(const device::DeviceId& id);
  devices::PtzCamera* camera(const device::DeviceId& id);

  int index() const { return options_.index; }
  const net::NodeId& node_id() const { return node_id_; }
  // The worker's home loop and network segment in the parallel runtime.
  int loop_index() const { return loop_index_; }
  aorta::util::EventLoop& loop() { return *loop_; }
  net::Network& network() { return *segment_; }
  device::DeviceRegistry& registry() { return *registry_; }
  comm::CommLayer& comm() { return *comm_; }
  comm::ScanBroker& scan_broker() { return *scan_broker_; }
  query::ContinuousQueryExecutor& executor() { return *executor_; }
  core::HealthSupervisor* health() { return health_.get(); }
  const WorkerStats& stats() const { return stats_; }
  std::size_t fragment_count() const { return fragments_.size(); }
  // Unacked sequenced messages currently retained for retransmission.
  std::size_t replay_depth() const { return replay_.size(); }

 private:
  // Bounds for the reliability state (both FIFO-evicted when exceeded).
  static constexpr std::size_t kIdemWindow = 256;
  static constexpr std::size_t kReplayLimit = 4096;

  // One idempotency-window entry: the cached reply once ready, else the
  // request_ids of duplicates waiting for the first copy to finish.
  struct IdemEntry {
    bool ready = false;
    net::Message reply;
    std::vector<std::uint64_t> waiters;
  };
  using IdemKey = std::pair<std::uint64_t, std::uint64_t>;

  void on_push(const net::Message& msg);
  // Idempotent dispatch: false means the request was a duplicate and has
  // been fully handled (cached reply sent, or queued as a waiter).
  bool begin_idem(const net::Message& msg);
  // All request replies funnel through here so the idempotency window can
  // cache them and answer any queued waiters.
  void send_reply(const net::Message& request, net::Message reply);
  void handle_ack(const net::Message& msg);
  void handle_nack(const net::Message& msg);
  // Adopt a new czar generation: fresh slate — every fragment is dropped
  // (the czar re-registers the ones that should survive) and the outbound
  // seq counter restarts at 0.
  void adopt_gen(std::uint64_t gen);
  void handle_register(const net::Message& msg);
  void handle_drop(const net::Message& msg);
  void run_once_select(const net::Message& msg, const query::SelectStmt& stmt);
  void reply_error(const net::Message& request, const std::string& message);

  void on_aq_row(const std::string& query, const query::TimestampedRow& row);
  void flush_rows();
  void send_outcome(const query::TraceEntry& entry);
  void send_heartbeat();
  // Stamp (shard, gen, seq) onto an outbound one-way message and send it.
  void send_sequenced(net::Message msg);

  Options options_;
  net::NodeId node_id_;
  aorta::util::Rng rng_;
  int loop_index_ = 0;
  aorta::util::EventLoop* loop_ = nullptr;
  // This worker's network segment: its devices and "shard-<i>" endpoint
  // home here; czar traffic crosses the fabric at epoch barriers.
  std::unique_ptr<net::Network> segment_;
  net::Network* network_ = nullptr;  // = segment_.get()
  // Per-loop tracer (each loop records into its own ring; the host merges
  // on export). Raw pointer kept for the instrumentation macros.
  std::unique_ptr<obs::Tracer> tracer_own_;
  obs::Tracer* tracer_ = nullptr;

  // Destruction order mirrors core::Aorta: executor first (it holds broker
  // subscriptions), registry last.
  std::unique_ptr<device::DeviceRegistry> registry_;
  std::unique_ptr<comm::CommLayer> comm_;
  std::unique_ptr<comm::ScanBroker> scan_broker_;
  std::unique_ptr<sync::LockManager> locks_;
  std::unique_ptr<sync::Prober> prober_;
  std::unique_ptr<core::HealthSupervisor> health_;
  std::unique_ptr<query::Catalog> catalog_;
  std::unique_ptr<query::ContinuousQueryExecutor> executor_;

  std::set<std::string> fragments_;  // registered AQ fragment names
  std::uint64_t gen_ = 0;            // adopted czar generation
  std::uint64_t seq_ = 0;            // next outbound sequence number
  bool reliable_ = true;             // Config::reliable_backplane
  // Request dedup window. Keys embed the czar generation, so the window
  // deliberately survives adopt_gen: a pre-bump duplicate arriving after
  // the bump still hits its cached reply instead of re-executing.
  std::map<IdemKey, IdemEntry> idem_;
  std::deque<IdemKey> idem_fifo_;
  // Sequenced messages awaiting a cumulative ack, keyed by seq; cleared on
  // adopt_gen (a new generation restarts the stream from seq 0).
  std::map<std::uint64_t, net::Message> replay_;
  std::vector<std::pair<std::string, query::TimestampedRow>> pending_rows_;
  bool flush_scheduled_ = false;
  WorkerStats stats_;
  obs::MetricsRegistry::Scoped metrics_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace aorta::shard
