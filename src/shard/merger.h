// Merger: deterministic union of per-shard continuous result streams.
//
// Each worker ships its fragments' rows to the czar as sequenced bursts
// and advertises a watermark with every heartbeat: "every row I will ever
// send with at < w has already been sent" (exact because the czar consumes
// each shard's messages in seq order — see shard/fragment.h). The merger
// buffers rows and releases them once the *frontier* — the minimum
// watermark across live shards — has passed them, sorted by
//
//     (virtual timestamp, shard id, per-shard arrival order)
//
// so two same-seed runs emit byte-identical streams regardless of how
// message deliveries interleave across shards. Down shards are excluded
// from the frontier (a dead worker must not stall the other shards'
// results); their buffered rows stay eligible and drain under the
// surviving shards' frontier.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "query/executor.h"
#include "util/time.h"

namespace aorta::shard {

struct MergerStats {
  std::uint64_t rows_in = 0;        // rows accepted from workers
  std::uint64_t rows_out = 0;       // rows released downstream
  std::uint64_t release_passes = 0; // frontier advances that emitted rows
};

class Merger {
 public:
  // `emit` receives each released row exactly once, in merge order.
  using Emit = std::function<void(const std::string& query,
                                  const query::TimestampedRow& row)>;

  Merger(int num_shards, Emit emit);

  // Buffer one row from `shard` (arrival order within a shard is the
  // czar's seq order, already linearized).
  void add(int shard, const std::string& query, query::TimestampedRow row);

  // Advance a shard's watermark; releases every buffered row with
  // at < min(watermark over live shards).
  void watermark(int shard, aorta::util::TimePoint w);

  // Mark a shard live/down. Down shards drop out of the frontier, which
  // can itself release rows.
  void set_live(int shard, bool live);
  bool live(int shard) const { return shards_[static_cast<std::size_t>(shard)].live; }

  // Drop a query's buffered rows (AQ dropped before its tail flushed).
  void forget_query(const std::string& query);

  aorta::util::TimePoint frontier() const;
  std::size_t buffered() const { return buffer_.size(); }
  const MergerStats& stats() const { return stats_; }

 private:
  struct Shard {
    aorta::util::TimePoint watermark;
    std::uint64_t next_arrival = 0;
    bool live = true;
  };
  struct Entry {
    aorta::util::TimePoint at;
    int shard = 0;
    std::uint64_t arrival = 0;
    std::string query;
    query::TimestampedRow row;
  };

  void release();

  Emit emit_;
  std::vector<Shard> shards_;
  std::vector<Entry> buffer_;
  MergerStats stats_;
};

}  // namespace aorta::shard
