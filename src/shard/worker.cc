#include "shard/worker.h"

#include "core/builtins.h"
#include "util/logging.h"

namespace aorta::shard {

using aorta::util::Duration;
using aorta::util::Result;
using aorta::util::Status;

namespace {

// avg() is not mergeable from per-shard averages, but it is from
// (sum, count) partials: rewrite each avg(e) into sum(e) in place plus a
// count(e) appended past the select list, preserving the WHERE, GROUP BY
// and WINDOW clauses. One-shot SELECT fragments merge the partials at the
// reply barrier; continuous aggregate fragments per window instant behind
// the czar's merge frontier (Czar::AggPlan mirrors this column layout).
query::SelectStmt rewrite_avg_to_partials(const query::SelectStmt& stmt) {
  query::SelectStmt out;
  out.from = stmt.from;
  if (stmt.where != nullptr) out.where = stmt.where->clone();
  for (const auto& g : stmt.group_by) out.group_by.push_back(g->clone());
  out.window_s = stmt.window_s;
  out.every_s = stmt.every_s;
  std::vector<query::ExprPtr> counts;
  for (const auto& item : stmt.select_list) {
    if (agg_kind(*item) == AggKind::kAvg) {
      std::vector<query::ExprPtr> sum_args;
      std::vector<query::ExprPtr> count_args;
      for (const auto& a : item->args) {
        sum_args.push_back(a->clone());
        count_args.push_back(a->clone());
      }
      out.select_list.push_back(
          query::Expr::make_func("sum", std::move(sum_args)));
      counts.push_back(query::Expr::make_func("count", std::move(count_args)));
    } else {
      out.select_list.push_back(item->clone());
    }
  }
  for (auto& c : counts) out.select_list.push_back(std::move(c));
  return out;
}

}  // namespace

Worker::Worker(core::Aorta* host, Options options)
    : options_(std::move(options)),
      node_id_("shard-" + std::to_string(options_.index)),
      rng_(host->fork_rng()),
      reliable_(options_.config.reliable_backplane) {
  // This worker's own event loop and network segment: everything below —
  // devices, comm, broker, executor — lives on them, so between epoch
  // barriers the whole stack runs without touching shared state.
  loop_index_ = host->runtime().add_loop();
  loop_ = host->runtime().loop(loop_index_);
  segment_ = std::make_unique<net::Network>(loop_, rng_.fork());
  segment_->join_fabric(&host->fabric(), loop_index_);
  network_ = segment_.get();
  tracer_own_ = std::make_unique<obs::Tracer>(options_.config.trace_capacity);
  tracer_own_->set_enabled(options_.config.tracing);
  tracer_ = tracer_own_.get();
  host->register_tracer(tracer_);

  registry_ = std::make_unique<device::DeviceRegistry>(network_, loop_,
                                                       rng_.fork());
  comm_ = std::make_unique<comm::CommLayer>(registry_.get(), network_,
                                            node_id_);
  // The engine attach used the default LAN link; workers sit on the
  // zero-loss backplane instead (czar traffic must not be droppable).
  (void)network_->set_link(node_id_, options_.interconnect);

  comm::ScanBroker::Options broker_options;
  broker_options.coalesce = options_.config.shared_scans;
  broker_options.freshness = options_.config.scan_freshness;
  broker_options.degraded_staleness = options_.config.degraded_staleness;
  scan_broker_ = std::make_unique<comm::ScanBroker>(
      registry_.get(), comm_.get(), loop_, broker_options);
  locks_ = std::make_unique<sync::LockManager>(loop_);
  prober_ = std::make_unique<sync::Prober>(comm_.get(), registry_.get(),
                                           loop_);
  if (options_.config.health_supervision) {
    health_ = std::make_unique<core::HealthSupervisor>(
        registry_.get(), comm_.get(), loop_, options_.config.health);
    comm_->set_health(health_.get());
    scan_broker_->set_health(health_.get());
  }
  catalog_ = std::make_unique<query::Catalog>();

  query::ContinuousQueryExecutor::Options exec_options;
  exec_options.epoch = options_.config.epoch;
  exec_options.scheduler_name = options_.config.scheduler;
  exec_options.use_probing = options_.config.use_probing;
  exec_options.use_locks = options_.config.use_locks;
  exec_options.max_retries = options_.config.max_retries;
  exec_options.health = health_.get();
  exec_options.shard = options_.index;
  exec_options.predicate_index = options_.config.predicate_index;
  exec_options.aggregate_cache = options_.config.aggregate_cache;
  executor_ = std::make_unique<query::ContinuousQueryExecutor>(
      registry_.get(), comm_.get(), scan_broker_.get(), prober_.get(),
      locks_.get(), loop_, catalog_.get(), rng_.fork(), exec_options);
  if (health_ != nullptr) {
    health_->set_transition_hook(
        [this](const device::DeviceId& id, core::HealthState from,
               core::HealthState to) {
          executor_->record_trace(query::TraceEntry{
              loop_->now(), "", "health",
              id + ": " + std::string(core::health_state_name(from)) +
                  " -> " + std::string(core::health_state_name(to))});
          AORTA_TRACE_INSTANT(
              tracer_, obs::SpanCat::kHealth,
              node_id_ + ":transition:" + id, loop_->now(),
              std::string(core::health_state_name(from)) + " -> " +
                  std::string(core::health_state_name(to)));
        });
  }

  scan_broker_->set_tracer(tracer_);
  executor_->set_tracer(tracer_);
  comm_->engine().rpc().set_tracer(tracer_);
  // Action outcomes are forwarded to the czar (where the service layer
  // routes them to the owning session's mailbox).
  executor_->set_trace_sink([this](const query::TraceEntry& entry) {
    if (entry.kind == "outcome" && !entry.query.empty()) send_outcome(entry);
  });

  (void)registry_->register_type(devices::camera_type_info());
  (void)registry_->register_type(devices::sensor_type_info());
  (void)registry_->register_type(devices::phone_type_info());
  core::register_builtin_function_library(catalog_.get(), registry_.get());
  core::register_builtin_action_library(catalog_.get(), registry_.get(),
                                        comm_.get());

  comm_->engine().set_push_handler(
      [this](const net::Message& msg) { on_push(msg); });

  // Metrics: the unsharded view schema, re-rooted under "shard.<i>.".
  metrics_ = host->metrics().scoped("shard." + std::to_string(options_.index) +
                                    ".");
  scan_broker_->set_metrics(metrics_.registry(),
                            metrics_.prefix() + "scan_broker.");
  const query::EvalStats& es = executor_->eval_stats();
  metrics_.enroll_counter("eval.programs_compiled", &es.programs_compiled);
  metrics_.enroll_counter("eval.compiled_evals", &es.compiled_evals);
  metrics_.enroll_counter("eval.fallback_evals", &es.fallback_evals);
  executor_->set_index_metrics(metrics_.registry(),
                               metrics_.prefix() + "eval.index.");
  executor_->set_agg_metrics(metrics_.registry(),
                             metrics_.prefix() + "eval.agg.",
                             metrics_.prefix() + "broker.agg_cache.");
  const net::RpcStats& rpc = comm_->engine().rpc().stats();
  metrics_.enroll_counter("network.rpc.completed", &rpc.completed);
  metrics_.enroll_counter("network.rpc.timeouts", &rpc.timeouts);
  metrics_.enroll_counter("network.rpc.slow_replies", &rpc.slow_replies);
  if (health_ != nullptr) {
    const core::HealthStats& hs = health_->stats();
    metrics_.enroll_gauge("health.quarantined", [this]() {
      return static_cast<std::int64_t>(health_->quarantined_count());
    });
    metrics_.enroll_counter("health.quarantines", &hs.quarantines);
    metrics_.enroll_counter("health.recoveries", &hs.recoveries);
  }
  metrics_.enroll_counter("fragments.registered",
                          &stats_.fragments_registered);
  metrics_.enroll_counter("fragments.dropped", &stats_.fragments_dropped);
  metrics_.enroll_gauge("fragments.active", [this]() {
    return static_cast<std::int64_t>(fragments_.size());
  });
  metrics_.enroll_counter("selects_served", &stats_.selects_served);
  metrics_.enroll_counter("rows_sent", &stats_.rows_sent);
  metrics_.enroll_counter("results_msgs", &stats_.results_msgs);
  metrics_.enroll_counter("heartbeats", &stats_.heartbeats_sent);
  metrics_.enroll_counter("reliable.dup_requests", &stats_.dup_requests);
  metrics_.enroll_counter("reliable.stale_gen_requests",
                          &stats_.stale_gen_requests);
  metrics_.enroll_counter("reliable.acks_received", &stats_.acks_received);
  metrics_.enroll_counter("reliable.nacks_received", &stats_.nacks_received);
  metrics_.enroll_counter("reliable.replay_sent", &stats_.replay_sent);
  metrics_.enroll_counter("reliable.replay_overflow", &stats_.replay_overflow);
  metrics_.enroll_gauge("reliable.replay_depth", [this]() {
    return static_cast<std::int64_t>(replay_.size());
  });
  metrics_.enroll_gauge("reliable.replay_hwm", [this]() {
    return static_cast<std::int64_t>(stats_.replay_hwm);
  });
  // This worker's network segment (local device traffic + fabric hand-offs)
  // and its runtime loop (barrier waits, cross-post queue depths).
  const net::NetworkStats& ns = network_->stats();
  metrics_.enroll_counter("network.sent", &ns.sent);
  metrics_.enroll_counter("network.delivered", &ns.delivered);
  metrics_.enroll_counter("network.dropped_loss", &ns.dropped_loss);
  metrics_.enroll_counter("network.cross_sent", &ns.cross_sent);
  host->enroll_loop_runtime_metrics(loop_index_);

  executor_->start();
  auto alive = alive_;
  loop_->schedule(options_.heartbeat_interval, [this, alive]() {
    if (*alive) send_heartbeat();
  });
}

Worker::~Worker() {
  comm_->engine().set_push_handler({});
  executor_->set_trace_sink({});
  metrics_.unenroll_all();
  *alive_ = false;
}

Status Worker::add_camera(const device::DeviceId& id, std::string ip,
                          devices::CameraPose pose, double range_m) {
  return registry_->add(std::make_unique<devices::PtzCamera>(
      id, std::move(ip), pose, range_m));
}

Status Worker::add_mote(const device::DeviceId& id, device::Location loc,
                        int hops) {
  AORTA_RETURN_IF_ERROR(
      registry_->add(std::make_unique<devices::Mica2Mote>(id, loc, hops)));
  return network_->set_link(id, devices::Mica2Mote::link_for_hops(hops));
}

Status Worker::add_phone(const device::DeviceId& id, std::string phone_no,
                         device::Location loc) {
  return registry_->add(
      std::make_unique<devices::MmsPhone>(id, std::move(phone_no), loc));
}

devices::Mica2Mote* Worker::mote(const device::DeviceId& id) {
  return dynamic_cast<devices::Mica2Mote*>(registry_->find(id));
}

devices::PtzCamera* Worker::camera(const device::DeviceId& id) {
  return dynamic_cast<devices::PtzCamera*>(registry_->find(id));
}

void Worker::on_push(const net::Message& msg) {
  if (msg.kind == kShardAck) {
    handle_ack(msg);
    return;
  }
  if (msg.kind == kShardNack) {
    handle_nack(msg);
    return;
  }
  if (msg.kind != kFragmentRegister && msg.kind != kFragmentDrop) {
    // A device-initiated push; no current protocol uses them.
    return;
  }
  if (reliable_ && !begin_idem(msg)) return;  // duplicate, fully handled
  if (msg.kind == kFragmentRegister) {
    handle_register(msg);
  } else {
    handle_drop(msg);
  }
}

bool Worker::begin_idem(const net::Message& msg) {
  if (msg.fields.count(kIdemGenField) == 0 ||
      msg.fields.count(kIdemSeqField) == 0) {
    return true;  // unkeyed request (direct test traffic): just process
  }
  const IdemKey key{static_cast<std::uint64_t>(msg.field_int(kIdemGenField)),
                    static_cast<std::uint64_t>(msg.field_int(kIdemSeqField))};
  auto it = idem_.find(key);
  if (it == idem_.end()) {
    idem_.emplace(key, IdemEntry{});
    idem_fifo_.push_back(key);
    if (idem_fifo_.size() > kIdemWindow) {
      idem_.erase(idem_fifo_.front());
      idem_fifo_.pop_front();
    }
    return true;
  }
  ++stats_.dup_requests;
  AORTA_TRACE_INSTANT(tracer_, obs::SpanCat::kFragment,
                      node_id_ + ":dup_request", loop_->now(),
                      msg.kind);
  if (it->second.ready) {
    // Replay the cached reply under the duplicate's request_id.
    net::Message reply = it->second.reply;
    reply.request_id = msg.request_id;
    reply.dst = msg.src;
    network_->send(std::move(reply));
  } else {
    // First copy still executing (one-shot SELECTs finish asynchronously):
    // the duplicate waits for the same reply.
    it->second.waiters.push_back(msg.request_id);
  }
  return false;
}

void Worker::send_reply(const net::Message& request, net::Message reply) {
  if (reliable_ && request.fields.count(kIdemGenField) > 0 &&
      request.fields.count(kIdemSeqField) > 0) {
    const IdemKey key{
        static_cast<std::uint64_t>(request.field_int(kIdemGenField)),
        static_cast<std::uint64_t>(request.field_int(kIdemSeqField))};
    auto it = idem_.find(key);
    if (it != idem_.end()) {
      it->second.ready = true;
      it->second.reply = reply;
      for (std::uint64_t waiter : it->second.waiters) {
        net::Message dup = reply;
        dup.request_id = waiter;
        network_->send(std::move(dup));
      }
      it->second.waiters.clear();
    }
  }
  network_->send(std::move(reply));
}

void Worker::handle_ack(const net::Message& msg) {
  if (static_cast<std::uint64_t>(msg.field_int("gen")) != gen_) return;
  ++stats_.acks_received;
  const auto cum = static_cast<std::uint64_t>(msg.field_int("cum"));
  replay_.erase(replay_.begin(), replay_.lower_bound(cum));
}

void Worker::handle_nack(const net::Message& msg) {
  if (static_cast<std::uint64_t>(msg.field_int("gen")) != gen_) return;
  ++stats_.nacks_received;
  const auto from = static_cast<std::uint64_t>(msg.field_int("from"));
  const auto to = static_cast<std::uint64_t>(msg.field_int("to"));
  AORTA_TRACE_INSTANT(tracer_, obs::SpanCat::kFragment,
                      node_id_ + ":replay", loop_->now(),
                      "[" + std::to_string(from) + ", " + std::to_string(to) +
                          ")");
  // Retransmit the stored messages byte-for-byte (same gen, same seq);
  // the czar drops whatever it meanwhile consumed or buffered.
  for (auto it = replay_.lower_bound(from);
       it != replay_.end() && it->first < to; ++it) {
    net::Message copy = it->second;
    ++stats_.replay_sent;
    network_->send(std::move(copy));
  }
}

void Worker::reply_error(const net::Message& request,
                         const std::string& message) {
  net::Message reply = net::make_reply(request, kFragmentError, 64);
  reply.set("error", message);
  send_reply(request, std::move(reply));
}

void Worker::adopt_gen(std::uint64_t gen) {
  gen_ = gen;
  seq_ = 0;
  for (const std::string& name : fragments_) (void)executor_->drop_aq(name);
  fragments_.clear();
  pending_rows_.clear();
  // The superseded stream's unacked messages die with it; the idempotency
  // window survives (its keys embed the generation).
  replay_.clear();
}

void Worker::handle_register(const net::Message& msg) {
  FragmentSpec spec = fragment_from_fields(msg);
  if (spec.gen < gen_) {
    // A delayed retry or chaos duplicate from before a generation bump:
    // adopting it would roll the stream back. Refuse, identify ourselves.
    ++stats_.stale_gen_requests;
    net::Message reply = net::make_reply(msg, kFragmentStale, 64);
    reply.set_int("gen", static_cast<std::int64_t>(gen_));
    send_reply(msg, std::move(reply));
    return;
  }
  if (spec.gen > gen_) adopt_gen(spec.gen);
  if (spec.sql.empty() && !spec.once) {
    // Generation-sync control fragment: the czar's recovery handshake when
    // it has nothing (or nothing yet) to re-register on this shard.
    net::Message reply = net::make_reply(msg, kFragmentAck, 64);
    reply.set_int("gen", static_cast<std::int64_t>(gen_));
    send_reply(msg, std::move(reply));
    return;
  }
  auto stmt = query::parse(spec.sql);
  if (!stmt.is_ok()) {
    ++stats_.bad_requests;
    reply_error(msg, stmt.status().to_string());
    return;
  }
  AORTA_TRACE_INSTANT(tracer_, obs::SpanCat::kFragment,
                      node_id_ + ":register:" + spec.name, loop_->now(),
                      spec.once ? "once" : spec.device_slice);
  if (spec.once) {
    if (stmt.value().kind != query::Statement::Kind::kSelect) {
      ++stats_.bad_requests;
      reply_error(msg, "once fragment must be a SELECT");
      return;
    }
    run_once_select(msg, stmt.value().select);
    return;
  }
  if (stmt.value().kind != query::Statement::Kind::kCreateAq) {
    ++stats_.bad_requests;
    reply_error(msg, "fragment must be a CREATE AQ statement");
    return;
  }
  if (fragments_.count(spec.name) > 0) {
    (void)executor_->drop_aq(spec.name);  // re-register replaces
  }
  query::ContinuousQueryExecutor::AqHooks hooks;
  hooks.owner = "czar";
  auto alive = alive_;
  hooks.on_row = [this, alive](const std::string& query,
                               const query::TimestampedRow& row) {
    if (*alive) on_aq_row(query, row);
  };
  // Continuous aggregates ship per-shard window partials; avg() fragments
  // are rewritten to (sum, count) partials the czar finalizes per window
  // instant (the one-shot path's rewrite, behind the merge frontier).
  bool has_avg = false;
  (void)select_has_aggregates(stmt.value().create_aq.select, &has_avg);
  Status registered;
  if (has_avg) {
    query::SelectStmt rewritten =
        rewrite_avg_to_partials(stmt.value().create_aq.select);
    registered = executor_->register_aq(spec.name,
                                        stmt.value().create_aq.epoch_s,
                                        rewritten, spec.sql, std::move(hooks));
  } else {
    registered = executor_->register_aq(
        spec.name, stmt.value().create_aq.epoch_s,
        stmt.value().create_aq.select, spec.sql, std::move(hooks));
  }
  if (!registered.is_ok()) {
    ++stats_.bad_requests;
    reply_error(msg, registered.to_string());
    return;
  }
  fragments_.insert(spec.name);
  ++stats_.fragments_registered;
  net::Message reply = net::make_reply(msg, kFragmentAck, 64);
  reply.set_int("gen", static_cast<std::int64_t>(gen_));
  send_reply(msg, std::move(reply));
}

void Worker::handle_drop(const net::Message& msg) {
  std::string name = msg.field("name");
  if (fragments_.erase(name) > 0) {
    (void)executor_->drop_aq(name);
    ++stats_.fragments_dropped;
  }
  AORTA_TRACE_INSTANT(tracer_, obs::SpanCat::kFragment,
                      node_id_ + ":drop:" + name, loop_->now(), "");
  send_reply(msg, net::make_reply(msg, kFragmentAck, 64));
}

void Worker::run_once_select(const net::Message& msg,
                             const query::SelectStmt& stmt) {
  // avg() cannot be merged from per-shard averages, but it *is* mergeable
  // from (sum, count) partials (see rewrite_avg_to_partials). The czar
  // finalizes sum/count and drops the helper columns at the merge barrier.
  bool has_avg = false;
  (void)select_has_aggregates(stmt, &has_avg);
  query::SelectStmt rewritten;
  const query::SelectStmt* to_run = &stmt;
  if (has_avg) {
    rewritten = rewrite_avg_to_partials(stmt);
    to_run = &rewritten;
  }

  auto alive = alive_;
  // run_select compiles synchronously (cloning the statement), so the
  // rewritten form may live on this stack; completion fires once
  // acquisition finishes in simulated time.
  executor_->run_select(
      *to_run, [this, alive, msg](Result<std::vector<query::Row>> outcome) {
        if (!*alive) return;
        if (!outcome.is_ok()) {
          reply_error(msg, outcome.status().to_string());
          return;
        }
        std::vector<query::TimestampedRow> rows;
        rows.reserve(outcome.value().size());
        for (auto& row : outcome.value()) {
          rows.push_back(query::TimestampedRow{loop_->now(), std::move(row),
                                               false});
        }
        std::string payload = encode_rows(rows);
        ++stats_.selects_served;
        net::Message reply =
            net::make_reply(msg, kFragmentSelectResult, 64 + payload.size());
        reply.set_int("count", static_cast<std::int64_t>(rows.size()));
        reply.set("rows", std::move(payload));
        send_reply(msg, std::move(reply));
      });
}

void Worker::on_aq_row(const std::string& query,
                       const query::TimestampedRow& row) {
  pending_rows_.emplace_back(query, row);
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  auto alive = alive_;
  // Zero-delay event: every row produced at this instant ships in one
  // burst, and ships before any later heartbeat can advance the watermark
  // past it (see shard/fragment.h on ordering).
  loop_->schedule(Duration::zero(), [this, alive]() {
    if (*alive) flush_rows();
  });
}

void Worker::flush_rows() {
  flush_scheduled_ = false;
  std::vector<std::pair<std::string, query::TimestampedRow>> rows;
  rows.swap(pending_rows_);
  // One message per query, in first-appearance order (deterministic).
  std::vector<std::string> order;
  std::map<std::string, std::vector<query::TimestampedRow>> by_query;
  for (auto& [query, row] : rows) {
    auto [it, inserted] = by_query.try_emplace(query);
    if (inserted) order.push_back(query);
    it->second.push_back(std::move(row));
  }
  for (const std::string& query : order) {
    std::vector<query::TimestampedRow>& batch = by_query[query];
    std::string payload = encode_rows(batch);
    net::Message msg;
    msg.kind = kFragmentResults;
    msg.set("type", "rows");
    msg.set("query", query);
    msg.set_int("count", static_cast<std::int64_t>(batch.size()));
    msg.payload_bytes = 64 + payload.size();
    msg.set("rows", std::move(payload));
    stats_.rows_sent += batch.size();
    ++stats_.results_msgs;
    send_sequenced(std::move(msg));
  }
}

void Worker::send_outcome(const query::TraceEntry& entry) {
  net::Message msg;
  msg.kind = kFragmentResults;
  msg.set("type", "outcome");
  msg.set("query", entry.query);
  msg.set("detail", entry.detail);
  msg.set_int("at_us", entry.at.to_micros());
  send_sequenced(std::move(msg));
}

void Worker::send_heartbeat() {
  net::Message msg;
  msg.kind = kShardHeartbeat;
  msg.set_int("watermark_us", loop_->now().to_micros());
  ++stats_.heartbeats_sent;
  send_sequenced(std::move(msg));
  auto alive = alive_;
  loop_->schedule(options_.heartbeat_interval, [this, alive]() {
    if (*alive) send_heartbeat();
  });
}

void Worker::send_sequenced(net::Message msg) {
  msg.src = node_id_;
  msg.dst = options_.czar;
  msg.set_int("shard", options_.index);
  msg.set_int("gen", static_cast<std::int64_t>(gen_));
  const std::uint64_t seq = seq_++;
  msg.set_int("seq", static_cast<std::int64_t>(seq));
  if (reliable_) {
    // Retain a verbatim copy until a cumulative ack covers it. The bound
    // protects memory if the czar goes silent; overflow drops the oldest
    // (supervision will eventually bump the generation anyway).
    replay_.emplace(seq, msg);
    if (replay_.size() > kReplayLimit) {
      replay_.erase(replay_.begin());
      ++stats_.replay_overflow;
    }
    if (replay_.size() > stats_.replay_hwm) {
      stats_.replay_hwm = replay_.size();
    }
  }
  network_->send(std::move(msg));
}

}  // namespace aorta::shard
