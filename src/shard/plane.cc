#include "shard/plane.h"

#include <algorithm>

namespace aorta::shard {

using aorta::util::Status;

net::LinkModel Plane::backplane() {
  net::LinkModel link;
  link.latency_mean_s = 0.0002;
  link.latency_jitter_s = 0.0;
  link.loss_prob = 0.0;
  link.bandwidth_bytes_per_s = 1e9;
  return link;
}

Plane::Plane(core::Aorta* host, Options options)
    : host_(host), options_(std::move(options)) {
  workers_.reserve(static_cast<std::size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    Worker::Options wo;
    wo.index = i;
    wo.heartbeat_interval = options_.heartbeat_interval;
    wo.config = host->config();
    wo.interconnect = options_.interconnect;
    workers_.push_back(std::make_unique<Worker>(host, wo));
  }
  Czar::Options co;
  co.num_shards = options_.num_shards;
  co.heartbeat_interval = options_.heartbeat_interval;
  co.miss_threshold = options_.miss_threshold;
  co.interconnect = options_.interconnect;
  czar_ = std::make_unique<Czar>(host, co);

  metrics_ = host->metrics().scoped("net.reliable.");
  metrics_.enroll_gauge("replay_depth", [this]() {
    std::int64_t depth = 0;
    for (const auto& w : workers_) {
      depth += static_cast<std::int64_t>(w->replay_depth());
    }
    return depth;
  });
  metrics_.enroll_gauge("replay_hwm", [this]() {
    std::int64_t hwm = 0;
    for (const auto& w : workers_) {
      hwm = std::max(hwm,
                     static_cast<std::int64_t>(w->stats().replay_hwm));
    }
    return hwm;
  });
}

Plane::~Plane() { metrics_.unenroll_all(); }

Status Plane::add_camera(const device::DeviceId& id, std::string ip,
                         devices::CameraPose pose, double range_m) {
  return worker(shard_of_device(id))
      .add_camera(id, std::move(ip), pose, range_m);
}

Status Plane::add_mote(const device::DeviceId& id, device::Location loc,
                       int hops) {
  return worker(shard_of_device(id)).add_mote(id, loc, hops);
}

Status Plane::add_phone(const device::DeviceId& id, std::string phone_no,
                        device::Location loc) {
  return worker(shard_of_device(id)).add_phone(id, std::move(phone_no), loc);
}

devices::Mica2Mote* Plane::mote(const device::DeviceId& id) {
  return worker(shard_of_device(id)).mote(id);
}

devices::PtzCamera* Plane::camera(const device::DeviceId& id) {
  return worker(shard_of_device(id)).camera(id);
}

Status Plane::apply_fault_plan(const util::FaultPlan& plan) {
  // Rewrite shard-targeted events into node-level events on the worker's
  // network endpoint before handing the plan to the core scheduler.
  util::FaultPlan rewritten = plan;
  for (util::FaultEvent& e : rewritten.events) {
    if (e.shard < 0) continue;
    if (e.shard >= options_.num_shards) {
      return aorta::util::invalid_argument_error(
          "fault plan targets shard " + std::to_string(e.shard) +
          " but the plane has " + std::to_string(options_.num_shards) +
          " shard(s)");
    }
    switch (e.kind) {
      case util::FaultEvent::Kind::kCrash:
        e.kind = util::FaultEvent::Kind::kPartition;
        break;
      case util::FaultEvent::Kind::kRevive:
        e.kind = util::FaultEvent::Kind::kHeal;
        break;
      case util::FaultEvent::Kind::kPartition:
      case util::FaultEvent::Kind::kHeal:
        break;
      case util::FaultEvent::Kind::kDuplicateSpike:
      case util::FaultEvent::Kind::kReorderSpike:
      case util::FaultEvent::Kind::kDelaySpike:
        // Backplane spikes keep their kind; only the target is resolved
        // to the worker's network node (its backplane link).
        break;
      case util::FaultEvent::Kind::kLossSpike:
      case util::FaultEvent::Kind::kGlitchSpike:
        // Unreachable: the parser rejects these spikes with a shard
        // attribute (loss/glitch stay device-targeted; use
        // device="shard-N" to storm a worker's backplane link).
        return aorta::util::invalid_argument_error(
            "spike events cannot target a shard");
    }
    e.target = workers_[static_cast<std::size_t>(e.shard)]->node_id();
    e.shard = -1;
  }

  // Under the parallel runtime each event must fire on the loop that owns
  // its target: partition sets and link models live in the target node's
  // home segment, and device state may only be touched from its home loop.
  auto find_device = [this](const device::DeviceId& id) -> device::Device* {
    for (auto& w : workers_) {
      device::Device* d = w->registry().find(id);
      if (d != nullptr) return d;
    }
    return host_->registry().find(id);
  };
  // Resolve each event's home (worker segment or the host's control
  // segment), validating every target up front like the core scheduler.
  struct Placement {
    aorta::util::EventLoop* loop;
    net::Network* network;
  };
  std::vector<Placement> placements;
  placements.reserve(rewritten.events.size());
  for (const util::FaultEvent& e : rewritten.events) {
    Placement p{&host_->loop(), &host_->network()};
    switch (e.kind) {
      case util::FaultEvent::Kind::kCrash:
      case util::FaultEvent::Kind::kRevive:
      case util::FaultEvent::Kind::kGlitchSpike: {
        bool found = false;
        for (auto& w : workers_) {
          if (w->registry().find(e.target) != nullptr) {
            p = Placement{&w->loop(), &w->network()};
            found = true;
            break;
          }
        }
        if (!found && host_->registry().find(e.target) == nullptr) {
          return aorta::util::not_found_error(
              "fault plan targets unknown device: " + e.target);
        }
        break;
      }
      case util::FaultEvent::Kind::kPartition:
      case util::FaultEvent::Kind::kHeal:
      case util::FaultEvent::Kind::kLossSpike:
      case util::FaultEvent::Kind::kDuplicateSpike:
      case util::FaultEvent::Kind::kReorderSpike:
      case util::FaultEvent::Kind::kDelaySpike: {
        bool found = false;
        for (auto& w : workers_) {
          if (w->network().attached(e.target)) {
            p = Placement{&w->loop(), &w->network()};
            found = true;
            break;
          }
        }
        if (!found && !host_->network().attached(e.target)) {
          return aorta::util::not_found_error(
              "fault plan targets unattached node: " + e.target);
        }
        break;
      }
    }
    placements.push_back(p);
  }
  for (std::size_t i = 0; i < rewritten.events.size(); ++i) {
    core::schedule_fault_event(rewritten.events[i], placements[i].loop,
                               placements[i].network, find_device);
  }
  return aorta::util::Status::ok();
}

}  // namespace aorta::shard
