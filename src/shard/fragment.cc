#include "shard/fragment.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace aorta::shard {

using device::Location;
using device::Value;

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

void fragment_to_fields(const FragmentSpec& spec, net::Message* msg) {
  msg->set("name", spec.name);
  msg->set("sql", spec.sql);
  msg->set_double("epoch_s", spec.epoch_s);
  msg->set_int("once", spec.once ? 1 : 0);
  msg->set_int("shard", spec.shard);
  msg->set_int("num_shards", spec.num_shards);
  msg->set_int("gen", static_cast<std::int64_t>(spec.gen));
  msg->set("attrs", spec.needed_attrs);
  msg->set("devices", spec.device_slice);
}

FragmentSpec fragment_from_fields(const net::Message& msg) {
  FragmentSpec spec;
  spec.name = msg.field("name");
  spec.sql = msg.field("sql");
  spec.epoch_s = msg.field_double("epoch_s");
  spec.once = msg.field_int("once") != 0;
  spec.shard = static_cast<int>(msg.field_int("shard"));
  spec.num_shards = static_cast<int>(msg.field_int("num_shards", 1));
  spec.gen = static_cast<std::uint64_t>(msg.field_int("gen"));
  spec.needed_attrs = msg.field("attrs");
  spec.device_slice = msg.field("devices");
  return spec;
}

// ---- rows codec ----------------------------------------------------------

namespace {

// Every token is "<len>:<bytes>": self-delimiting regardless of content.
void put_token(std::string& out, std::string_view data) {
  out += std::to_string(data.size());
  out += ':';
  out += data;
}

bool take_token(std::string_view& in, std::string& out) {
  std::size_t colon = in.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  std::size_t len = 0;
  for (char c : in.substr(0, colon)) {
    if (c < '0' || c > '9') return false;
    len = len * 10 + static_cast<std::size_t>(c - '0');
  }
  in.remove_prefix(colon + 1);
  if (in.size() < len) return false;
  out.assign(in.substr(0, len));
  in.remove_prefix(len);
  return true;
}

// Exact value rendering: one type character + payload. Doubles use %.17g
// so every IEEE double round-trips bit-exactly.
std::string encode_value(const Value& v) {
  if (std::holds_alternative<std::monostate>(v)) return "n";
  if (const bool* b = std::get_if<bool>(&v)) return *b ? "b1" : "b0";
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v)) {
    return "i" + std::to_string(*i);
  }
  if (const double* d = std::get_if<double>(&v)) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "d%.17g", *d);
    return buf;
  }
  if (const std::string* s = std::get_if<std::string>(&v)) return "s" + *s;
  const Location& loc = std::get<Location>(v);
  char buf[128];
  std::snprintf(buf, sizeof(buf), "l%.17g,%.17g,%.17g", loc.x, loc.y, loc.z);
  return buf;
}

bool decode_value(const std::string& token, Value* out) {
  if (token.empty()) return false;
  std::string payload = token.substr(1);
  switch (token[0]) {
    case 'n':
      *out = std::monostate{};
      return true;
    case 'b':
      *out = payload == "1";
      return true;
    case 'i': {
      char* end = nullptr;
      std::int64_t i = std::strtoll(payload.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') return false;
      *out = i;
      return true;
    }
    case 'd': {
      char* end = nullptr;
      double d = std::strtod(payload.c_str(), &end);
      if (end == nullptr || *end != '\0') return false;
      *out = d;
      return true;
    }
    case 's':
      *out = std::move(payload);
      return true;
    case 'l': {
      Location loc;
      char rest = '\0';
      if (std::sscanf(payload.c_str(), "%lf,%lf,%lf%c", &loc.x, &loc.y,
                      &loc.z, &rest) != 3) {
        return false;
      }
      *out = loc;
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

std::string encode_rows(const std::vector<query::TimestampedRow>& rows) {
  std::string out;
  put_token(out, std::to_string(rows.size()));
  for (const query::TimestampedRow& r : rows) {
    put_token(out, std::to_string(r.at.to_micros()));
    put_token(out, r.degraded ? "1" : "0");
    put_token(out, std::to_string(r.row.size()));
    for (const auto& [name, value] : r.row) {
      put_token(out, name);
      put_token(out, encode_value(value));
    }
  }
  return out;
}

bool decode_rows(const std::string& payload,
                 std::vector<query::TimestampedRow>* out) {
  std::string_view in = payload;
  std::string token;
  if (!take_token(in, token)) return false;
  std::size_t n_rows = std::strtoull(token.c_str(), nullptr, 10);
  out->clear();
  out->reserve(n_rows);
  for (std::size_t i = 0; i < n_rows; ++i) {
    query::TimestampedRow row;
    if (!take_token(in, token)) return false;
    row.at = aorta::util::TimePoint::from_micros(
        std::strtoll(token.c_str(), nullptr, 10));
    if (!take_token(in, token)) return false;
    row.degraded = token == "1";
    if (!take_token(in, token)) return false;
    std::size_t n_fields = std::strtoull(token.c_str(), nullptr, 10);
    for (std::size_t f = 0; f < n_fields; ++f) {
      std::string name;
      if (!take_token(in, name)) return false;
      if (!take_token(in, token)) return false;
      Value value;
      if (!decode_value(token, &value)) return false;
      row.row.emplace_back(std::move(name), std::move(value));
    }
    out->push_back(std::move(row));
  }
  return in.empty();
}

// ---- czar-side plan analysis --------------------------------------------

namespace {

void collect_columns(const query::Expr* e, std::set<std::string>* out) {
  if (e == nullptr) return;
  switch (e->kind) {
    case query::Expr::Kind::kColumnRef:
      out->insert(e->column);
      break;
    case query::Expr::Kind::kFuncCall:
      for (const auto& arg : e->args) collect_columns(arg.get(), out);
      break;
    case query::Expr::Kind::kBinary:
    case query::Expr::Kind::kNot:
      collect_columns(e->lhs.get(), out);
      collect_columns(e->rhs.get(), out);
      break;
    case query::Expr::Kind::kLiteral:
      break;
  }
}

}  // namespace

std::set<std::string> needed_attributes(const query::SelectStmt& stmt) {
  std::set<std::string> out;
  for (const auto& item : stmt.select_list) collect_columns(item.get(), &out);
  collect_columns(stmt.where.get(), &out);
  out.erase("*");
  return out;
}

AggKind agg_kind(const query::Expr& expr) {
  if (expr.kind != query::Expr::Kind::kFuncCall) return AggKind::kNone;
  std::string name = aorta::util::to_lower(expr.func_name);
  if (name == "count") return AggKind::kCount;
  if (name == "sum") return AggKind::kSum;
  if (name == "avg") return AggKind::kAvg;
  if (name == "min") return AggKind::kMin;
  if (name == "max") return AggKind::kMax;
  return AggKind::kNone;
}

bool select_has_aggregates(const query::SelectStmt& stmt, bool* has_avg) {
  bool any = false;
  if (has_avg != nullptr) *has_avg = false;
  for (const auto& item : stmt.select_list) {
    AggKind kind = agg_kind(*item);
    if (kind == AggKind::kNone) continue;
    any = true;
    if (kind == AggKind::kAvg && has_avg != nullptr) *has_avg = true;
  }
  return any;
}

}  // namespace aorta::shard
