#include "shard/czar.h"

#include <algorithm>
#include <utility>

#include "util/strings.h"

namespace aorta::shard {

using aorta::util::Duration;
using aorta::util::Result;
using aorta::util::Status;
using aorta::util::TimePoint;
using core::ExecResult;

namespace {
// Salt for the retry-jitter RNG stream: constant-derived from the config
// seed (never forked from the main stream) so retrying perturbs nothing.
constexpr std::uint64_t kRetryJitterSalt = 0x52e11ab1eca11ull;
}  // namespace

Czar::Czar(core::Aorta* host, Options options)
    : host_(host),
      options_(std::move(options)),
      loop_(&host->loop()),
      network_(&host->network()),
      tracer_(&host->tracer()),
      rpc_(network_, options_.node_id),
      reliable_(host->config().reliable_backplane),
      reliable_call_(&rpc_, loop_,
                     aorta::util::Rng(host->config().seed ^ kRetryJitterSalt),
                     options_.reliable) {
  (void)network_->attach(options_.node_id, this, options_.interconnect);
  rpc_.set_tracer(tracer_);
  reliable_call_.set_peer_down_hook([this](const net::NodeId& node) {
    // Breaker opened: the peer burned through consecutive attempts. Mark
    // the shard down now instead of waiting out the heartbeat silence.
    int shard = shard_of_node(node);
    if (shard >= 0) mark_down(shard);
  });
  shards_.resize(static_cast<std::size_t>(options_.num_shards));
  for (ShardState& s : shards_) s.last_msg = loop_->now();
  merger_ = std::make_unique<Merger>(
      options_.num_shards,
      [this](const std::string& query, const query::TimestampedRow& row) {
        on_row_released(query, row);
      });

  metrics_ = host->metrics().scoped("shard.czar.");
  metrics_.enroll_counter("aqs_registered", &stats_.aqs_registered);
  metrics_.enroll_counter("aqs_dropped", &stats_.aqs_dropped);
  metrics_.enroll_counter("selects", &stats_.selects);
  metrics_.enroll_counter("fragment_errors", &stats_.fragment_errors);
  metrics_.enroll_counter("rows_received", &stats_.rows_received);
  metrics_.enroll_counter("outcomes_received", &stats_.outcomes_received);
  metrics_.enroll_counter("heartbeats_received", &stats_.heartbeats_received);
  metrics_.enroll_counter("stale_gen_msgs", &stats_.stale_gen_msgs);
  metrics_.enroll_counter("ooo_buffered", &stats_.ooo_buffered);
  metrics_.enroll_counter("stale_query_rows", &stats_.stale_query_rows);
  metrics_.enroll_counter("workers_marked_down", &stats_.workers_marked_down);
  metrics_.enroll_counter("reregistrations", &stats_.reregistrations);
  metrics_.enroll_counter("dup_msgs_dropped", &stats_.dup_msgs_dropped);
  metrics_.enroll_counter("acks_sent", &stats_.acks_sent);
  metrics_.enroll_counter("nacks_sent", &stats_.nacks_sent);
  metrics_.enroll_counter("partial_selects", &stats_.partial_selects);
  // The reliable dispatcher's own counters, rooted at "net.reliable." (one
  // section for the whole backplane; the Plane adds worker-side replay
  // gauges to it).
  reliable_metrics_ = host->metrics().scoped("net.reliable.");
  const net::ReliableCallStats& rs = reliable_call_.stats();
  reliable_metrics_.enroll_counter("calls", &rs.calls);
  reliable_metrics_.enroll_counter("attempts", &rs.attempts);
  reliable_metrics_.enroll_counter("retries", &rs.retries);
  reliable_metrics_.enroll_counter("giveups", &rs.giveups);
  reliable_metrics_.enroll_counter("budget_exhausted", &rs.budget_exhausted);
  reliable_metrics_.enroll_counter("breaker.opens", &rs.breaker_opens);
  reliable_metrics_.enroll_counter("breaker.half_opens",
                                   &rs.breaker_half_opens);
  reliable_metrics_.enroll_counter("breaker.closes", &rs.breaker_closes);
  reliable_metrics_.enroll_counter("breaker.rejects", &rs.breaker_rejects);
  const MergerStats& ms = merger_->stats();
  metrics_.enroll_counter("merge.rows_in", &ms.rows_in);
  metrics_.enroll_counter("merge.rows_out", &ms.rows_out);
  metrics_.enroll_counter("merge.release_passes", &ms.release_passes);
  metrics_.enroll_gauge("merge.buffered", [this]() {
    return static_cast<std::int64_t>(merger_->buffered());
  });
  metrics_.enroll_gauge("aqs_active", [this]() {
    return static_cast<std::int64_t>(aqs_.size());
  });
  metrics_.enroll_gauge("workers_live", [this]() {
    std::int64_t live = 0;
    for (const ShardState& s : shards_) live += s.live ? 1 : 0;
    return live;
  });
  // Per-worker backpressure view off the RPC client's endpoint counters.
  for (int i = 0; i < options_.num_shards; ++i) {
    const std::string base = "peers." + std::to_string(i) + ".";
    const net::NodeId node = worker_node(i);
    auto peer = [this, node](std::uint64_t net::RpcEndpointStats::*field) {
      const auto& stats = rpc_.endpoint_stats();
      auto it = stats.find(node);
      return it == stats.end()
                 ? std::int64_t{0}
                 : static_cast<std::int64_t>(it->second.*field);
    };
    metrics_.enroll_gauge(base + "calls", [peer]() {
      return peer(&net::RpcEndpointStats::calls);
    });
    metrics_.enroll_gauge(base + "in_flight", [peer]() {
      return peer(&net::RpcEndpointStats::in_flight);
    });
    metrics_.enroll_gauge(base + "max_in_flight", [peer]() {
      return peer(&net::RpcEndpointStats::max_in_flight);
    });
    metrics_.enroll_gauge(base + "timeouts", [peer]() {
      return peer(&net::RpcEndpointStats::timeouts);
    });
    metrics_.enroll_gauge(base + "slow_replies", [peer]() {
      return peer(&net::RpcEndpointStats::slow_replies);
    });
  }

  auto alive = alive_;
  loop_->schedule(options_.heartbeat_interval, [this, alive]() {
    if (*alive) check_liveness();
  });
}

Czar::~Czar() {
  *alive_ = false;
  metrics_.unenroll_all();
  reliable_metrics_.unenroll_all();
  (void)network_->detach(options_.node_id);
}

FragmentSpec Czar::make_spec(const std::string& name, const std::string& sql,
                             double epoch_s, bool once, int shard) const {
  FragmentSpec spec;
  spec.name = name;
  spec.sql = sql;
  spec.epoch_s = epoch_s;
  spec.once = once;
  spec.shard = shard;
  spec.num_shards = options_.num_shards;
  spec.gen = shards_[static_cast<std::size_t>(shard)].gen;
  spec.device_slice = "fnv1a(id) mod " + std::to_string(options_.num_shards) +
                      " == " + std::to_string(shard);
  return spec;
}

void Czar::send_register(int shard, const FragmentSpec& spec,
                         net::RpcCallback callback) {
  net::Message tmp;
  fragment_to_fields(spec, &tmp);
  tmp.set_int(kIdemGenField, static_cast<std::int64_t>(
                                 shards_[static_cast<std::size_t>(shard)].gen));
  tmp.set_int(kIdemSeqField, static_cast<std::int64_t>(dispatch_seq_++));
  AORTA_TRACE_INSTANT(tracer_, obs::SpanCat::kFragment,
                      "czar:dispatch:" + worker_node(shard), loop_->now(),
                      spec.once ? "select" : spec.name);
  if (reliable_) {
    reliable_call_.call(worker_node(shard), kFragmentRegister,
                        std::move(tmp.fields), std::move(callback),
                        64 + spec.sql.size());
    return;
  }
  rpc_.call(worker_node(shard), kFragmentRegister, std::move(tmp.fields),
            options_.rpc_timeout, std::move(callback), 64 + spec.sql.size());
}

void Czar::send_drop(int shard, const std::string& name) {
  std::map<std::string, std::string> fields{{"name", name}};
  fields[kIdemGenField] =
      std::to_string(shards_[static_cast<std::size_t>(shard)].gen);
  fields[kIdemSeqField] = std::to_string(dispatch_seq_++);
  if (reliable_) {
    reliable_call_.call(worker_node(shard), kFragmentDrop, std::move(fields),
                        [](Result<net::Message>) {});
    return;
  }
  rpc_.call(worker_node(shard), kFragmentDrop, std::move(fields),
            options_.rpc_timeout, [](Result<net::Message>) {});
}

std::vector<std::string> Czar::aq_names() const {
  std::vector<std::string> names;
  names.reserve(aqs_.size());
  for (const auto& [name, aq] : aqs_) names.push_back(name);
  return names;
}

// ---- declarative interface ------------------------------------------------

namespace {

// The sharded planner's supported statement surface. Returns an error
// naming the construct so rejections are actionable. avg() is mergeable
// everywhere: workers rewrite each avg(e) into (sum(e), count(e))
// partials — at the reply barrier for one-shot SELECTs, per window
// instant behind the merge frontier for continuous AQs — and the czar
// finalizes sum/count.
Status shardable(const query::SelectStmt& stmt) {
  if (stmt.from.size() > 1) {
    return aorta::util::invalid_argument_error(
        "multi-table joins are not supported through the sharded plane "
        "(devices of different tables may live on different shards)");
  }
  return Status::ok();
}

// Exact, deterministic group-key encoding (%.17g doubles: distinct keys
// must never collide, mirroring the rows codec).
std::string group_key_of(const query::Row& row,
                         const std::vector<std::size_t>& group_cols) {
  std::string key;
  for (std::size_t j : group_cols) {
    if (j >= row.size()) continue;
    const device::Value& v = row[j].second;
    if (std::holds_alternative<std::monostate>(v)) {
      key += 'n';
    } else if (const bool* b = std::get_if<bool>(&v)) {
      key += *b ? "b1" : "b0";
    } else if (const std::int64_t* i = std::get_if<std::int64_t>(&v)) {
      key += 'i' + std::to_string(*i);
    } else if (const double* d = std::get_if<double>(&v)) {
      key += 'd' + aorta::util::str_format("%.17g", *d);
    } else if (const std::string* s = std::get_if<std::string>(&v)) {
      key += 's' + std::to_string(s->size()) + ':' + *s;
    } else if (const device::Location* l = std::get_if<device::Location>(&v)) {
      key += 'l' + aorta::util::str_format("%.17g,%.17g,%.17g", l->x, l->y,
                                           l->z);
    }
    key += ';';
  }
  return key;
}

}  // namespace

// Build the czar's merge plan for a continuous aggregate AQ: the shipped
// column kinds mirror worker.cc's avg -> sum + appended count rewrite.
Czar::AggPlan Czar::make_agg_plan(const query::SelectStmt& stmt) {
  AggPlan plan;
  plan.select_size = stmt.select_list.size();
  for (std::size_t j = 0; j < stmt.select_list.size(); ++j) {
    AggKind k = agg_kind(*stmt.select_list[j]);
    if (k == AggKind::kAvg) {
      plan.avg_cols.push_back(j);
      plan.avg_labels.push_back(stmt.select_list[j]->to_string());
      k = AggKind::kSum;
    }
    if (k == AggKind::kNone) plan.group_cols.push_back(j);
    plan.kinds.push_back(k);
  }
  for (std::size_t k = 0; k < plan.avg_cols.size(); ++k) {
    plan.kinds.push_back(AggKind::kCount);
  }
  return plan;
}

void Czar::exec_async(
    const std::string& sql, core::ExecOptions options,
    std::function<void(Result<ExecResult>)> done) {
  auto parsed = query::parse(sql);
  AORTA_TRACE_INSTANT(tracer_, obs::SpanCat::kParse, "czar:parse",
                      loop_->now(), parsed.is_ok() ? sql : "error: " + sql);
  if (!parsed.is_ok()) {
    done(Result<ExecResult>(parsed.status()));
    return;
  }
  query::Statement& s = parsed.value();

  switch (s.kind) {
    case query::Statement::Kind::kSelect: {
      Status ok = shardable(s.select);
      if (!ok.is_ok()) {
        done(Result<ExecResult>(ok));
        return;
      }
      exec_select(s.select, sql, std::move(done));
      return;
    }

    case query::Statement::Kind::kCreateAq: {
      Status ok = shardable(s.create_aq.select);
      if (!ok.is_ok()) {
        done(Result<ExecResult>(ok));
        return;
      }
      std::string name = options.name_prefix + s.create_aq.name;
      if (aqs_.count(name) > 0) {
        done(Result<ExecResult>(aorta::util::already_exists_error(
            "continuous query already registered: " + name)));
        return;
      }
      AqState aq;
      aq.name = name;
      aq.sql = sql;
      aq.epoch_s = s.create_aq.epoch_s;
      aq.options = std::move(options);
      bool has_avg = false;
      if (select_has_aggregates(s.create_aq.select, &has_avg)) {
        aq.agg = make_agg_plan(s.create_aq.select);
      }
      aqs_.emplace(name, std::move(aq));
      ++stats_.aqs_registered;

      // Fan out to the live shards; barrier on all replies settling. A
      // worker-side error (all shards fail identically: same template)
      // unregisters and reports; timeouts are left to supervision.
      struct Barrier {
        int remaining = 0;
        std::string error;
        std::function<void(Result<ExecResult>)> done;
      };
      auto barrier = std::make_shared<Barrier>();
      barrier->done = std::move(done);
      std::vector<int> targets;
      for (int i = 0; i < options_.num_shards; ++i) {
        if (shards_[static_cast<std::size_t>(i)].live) targets.push_back(i);
      }
      barrier->remaining = static_cast<int>(targets.size());
      auto alive = alive_;
      auto settle = [this, alive, name, barrier]() {
        if (--barrier->remaining > 0) return;
        if (!barrier->error.empty()) {
          if (*alive && aqs_.erase(name) > 0) {
            ++stats_.fragment_errors;
            for (int i = 0; i < options_.num_shards; ++i) {
              if (shards_[static_cast<std::size_t>(i)].live) send_drop(i, name);
            }
          }
          barrier->done(Result<ExecResult>(
              aorta::util::invalid_argument_error(barrier->error)));
          return;
        }
        barrier->done(
            ExecResult{"continuous query " + name + " registered", {}});
      };
      if (targets.empty()) {
        // Every worker is down: keep the registration; recovery replays it.
        barrier->done(
            ExecResult{"continuous query " + name + " registered", {}});
        return;
      }
      for (int i : targets) {
        const AqState& stored = aqs_.at(name);
        send_register(i, make_spec(name, stored.sql, stored.epoch_s,
                                   /*once=*/false, i),
                      [barrier, settle](Result<net::Message> reply) {
                        if (reply.is_ok() &&
                            reply.value().kind == kFragmentError &&
                            barrier->error.empty()) {
                          barrier->error = reply.value().field("error");
                        }
                        settle();
                      });
      }
      return;
    }

    case query::Statement::Kind::kDropAq: {
      std::string name = options.name_prefix + s.drop_aq.name;
      Status dropped = drop_aq(name);
      if (!dropped.is_ok()) {
        done(Result<ExecResult>(dropped));
        return;
      }
      done(ExecResult{"continuous query " + name + " dropped", {}});
      return;
    }

    case query::Statement::Kind::kCreateAction:
    case query::Statement::Kind::kShow:
    case query::Statement::Kind::kExplain:
      break;
  }
  done(Result<ExecResult>(aorta::util::invalid_argument_error(
      "statement not supported through the sharded plane (num_shards > 0): " +
      sql)));
}

Status Czar::drop_aq(const std::string& name) {
  if (aqs_.erase(name) == 0) {
    return aorta::util::not_found_error("unknown continuous query: " + name);
  }
  ++stats_.aqs_dropped;
  merger_->forget_query(name);
  agg_pending_.erase(name);
  for (int i = 0; i < options_.num_shards; ++i) {
    if (shards_[static_cast<std::size_t>(i)].live) send_drop(i, name);
  }
  return Status::ok();
}

// ---- one-shot SELECT ------------------------------------------------------

namespace {

// Fold one partial-aggregate value into the accumulator. Null partials
// (shards with no matching devices) are skipped.
void combine_value(device::Value& acc, const device::Value& v, AggKind kind) {
  if (std::holds_alternative<std::monostate>(v)) return;
  if (std::holds_alternative<std::monostate>(acc)) {
    acc = v;
    return;
  }
  switch (kind) {
    case AggKind::kCount:
    case AggKind::kSum: {
      const std::int64_t* ai = std::get_if<std::int64_t>(&acc);
      const std::int64_t* bi = std::get_if<std::int64_t>(&v);
      if (ai != nullptr && bi != nullptr) {
        acc = *ai + *bi;
        return;
      }
      double a = 0.0, b = 0.0;
      if (device::value_as_double(acc, &a) &&
          device::value_as_double(v, &b)) {
        acc = a + b;
      }
      return;
    }
    case AggKind::kMin:
    case AggKind::kMax: {
      const std::string* as = std::get_if<std::string>(&acc);
      const std::string* bs = std::get_if<std::string>(&v);
      bool take = false;
      if (as != nullptr && bs != nullptr) {
        take = kind == AggKind::kMin ? *bs < *as : *as < *bs;
      } else {
        double a = 0.0, b = 0.0;
        if (!device::value_as_double(acc, &a) ||
            !device::value_as_double(v, &b)) {
          return;
        }
        take = kind == AggKind::kMin ? b < a : a < b;
      }
      if (take) acc = v;
      return;
    }
    case AggKind::kNone:
    case AggKind::kAvg:  // folded as kSum by merge_select; unreachable
      return;            // first non-null wins
  }
}

}  // namespace

std::vector<query::Row> Czar::merge_select(
    const query::SelectStmt& stmt,
    std::vector<std::vector<query::TimestampedRow>>& partials) const {
  bool has_avg = false;
  bool has_agg = select_has_aggregates(stmt, &has_avg);
  std::vector<query::Row> rows;
  if (!has_agg) {
    // Plain projection: union is concatenation in shard-index order.
    for (auto& partial : partials) {
      for (auto& r : partial) rows.push_back(std::move(r.row));
    }
    return rows;
  }
  // Aggregates: one output row, columns folded across per-shard partials
  // by position. Workers ship avg(e) as a sum(e) partial in place plus a
  // count(e) partial appended past the select list (worker.cc's rewrite),
  // so the expected column kinds are select-list kinds (avg folded as
  // sum) followed by one count per avg.
  std::vector<std::size_t> avg_cols;
  std::vector<AggKind> kinds;
  kinds.reserve(stmt.select_list.size());
  for (std::size_t j = 0; j < stmt.select_list.size(); ++j) {
    AggKind k = agg_kind(*stmt.select_list[j]);
    if (k == AggKind::kAvg) {
      avg_cols.push_back(j);
      k = AggKind::kSum;
    }
    kinds.push_back(k);
  }
  for (std::size_t k = 0; k < avg_cols.size(); ++k) {
    kinds.push_back(AggKind::kCount);
  }
  query::Row out;
  for (auto& partial : partials) {
    for (auto& r : partial) {
      if (r.row.size() != kinds.size()) continue;  // malformed partial
      if (out.empty()) {
        out = std::move(r.row);
        continue;
      }
      for (std::size_t j = 0; j < out.size(); ++j) {
        combine_value(out[j].second, r.row[j].second, kinds[j]);
      }
    }
  }
  if (out.empty()) return rows;
  // count() over an empty union is 0, not null.
  for (std::size_t j = 0; j < out.size(); ++j) {
    if (kinds[j] == AggKind::kCount &&
        std::holds_alternative<std::monostate>(out[j].second)) {
      out[j].second = std::int64_t{0};
    }
  }
  // Finalize avg columns: sum/count from the folded partials, null over
  // an empty union; restore the original label and drop the helpers.
  for (std::size_t k = 0; k < avg_cols.size(); ++k) {
    const std::size_t j = avg_cols[k];
    const std::size_t count_col = stmt.select_list.size() + k;
    double sum = 0.0;
    double n = 0.0;
    if (device::value_as_double(out[count_col].second, &n) && n > 0.0 &&
        device::value_as_double(out[j].second, &sum)) {
      out[j].second = sum / n;
    } else {
      out[j].second = device::Value{};
    }
    out[j].first = stmt.select_list[j]->to_string();
  }
  out.resize(stmt.select_list.size());
  rows.push_back(std::move(out));
  return rows;
}

void Czar::exec_select(
    const query::SelectStmt& stmt, const std::string& sql,
    std::function<void(Result<ExecResult>)> done) {
  ++stats_.selects;
  std::vector<int> targets;
  for (int i = 0; i < options_.num_shards; ++i) {
    if (shards_[static_cast<std::size_t>(i)].live) targets.push_back(i);
  }
  if (targets.empty()) {
    done(Result<ExecResult>(aorta::util::unavailable_error(
        "no live workers to run the SELECT on")));
    return;
  }

  struct SelectState {
    int remaining = 0;
    int answered = 0;  // shards that returned a decodable partial
    std::vector<std::vector<query::TimestampedRow>> partials;
    std::string error;
    std::function<void(Result<ExecResult>)> done;
  };
  auto state = std::make_shared<SelectState>();
  state->remaining = static_cast<int>(targets.size());
  state->partials.resize(static_cast<std::size_t>(options_.num_shards));
  state->done = std::move(done);
  // The fragments share the statement text; each worker re-parses it. The
  // czar keeps only what the merge step needs: re-parse at the barrier
  // (SelectStmt holds unique_ptr expressions, so it cannot be copied into
  // the callbacks).
  (void)stmt;

  auto alive = alive_;
  auto settle = [this, alive, sql, state]() {
    if (--state->remaining > 0) return;
    if (!state->error.empty()) {
      state->done(Result<ExecResult>(
          aorta::util::invalid_argument_error(state->error)));
      return;
    }
    auto reparsed = query::parse(sql);
    if (!reparsed.is_ok()) {  // cannot happen: parsed once already
      state->done(Result<ExecResult>(reparsed.status()));
      return;
    }
    // Partial results are never silent: a SELECT some shard failed to
    // answer (down at dispatch, or its RPC gave up) is marked as partial —
    // and, when the select list aggregates, rejected outright: a sum or
    // count over a subset of the shards is not a smaller answer, it is a
    // wrong one.
    if (state->answered < options_.num_shards) {
      if (*alive) ++stats_.partial_selects;
      bool has_avg = false;
      if (select_has_aggregates(reparsed.value().select, &has_avg)) {
        state->done(Result<ExecResult>(aorta::util::unavailable_error(
            aorta::util::str_format(
                "partial aggregate: only %d of %d shard(s) answered; an "
                "aggregate over a subset would be wrong, not smaller",
                state->answered, options_.num_shards))));
        return;
      }
    }
    ExecResult result;
    result.shards_answered = state->answered;
    result.shards_total = options_.num_shards;
    result.rows = merge_select(reparsed.value().select, state->partials);
    result.message = aorta::util::str_format(
        "%zu row(s)%s", result.rows.size(),
        state->answered < options_.num_shards ? " [partial]" : "");
    std::uint64_t merged = 0;
    for (const auto& p : state->partials) merged += p.size();
    if (*alive) {
      AORTA_TRACE_INSTANT(tracer_, obs::SpanCat::kMerge, "czar:merge_select",
                          loop_->now(),
                          aorta::util::str_format(
                              "%llu partial(s) -> %zu row(s)",
                              static_cast<unsigned long long>(merged),
                              result.rows.size()));
    }
    state->done(std::move(result));
  };
  for (int i : targets) {
    send_register(
        i, make_spec("", sql, 0.0, /*once=*/true, i),
        [i, state, settle](Result<net::Message> reply) {
          if (reply.is_ok()) {
            const net::Message& msg = reply.value();
            if (msg.kind == kFragmentError && state->error.empty()) {
              state->error = msg.field("error");
            } else if (msg.kind == kFragmentSelectResult) {
              std::vector<query::TimestampedRow> rows;
              if (decode_rows(msg.field("rows"), &rows)) {
                state->partials[static_cast<std::size_t>(i)] =
                    std::move(rows);
                ++state->answered;
              }
            }
            // kFragmentStale (a generation raced the dispatch) settles
            // without an error; the shard counts as unanswered.
          }
          // Timeout / unreachable (after retries, if reliable): the
          // shard's partial stays empty and the result is marked partial;
          // supervision marks the shard down on silence.
          settle();
        });
  }
}

// ---- worker stream consumption --------------------------------------------

void Czar::on_message(const net::Message& msg) {
  if (rpc_.on_reply(msg)) return;
  if (msg.kind != kFragmentResults && msg.kind != kShardHeartbeat) return;
  int shard = static_cast<int>(msg.field_int("shard", -1));
  if (shard < 0 || shard >= options_.num_shards) return;
  ShardState& s = shards_[static_cast<std::size_t>(shard)];
  s.last_msg = loop_->now();
  if (!s.live) {
    // First sign of life after a silence: recover under a new generation.
    // This message belongs to the superseded stream — drop it.
    s.live = true;
    merger_->set_live(shard, true);
    recover_shard(shard);
    ++stats_.stale_gen_msgs;
    return;
  }
  std::uint64_t gen = static_cast<std::uint64_t>(msg.field_int("gen"));
  std::uint64_t seq = static_cast<std::uint64_t>(msg.field_int("seq"));
  if (gen != s.gen) {
    ++stats_.stale_gen_msgs;
    return;
  }
  if (reliable_ && seq < s.next_seq) {
    // Already consumed: a chaos-duplicated copy or a NACK retransmission
    // that crossed paths with the original.
    ++stats_.dup_msgs_dropped;
    return;
  }
  if (seq != s.next_seq) {
    if (reliable_ && s.ooo.count(seq) > 0) {
      ++stats_.dup_msgs_dropped;
      return;
    }
    s.ooo.emplace(seq, msg);
    ++stats_.ooo_buffered;
    if (reliable_) maybe_nack(shard);
    return;
  }
  bool saw_heartbeat = msg.kind == kShardHeartbeat;
  consume(shard, msg);
  ++s.next_seq;
  for (auto it = s.ooo.find(s.next_seq); it != s.ooo.end();
       it = s.ooo.find(s.next_seq)) {
    saw_heartbeat |= it->second.kind == kShardHeartbeat;
    consume(shard, it->second);
    s.ooo.erase(it);
    ++s.next_seq;
  }
  // Heartbeat instants double as ack points: tell the worker everything
  // below next_seq is consumed so it can trim its replay buffer. (Acking
  // every message would double backplane traffic for no extra safety.)
  if (reliable_ && saw_heartbeat) send_ack(shard);
}

void Czar::send_ack(int shard) {
  const ShardState& s = shards_[static_cast<std::size_t>(shard)];
  net::Message ack;
  ack.src = options_.node_id;
  ack.dst = worker_node(shard);
  ack.kind = kShardAck;
  ack.set_int("gen", static_cast<std::int64_t>(s.gen));
  ack.set_int("cum", static_cast<std::int64_t>(s.next_seq));
  ++stats_.acks_sent;
  network_->send(std::move(ack));
}

void Czar::maybe_nack(int shard) {
  ShardState& s = shards_[static_cast<std::size_t>(shard)];
  if (s.ooo.empty()) return;
  const std::uint64_t from = s.next_seq;
  if (s.last_nack_from == from &&
      loop_->now() - s.last_nack_at < options_.nack_interval) {
    return;  // this gap was already NACKed moments ago
  }
  s.last_nack_from = from;
  s.last_nack_at = loop_->now();
  net::Message nack;
  nack.src = options_.node_id;
  nack.dst = worker_node(shard);
  nack.kind = kShardNack;
  nack.set_int("gen", static_cast<std::int64_t>(s.gen));
  nack.set_int("from", static_cast<std::int64_t>(from));
  // Everything past the highest buffered seq may still be in flight;
  // request only the known hole [from, highest).
  nack.set_int("to", static_cast<std::int64_t>(s.ooo.rbegin()->first));
  ++stats_.nacks_sent;
  network_->send(std::move(nack));
}

void Czar::consume(int shard, const net::Message& msg) {
  if (msg.kind == kShardHeartbeat) {
    ++stats_.heartbeats_received;
    std::size_t before = merger_->buffered();
    merger_->watermark(shard,
                       TimePoint::from_micros(msg.field_int("watermark_us")));
    flush_agg_windows();
    std::size_t after = merger_->buffered();
    if (after != before) {
      AORTA_TRACE_INSTANT(tracer_, obs::SpanCat::kMerge, "czar:release",
                          loop_->now(),
                          aorta::util::str_format("%zu row(s)",
                                                  before - after));
    }
    return;
  }
  const std::string type = msg.field("type");
  const std::string query = msg.field("query");
  if (type == "outcome") {
    ++stats_.outcomes_received;
    if (outcome_sink_) {
      outcome_sink_(query, TimePoint::from_micros(msg.field_int("at_us")),
                    msg.field("detail"));
    }
    return;
  }
  std::vector<query::TimestampedRow> rows;
  if (!decode_rows(msg.field("rows"), &rows)) return;
  if (aqs_.count(query) == 0) {
    stats_.stale_query_rows += rows.size();
    return;
  }
  for (auto& row : rows) {
    ++stats_.rows_received;
    merger_->add(shard, query, std::move(row));
  }
}

void Czar::on_row_released(const std::string& query,
                           const query::TimestampedRow& row) {
  auto it = aqs_.find(query);
  if (it == aqs_.end()) return;
  if (it->second.agg.has_value()) {
    // Per-shard window partial: fold into the (instant, group key) bucket.
    // All shards' partials for an instant release in the same frontier
    // advance (the watermark promise orders every row before its shard's
    // heartbeat), so flush_agg_windows() — run after that advance — only
    // ever sees complete windows.
    const AggPlan& plan = *it->second.agg;
    auto key = std::make_pair(row.at.to_micros(),
                              group_key_of(row.row, plan.group_cols));
    auto& buckets = agg_pending_[query];
    auto bit = buckets.find(key);
    if (bit == buckets.end()) {
      buckets.emplace(std::move(key), row);
      return;
    }
    query::TimestampedRow& acc = bit->second;
    acc.degraded |= row.degraded;
    if (row.row.size() != plan.kinds.size() ||
        acc.row.size() != plan.kinds.size()) {
      return;  // malformed partial
    }
    for (std::size_t j = 0; j < plan.kinds.size(); ++j) {
      if (plan.kinds[j] == AggKind::kNone) continue;  // group key column
      combine_value(acc.row[j].second, row.row[j].second, plan.kinds[j]);
    }
    return;
  }
  if (it->second.options.on_row) it->second.options.on_row(query, row);
}

void Czar::flush_agg_windows() {
  if (agg_pending_.empty()) return;
  // Deterministic delivery order: query name, then (instant, group key) —
  // the bucket map's own order.
  for (auto& [query, buckets] : agg_pending_) {
    auto it = aqs_.find(query);
    // Dropped (or replaced by a non-aggregate) with buffered windows.
    if (it == aqs_.end() || !it->second.agg.has_value()) continue;
    const AggPlan& plan = *it->second.agg;
    for (auto& [key, stamped] : buckets) {
      query::Row& row = stamped.row;
      if (row.size() != plan.kinds.size()) continue;  // malformed partial
      // count() over shards that all skipped is 0, not null.
      for (std::size_t j = 0; j < plan.kinds.size(); ++j) {
        if (plan.kinds[j] == AggKind::kCount &&
            std::holds_alternative<std::monostate>(row[j].second)) {
          row[j].second = std::int64_t{0};
        }
      }
      // Finalize avg columns from the folded (sum, count) partials,
      // restore the original labels, drop the helper columns.
      for (std::size_t k = 0; k < plan.avg_cols.size(); ++k) {
        const std::size_t j = plan.avg_cols[k];
        const std::size_t count_col = plan.select_size + k;
        double sum = 0.0;
        double n = 0.0;
        if (device::value_as_double(row[count_col].second, &n) && n > 0.0 &&
            device::value_as_double(row[j].second, &sum)) {
          row[j].second = sum / n;
        } else {
          row[j].second = device::Value{};
        }
        row[j].first = plan.avg_labels[k];
      }
      row.resize(plan.select_size);
      if (it->second.options.on_row) it->second.options.on_row(query, stamped);
    }
  }
  agg_pending_.clear();
}

// ---- supervision ----------------------------------------------------------

int Czar::shard_of_node(const net::NodeId& node) const {
  for (int i = 0; i < options_.num_shards; ++i) {
    if (worker_node(i) == node) return i;
  }
  return -1;
}

void Czar::mark_down(int shard) {
  ShardState& s = shards_[static_cast<std::size_t>(shard)];
  if (!s.live) return;
  s.live = false;
  s.ooo.clear();
  ++stats_.workers_marked_down;
  merger_->set_live(shard, false);
  flush_agg_windows();
  AORTA_TRACE_INSTANT(tracer_, obs::SpanCat::kFragment,
                      "czar:down:" + worker_node(shard), loop_->now(),
                      "unresponsive");
}

void Czar::check_liveness() {
  const Duration silence_bound =
      options_.heartbeat_interval * static_cast<double>(options_.miss_threshold);
  for (int i = 0; i < options_.num_shards; ++i) {
    ShardState& s = shards_[static_cast<std::size_t>(i)];
    if (!s.live) continue;
    if (loop_->now() - s.last_msg > silence_bound) mark_down(i);
  }
  auto alive = alive_;
  loop_->schedule(options_.heartbeat_interval, [this, alive]() {
    if (*alive) check_liveness();
  });
}

void Czar::recover_shard(int shard) {
  ShardState& s = shards_[static_cast<std::size_t>(shard)];
  ++s.gen;
  s.next_seq = 0;
  s.ooo.clear();
  s.last_nack_from = ~std::uint64_t{0};
  ++stats_.reregistrations;
  // Fresh generation, fresh dispatch state: forget the peer's breaker and
  // retry budget so the handshake below is not short-circuited.
  reliable_call_.reset_peer(worker_node(shard));
  AORTA_TRACE_INSTANT(tracer_, obs::SpanCat::kFragment,
                      "czar:recover:" + worker_node(shard), loop_->now(),
                      "gen " + std::to_string(s.gen));
  // Fresh-slate handshake: the worker drops every fragment and resets its
  // outbound stream, then each live AQ is re-registered.
  send_register(shard, make_spec("", "", 0.0, /*once=*/false, shard),
                [](Result<net::Message>) {});
  for (const auto& [name, aq] : aqs_) {
    send_register(shard,
                  make_spec(name, aq.sql, aq.epoch_s, /*once=*/false, shard),
                  [](Result<net::Message>) {});
  }
}

}  // namespace aorta::shard
