// Query fragments: the wire format of the sharded czar/worker plane.
//
// The czar compiles each AQ / one-shot SELECT into N fragments sharing one
// plan template (the SQL text plus epoch cadence) and per-shard parameter
// tuples: the shard's device-id slice (a residue class in FNV-1a hash
// space — the same partition function Plane uses to place devices), the
// syntactically-derived needed-attribute set, and a registration
// generation. Fragments travel as net::Message RPCs between the czar node
// and the worker engines:
//
//   fragment_register  czar -> worker   register an AQ fragment, or (with
//                                       once=1) run a one-shot SELECT whose
//                                       rows ride the RPC reply
//   fragment_drop      czar -> worker   drop an AQ fragment
//   fragment_results   worker -> czar   one-way burst of continuous rows
//                                       (or an action outcome), sequenced
//   shard_heartbeat    worker -> czar   liveness + result-stream watermark
//   shard_ack          czar -> worker   one-way cumulative ack: the czar
//                                       has consumed every seq < `cum`
//   shard_nack         czar -> worker   one-way retransmit request for the
//                                       seq gap [`from`, `to`)
//
// Every worker->czar message carries (gen, seq): seq is a per-worker
// counter over ALL its fragment traffic, reset when the czar re-registers
// the shard under a new generation. The czar consumes each shard's stream
// strictly in seq order, which is what makes the heartbeat watermark an
// exact promise: every row with at < watermark precedes the heartbeat in
// seq order (rows are flushed by a zero-delay event at production time, so
// only rows stamped exactly at the heartbeat instant can trail it).
//
// Reliable backplane (DESIGN.md §14). Every czar -> worker request also
// carries an idempotency key (`idem_gen`, `idem_seq`): the shard's
// registration generation plus a czar-global dispatch counter. Workers
// keep a bounded dedup window keyed by that pair — which survives
// generation bumps, since the gen is part of the key — and replay the
// cached reply for duplicates, so a retried or chaos-duplicated
// fragment_register never double-registers. Workers retain every
// sequenced message in a bounded replay buffer until a shard_ack covers
// it; a shard_nack retransmits the stored messages verbatim (same gen,
// same seq), and the czar drops any seq it has already consumed or
// buffered — together: exactly-once, in-order consumption over a lossy,
// duplicating, reordering backplane. A register carrying a generation
// older than the worker's current one is answered with fragment_stale
// and otherwise ignored.
//
// Rows are encoded with length-prefixed tokens and %.17g doubles — NOT
// device::value_to_string, whose %.6g rendering is lossy; byte-identical
// same-seed runs need exact round-trips.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "net/message.h"
#include "query/ast.h"
#include "query/executor.h"

namespace aorta::shard {

// Message kinds of the fragment protocol.
inline constexpr const char* kFragmentRegister = "fragment_register";
inline constexpr const char* kFragmentDrop = "fragment_drop";
inline constexpr const char* kFragmentResults = "fragment_results";
inline constexpr const char* kShardHeartbeat = "shard_heartbeat";
inline constexpr const char* kShardAck = "shard_ack";
inline constexpr const char* kShardNack = "shard_nack";
// Reply kinds.
inline constexpr const char* kFragmentAck = "fragment_ack";
inline constexpr const char* kFragmentError = "fragment_error";
inline constexpr const char* kFragmentSelectResult = "fragment_select_result";
inline constexpr const char* kFragmentStale = "fragment_stale";

// Czar -> worker idempotency-key field names (see file comment).
inline constexpr const char* kIdemGenField = "idem_gen";
inline constexpr const char* kIdemSeqField = "idem_seq";

// FNV-1a 64-bit: the deterministic device partition function. std::hash is
// implementation-defined; the partition must be stable across toolchains
// so committed baselines stay comparable.
std::uint64_t fnv1a64(std::string_view s);

// Shard owning a device id under an N-way partition.
inline int shard_of(std::string_view device_id, int num_shards) {
  return static_cast<int>(fnv1a64(device_id) %
                          static_cast<std::uint64_t>(num_shards));
}

// One fragment: the shared plan template plus this shard's parameters.
struct FragmentSpec {
  std::string name;        // prefixed AQ name ("" for one-shot SELECTs)
  std::string sql;         // plan template: the statement text
  double epoch_s = 0.0;    // epoch cadence (0 = engine default)
  bool once = false;       // one-shot SELECT: rows ride the RPC reply
  int shard = 0;           // this fragment's shard index
  int num_shards = 1;
  std::uint64_t gen = 0;   // registration generation (see file comment)
  std::string needed_attrs;  // czar's syntactic attr set, comma-joined
  std::string device_slice;  // e.g. "fnv1a(id) mod 4 == 2" (informational)
};

// Field-level encode/decode (message kind is set by the caller).
void fragment_to_fields(const FragmentSpec& spec, net::Message* msg);
FragmentSpec fragment_from_fields(const net::Message& msg);

// ---- rows codec ----------------------------------------------------------

// Exact, deterministic encoding of a burst of timestamped rows. Returns
// the payload string; decode returns false on any malformed token.
std::string encode_rows(const std::vector<query::TimestampedRow>& rows);
bool decode_rows(const std::string& payload,
                 std::vector<query::TimestampedRow>* out);

// ---- czar-side plan analysis --------------------------------------------

// Column names referenced anywhere in the statement (select list + WHERE),
// qualifier stripped: the fragment's needed-attribute set. The worker
// recomputes the authoritative set when it compiles the fragment; this one
// parameterizes the wire format and the broker's projection pushdown
// audit.
std::set<std::string> needed_attributes(const query::SelectStmt& stmt);

// Aggregate shape of a select list entry, for partial-aggregate merging.
enum class AggKind { kNone, kCount, kSum, kAvg, kMin, kMax };
AggKind agg_kind(const query::Expr& expr);

// True if any select item is an aggregate call. `has_avg` reports whether
// one of them is avg() — not directly mergeable from per-shard partials:
// workers rewrite it into (sum, count) partials the czar finalizes at the
// merge point (the reply barrier for one-shot SELECTs, the merge frontier
// per window instant for continuous AQs).
bool select_has_aggregates(const query::SelectStmt& stmt, bool* has_avg);

}  // namespace aorta::shard
