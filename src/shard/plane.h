// Plane: assembly of the sharded czar/worker query plane on a host system.
//
// Owns N shard::Worker engines plus the shard::Czar frontend, all living
// on the host core::Aorta's event loop and simulated network. Devices are
// hash-partitioned across the workers with the same FNV-1a function the
// czar's fragment planner uses (shard_of), so a fragment's device slice is
// exactly the worker's registry. The czar<->worker interconnect is the
// zero-loss "backplane" link — machine-room fabric, not a device radio.
//
// The host Aorta keeps its own (idle) unsharded engine; the plane reuses
// only its substrate: loop, network, RNG forks, metrics registry, tracer.
// server::QueryService routes sessions through plane->exec_async() when
// ServiceConfig::num_shards > 0.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "shard/czar.h"
#include "shard/worker.h"

namespace aorta::shard {

class Plane {
 public:
  struct Options {
    int num_shards = 1;
    aorta::util::Duration heartbeat_interval =
        aorta::util::Duration::seconds(1.0);
    int miss_threshold = 3;
    net::LinkModel interconnect = backplane();
  };

  // The czar<->worker link: LAN-class latency, no jitter, no loss.
  static net::LinkModel backplane();

  Plane(core::Aorta* host, Options options);
  ~Plane();

  Plane(const Plane&) = delete;
  Plane& operator=(const Plane&) = delete;

  // ---- world building (hash-routed to the owning worker) ------------------
  int shard_of_device(const device::DeviceId& id) const {
    return shard_of(id, options_.num_shards);
  }
  aorta::util::Status add_camera(const device::DeviceId& id, std::string ip,
                                 devices::CameraPose pose,
                                 double range_m = 25.0);
  aorta::util::Status add_mote(const device::DeviceId& id,
                               device::Location loc, int hops = 1);
  aorta::util::Status add_phone(const device::DeviceId& id,
                                std::string phone_no, device::Location loc);
  devices::Mica2Mote* mote(const device::DeviceId& id);
  devices::PtzCamera* camera(const device::DeviceId& id);

  // ---- declarative interface ----------------------------------------------
  void exec_async(
      const std::string& sql, core::ExecOptions options,
      std::function<void(aorta::util::Result<core::ExecResult>)> done) {
    czar_->exec_async(sql, std::move(options), std::move(done));
  }

  // Fault plans against the sharded plane: events carrying shard="<i>" are
  // rewritten to node-level events on that worker's endpoint (crash ->
  // partition, revive -> heal: a worker engine cannot power off, but it
  // can fall off the network). Device-targeted events resolve across all
  // worker registries.
  aorta::util::Status apply_fault_plan(const util::FaultPlan& plan);

  int num_shards() const { return options_.num_shards; }
  Worker& worker(int shard) { return *workers_[static_cast<std::size_t>(shard)]; }
  Czar& czar() { return *czar_; }

 private:
  core::Aorta* host_;
  Options options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<Czar> czar_;
  // Plane-wide replay-buffer view under "net.reliable." (the czar enrolls
  // the dispatcher counters into the same section).
  obs::MetricsRegistry::Scoped metrics_;
};

}  // namespace aorta::shard
