#include "shard/merger.h"

#include <algorithm>
#include <limits>

namespace aorta::shard {

using aorta::util::TimePoint;

Merger::Merger(int num_shards, Emit emit)
    : emit_(std::move(emit)),
      shards_(static_cast<std::size_t>(num_shards)) {}

void Merger::add(int shard, const std::string& query,
                 query::TimestampedRow row) {
  Shard& s = shards_[static_cast<std::size_t>(shard)];
  Entry e;
  e.at = row.at;
  e.shard = shard;
  e.arrival = s.next_arrival++;
  e.query = query;
  e.row = std::move(row);
  buffer_.push_back(std::move(e));
  ++stats_.rows_in;
}

void Merger::watermark(int shard, TimePoint w) {
  Shard& s = shards_[static_cast<std::size_t>(shard)];
  if (w > s.watermark) s.watermark = w;
  release();
}

void Merger::set_live(int shard, bool live) {
  shards_[static_cast<std::size_t>(shard)].live = live;
  if (!live) release();  // the frontier may have advanced past its hold-back
}

void Merger::forget_query(const std::string& query) {
  std::erase_if(buffer_, [&](const Entry& e) { return e.query == query; });
}

TimePoint Merger::frontier() const {
  bool any = false;
  TimePoint f;
  for (const Shard& s : shards_) {
    if (!s.live) continue;
    if (!any || s.watermark < f) f = s.watermark;
    any = true;
  }
  // No live shard: nothing can ever arrive before any bound — release all.
  return any ? f : TimePoint::from_micros(
                       std::numeric_limits<std::int64_t>::max());
}

void Merger::release() {
  TimePoint f = frontier();
  // Stable partition keeps not-yet-eligible rows in arrival order; the
  // eligible prefix is then sorted by the deterministic merge key.
  auto eligible = std::stable_partition(
      buffer_.begin(), buffer_.end(), [f](const Entry& e) { return e.at < f; });
  if (eligible == buffer_.begin()) return;
  std::sort(buffer_.begin(), eligible, [](const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.arrival < b.arrival;
  });
  ++stats_.release_passes;
  for (auto it = buffer_.begin(); it != eligible; ++it) {
    ++stats_.rows_out;
    emit_(it->query, it->row);
  }
  buffer_.erase(buffer_.begin(), eligible);
}

}  // namespace aorta::shard
