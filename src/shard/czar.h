// Czar: the frontend of the sharded query plane.
//
// The czar owns the declarative interface when Config::num_shards > 0: it
// parses each statement, plans it into per-shard fragments
// (shard/fragment.h), dispatches them as RPCs to the worker engines, and
// merges the per-shard result streams back into one. Continuous rows are
// unioned by shard::Merger in deterministic (virtual timestamp, shard id,
// arrival) order behind the workers' heartbeat watermarks; one-shot SELECT
// partials are combined at the barrier — concatenated in shard order, or
// partial-aggregate-merged (count/sum as sums, min/max as extrema) when
// the select list aggregates.
//
// Per-shard supervision: every worker message refreshes its shard's
// liveness; a shard silent for miss_threshold heartbeat intervals is
// marked down (its rows stop holding back the merge frontier). The first
// message after that marks it up again and triggers recovery: the czar
// bumps the shard's generation — a fresh-slate handshake that makes the
// worker drop every fragment and reset its outbound seq counter — and
// re-registers every live AQ on it.
//
// Reliable backplane (DESIGN.md §14, Config::reliable_backplane): fragment
// RPCs go through net::ReliableCall (retries + budgets + per-peer circuit
// breakers; an opened breaker marks the shard down immediately), every
// request carries an idempotency key, and the worker result streams are
// consumed exactly once: duplicate seqs are dropped, gaps are NACKed for
// retransmission, and consumed-heartbeat instants piggyback a cumulative
// ack that lets the worker trim its replay buffer.
//
// Continuous aggregates (DESIGN.md §15): each worker's AggregateCache
// emits per-shard window partials (avg() rewritten to sum + an appended
// count by the worker, exactly like the one-shot path), and the czar
// folds the partials positionally per (window instant, group key) as the
// merge frontier releases them — all shards' rows for a window instant
// release in the same watermark advance, so a released window is a
// complete one. Finalized rows (avg restored, helper columns dropped)
// reach on_row in deterministic (instant, query, group key) order.
//
// Planning limits (surfaced as invalid_argument, documented in DESIGN.md):
// multi-table joins and DDL other than CREATE AQ / DROP AQ are not
// supported through the sharded plane.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/aorta.h"
#include "net/reliable.h"
#include "shard/fragment.h"
#include "shard/merger.h"

namespace aorta::shard {

struct CzarStats {
  std::uint64_t aqs_registered = 0;     // AQs accepted (fan-outs, not acks)
  std::uint64_t aqs_dropped = 0;
  std::uint64_t selects = 0;            // one-shot SELECT fan-outs
  std::uint64_t fragment_errors = 0;    // worker-side registration failures
  std::uint64_t rows_received = 0;      // continuous rows decoded
  std::uint64_t outcomes_received = 0;  // action outcomes relayed
  std::uint64_t heartbeats_received = 0;
  std::uint64_t stale_gen_msgs = 0;     // dropped: superseded generation
  std::uint64_t ooo_buffered = 0;       // messages held for seq reordering
  std::uint64_t stale_query_rows = 0;   // rows for queries no longer known
  std::uint64_t workers_marked_down = 0;
  std::uint64_t reregistrations = 0;    // recovery fan-outs (gen bumps)
  // Reliable backplane (DESIGN.md §14).
  std::uint64_t dup_msgs_dropped = 0;   // duplicate seqs (chaos or replay)
  std::uint64_t acks_sent = 0;          // cumulative acks to workers
  std::uint64_t nacks_sent = 0;         // retransmit requests for seq gaps
  std::uint64_t partial_selects = 0;    // SELECTs answered by < all shards
};

class Czar : public net::Endpoint {
 public:
  struct Options {
    int num_shards = 1;
    net::NodeId node_id = "czar";
    // Workers heartbeat at this cadence (Worker::Options mirrors it); a
    // shard silent for miss_threshold intervals is marked down.
    aorta::util::Duration heartbeat_interval =
        aorta::util::Duration::seconds(1.0);
    int miss_threshold = 3;
    // Fragment RPC timeout for the fail-fast path
    // (Config::reliable_backplane = false). With the reliable backplane
    // each *attempt* uses ReliableCallOptions::attempt_timeout instead,
    // and lost RPCs are retried rather than run out.
    aorta::util::Duration rpc_timeout = aorta::util::Duration::seconds(5.0);
    // Retry/breaker policy for the reliable path.
    net::ReliableCallOptions reliable;
    // Minimum spacing between NACKs for the same seq gap (the first
    // out-of-order arrival NACKs immediately; repeats are rate-limited).
    aorta::util::Duration nack_interval = aorta::util::Duration::millis(100);
    // The czar's own link on the backplane (matches the workers').
    net::LinkModel interconnect;
  };

  // Action outcomes relayed from the workers (the service layer routes
  // them to the owning session's mailbox, exactly like the unsharded
  // executor's trace-sink path).
  using OutcomeSink = std::function<void(
      const std::string& query, aorta::util::TimePoint at,
      const std::string& detail)>;

  Czar(core::Aorta* host, Options options);
  ~Czar() override;

  Czar(const Czar&) = delete;
  Czar& operator=(const Czar&) = delete;

  // Mirrors core::Aorta::exec_async for the statement kinds the sharded
  // plane supports; `done` fires exactly once.
  void exec_async(
      const std::string& sql, core::ExecOptions options,
      std::function<void(aorta::util::Result<core::ExecResult>)> done);

  // Direct drop (service-layer session teardown). Fans fragment_drop out
  // fire-and-forget; not_found if the czar doesn't know the query.
  aorta::util::Status drop_aq(const std::string& name);

  void set_outcome_sink(OutcomeSink sink) { outcome_sink_ = std::move(sink); }

  int num_shards() const { return options_.num_shards; }
  bool worker_live(int shard) const {
    return shards_[static_cast<std::size_t>(shard)].live;
  }
  std::vector<std::string> aq_names() const;
  const CzarStats& stats() const { return stats_; }
  const Merger& merger() const { return *merger_; }
  net::RpcClient& rpc() { return rpc_; }
  const net::ReliableCallStats& reliable_stats() const {
    return reliable_call_.stats();
  }

  // net::Endpoint
  void on_message(const net::Message& msg) override;

 private:
  // Merge plan for a continuous aggregate AQ: the shape of the rows the
  // workers ship (select-list kinds with avg folded as sum, then one
  // appended count per avg — worker.cc's rewrite) plus what the czar
  // needs to finalize them (avg positions + original labels, group-key
  // column positions, the original select-list width to resize back to).
  struct AggPlan {
    std::vector<AggKind> kinds;           // per shipped column
    std::vector<std::size_t> avg_cols;    // original avg positions
    std::vector<std::string> avg_labels;  // original avg(...) labels
    std::vector<std::size_t> group_cols;  // kNone positions (group keys)
    std::size_t select_size = 0;          // original select-list width
  };

  struct AqState {
    std::string name;  // full (session-prefixed) name
    std::string sql;
    double epoch_s = 0.0;
    core::ExecOptions options;  // owner + on_row
    std::optional<AggPlan> agg;  // set when the select list aggregates
  };

  struct ShardState {
    std::uint64_t gen = 0;       // current generation
    std::uint64_t next_seq = 0;  // next seq to consume
    std::map<std::uint64_t, net::Message> ooo;  // held for reordering
    aorta::util::TimePoint last_msg;
    bool live = true;
    // NACK rate limiting: the last gap start requested and when.
    std::uint64_t last_nack_from = ~std::uint64_t{0};
    aorta::util::TimePoint last_nack_at;
  };

  static AggPlan make_agg_plan(const query::SelectStmt& stmt);

  net::NodeId worker_node(int shard) const {
    return "shard-" + std::to_string(shard);
  }
  FragmentSpec make_spec(const std::string& name, const std::string& sql,
                         double epoch_s, bool once, int shard) const;
  void send_register(int shard, const FragmentSpec& spec,
                     net::RpcCallback callback);
  void send_drop(int shard, const std::string& name);

  void exec_select(const query::SelectStmt& stmt, const std::string& sql,
                   std::function<void(aorta::util::Result<core::ExecResult>)>
                       done);
  // Merge per-shard SELECT partials (indexed by shard; a missing shard's
  // slot stays empty) into the final row set.
  std::vector<query::Row> merge_select(
      const query::SelectStmt& stmt,
      std::vector<std::vector<query::TimestampedRow>>& partials) const;

  // In-seq-order consumption of one worker message.
  void consume(int shard, const net::Message& msg);
  void on_row_released(const std::string& query,
                       const query::TimestampedRow& row);
  // Deliver every buffered aggregate window (all complete by the release
  // invariant above); called after each frontier advance.
  void flush_agg_windows();

  // Reliable backplane: cumulative acks and gap NACKs (DESIGN.md §14).
  void send_ack(int shard);
  void maybe_nack(int shard);

  // Supervision: periodic silence check, and the recovery handshake.
  void mark_down(int shard);
  void check_liveness();
  void recover_shard(int shard);
  int shard_of_node(const net::NodeId& node) const;

  core::Aorta* host_;
  Options options_;
  aorta::util::EventLoop* loop_;
  net::Network* network_;
  obs::Tracer* tracer_;
  net::RpcClient rpc_;
  // Reliable dispatch over rpc_ (retries, budgets, breakers); active when
  // Config::reliable_backplane (the ablation flag routes around it).
  bool reliable_ = true;
  net::ReliableCall reliable_call_;
  std::uint64_t dispatch_seq_ = 0;  // czar-global idempotency-key counter

  std::map<std::string, AqState> aqs_;
  // Released-but-unfinalized aggregate partials: query -> (window instant
  // in micros, encoded group key) -> positionally folded row.
  std::map<std::string,
           std::map<std::pair<std::int64_t, std::string>,
                    query::TimestampedRow>>
      agg_pending_;
  std::vector<ShardState> shards_;
  std::unique_ptr<Merger> merger_;
  OutcomeSink outcome_sink_;
  CzarStats stats_;
  obs::MetricsRegistry::Scoped metrics_;
  obs::MetricsRegistry::Scoped reliable_metrics_;  // "net.reliable.*"
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace aorta::shard
