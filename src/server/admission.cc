#include "server/admission.h"

namespace aorta::server {

void AdmissionController::set_tenant_weight(const TenantId& tenant,
                                            double weight) {
  tenants_[tenant].weight = weight > 0.0 ? weight : 1.0;
}

bool AdmissionController::submit(
    Submission submission, const std::function<void(const Submission&)>& on_shed) {
  ++stats_.submitted;
  if (queued_ >= config_.queue_capacity) {
    if (config_.policy == aorta::util::OverflowPolicy::kRejectNew) {
      ++stats_.rejected;
      return false;
    }
    // Shed the oldest submission of the most-backlogged tenant. A flooding
    // tenant is by construction the longest queue, so it cannibalizes its
    // own backlog before any lighter tenant loses work. Ties break on the
    // smaller tenant id (map order) for determinism.
    TenantQueue* victim = nullptr;
    for (auto& [name, q] : tenants_) {
      if (q.items.empty()) continue;
      if (victim == nullptr || q.items.size() > victim->items.size()) {
        victim = &q;
      }
    }
    if (victim != nullptr) {
      if (on_shed) on_shed(victim->items.front());
      victim->items.pop_front();
      --queued_;
      ++stats_.shed;
    }
  }

  TenantQueue& q = tenants_[submission.tenant];
  if (q.items.empty()) {
    // A tenant (re)entering the schedule starts at the current virtual
    // time — an idle period must not bank up an unbounded burst credit.
    q.pass = std::max(q.pass, global_pass_);
  }
  q.items.push_back(std::move(submission));
  ++queued_;
  ++stats_.admitted;
  return true;
}

std::optional<Submission> AdmissionController::next(
    const std::function<bool(const Submission&)>& eligible) {
  TenantQueue* best = nullptr;
  std::uint64_t best_seq = 0;
  for (auto& [name, q] : tenants_) {
    if (q.items.empty()) continue;
    if (eligible && !eligible(q.items.front())) continue;  // deferred
    bool better;
    if (best == nullptr) {
      better = true;
    } else if (config_.fair_dequeue) {
      better = q.pass < best->pass;
    } else {
      better = q.items.front().seq < best_seq;  // global FIFO baseline
    }
    if (better) {
      best = &q;
      best_seq = q.items.front().seq;
    }
  }
  if (best == nullptr) return std::nullopt;

  Submission out = std::move(best->items.front());
  best->items.pop_front();
  --queued_;
  ++stats_.dispatched;
  // The served tenant's pre-increment pass is the schedule's virtual time:
  // tenants (re)entering later start there, not at zero.
  global_pass_ = best->pass;
  best->pass += 1.0 / best->weight;
  return out;
}

std::size_t AdmissionController::queued_for(const TenantId& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.items.size();
}

}  // namespace aorta::server
