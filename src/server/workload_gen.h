// Calibrated multi-client workload generator for the query service.
//
// Spawns N simulated clients (sessions) against the virtual clock, in
// either of the two classic load-generation modes:
//   open loop   — each client submits on a Poisson process at its tenant's
//                 arrival rate, regardless of completions (models heavy
//                 external traffic; exposes queueing collapse);
//   closed loop — each client waits for its previous statement to resolve,
//                 thinks, then submits again (models interactive users;
//                 self-throttles at the service's capacity).
// Statement mix and per-tenant rate multipliers (hot tenants) are
// configurable. Everything draws from a seeded Rng and schedules on the
// simulation's event loop, so runs are deterministic.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "server/service.h"
#include "util/rng.h"

namespace aorta::server {

struct WorkloadConfig {
  enum class Mode { kOpenLoop, kClosedLoop };

  int tenants = 4;
  int sessions_per_tenant = 1;
  Mode mode = Mode::kClosedLoop;
  double arrival_rate_hz = 1.0;  // open loop: mean submissions/s per session
  aorta::util::Duration think = aorta::util::Duration::seconds(1.0);
  // Fraction of submissions that are CREATE AQ (the rest are one-shot
  // SELECTs). Each session registers at most max_aqs_per_session before
  // falling back to SELECTs.
  double aq_fraction = 0.05;
  int max_aqs_per_session = 2;
  std::uint64_t seed = 1;
  // Per-tenant arrival-rate multipliers (open loop) / think-time divisors
  // (closed loop); absent tenants get 1.0. "t0" -> 10.0 models a hot tenant.
  std::map<TenantId, double> rate_multipliers;
  // Statement templates drawn uniformly. AQ templates are the SELECT body
  // only; the generator prepends "CREATE AQ <unique-name> AS ".
  std::vector<std::string> select_templates = {
      "SELECT s.accel_x FROM sensor s",
      "SELECT s.temp FROM sensor s WHERE s.temp > 0",
      "SELECT count(*) FROM sensor s",
  };
  std::vector<std::string> aq_templates = {
      "SELECT s.accel_x FROM sensor s WHERE s.accel_x > 500",
  };
};

struct WorkloadStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t refused = 0;  // submit() failed (queue full / quota / state)
};

// Tenant names are "t0" ... "t<N-1>".
class WorkloadGen {
 public:
  WorkloadGen(QueryService* service, core::Aorta* system,
              WorkloadConfig config);
  ~WorkloadGen();

  // Connect all sessions and schedule the first submissions. Idempotent.
  void start();
  // Stop submitting (sessions stay connected for stats/draining).
  void stop();

  const WorkloadStats& stats() const { return stats_; }
  const std::vector<SessionId>& sessions() const { return session_ids_; }

 private:
  struct Client {
    SessionId session = 0;
    TenantId tenant;
    double rate_multiplier = 1.0;
    aorta::util::Rng rng;
    int aqs_created = 0;
    std::uint64_t next_name = 1;  // unique AQ names within the session
  };

  void schedule_next(std::size_t client_index, aorta::util::Duration delay);
  void submit_once(std::size_t client_index);
  aorta::util::Duration inter_arrival(Client& client);

  QueryService* service_;
  core::Aorta* system_;
  WorkloadConfig config_;
  std::vector<Client> clients_;
  std::vector<SessionId> session_ids_;
  WorkloadStats stats_;
  bool started_ = false;
  std::shared_ptr<bool> running_ = std::make_shared<bool>(false);
};

}  // namespace aorta::server
