#include "server/service.h"

#include "query/parser.h"
#include "util/strings.h"

namespace aorta::server {

using aorta::util::Result;
using aorta::util::Status;

QueryService::QueryService(core::Aorta* system, ServiceConfig config)
    : system_(system),
      config_(std::move(config)),
      admission_(config_.admission) {
  for (const auto& [tenant, weight] : config_.tenant_weights) {
    admission_.set_tenant_weight(tenant, weight);
  }
  // Route action outcomes of session-owned queries to their mailboxes.
  system_->executor().set_trace_sink([this](const query::TraceEntry& entry) {
    if (entry.kind != "outcome" || entry.query.empty()) return;
    auto owner = query_owner_.find(entry.query);
    if (owner == query_owner_.end()) return;
    auto it = sessions_.find(owner->second);
    if (it == sessions_.end() || it->second->state() == SessionState::kClosed) {
      return;
    }
    Delivery d;
    d.kind = Delivery::Kind::kOutcome;
    d.at = entry.at;
    d.query = entry.query;
    d.message = entry.detail;
    it->second->deliver(std::move(d));
    ++tenants_[it->second->tenant()].outcomes_delivered;
  });
  auto alive = alive_;
  system_->loop().schedule(config_.dispatch_interval, [this, alive]() {
    if (*alive) on_tick();
  });
}

QueryService::~QueryService() {
  system_->executor().set_trace_sink({});
  // Callbacks still queued on the loop (ticks, select completions, AQ row
  // hooks) share alive_ and become no-ops from here on.
  *alive_ = false;
}

void QueryService::on_tick() {
  for (std::size_t i = 0; i < config_.max_dispatch_per_tick; ++i) {
    auto next = admission_.next(
        [this](const Submission& s) { return eligible(s); });
    if (!next.has_value()) break;
    dispatch(std::move(*next));
  }
  auto alive = alive_;
  system_->loop().schedule(config_.dispatch_interval, [this, alive]() {
    if (*alive) on_tick();
  });
}

SessionId QueryService::connect(const TenantId& tenant) {
  SessionId id = next_session_id_++;
  sessions_.emplace(
      id, std::make_unique<Session>(id, tenant, config_.mailbox_capacity));
  tenants_.try_emplace(tenant);  // tenant appears in stats from first contact
  return id;
}

Session* QueryService::session(SessionId id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

const Session* QueryService::session(SessionId id) const {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

std::size_t QueryService::active_sessions() const {
  std::size_t n = 0;
  for (const auto& [id, s] : sessions_) {
    if (s->state() != SessionState::kClosed) ++n;
  }
  return n;
}

Status QueryService::drain_session(SessionId id) {
  Session* s = session(id);
  if (s == nullptr) return aorta::util::not_found_error("no such session");
  if (s->state() == SessionState::kClosed) {
    return aorta::util::invalid_argument_error("session already closed");
  }
  s->state_ = SessionState::kDraining;
  return Status::ok();
}

Status QueryService::disconnect(SessionId id) {
  Session* s = session(id);
  if (s == nullptr) return aorta::util::not_found_error("no such session");
  if (s->state() == SessionState::kClosed) {
    return aorta::util::invalid_argument_error("session already closed");
  }
  // Drop every continuous query the session registered.
  for (const std::string& name : s->queries_) {
    (void)system_->executor().drop_aq(name);
    query_owner_.erase(name);
    TenantRuntime& rt = runtime_[s->tenant()];
    if (rt.aqs > 0) --rt.aqs;
  }
  s->queries_.clear();
  s->state_ = SessionState::kClosed;
  return Status::ok();
}

bool QueryService::eligible(const Submission& submission) const {
  if (submission.kind != query::Statement::Kind::kSelect) return true;
  auto it = runtime_.find(submission.tenant);
  std::uint64_t inflight = it == runtime_.end() ? 0 : it->second.inflight_selects;
  return inflight < config_.admission.max_inflight_selects_per_tenant;
}

Result<std::uint64_t> QueryService::submit(SessionId id,
                                           const std::string& sql) {
  Session* s = session(id);
  if (s == nullptr) {
    return Result<std::uint64_t>(aorta::util::not_found_error(
        "no such session: " + std::to_string(id)));
  }
  if (s->state() != SessionState::kActive) {
    return Result<std::uint64_t>(aorta::util::unavailable_error(
        "session is " + std::string(session_state_name(s->state()))));
  }
  TenantStats& ts = tenants_[s->tenant()];
  TenantRuntime& rt = runtime_[s->tenant()];
  ++ts.submitted;
  ++s->stats_.submitted;

  // Parse up front: the admission queue only holds well-formed statements,
  // and quota checks need the statement kind.
  auto stmt = query::parse(sql);
  if (!stmt.is_ok()) {
    ++ts.errors;
    ++s->stats_.errors;
    return Result<std::uint64_t>(stmt.status());
  }

  Submission sub;
  sub.session = id;
  sub.tenant = s->tenant();
  sub.sql = sql;
  sub.kind = stmt.value().kind;
  sub.enqueued_at = system_->loop().now();
  sub.seq = next_seq_++;
  if (sub.kind == query::Statement::Kind::kCreateAq) {
    sub.aq_name = stmt.value().create_aq.name;
    // Per-tenant quota on registered AQs, counting queued registrations.
    if (rt.aqs + rt.pending_creates >=
        config_.admission.max_aqs_per_tenant) {
      ++ts.rejected;
      ++s->stats_.rejected;
      return Result<std::uint64_t>(aorta::util::busy_error(
          "tenant AQ quota reached (" +
          std::to_string(config_.admission.max_aqs_per_tenant) + ")"));
    }
  } else if (sub.kind == query::Statement::Kind::kDropAq) {
    sub.aq_name = stmt.value().drop_aq.name;
  }
  sub.statement_id = s->next_statement_id_++;
  std::uint64_t statement_id = sub.statement_id;

  bool queued = admission_.submit(
      std::move(sub), [this](const Submission& shed) {
        // A queued submission was shed to admit a newer one: tell its
        // session, and release any quota it was holding.
        TenantStats& shed_ts = tenants_[shed.tenant];
        ++shed_ts.shed;
        if (shed.kind == query::Statement::Kind::kCreateAq) {
          TenantRuntime& shed_rt = runtime_[shed.tenant];
          if (shed_rt.pending_creates > 0) --shed_rt.pending_creates;
        }
        if (Session* victim = session(shed.session)) {
          Delivery d;
          d.kind = Delivery::Kind::kError;
          d.at = system_->loop().now();
          d.statement_id = shed.statement_id;
          d.message = "shed by admission control before dispatch";
          victim->deliver(std::move(d));
        }
      });
  if (!queued) {
    ++ts.rejected;
    ++s->stats_.rejected;
    return Result<std::uint64_t>(aorta::util::busy_error(
        "admission queue full (" +
        std::to_string(config_.admission.queue_capacity) + ")"));
  }
  ++ts.admitted;
  if (stmt.value().kind == query::Statement::Kind::kCreateAq) {
    ++rt.pending_creates;
  }
  return statement_id;
}

void QueryService::dispatch(Submission submission) {
  TenantStats& ts = tenants_[submission.tenant];
  TenantRuntime& rt = runtime_[submission.tenant];
  ++ts.dispatched;
  double wait_ms = (system_->loop().now() - submission.enqueued_at).to_millis();
  ts.admission_latency_ms.add(wait_ms);
  admission_latency_ms_.add(wait_ms);
  if (submission.kind == query::Statement::Kind::kCreateAq &&
      rt.pending_creates > 0) {
    --rt.pending_creates;
  }

  Session* s = session(submission.session);
  if (s == nullptr || s->state() == SessionState::kClosed) {
    ++ts.errors;  // dispatched into a void: session left while queued
    return;
  }
  if (submission.kind == query::Statement::Kind::kSelect) {
    ++rt.inflight_selects;
  }

  core::ExecOptions options;
  options.owner = s->name_prefix();
  options.name_prefix = s->name_prefix();
  options.on_row = [this, alive = alive_, session_id = submission.session](
                       const std::string& query,
                       const query::TimestampedRow& row) {
    if (!*alive) return;
    auto it = sessions_.find(session_id);
    if (it == sessions_.end() || it->second->state() == SessionState::kClosed) {
      return;
    }
    Delivery d;
    d.kind = Delivery::Kind::kRow;
    d.at = row.at;
    d.query = query;
    d.rows.push_back(row.row);
    d.degraded = row.degraded;
    it->second->deliver(std::move(d));
    TenantStats& row_ts = tenants_[it->second->tenant()];
    ++row_ts.rows_delivered;
    if (row.degraded) ++row_ts.rows_degraded;
  };

  auto alive = alive_;
  // Copy out the SQL first: the lambda capture moves `submission`, and
  // argument evaluation order is unspecified.
  std::string sql = submission.sql;
  system_->exec_async(
      sql, std::move(options),
      [this, alive, sub = std::move(submission)](
          Result<core::ExecResult> outcome) {
        if (!*alive) return;
        finish(sub.session, sub, std::move(outcome));
      });
}

void QueryService::finish(SessionId session_id, const Submission& submission,
                          Result<core::ExecResult> outcome) {
  TenantStats& ts = tenants_[submission.tenant];
  TenantRuntime& rt = runtime_[submission.tenant];
  if (submission.kind == query::Statement::Kind::kSelect &&
      rt.inflight_selects > 0) {
    --rt.inflight_selects;
  }

  Session* s = session(session_id);
  std::string prefixed;
  if (!submission.aq_name.empty() && s != nullptr) {
    prefixed = s->name_prefix() + submission.aq_name;
  }
  if (outcome.is_ok() && !prefixed.empty()) {
    if (submission.kind == query::Statement::Kind::kCreateAq) {
      if (s->state() == SessionState::kClosed) {
        // Registration raced with disconnect: don't leak an ownerless AQ.
        (void)system_->executor().drop_aq(prefixed);
      } else {
        query_owner_[prefixed] = session_id;
        s->queries_.insert(prefixed);
        ++rt.aqs;
      }
    } else if (submission.kind == query::Statement::Kind::kDropAq) {
      query_owner_.erase(prefixed);
      s->queries_.erase(prefixed);
      if (rt.aqs > 0) --rt.aqs;
    }
  }

  if (s == nullptr || s->state() == SessionState::kClosed) return;
  Delivery d;
  d.at = system_->loop().now();
  d.statement_id = submission.statement_id;
  if (outcome.is_ok()) {
    d.kind = Delivery::Kind::kResult;
    d.message = std::move(outcome.value().message);
    d.rows = std::move(outcome.value().rows);
    ++ts.completed;
  } else {
    d.kind = Delivery::Kind::kError;
    d.message = outcome.status().to_string();
    ++ts.errors;
  }
  s->deliver(std::move(d));
}

std::string QueryService::stats_json() const {
  using aorta::util::str_format;
  std::string out = "{\n";
  out += str_format("  \"sessions\": {\"total\": %zu, \"active\": %zu},\n",
                    sessions_.size(), active_sessions());
  const AdmissionStats& a = admission_.stats();
  out += str_format(
      "  \"admission\": {\"submitted\": %llu, \"admitted\": %llu, "
      "\"rejected\": %llu, \"shed\": %llu, \"dispatched\": %llu, "
      "\"queued\": %zu},\n",
      static_cast<unsigned long long>(a.submitted),
      static_cast<unsigned long long>(a.admitted),
      static_cast<unsigned long long>(a.rejected),
      static_cast<unsigned long long>(a.shed),
      static_cast<unsigned long long>(a.dispatched), admission_.queued());

  // Shared acquisition plane: per-device-type broker counters plus the
  // batch fan-out latency. Sorted keys (std::map) keep the rendering
  // deterministic across same-seed runs.
  const comm::ScanBroker& broker = system_->scan_broker();
  const aorta::util::Summary& blat = broker.batch_latency_ms();
  out += "  \"scan_broker\": {\n";
  out += str_format(
      "    \"subscribers\": %zu,\n    \"batch_latency_ms\": "
      "{\"count\": %zu, \"p50\": %.3f, \"p99\": %.3f, \"max\": %.3f},\n",
      broker.subscriber_count(), blat.count(),
      blat.empty() ? 0.0 : blat.percentile(50.0),
      blat.empty() ? 0.0 : blat.percentile(99.0),
      blat.empty() ? 0.0 : blat.max());
  out += "    \"types\": {";
  bool first_type = true;
  for (const auto& [type, bs] : broker.stats()) {
    out += first_type ? "\n" : ",\n";
    first_type = false;
    out += str_format(
        "      \"%s\": {\"batches\": %llu, \"rpcs_issued\": %llu, "
        "\"rpcs_coalesced\": %llu, \"cache_hits\": %llu, "
        "\"read_failures\": %llu, \"tuples_delivered\": %llu, "
        "\"deliveries\": %llu, \"devices_skipped\": %llu, "
        "\"quarantined_skips\": %llu, \"degraded_reads\": %llu, "
        "\"degraded_tuples\": %llu, \"subscribers\": %zu}",
        type.c_str(), static_cast<unsigned long long>(bs.batches),
        static_cast<unsigned long long>(bs.rpcs_issued),
        static_cast<unsigned long long>(bs.rpcs_coalesced),
        static_cast<unsigned long long>(bs.cache_hits),
        static_cast<unsigned long long>(bs.read_failures),
        static_cast<unsigned long long>(bs.tuples_delivered),
        static_cast<unsigned long long>(bs.deliveries),
        static_cast<unsigned long long>(bs.devices_skipped),
        static_cast<unsigned long long>(bs.quarantined_skips),
        static_cast<unsigned long long>(bs.degraded_reads),
        static_cast<unsigned long long>(bs.degraded_tuples),
        broker.subscriber_count(type));
  }
  out += first_type ? "}\n  },\n" : "\n    }\n  },\n";

  // Transport counters: what the simulated radio did to the service's
  // traffic, including replies that arrived after their RPC timed out and
  // requests bounced off offline devices.
  const core::SystemStats sys = system_->stats();
  out += str_format(
      "  \"network\": {\"sent\": %llu, \"delivered\": %llu, "
      "\"dropped_loss\": %llu, \"dropped_no_route\": %llu, "
      "\"dropped_partition\": %llu, \"dropped_offline\": %llu, "
      "\"bounced\": %llu, \"rpc\": {\"completed\": %llu, "
      "\"timeouts\": %llu, \"late_replies\": %llu, "
      "\"unreachable\": %llu}},\n",
      static_cast<unsigned long long>(sys.network.sent),
      static_cast<unsigned long long>(sys.network.delivered),
      static_cast<unsigned long long>(sys.network.dropped_loss),
      static_cast<unsigned long long>(sys.network.dropped_no_route),
      static_cast<unsigned long long>(sys.network.dropped_partition),
      static_cast<unsigned long long>(sys.network.dropped_offline),
      static_cast<unsigned long long>(sys.network.bounced),
      static_cast<unsigned long long>(sys.rpc.completed),
      static_cast<unsigned long long>(sys.rpc.timeouts),
      static_cast<unsigned long long>(sys.rpc.late_replies),
      static_cast<unsigned long long>(sys.rpc.unreachable));

  // Device health supervision (core/health.h).
  if (const core::HealthSupervisor* health = system_->health()) {
    const core::HealthStats& hs = health->stats();
    out += str_format(
        "  \"health\": {\"enabled\": true, \"quarantined\": %zu, "
        "\"reports_ok\": %llu, \"reports_failed\": %llu, "
        "\"quarantines\": %llu, \"recoveries\": %llu, "
        "\"probes_sent\": %llu, \"probes_failed\": %llu},\n",
        health->quarantined_count(),
        static_cast<unsigned long long>(hs.reports_ok),
        static_cast<unsigned long long>(hs.reports_failed),
        static_cast<unsigned long long>(hs.quarantines),
        static_cast<unsigned long long>(hs.recoveries),
        static_cast<unsigned long long>(hs.probes_sent),
        static_cast<unsigned long long>(hs.probes_failed));
  } else {
    out += "  \"health\": {\"enabled\": false},\n";
  }

  // Compiled evaluation: how much per-row expression work runs through
  // slot-resolved programs vs the tree-walking fallback
  // (query/eval_program.h).
  const query::EvalStats& es = system_->executor().eval_stats();
  out += str_format(
      "  \"eval\": {\"programs_compiled\": %llu, \"programs_fallback\": "
      "%llu, \"compiled_evals\": %llu, \"fallback_evals\": %llu},\n",
      static_cast<unsigned long long>(es.programs_compiled),
      static_cast<unsigned long long>(es.programs_fallback),
      static_cast<unsigned long long>(es.compiled_evals),
      static_cast<unsigned long long>(es.fallback_evals));

  // Mailbox drop totals per tenant (sessions are the drop points).
  std::map<TenantId, std::uint64_t> mailbox_dropped;
  for (const auto& [id, s] : sessions_) {
    mailbox_dropped[s->tenant()] += s->mailbox_dropped();
  }

  out += "  \"tenants\": {\n";
  bool first = true;
  for (const auto& [tenant, ts] : tenants_) {
    if (!first) out += ",\n";
    first = false;
    const aorta::util::Summary& lat = ts.admission_latency_ms;
    out += str_format(
        "    \"%s\": {\"submitted\": %llu, \"admitted\": %llu, "
        "\"rejected\": %llu, \"shed\": %llu, \"dispatched\": %llu, "
        "\"completed\": %llu, \"errors\": %llu, \"rows\": %llu, "
        "\"rows_degraded\": %llu, \"outcomes\": %llu, "
        "\"mailbox_dropped\": %llu, "
        "\"admission_latency_ms\": {\"count\": %zu, \"p50\": %.3f, "
        "\"p99\": %.3f, \"max\": %.3f}}",
        tenant.c_str(), static_cast<unsigned long long>(ts.submitted),
        static_cast<unsigned long long>(ts.admitted),
        static_cast<unsigned long long>(ts.rejected),
        static_cast<unsigned long long>(ts.shed),
        static_cast<unsigned long long>(ts.dispatched),
        static_cast<unsigned long long>(ts.completed),
        static_cast<unsigned long long>(ts.errors),
        static_cast<unsigned long long>(ts.rows_delivered),
        static_cast<unsigned long long>(ts.rows_degraded),
        static_cast<unsigned long long>(ts.outcomes_delivered),
        static_cast<unsigned long long>(mailbox_dropped[tenant]), lat.count(),
        lat.empty() ? 0.0 : lat.percentile(50.0),
        lat.empty() ? 0.0 : lat.percentile(99.0),
        lat.empty() ? 0.0 : lat.max());
  }
  out += "\n  }\n}\n";
  return out;
}

}  // namespace aorta::server
