#include "server/service.h"

#include "query/parser.h"
#include "util/json_writer.h"

namespace aorta::server {

using aorta::util::Result;
using aorta::util::Status;

QueryService::QueryService(core::Aorta* system, ServiceConfig config)
    : system_(system),
      config_(std::move(config)),
      metrics_(&system->metrics()),
      tracer_(&system->tracer()),
      admission_(config_.admission) {
  for (const auto& [tenant, weight] : config_.tenant_weights) {
    admission_.set_tenant_weight(tenant, weight);
  }

  metrics_->enroll_gauge("sessions.total", [this]() {
    return static_cast<std::int64_t>(sessions_.size());
  });
  metrics_->enroll_gauge("sessions.active", [this]() {
    return static_cast<std::int64_t>(active_sessions());
  });
  const AdmissionStats& as = admission_.stats();
  metrics_->enroll_counter("admission.submitted", &as.submitted);
  metrics_->enroll_counter("admission.admitted", &as.admitted);
  metrics_->enroll_counter("admission.rejected", &as.rejected);
  metrics_->enroll_counter("admission.shed", &as.shed);
  metrics_->enroll_counter("admission.dispatched", &as.dispatched);
  metrics_->enroll_gauge("admission.queued", [this]() {
    return static_cast<std::int64_t>(admission_.queued());
  });

  if (config_.num_shards > 0) {
    shard::Plane::Options po;
    po.num_shards = config_.num_shards;
    po.heartbeat_interval = config_.shard_heartbeat_interval;
    po.miss_threshold = config_.shard_miss_threshold;
    plane_ = std::make_unique<shard::Plane>(system_, po);
    // Action outcomes arrive relayed from the workers through the czar.
    plane_->czar().set_outcome_sink(
        [this](const std::string& query, aorta::util::TimePoint at,
               const std::string& detail) {
          deliver_outcome(query, at, detail);
        });
  } else {
    // Route action outcomes of session-owned queries to their mailboxes.
    system_->executor().set_trace_sink(
        [this](const query::TraceEntry& entry) {
          if (entry.kind != "outcome" || entry.query.empty()) return;
          deliver_outcome(entry.query, entry.at, entry.detail);
        });
  }
  auto alive = alive_;
  system_->loop().schedule(config_.dispatch_interval, [this, alive]() {
    if (*alive) on_tick();
  });
}

void QueryService::deliver_outcome(const std::string& query,
                                   aorta::util::TimePoint at,
                                   const std::string& detail) {
  auto owner = query_owner_.find(query);
  if (owner == query_owner_.end()) return;
  auto it = sessions_.find(owner->second);
  if (it == sessions_.end() || it->second->state() == SessionState::kClosed) {
    return;
  }
  Delivery d;
  d.kind = Delivery::Kind::kOutcome;
  d.at = at;
  d.query = query;
  d.message = detail;
  AORTA_TRACE_INSTANT(tracer_, obs::SpanCat::kDelivery, "outcome:" + query,
                      at, detail);
  it->second->deliver(std::move(d));
  ++tenant_entry(it->second->tenant()).outcomes_delivered;
}

void QueryService::exec_statement(
    const std::string& sql, core::ExecOptions options,
    std::function<void(Result<core::ExecResult>)> done) {
  if (plane_ != nullptr) {
    plane_->exec_async(sql, std::move(options), std::move(done));
  } else {
    system_->exec_async(sql, std::move(options), std::move(done));
  }
}

void QueryService::drop_query(const std::string& prefixed_name) {
  if (plane_ != nullptr) {
    (void)plane_->czar().drop_aq(prefixed_name);
  } else {
    (void)system_->executor().drop_aq(prefixed_name);
  }
}

QueryService::~QueryService() {
  if (plane_ != nullptr) plane_->czar().set_outcome_sink({});
  system_->executor().set_trace_sink({});
  // The service dies before the system: withdraw its registry sections so
  // a later stats snapshot cannot read freed counters.
  metrics_->unenroll_prefix("sessions.");
  metrics_->unenroll_prefix("admission.");
  metrics_->unenroll_prefix("tenants.");
  // Callbacks still queued on the loop (ticks, select completions, AQ row
  // hooks) share alive_ and become no-ops from here on.
  *alive_ = false;
}

TenantStats& QueryService::tenant_entry(const TenantId& tenant) {
  auto [it, inserted] = tenants_.try_emplace(tenant);
  if (inserted) {
    TenantStats& ts = it->second;
    std::string prefix =
        "tenants." + obs::MetricsRegistry::sanitize_component(tenant) + ".";
    metrics_->enroll_counter(prefix + "submitted", &ts.submitted);
    metrics_->enroll_counter(prefix + "admitted", &ts.admitted);
    metrics_->enroll_counter(prefix + "rejected", &ts.rejected);
    metrics_->enroll_counter(prefix + "shed", &ts.shed);
    metrics_->enroll_counter(prefix + "dispatched", &ts.dispatched);
    metrics_->enroll_counter(prefix + "completed", &ts.completed);
    metrics_->enroll_counter(prefix + "partial_results", &ts.partial_results);
    metrics_->enroll_counter(prefix + "errors", &ts.errors);
    metrics_->enroll_counter(prefix + "rows", &ts.rows_delivered);
    metrics_->enroll_counter(prefix + "rows_degraded", &ts.rows_degraded);
    metrics_->enroll_counter(prefix + "outcomes", &ts.outcomes_delivered);
    metrics_->enroll_gauge(prefix + "mailbox_dropped", [this, tenant]() {
      std::int64_t dropped = 0;
      for (const auto& [id, s] : sessions_) {
        if (s->tenant() == tenant) {
          dropped += static_cast<std::int64_t>(s->mailbox_dropped());
        }
      }
      return dropped;
    });
    metrics_->enroll_histogram(prefix + "admission_latency_ms",
                               &ts.admission_latency_ms);
  }
  return it->second;
}

void QueryService::on_tick() {
  for (std::size_t i = 0; i < config_.max_dispatch_per_tick; ++i) {
    auto next = admission_.next(
        [this](const Submission& s) { return eligible(s); });
    if (!next.has_value()) break;
    dispatch(std::move(*next));
  }
  auto alive = alive_;
  system_->loop().schedule(config_.dispatch_interval, [this, alive]() {
    if (*alive) on_tick();
  });
}

SessionId QueryService::connect(const TenantId& tenant) {
  SessionId id = next_session_id_++;
  sessions_.emplace(
      id, std::make_unique<Session>(id, tenant, config_.mailbox_capacity));
  (void)tenant_entry(tenant);  // tenant appears in stats from first contact
  return id;
}

Session* QueryService::session(SessionId id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

const Session* QueryService::session(SessionId id) const {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

std::size_t QueryService::active_sessions() const {
  std::size_t n = 0;
  for (const auto& [id, s] : sessions_) {
    if (s->state() != SessionState::kClosed) ++n;
  }
  return n;
}

Status QueryService::drain_session(SessionId id) {
  Session* s = session(id);
  if (s == nullptr) return aorta::util::not_found_error("no such session");
  if (s->state() == SessionState::kClosed) {
    return aorta::util::invalid_argument_error("session already closed");
  }
  s->state_ = SessionState::kDraining;
  return Status::ok();
}

Status QueryService::disconnect(SessionId id) {
  Session* s = session(id);
  if (s == nullptr) return aorta::util::not_found_error("no such session");
  if (s->state() == SessionState::kClosed) {
    return aorta::util::invalid_argument_error("session already closed");
  }
  // Drop every continuous query the session registered.
  for (const std::string& name : s->queries_) {
    drop_query(name);
    query_owner_.erase(name);
    TenantRuntime& rt = runtime_[s->tenant()];
    if (rt.aqs > 0) --rt.aqs;
  }
  s->queries_.clear();
  s->state_ = SessionState::kClosed;
  return Status::ok();
}

bool QueryService::eligible(const Submission& submission) const {
  if (submission.kind != query::Statement::Kind::kSelect) return true;
  auto it = runtime_.find(submission.tenant);
  std::uint64_t inflight = it == runtime_.end() ? 0 : it->second.inflight_selects;
  return inflight < config_.admission.max_inflight_selects_per_tenant;
}

Result<std::uint64_t> QueryService::submit(SessionId id,
                                           const std::string& sql) {
  Session* s = session(id);
  if (s == nullptr) {
    return Result<std::uint64_t>(aorta::util::not_found_error(
        "no such session: " + std::to_string(id)));
  }
  if (s->state() != SessionState::kActive) {
    return Result<std::uint64_t>(aorta::util::unavailable_error(
        "session is " + std::string(session_state_name(s->state()))));
  }
  TenantStats& ts = tenant_entry(s->tenant());
  TenantRuntime& rt = runtime_[s->tenant()];
  ++ts.submitted;
  ++s->stats_.submitted;

  // Parse up front: the admission queue only holds well-formed statements,
  // and quota checks need the statement kind.
  auto stmt = query::parse(sql);
  if (!stmt.is_ok()) {
    ++ts.errors;
    ++s->stats_.errors;
    return Result<std::uint64_t>(stmt.status());
  }

  Submission sub;
  sub.session = id;
  sub.tenant = s->tenant();
  sub.sql = sql;
  sub.kind = stmt.value().kind;
  sub.enqueued_at = system_->loop().now();
  sub.seq = next_seq_++;
  if (sub.kind == query::Statement::Kind::kCreateAq) {
    sub.aq_name = stmt.value().create_aq.name;
    // Per-tenant quota on registered AQs, counting queued registrations.
    if (rt.aqs + rt.pending_creates >=
        config_.admission.max_aqs_per_tenant) {
      ++ts.rejected;
      ++s->stats_.rejected;
      return Result<std::uint64_t>(aorta::util::busy_error(
          "tenant AQ quota reached (" +
          std::to_string(config_.admission.max_aqs_per_tenant) + ")"));
    }
  } else if (sub.kind == query::Statement::Kind::kDropAq) {
    sub.aq_name = stmt.value().drop_aq.name;
  }
  sub.statement_id = s->next_statement_id_++;
  std::uint64_t statement_id = sub.statement_id;

  bool queued = admission_.submit(
      std::move(sub), [this](const Submission& shed) {
        // A queued submission was shed to admit a newer one: tell its
        // session, and release any quota it was holding.
        TenantStats& shed_ts = tenant_entry(shed.tenant);
        ++shed_ts.shed;
        if (shed.kind == query::Statement::Kind::kCreateAq) {
          TenantRuntime& shed_rt = runtime_[shed.tenant];
          if (shed_rt.pending_creates > 0) --shed_rt.pending_creates;
        }
        if (Session* victim = session(shed.session)) {
          Delivery d;
          d.kind = Delivery::Kind::kError;
          d.at = system_->loop().now();
          d.statement_id = shed.statement_id;
          d.message = "shed by admission control before dispatch";
          victim->deliver(std::move(d));
        }
      });
  if (!queued) {
    ++ts.rejected;
    ++s->stats_.rejected;
    return Result<std::uint64_t>(aorta::util::busy_error(
        "admission queue full (" +
        std::to_string(config_.admission.queue_capacity) + ")"));
  }
  ++ts.admitted;
  if (stmt.value().kind == query::Statement::Kind::kCreateAq) {
    ++rt.pending_creates;
  }
  return statement_id;
}

void QueryService::dispatch(Submission submission) {
  TenantStats& ts = tenant_entry(submission.tenant);
  TenantRuntime& rt = runtime_[submission.tenant];
  ++ts.dispatched;
  double wait_ms = (system_->loop().now() - submission.enqueued_at).to_millis();
  ts.admission_latency_ms.add(wait_ms);
  admission_latency_ms_.add(wait_ms);
  if (submission.kind == query::Statement::Kind::kCreateAq &&
      rt.pending_creates > 0) {
    --rt.pending_creates;
  }

  Session* s = session(submission.session);
  if (s == nullptr || s->state() == SessionState::kClosed) {
    ++ts.errors;  // dispatched into a void: session left while queued
    return;
  }
  if (submission.kind == query::Statement::Kind::kSelect) {
    ++rt.inflight_selects;
  }

  core::ExecOptions options;
  options.owner = s->name_prefix();
  options.name_prefix = s->name_prefix();
  options.on_row = [this, alive = alive_, session_id = submission.session](
                       const std::string& query,
                       const query::TimestampedRow& row) {
    if (!*alive) return;
    auto it = sessions_.find(session_id);
    if (it == sessions_.end() || it->second->state() == SessionState::kClosed) {
      return;
    }
    Delivery d;
    d.kind = Delivery::Kind::kRow;
    d.at = row.at;
    d.query = query;
    d.rows.push_back(row.row);
    d.degraded = row.degraded;
    AORTA_TRACE_INSTANT(tracer_, obs::SpanCat::kDelivery, "row:" + query,
                        row.at, std::string());
    it->second->deliver(std::move(d));
    TenantStats& row_ts = tenant_entry(it->second->tenant());
    ++row_ts.rows_delivered;
    if (row.degraded) ++row_ts.rows_degraded;
  };

  auto alive = alive_;
  // Copy out the SQL first: the lambda capture moves `submission`, and
  // argument evaluation order is unspecified.
  std::string sql = submission.sql;
  exec_statement(
      sql, std::move(options),
      [this, alive, sub = std::move(submission)](
          Result<core::ExecResult> outcome) {
        if (!*alive) return;
        finish(sub.session, sub, std::move(outcome));
      });
}

void QueryService::finish(SessionId session_id, const Submission& submission,
                          Result<core::ExecResult> outcome) {
  TenantStats& ts = tenant_entry(submission.tenant);
  TenantRuntime& rt = runtime_[submission.tenant];
  if (submission.kind == query::Statement::Kind::kSelect &&
      rt.inflight_selects > 0) {
    --rt.inflight_selects;
  }

  Session* s = session(session_id);
  std::string prefixed;
  if (!submission.aq_name.empty() && s != nullptr) {
    prefixed = s->name_prefix() + submission.aq_name;
  }
  if (outcome.is_ok() && !prefixed.empty()) {
    if (submission.kind == query::Statement::Kind::kCreateAq) {
      if (s->state() == SessionState::kClosed) {
        // Registration raced with disconnect: don't leak an ownerless AQ.
        drop_query(prefixed);
      } else {
        query_owner_[prefixed] = session_id;
        s->queries_.insert(prefixed);
        ++rt.aqs;
      }
    } else if (submission.kind == query::Statement::Kind::kDropAq) {
      query_owner_.erase(prefixed);
      s->queries_.erase(prefixed);
      if (rt.aqs > 0) --rt.aqs;
    }
  }

  if (s == nullptr || s->state() == SessionState::kClosed) return;
  Delivery d;
  d.at = system_->loop().now();
  d.statement_id = submission.statement_id;
  if (outcome.is_ok()) {
    d.kind = Delivery::Kind::kResult;
    d.message = std::move(outcome.value().message);
    d.rows = std::move(outcome.value().rows);
    d.shards_answered = outcome.value().shards_answered;
    d.shards_total = outcome.value().shards_total;
    if (d.shards_total >= 0 && d.shards_answered < d.shards_total) {
      ++ts.partial_results;
    }
    ++ts.completed;
  } else {
    d.kind = Delivery::Kind::kError;
    d.message = outcome.status().to_string();
    ++ts.errors;
  }
  AORTA_TRACE_INSTANT(tracer_, obs::SpanCat::kDelivery,
                      outcome.is_ok() ? "result" : "error", d.at,
                      "statement " + std::to_string(submission.statement_id));
  s->deliver(std::move(d));
}

std::string QueryService::stats_json() const {
  // One sorted walk of the metrics registry renders every section — the
  // service's own (sessions, admission, tenants) and everything the system
  // components enrolled (scan_broker, network, health, eval, sync) — with
  // JsonWriter handling escaping. Same-seed runs produce identical bytes.
  aorta::util::JsonWriter w(2);
  system_->metrics().write_json(w);
  std::string out = w.take();
  out += '\n';
  return out;
}

}  // namespace aorta::server
