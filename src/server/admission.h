// Admission control for the multi-tenant query service.
//
// Submissions wait in per-tenant FIFO queues under one global capacity
// bound. Overflow either rejects the new submission or sheds the oldest
// one from the most-backlogged tenant (so a flooding tenant sheds its own
// backlog before touching anyone else's). Dequeueing is weighted-fair
// stride scheduling across tenants: each dispatched statement advances the
// tenant's virtual pass by 1/weight, and the tenant with the smallest pass
// goes next — a 10x-hotter tenant gets its fair share, not the whole
// service.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "query/ast.h"
#include "server/session.h"
#include "util/bounded_queue.h"

namespace aorta::server {

// One statement waiting for dispatch.
struct Submission {
  SessionId session = 0;
  TenantId tenant;
  std::uint64_t statement_id = 0;
  std::string sql;
  query::Statement::Kind kind = query::Statement::Kind::kSelect;
  std::string aq_name;  // kCreateAq / kDropAq: unprefixed query name
  aorta::util::TimePoint enqueued_at;
  std::uint64_t seq = 0;  // global arrival order
};

struct AdmissionConfig {
  // Total submissions buffered across all tenants.
  std::size_t queue_capacity = 1024;
  aorta::util::OverflowPolicy policy = aorta::util::OverflowPolicy::kRejectNew;
  // Weighted-fair dequeue across tenants; false = global FIFO (the
  // baseline a fairness bench compares against).
  bool fair_dequeue = true;
  // Per-tenant quotas, enforced by the service.
  std::size_t max_aqs_per_tenant = 64;
  std::size_t max_inflight_selects_per_tenant = 32;
};

struct AdmissionStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;    // accepted into the queue
  std::uint64_t rejected = 0;    // refused (kRejectNew overflow)
  std::uint64_t shed = 0;        // dropped while queued (kShedOldest)
  std::uint64_t dispatched = 0;  // handed to the engine
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config)
      : config_(std::move(config)) {}

  const AdmissionConfig& config() const { return config_; }

  // Dequeue weight for a tenant (default 1.0; larger = bigger share).
  void set_tenant_weight(const TenantId& tenant, double weight);

  // Queue one submission. Returns false when rejected. Under kShedOldest a
  // full queue sheds the oldest submission of the most-backlogged tenant;
  // `on_shed` (optional) observes what was dropped.
  bool submit(Submission submission,
              const std::function<void(const Submission&)>& on_shed = {});

  // Pick the next submission to dispatch: the eligible-headed tenant with
  // the smallest virtual pass (FIFO within a tenant). `eligible` lets the
  // caller defer tenants at their in-flight quota; a tenant whose head is
  // deferred is skipped without losing its place. Returns nullopt when
  // nothing is eligible.
  std::optional<Submission> next(
      const std::function<bool(const Submission&)>& eligible = {});

  std::size_t queued() const { return queued_; }
  std::size_t queued_for(const TenantId& tenant) const;
  const AdmissionStats& stats() const { return stats_; }

 private:
  struct TenantQueue {
    std::deque<Submission> items;
    double weight = 1.0;
    double pass = 0.0;  // stride-scheduling virtual time
  };

  AdmissionConfig config_;
  std::map<TenantId, TenantQueue> tenants_;  // ordered: deterministic scans
  AdmissionStats stats_;
  std::size_t queued_ = 0;
  double global_pass_ = 0.0;  // pass of the last dispatched tenant
};

}  // namespace aorta::server
