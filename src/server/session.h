// Client sessions of the multi-tenant query service.
//
// A Session is one client connection belonging to a tenant: it submits
// declarative statements through the service's admission controller and
// receives everything the system produces for it — statement results,
// continuous-query rows, action outcomes, errors — through a bounded
// mailbox. The mailbox replaces the single-client "caller blocks on
// exec()" model: results are buffered with shed-oldest overflow and drop
// accounting, and the client drains them at its own pace.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "query/executor.h"
#include "util/bounded_queue.h"
#include "util/time.h"

namespace aorta::server {

using TenantId = std::string;
using SessionId = std::uint64_t;

// One item of a session's mailbox.
struct Delivery {
  enum class Kind {
    kResult,   // a submitted statement completed (message + SELECT rows)
    kError,    // a submitted statement failed
    kRow,      // a continuous query owned by this session produced a row
    kOutcome,  // an action of an owned query completed (usable or not)
  };
  Kind kind = Kind::kResult;
  aorta::util::TimePoint at;
  std::uint64_t statement_id = 0;  // kResult / kError: which submission
  std::string query;               // kRow / kOutcome: owning AQ name
  std::string message;             // result message / error / outcome detail
  std::vector<query::Row> rows;    // kResult: SELECT rows; kRow: one row
  // kRow: the row was evaluated over last-known-good values because its
  // source device is quarantined (the broker's degradation marker).
  bool degraded = false;
  // kResult of a sharded one-shot SELECT: how many shards contributed a
  // partial out of how many exist. answered < total marks a partial
  // result. -1/-1 everywhere else (core::ExecResult's markers, passed
  // through).
  int shards_answered = -1;
  int shards_total = -1;
};

enum class SessionState { kActive, kDraining, kClosed };

std::string_view session_state_name(SessionState state);

struct SessionStats {
  std::uint64_t submitted = 0;  // statements offered to the service
  std::uint64_t rejected = 0;   // refused at admission (queue full / quota)
  std::uint64_t completed = 0;  // kResult deliveries
  std::uint64_t errors = 0;     // kError deliveries
  std::uint64_t rows = 0;       // continuous rows delivered
  std::uint64_t outcomes = 0;   // action outcomes delivered
};

class Session {
 public:
  Session(SessionId id, TenantId tenant, std::size_t mailbox_capacity);

  SessionId id() const { return id_; }
  const TenantId& tenant() const { return tenant_; }
  SessionState state() const { return state_; }

  // Namespace prefix applied to this session's CREATE AQ / DROP AQ names,
  // so tenants cannot collide on (or drop) each other's queries.
  const std::string& name_prefix() const { return name_prefix_; }

  // ---- mailbox -------------------------------------------------------------
  // Buffer one delivery (bounded: the oldest item is shed when full).
  void deliver(Delivery delivery);

  // Take everything buffered, oldest first.
  std::vector<Delivery> drain();

  std::size_t mailbox_size() const { return mailbox_.size(); }
  std::uint64_t mailbox_dropped() const { return mailbox_.shed(); }

  // Observer invoked after each delivery is buffered (closed-loop workload
  // clients use it to pace their next submission).
  void set_notify(std::function<void(const Delivery&)> notify) {
    notify_ = std::move(notify);
  }

  const SessionStats& stats() const { return stats_; }

 private:
  friend class QueryService;

  SessionId id_;
  TenantId tenant_;
  std::string name_prefix_;
  SessionState state_ = SessionState::kActive;
  aorta::util::BoundedQueue<Delivery> mailbox_;
  std::function<void(const Delivery&)> notify_;
  SessionStats stats_;

  // Service-side bookkeeping.
  std::set<std::string> queries_;         // owned AQ names (prefixed)
  std::uint64_t inflight_selects_ = 0;    // dispatched, not yet completed
  std::uint64_t pending_aq_creates_ = 0;  // queued CREATE AQs not dispatched
  std::uint64_t next_statement_id_ = 1;
};

}  // namespace aorta::server
