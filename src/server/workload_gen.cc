#include "server/workload_gen.h"

namespace aorta::server {

using aorta::util::Duration;

WorkloadGen::WorkloadGen(QueryService* service, core::Aorta* system,
                         WorkloadConfig config)
    : service_(service), system_(system), config_(std::move(config)) {}

WorkloadGen::~WorkloadGen() { stop(); }

void WorkloadGen::start() {
  if (started_) return;
  started_ = true;
  *running_ = true;

  aorta::util::Rng master(config_.seed);
  for (int t = 0; t < config_.tenants; ++t) {
    TenantId tenant = "t" + std::to_string(t);
    double multiplier = 1.0;
    auto it = config_.rate_multipliers.find(tenant);
    if (it != config_.rate_multipliers.end()) multiplier = it->second;
    for (int c = 0; c < config_.sessions_per_tenant; ++c) {
      Client client{service_->connect(tenant), tenant, multiplier,
                    master.fork(), 0, 1};
      session_ids_.push_back(client.session);
      clients_.push_back(std::move(client));
    }
  }

  for (std::size_t i = 0; i < clients_.size(); ++i) {
    Client& client = clients_[i];
    if (config_.mode == WorkloadConfig::Mode::kClosedLoop) {
      // Resubmit when the previous statement resolves; rows/outcomes from
      // continuous queries do not re-trigger the loop.
      Session* s = service_->session(client.session);
      auto running = running_;
      s->set_notify([this, running, i](const Delivery& d) {
        if (!*running) return;
        if (d.kind != Delivery::Kind::kResult &&
            d.kind != Delivery::Kind::kError) {
          return;
        }
        Client& c = clients_[i];
        double divisor = c.rate_multiplier > 0.0 ? c.rate_multiplier : 1.0;
        schedule_next(i, config_.think * (1.0 / divisor));
      });
    }
    // Jittered start so 10k clients do not all submit on the same event.
    schedule_next(i, inter_arrival(client));
  }
}

void WorkloadGen::stop() {
  if (!started_) return;
  *running_ = false;
  for (const Client& client : clients_) {
    if (Session* s = service_->session(client.session)) s->set_notify({});
  }
}

Duration WorkloadGen::inter_arrival(Client& client) {
  double rate = config_.arrival_rate_hz * client.rate_multiplier;
  if (rate <= 0.0) rate = 1.0;
  return Duration::seconds(client.rng.exponential(1.0 / rate));
}

void WorkloadGen::schedule_next(std::size_t client_index, Duration delay) {
  auto running = running_;
  system_->loop().schedule(delay, [this, running, client_index]() {
    if (*running) submit_once(client_index);
  });
}

void WorkloadGen::submit_once(std::size_t client_index) {
  Client& client = clients_[client_index];

  std::string sql;
  bool is_aq = client.aqs_created < config_.max_aqs_per_session &&
               !config_.aq_templates.empty() &&
               client.rng.chance(config_.aq_fraction);
  if (is_aq) {
    const std::string& body =
        config_.aq_templates[client.rng.index(config_.aq_templates.size())];
    sql = "CREATE AQ w" + std::to_string(client.next_name++) + " AS " + body;
  } else {
    sql = config_.select_templates[client.rng.index(
        config_.select_templates.size())];
  }

  ++stats_.submitted;
  auto result = service_->submit(client.session, sql);
  if (result.is_ok()) {
    ++stats_.accepted;
    if (is_aq) ++client.aqs_created;
  } else {
    ++stats_.refused;
  }

  if (config_.mode == WorkloadConfig::Mode::kOpenLoop) {
    schedule_next(client_index, inter_arrival(client));
  } else if (!result.is_ok()) {
    // Closed loop with nothing in flight: back off one think time.
    schedule_next(client_index, config_.think);
  }
}

}  // namespace aorta::server
