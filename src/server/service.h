// QueryService: the multi-tenant front-end over core::Aorta.
//
// The seed's Aorta::exec() is a single synchronous entry point; this layer
// turns the engine into a *service* (the paper frames Aorta as a shared
// declarative service over the pervasive device network, Section 2.1):
//
//   connect()    -> a Session with its own AQ namespace and result mailbox
//   submit()     -> statements pass admission control (bounded queue,
//                   per-tenant quotas, weighted-fair dequeue)
//   dispatch     -> a fixed-cadence service tick drains the queue into
//                   Aorta::exec_async
//   delivery     -> results, continuous rows and action outcomes are routed
//                   to the owning session's mailbox
//
// Everything runs inside the discrete-event simulation: admission
// latencies are simulated time, and identical seeds + workloads produce
// byte-identical stats (see stats_json).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/aorta.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/admission.h"
#include "server/session.h"
#include "shard/plane.h"
#include "util/stats.h"

namespace aorta::server {

struct ServiceConfig {
  AdmissionConfig admission;
  std::size_t mailbox_capacity = 256;
  // Service tick: how often queued submissions are drained, and how many
  // per tick (together they bound dispatch throughput).
  aorta::util::Duration dispatch_interval = aorta::util::Duration::millis(100);
  std::size_t max_dispatch_per_tick = 64;
  // Dequeue weights (default 1.0). Set before tenants submit.
  std::map<TenantId, double> tenant_weights;
  // Sharded query plane: > 0 builds a shard::Plane (czar + that many
  // worker engines) on the system and routes every session statement
  // through it; devices must then be added via plane() instead of the host
  // Aorta. 0 = the classic direct single-engine path; 1 = the sharded
  // machinery with one worker (the ablation baseline).
  int num_shards = 0;
  // Worker heartbeat cadence / czar silence threshold (sharded mode only).
  aorta::util::Duration shard_heartbeat_interval =
      aorta::util::Duration::seconds(1.0);
  int shard_miss_threshold = 3;
};

// Per-tenant service counters.
struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;  // at submit (queue full / quota)
  std::uint64_t shed = 0;      // dropped while queued
  std::uint64_t dispatched = 0;
  std::uint64_t completed = 0;  // statements that returned a result
  std::uint64_t partial_results = 0;  // SELECTs answered by < all shards
  std::uint64_t errors = 0;
  std::uint64_t rows_delivered = 0;
  std::uint64_t rows_degraded = 0;  // rows carrying the degradation marker
  std::uint64_t outcomes_delivered = 0;
  obs::LatencyHistogram admission_latency_ms;  // enqueue -> dispatch
};

class QueryService {
 public:
  QueryService(core::Aorta* system, ServiceConfig config);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // ---- session lifecycle ---------------------------------------------------
  SessionId connect(const TenantId& tenant);
  // Begin draining: no new submissions; the session's AQs keep producing
  // into the mailbox until disconnect.
  aorta::util::Status drain_session(SessionId id);
  // Drop the session's continuous queries and close it. Its stats remain.
  aorta::util::Status disconnect(SessionId id);

  Session* session(SessionId id);
  const Session* session(SessionId id) const;
  std::size_t active_sessions() const;

  // ---- statement submission ------------------------------------------------
  // Submit one statement for asynchronous execution. On success returns
  // the statement id its kResult/kError delivery will carry. Fails fast on
  // unknown/closed sessions, parse errors, a full queue (kRejectNew), or
  // the per-tenant AQ quota.
  aorta::util::Result<std::uint64_t> submit(SessionId id,
                                            const std::string& sql);

  // ---- statistics ----------------------------------------------------------
  const AdmissionController& admission() const { return admission_; }
  const std::map<TenantId, TenantStats>& tenant_stats() const {
    return tenants_;
  }
  // Enqueue -> dispatch latency across all tenants.
  const aorta::util::Summary& admission_latency_ms() const {
    return admission_latency_ms_;
  }

  // Deterministic JSON rendering of every enrolled metric — the server's
  // own sections plus everything the system components registered — as a
  // sorted walk of the metrics registry: two same-seed runs compare equal.
  std::string stats_json() const;

  // The sharded query plane (nullptr when ServiceConfig::num_shards == 0).
  // World building in sharded mode goes through here.
  shard::Plane* plane() { return plane_.get(); }

 private:
  void on_tick();
  // Per-tenant counters, created (and enrolled on the registry under
  // "tenants.<tenant>.*") on first contact.
  TenantStats& tenant_entry(const TenantId& tenant);
  // Statement execution + AQ teardown, routed to the czar in sharded mode
  // and to the host engine otherwise.
  void exec_statement(
      const std::string& sql, core::ExecOptions options,
      std::function<void(aorta::util::Result<core::ExecResult>)> done);
  void drop_query(const std::string& prefixed_name);
  // Mailbox delivery of one action outcome (shared by the executor
  // trace-sink path and the czar outcome-sink path).
  void deliver_outcome(const std::string& query, aorta::util::TimePoint at,
                       const std::string& detail);
  void dispatch(Submission submission);
  void finish(SessionId session_id, const Submission& submission,
              aorta::util::Result<core::ExecResult> outcome);
  bool eligible(const Submission& submission) const;

  // Live (non-cumulative) per-tenant counters backing quota checks.
  struct TenantRuntime {
    std::uint64_t aqs = 0;               // currently registered AQs
    std::uint64_t pending_creates = 0;   // queued CREATE AQs
    std::uint64_t inflight_selects = 0;  // dispatched, not yet completed
  };

  core::Aorta* system_;
  ServiceConfig config_;
  // The system's observability substrate; the service enrolls its
  // sessions/admission/tenants sections here and removes them on
  // destruction (the service's lifetime is shorter than the system's).
  obs::MetricsRegistry* metrics_;
  obs::Tracer* tracer_;
  std::unique_ptr<shard::Plane> plane_;  // nullptr = direct path
  AdmissionController admission_;
  std::map<SessionId, std::unique_ptr<Session>> sessions_;
  std::map<std::string, SessionId> query_owner_;  // prefixed AQ name -> session
  std::map<TenantId, TenantStats> tenants_;
  std::map<TenantId, TenantRuntime> runtime_;
  aorta::util::Summary admission_latency_ms_;
  SessionId next_session_id_ = 1;
  std::uint64_t next_seq_ = 1;
  // Shared with callbacks queued on the event loop so a destroyed service
  // turns them into no-ops instead of dangling-`this` calls.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace aorta::server
