#include "server/session.h"

namespace aorta::server {

std::string_view session_state_name(SessionState state) {
  switch (state) {
    case SessionState::kActive: return "active";
    case SessionState::kDraining: return "draining";
    case SessionState::kClosed: return "closed";
  }
  return "?";
}

Session::Session(SessionId id, TenantId tenant, std::size_t mailbox_capacity)
    : id_(id),
      tenant_(std::move(tenant)),
      name_prefix_("s" + std::to_string(id) + "/"),
      mailbox_(mailbox_capacity, aorta::util::OverflowPolicy::kShedOldest) {}

void Session::deliver(Delivery delivery) {
  switch (delivery.kind) {
    case Delivery::Kind::kResult: ++stats_.completed; break;
    case Delivery::Kind::kError: ++stats_.errors; break;
    case Delivery::Kind::kRow: ++stats_.rows; break;
    case Delivery::Kind::kOutcome: ++stats_.outcomes; break;
  }
  mailbox_.push(delivery);  // kShedOldest: never fails, sheds + counts
  if (notify_) notify_(delivery);
}

std::vector<Delivery> Session::drain() {
  std::vector<Delivery> out;
  out.reserve(mailbox_.size());
  while (auto d = mailbox_.pop()) out.push_back(std::move(*d));
  return out;
}

}  // namespace aorta::server
