#include "query/parser.h"

#include "query/lexer.h"
#include "util/strings.h"

namespace aorta::query {

using aorta::util::Result;

namespace {

class Parser {
 public:
  Parser(std::string_view input, std::vector<Token> tokens)
      : input_(input), tokens_(std::move(tokens)) {}

  Result<Statement> parse_statement() {
    Statement stmt;
    if (peek().is_keyword("CREATE")) {
      advance();
      if (peek().is_keyword("ACTION")) {
        advance();
        auto s = parse_create_action();
        if (!s.is_ok()) return Result<Statement>(s.status());
        stmt.kind = Statement::Kind::kCreateAction;
        stmt.create_action = std::move(s).value();
      } else if (peek().is_keyword("AQ")) {
        advance();
        auto s = parse_create_aq();
        if (!s.is_ok()) return Result<Statement>(s.status());
        stmt.kind = Statement::Kind::kCreateAq;
        stmt.create_aq = std::move(s).value();
      } else {
        return error<Statement>("expected ACTION or AQ after CREATE");
      }
    } else if (peek().is_keyword("SELECT")) {
      auto s = parse_select();
      if (!s.is_ok()) return Result<Statement>(s.status());
      stmt.kind = Statement::Kind::kSelect;
      stmt.select = std::move(s).value();
    } else if (peek().is_keyword("EXPLAIN")) {
      advance();
      if (peek().is_keyword("SELECT")) {
        auto select = parse_select();
        if (!select.is_ok()) return Result<Statement>(select.status());
        stmt.select = std::move(select).value();
      } else if (peek().is_keyword("CREATE")) {
        advance();
        if (!peek().is_keyword("AQ")) {
          return error<Statement>("EXPLAIN supports SELECT and CREATE AQ");
        }
        advance();
        auto aq = parse_create_aq();
        if (!aq.is_ok()) return Result<Statement>(aq.status());
        stmt.select = std::move(aq.value().select);
      } else {
        return error<Statement>("EXPLAIN supports SELECT and CREATE AQ");
      }
      stmt.kind = Statement::Kind::kExplain;
    } else if (peek().is_keyword("SHOW")) {
      advance();
      if (peek().is_keyword("QUERIES")) {
        stmt.show.target = ShowStmt::Target::kQueries;
      } else if (peek().is_keyword("ACTIONS")) {
        stmt.show.target = ShowStmt::Target::kActions;
      } else if (peek().is_keyword("DEVICES")) {
        stmt.show.target = ShowStmt::Target::kDevices;
      } else {
        return error<Statement>("expected QUERIES, ACTIONS or DEVICES after SHOW");
      }
      advance();
      stmt.kind = Statement::Kind::kShow;
    } else if (peek().is_keyword("DROP")) {
      advance();
      if (!peek().is_keyword("AQ")) return error<Statement>("expected AQ after DROP");
      advance();
      auto name = expect_identifier("query name");
      if (!name.is_ok()) return Result<Statement>(name.status());
      stmt.kind = Statement::Kind::kDropAq;
      stmt.drop_aq.name = std::move(name).value();
    } else {
      return error<Statement>("expected CREATE, SELECT, SHOW or DROP");
    }

    if (peek().is_symbol(";")) advance();
    if (peek().type != TokenType::kEnd) {
      return error<Statement>("unexpected trailing input '" + peek().text + "'");
    }
    return stmt;
  }

  Result<ExprPtr> parse_bare_expression() {
    auto e = parse_expr();
    if (!e.is_ok()) return e;
    if (peek().type != TokenType::kEnd) {
      return error<ExprPtr>("unexpected trailing input '" + peek().text + "'");
    }
    return e;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  const Token& advance() { return tokens_[pos_++]; }

  template <typename T>
  Result<T> error(std::string message) const {
    return Result<T>(aorta::util::parse_error(message + location()));
  }

  // Where in the statement the parse failed, quoting the offending
  // fragment: " (at offset 9 near 'FORM sensor s')".
  std::string location() const {
    std::size_t offset = std::min<std::size_t>(peek().offset, input_.size());
    std::string out = " (at offset " + std::to_string(offset);
    constexpr std::size_t kFragmentLen = 24;
    std::string_view fragment = input_.substr(offset);
    if (!fragment.empty()) {
      out += " near '";
      out += fragment.substr(0, kFragmentLen);
      out += fragment.size() > kFragmentLen ? "...'" : "'";
    }
    out += ")";
    return out;
  }

  Result<std::string> expect_identifier(std::string_view what) {
    if (peek().type != TokenType::kIdentifier) {
      return error<std::string>("expected " + std::string(what));
    }
    return advance().text;
  }

  aorta::util::Status expect_symbol(std::string_view symbol) {
    if (!peek().is_symbol(symbol)) {
      return aorta::util::parse_error("expected '" + std::string(symbol) +
                                      "', got '" + peek().text + "'" +
                                      location());
    }
    advance();
    return aorta::util::Status::ok();
  }

  // CREATE ACTION name(Type p, ...) AS "lib" PROFILE "profile"
  Result<CreateActionStmt> parse_create_action() {
    CreateActionStmt stmt;
    auto name = expect_identifier("action name");
    if (!name.is_ok()) return Result<CreateActionStmt>(name.status());
    stmt.name = std::move(name).value();

    if (auto s = expect_symbol("("); !s.is_ok()) {
      return Result<CreateActionStmt>(s);
    }
    if (!peek().is_symbol(")")) {
      while (true) {
        CreateActionStmt::Param param;
        auto type = expect_identifier("parameter type");
        if (!type.is_ok()) return Result<CreateActionStmt>(type.status());
        param.type_name = std::move(type).value();
        auto pname = expect_identifier("parameter name");
        if (!pname.is_ok()) return Result<CreateActionStmt>(pname.status());
        param.name = std::move(pname).value();
        stmt.params.push_back(std::move(param));
        if (peek().is_symbol(",")) {
          advance();
          continue;
        }
        break;
      }
    }
    if (auto s = expect_symbol(")"); !s.is_ok()) {
      return Result<CreateActionStmt>(s);
    }

    if (!peek().is_keyword("AS")) return error<CreateActionStmt>("expected AS");
    advance();
    if (peek().type != TokenType::kString) {
      return error<CreateActionStmt>("expected library path string after AS");
    }
    stmt.library_path = advance().text;

    if (!peek().is_keyword("PROFILE")) {
      return error<CreateActionStmt>("expected PROFILE");
    }
    advance();
    if (peek().type != TokenType::kString) {
      return error<CreateActionStmt>("expected profile path string after PROFILE");
    }
    stmt.profile_path = advance().text;
    return stmt;
  }

  // CREATE AQ name [EVERY <number>] AS SELECT ...
  Result<CreateAqStmt> parse_create_aq() {
    CreateAqStmt stmt;
    auto name = expect_identifier("query name");
    if (!name.is_ok()) return Result<CreateAqStmt>(name.status());
    stmt.name = std::move(name).value();

    if (peek().is_keyword("EVERY")) {
      advance();
      if (peek().type != TokenType::kNumber) {
        return error<CreateAqStmt>("expected epoch seconds after EVERY");
      }
      stmt.epoch_s = advance().number;
      if (stmt.epoch_s <= 0.0) {
        return error<CreateAqStmt>("EVERY epoch must be positive");
      }
    }

    if (!peek().is_keyword("AS")) return error<CreateAqStmt>("expected AS");
    advance();
    auto select = parse_select();
    if (!select.is_ok()) return Result<CreateAqStmt>(select.status());
    stmt.select = std::move(select).value();
    return stmt;
  }

  // SELECT exprs FROM table alias, ... [WHERE expr]
  Result<SelectStmt> parse_select() {
    SelectStmt stmt;
    if (!peek().is_keyword("SELECT")) return error<SelectStmt>("expected SELECT");
    advance();

    while (true) {
      if (peek().is_symbol("*")) {
        advance();
        stmt.select_list.push_back(Expr::make_column("", "*"));
      } else {
        auto e = parse_expr();
        if (!e.is_ok()) return Result<SelectStmt>(e.status());
        stmt.select_list.push_back(std::move(e).value());
      }
      if (peek().is_symbol(",")) {
        advance();
        continue;
      }
      break;
    }

    if (!peek().is_keyword("FROM")) return error<SelectStmt>("expected FROM");
    advance();
    while (true) {
      TableRef ref;
      auto table = expect_identifier("table name");
      if (!table.is_ok()) return Result<SelectStmt>(table.status());
      ref.table = std::move(table).value();
      if (peek().type == TokenType::kIdentifier) {
        ref.alias = advance().text;
      } else {
        ref.alias = ref.table;
      }
      stmt.from.push_back(std::move(ref));
      if (peek().is_symbol(",")) {
        advance();
        continue;
      }
      break;
    }

    if (peek().is_keyword("WHERE")) {
      advance();
      auto e = parse_expr();
      if (!e.is_ok()) return Result<SelectStmt>(e.status());
      stmt.where = std::move(e).value();
    }

    if (peek().is_keyword("GROUP")) {
      advance();
      if (!peek().is_keyword("BY")) return error<SelectStmt>("expected BY after GROUP");
      advance();
      while (true) {
        auto e = parse_expr();
        if (!e.is_ok()) return Result<SelectStmt>(e.status());
        stmt.group_by.push_back(std::move(e).value());
        if (peek().is_symbol(",")) {
          advance();
          continue;
        }
        break;
      }
    }

    if (peek().is_keyword("WINDOW")) {
      advance();
      auto w = parse_seconds("window length after WINDOW");
      if (!w.is_ok()) return Result<SelectStmt>(w.status());
      stmt.window_s = std::move(w).value();
      if (peek().is_keyword("EVERY")) {
        advance();
        auto e = parse_seconds("slide length after EVERY");
        if (!e.is_ok()) return Result<SelectStmt>(e.status());
        stmt.every_s = std::move(e).value();
      } else {
        stmt.every_s = stmt.window_s;  // tumbling by default
      }
    }
    return stmt;
  }

  // A positive duration in seconds, with an optional `s` unit suffix:
  // `30` and `30s` both parse to 30.0 (the lexer splits `30s` into a
  // number token followed by the identifier `s`).
  Result<double> parse_seconds(std::string_view what) {
    if (peek().type != TokenType::kNumber) {
      return error<double>("expected " + std::string(what));
    }
    double v = advance().number;
    if (peek().type == TokenType::kIdentifier && peek().text == "s") advance();
    if (v <= 0.0) {
      return error<double>(std::string(what) + " must be positive");
    }
    return v;
  }

  // ---- expression grammar (precedence climbing) -------------------------
  Result<ExprPtr> parse_expr() { return parse_or(); }

  Result<ExprPtr> parse_or() {
    auto lhs = parse_and();
    if (!lhs.is_ok()) return lhs;
    ExprPtr e = std::move(lhs).value();
    while (peek().is_keyword("OR")) {
      advance();
      auto rhs = parse_and();
      if (!rhs.is_ok()) return rhs;
      e = Expr::make_binary(BinaryOp::kOr, std::move(e), std::move(rhs).value());
    }
    return e;
  }

  Result<ExprPtr> parse_and() {
    auto lhs = parse_not();
    if (!lhs.is_ok()) return lhs;
    ExprPtr e = std::move(lhs).value();
    while (peek().is_keyword("AND")) {
      advance();
      auto rhs = parse_not();
      if (!rhs.is_ok()) return rhs;
      e = Expr::make_binary(BinaryOp::kAnd, std::move(e), std::move(rhs).value());
    }
    return e;
  }

  Result<ExprPtr> parse_not() {
    if (peek().is_keyword("NOT")) {
      advance();
      auto operand = parse_not();
      if (!operand.is_ok()) return operand;
      return Expr::make_not(std::move(operand).value());
    }
    return parse_comparison();
  }

  Result<ExprPtr> parse_comparison() {
    auto lhs = parse_additive();
    if (!lhs.is_ok()) return lhs;
    ExprPtr e = std::move(lhs).value();

    BinaryOp op;
    if (peek().is_symbol("=")) op = BinaryOp::kEq;
    else if (peek().is_symbol("<>")) op = BinaryOp::kNe;
    else if (peek().is_symbol("<")) op = BinaryOp::kLt;
    else if (peek().is_symbol("<=")) op = BinaryOp::kLe;
    else if (peek().is_symbol(">")) op = BinaryOp::kGt;
    else if (peek().is_symbol(">=")) op = BinaryOp::kGe;
    else return e;
    advance();

    auto rhs = parse_additive();
    if (!rhs.is_ok()) return rhs;
    return Expr::make_binary(op, std::move(e), std::move(rhs).value());
  }

  Result<ExprPtr> parse_additive() {
    auto lhs = parse_multiplicative();
    if (!lhs.is_ok()) return lhs;
    ExprPtr e = std::move(lhs).value();
    while (peek().is_symbol("+") || peek().is_symbol("-")) {
      BinaryOp op = peek().is_symbol("+") ? BinaryOp::kAdd : BinaryOp::kSub;
      advance();
      auto rhs = parse_multiplicative();
      if (!rhs.is_ok()) return rhs;
      e = Expr::make_binary(op, std::move(e), std::move(rhs).value());
    }
    return e;
  }

  Result<ExprPtr> parse_multiplicative() {
    auto lhs = parse_primary();
    if (!lhs.is_ok()) return lhs;
    ExprPtr e = std::move(lhs).value();
    while (peek().is_symbol("*") || peek().is_symbol("/")) {
      BinaryOp op = peek().is_symbol("*") ? BinaryOp::kMul : BinaryOp::kDiv;
      advance();
      auto rhs = parse_primary();
      if (!rhs.is_ok()) return rhs;
      e = Expr::make_binary(op, std::move(e), std::move(rhs).value());
    }
    return e;
  }

  Result<ExprPtr> parse_primary() {
    const Token& t = peek();
    if (t.is_symbol("(")) {
      advance();
      auto e = parse_expr();
      if (!e.is_ok()) return e;
      auto close = expect_symbol(")");
      if (!close.is_ok()) return Result<ExprPtr>(close);
      return e;
    }
    if (t.is_symbol("-")) {  // unary minus: 0 - x
      advance();
      auto operand = parse_primary();
      if (!operand.is_ok()) return operand;
      return Expr::make_binary(BinaryOp::kSub,
                               Expr::make_literal(device::Value{0.0}),
                               std::move(operand).value());
    }
    if (t.type == TokenType::kNumber) {
      advance();
      // Integer-looking literals stay integers for exact comparisons.
      if (t.text.find('.') == std::string::npos &&
          t.text.find('e') == std::string::npos &&
          t.text.find('E') == std::string::npos) {
        return Expr::make_literal(
            device::Value{static_cast<std::int64_t>(t.number)});
      }
      return Expr::make_literal(device::Value{t.number});
    }
    if (t.type == TokenType::kString) {
      advance();
      return Expr::make_literal(device::Value{t.text});
    }
    if (t.is_keyword("TRUE")) {
      advance();
      return Expr::make_literal(device::Value{true});
    }
    if (t.is_keyword("FALSE")) {
      advance();
      return Expr::make_literal(device::Value{false});
    }
    if (t.is_keyword("NULL")) {
      advance();
      return Expr::make_literal(device::Value{});
    }
    if (t.type == TokenType::kIdentifier) {
      std::string first = advance().text;
      if (peek().is_symbol("(")) {  // function / action call
        advance();
        std::vector<ExprPtr> args;
        if (!peek().is_symbol(")")) {
          while (true) {
            if (peek().is_symbol("*")) {  // count(*)
              advance();
              args.push_back(Expr::make_column("", "*"));
              break;
            }
            auto arg = parse_expr();
            if (!arg.is_ok()) return arg;
            args.push_back(std::move(arg).value());
            if (peek().is_symbol(",")) {
              advance();
              continue;
            }
            break;
          }
        }
        auto close = expect_symbol(")");
        if (!close.is_ok()) return Result<ExprPtr>(close);
        return Expr::make_func(std::move(first), std::move(args));
      }
      if (peek().is_symbol(".")) {  // qualified column
        advance();
        auto column = expect_identifier("column name");
        if (!column.is_ok()) return Result<ExprPtr>(column.status());
        return Expr::make_column(std::move(first), std::move(column).value());
      }
      return Expr::make_column("", std::move(first));
    }
    return error<ExprPtr>("unexpected token '" + t.text + "'");
  }

  std::string_view input_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Statement> parse(std::string_view input) {
  auto tokens = lex(input);
  if (!tokens.is_ok()) return Result<Statement>(tokens.status());
  Parser parser(input, std::move(tokens).value());
  return parser.parse_statement();
}

Result<ExprPtr> parse_expression(std::string_view input) {
  auto tokens = lex(input);
  if (!tokens.is_ok()) return Result<ExprPtr>(tokens.status());
  Parser parser(input, std::move(tokens).value());
  return parser.parse_bare_expression();
}

}  // namespace aorta::query
