// Compiled expression evaluation: flat postfix programs over a slot-
// resolved binding frame.
//
// The tree-walking evaluator in expr_eval.h resolves every column
// reference per row by string: an alias lookup in the Env plus a
// Schema::index_of probe. With thousands of co-located AQs evaluating
// every epoch (src/server + comm::ScanBroker), that re-interpretation
// dominates per-epoch CPU. An EvalProgram is produced once — at AQ
// registration or SELECT compile — by lowering the Expr tree into postfix
// instructions whose column refs are pre-resolved to (binding index,
// field slot) pairs against the statement's FROM-clause schemas, with
// constant subtrees folded, AND/OR lowered to short-circuit jumps, and
// scalar-function pointers pre-bound. Per row, evaluation is array
// indexing over a small value stack and a flat Tuple-pointer frame.
//
// Semantics contract: a program returns exactly what expr_eval's eval()
// returns for the same expression over equivalently-bound tuples —
// including three-valued NULL behaviour, short-circuiting past erroring
// operands, and error statuses (byte-identical messages). The tree walker
// stays as the reference implementation and differential-testing oracle
// (tests/eval_program_test.cc); expressions that do not compile (unknown
// function or column, SELECT *) simply keep using it.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "query/expr_eval.h"

namespace aorta::query {

// The per-row evaluation context: one tuple pointer per FROM-clause alias,
// in the statement's binding order (CompiledQuery::binding_aliases).
// Replaces the Env's alias->tuple map on hot paths. Slots may be null for
// aliases the program does not touch (e.g. the candidate slot while event
// predicates run).
struct BindingFrame {
  static constexpr std::size_t kMaxBindings = 4;

  std::array<const comm::Tuple*, kMaxBindings> tuples{};
  std::size_t size = 0;

  void set(std::size_t i, const comm::Tuple* tuple) { tuples[i] = tuple; }
  const comm::Tuple* operator[](std::size_t i) const { return tuples[i]; }
};

// A single indexable comparison recovered from a compiled predicate
// program: `column <op> constant`, normalized so the column is on the
// left (a constant-on-the-left compare reports the mirrored operator).
// Produced by EvalProgram::index_hint() for the predicate-index compile
// pass (compile.cc / predicate_index.h): only whole-program shapes are
// reported, so a hint is exactly equivalent to the predicate it came
// from. kNe never yields a hint (it excludes almost nothing), and only
// numeric constants (bool/int/double) and string equality qualify.
struct IndexHint {
  std::uint32_t binding = 0;  // frame slot of the column's alias
  std::uint32_t slot = 0;     // field slot in that alias's schema
  BinaryOp op = BinaryOp::kEq;  // kEq / kLt / kLe / kGt / kGe
  bool is_string = false;
  double num = 0.0;  // constant, pre-coerced (valid when !is_string)
  std::string str;   // constant (valid when is_string)
};

class EvalProgram {
 public:
  // One postfix instruction. Operands index the program's pools; `a` is
  // also the jump target for the short-circuit opcodes.
  enum class OpCode : std::uint8_t {
    kPushConst,   // push consts[a]
    kLoadQual,    // push frame[a]->at(b); unbound alias names[c] is an error
    kLoadUnqual,  // like kLoadQual, but an unbound slot reports "unknown
                  // column: names[c]" (the unqualified-resolution error)
    kLoadMissing, // qualified ref to a column absent from the schema:
                  // error if frame[a] is unbound, NULL otherwise
    kLoadUnbound, // qualified ref to an alias outside the binding layout:
                  // always "unbound table alias: names[c]", like the
                  // tree walker's per-row resolution failure
    kCall,        // pop b args, push fns[a](args) (pre-bound ScalarFn)
    kCompare,     // pop two, push compare_values(BinaryOp{a}, ...)
    kArith,       // pop two, push arithmetic_values(BinaryOp{a}, ...)
    kNot,         // top = !truthy(top)
    kAndJump,     // if !truthy(top): top = false, jump a; else pop
    kOrJump,      // if truthy(top): top = true, jump a; else pop
    kBoolCast,    // top = truthy(top)  (AND/OR produce booleans)
    kCmpQualConst,  // fused [kLoadQual][kPushConst][kCompare] over a
                    // numeric constant: a = field slot, b = const index
                    // (num_consts_[b] pre-coerced), c packs
                    // (name << 6) | (binding << 4) | compare op
  };

  struct Instr {
    OpCode op;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t c = 0;
  };

  // Lower `expr` against the statement's binding layout. `binding_aliases`
  // fixes the frame slot of each alias; `schemas` (alias -> schema)
  // resolves columns; `functions` pre-binds scalar-function pointers,
  // which must outlive the program. Fails (caller falls back to the tree
  // walker) on: unknown/ambiguous unqualified columns, aliases outside
  // the binding layout, unknown functions, or more than kMaxBindings
  // aliases.
  static aorta::util::Result<EvalProgram> compile(
      const Expr& expr, const std::vector<std::string>& binding_aliases,
      const std::map<std::string, const comm::Schema*>& schemas,
      const FunctionRegistry& functions);

  // Evaluate over one frame. Mirrors eval() from expr_eval.h exactly.
  aorta::util::Result<device::Value> run(const BindingFrame& frame) const;

  // Predicate form: errors and non-truthy values are false, like
  // eval_predicate().
  bool run_predicate(const BindingFrame& frame) const;

  std::size_t instruction_count() const { return code_.size(); }
  std::size_t folded_nodes() const { return folded_nodes_; }
  std::size_t max_stack_depth() const { return max_stack_; }

  // One instruction per line, for EXPLAIN-style debugging and tests.
  std::string disassemble() const;

  // The indexable-comparison shape of this program, if the WHOLE program
  // is one `column <op> constant` compare (fused kCmpQualConst, or the
  // unfused load/const/compare triple in either operand order). Nullopt
  // for anything else — such predicates stay on the index's residual
  // list. The peephole pass already proved the fused constants numeric,
  // which is what makes the hint's candidate set prune-safe: a
  // non-coercible column value makes the comparison false (error or NULL
  // semantics) under compare_values, exactly matching an index miss.
  std::optional<IndexHint> index_hint() const;

 private:
  // Shared VM loop. In predicate mode it returns the verdict directly and
  // swallows errors as false without materializing a Status or Result —
  // that fixed per-row cost is most of what separates a ~100ns and a
  // ~30ns evaluation at executor scale.
  template <bool kPredicateMode>
  auto exec(const BindingFrame& frame) const;

  // Peephole pass: rewrite [kLoadQual][kPushConst(numeric)][kCompare]
  // triples into kCmpQualConst and remap short-circuit jump targets.
  void fuse_compare_triples();

  std::vector<Instr> code_;
  std::vector<device::Value> consts_;
  std::vector<double> num_consts_;  // consts_ coerced; valid where fused
  std::vector<const ScalarFn*> fns_;
  std::vector<std::string> names_;  // column/alias names for error messages
  std::size_t max_stack_ = 1;
  std::size_t folded_nodes_ = 0;

  friend class ProgramBuilder;
};

}  // namespace aorta::query
