#include "query/agg_cache.h"

#include <algorithm>
#include <cmath>

#include "query/executor.h"
#include "query/expr_eval.h"
#include "util/strings.h"

namespace aorta::query {

using aorta::util::Result;
using aorta::util::Status;
using device::Value;

namespace {

// The canonical binding alias every normalized expression is rewritten
// to: "avg(s.temp)" and "avg(x.temp)" must hash identically.
constexpr const char* kAlias = "e";

// Clone `expr` with every column qualifier rewritten to the canonical
// alias (single-table queries: any qualifier names the event table).
ExprPtr normalize(const Expr& expr) {
  ExprPtr out = expr.clone();
  std::function<void(Expr&)> walk = [&](Expr& e) {
    if (e.kind == Expr::Kind::kColumnRef) e.qualifier = kAlias;
    for (auto& arg : e.args) walk(*arg);
    if (e.lhs != nullptr) walk(*e.lhs);
    if (e.rhs != nullptr) walk(*e.rhs);
  };
  walk(*out);
  return out;
}

std::optional<std::string> agg_name(const Expr& expr) {
  if (expr.kind != Expr::Kind::kFuncCall) return std::nullopt;
  std::string fn = aorta::util::to_lower(expr.func_name);
  if (fn == "count" || fn == "sum" || fn == "avg" || fn == "min" ||
      fn == "max") {
    return fn;
  }
  return std::nullopt;
}

// Deterministic, injective encoding of a group-key value vector. Doubles
// render with %.17g so distinct values never collide.
void encode_value(const Value& v, std::string* out) {
  struct Enc {
    std::string* out;
    void operator()(std::monostate) { *out += 'n'; }
    void operator()(bool b) { *out += b ? "b1" : "b0"; }
    void operator()(std::int64_t i) {
      *out += 'i';
      *out += std::to_string(i);
    }
    void operator()(double d) {
      *out += 'd';
      *out += aorta::util::str_format("%.17g", d);
    }
    void operator()(const std::string& s) {
      *out += 's';
      *out += std::to_string(s.size());
      *out += ':';
      *out += s;
    }
    void operator()(const device::Location& l) {
      *out += 'l';
      *out += aorta::util::str_format("%.17g,%.17g,%.17g", l.x, l.y, l.z);
    }
  };
  std::visit(Enc{out}, v);
  *out += ';';
}

}  // namespace

AggregateCache::AggregateCache(comm::ScanBroker* broker,
                               aorta::util::EventLoop* loop,
                               const Catalog* catalog, Options options)
    : broker_(broker), loop_(loop), catalog_(catalog), options_(options) {}

AggregateCache::~AggregateCache() {
  for (auto& [id, entry] : entries_) broker_->unsubscribe(entry->subscription);
}

bool AggregateCache::has_aggregates(const CompiledQuery& compiled) {
  for (const auto& proj : compiled.projections) {
    if (agg_name(*proj).has_value()) return true;
  }
  return false;
}

Status AggregateCache::build_spec(const CompiledQuery& compiled,
                                  double sample_period_s, Spec* spec) const {
  if (compiled.tables.size() != 1) {
    return aorta::util::invalid_argument_error(
        "continuous aggregates support a single table");
  }
  if (!compiled.actions.empty()) {
    return aorta::util::invalid_argument_error(
        "continuous aggregates cannot embed actions");
  }
  const comm::Schema& schema = compiled.schemas.at(compiled.event_alias);

  // GROUP BY: plain event-table columns only.
  for (const auto& g : compiled.group_by) {
    if (g->kind != Expr::Kind::kColumnRef || g->column == "*") {
      return aorta::util::invalid_argument_error(
          "GROUP BY supports plain columns, got: " + g->to_string());
    }
    if (schema.field(g->column) == nullptr) {
      return aorta::util::not_found_error("unknown GROUP BY column: " +
                                          g->to_string());
    }
    spec->group_cols.push_back(g->column);
  }

  // Window shape in samples (one sample = one AQ epoch batch). Absent
  // clauses default to a per-epoch window: every sample is its own pane
  // and its own window, which is what plain continuous avg() means.
  auto to_samples = [&](double seconds, const char* what,
                        std::uint64_t* out) -> Status {
    if (seconds <= 0.0) {
      *out = 1;
      return Status::ok();
    }
    double ratio = seconds / sample_period_s;
    std::uint64_t samples =
        static_cast<std::uint64_t>(std::llround(ratio));
    if (samples == 0 || std::abs(ratio - static_cast<double>(samples)) > 1e-9) {
      return aorta::util::invalid_argument_error(
          std::string(what) + " must be a positive multiple of the AQ epoch (" +
          aorta::util::str_format("%g", sample_period_s) + "s)");
    }
    *out = samples;
    return Status::ok();
  };
  if (Status s = to_samples(compiled.every_s, "EVERY", &spec->slide);
      !s.is_ok()) {
    return s;
  }
  if (Status s = to_samples(compiled.window_s, "WINDOW", &spec->window);
      !s.is_ok()) {
    return s;
  }
  if (spec->window % spec->slide != 0) {
    return aorta::util::invalid_argument_error(
        "WINDOW must be a multiple of EVERY");
  }

  // Select list: aggregate calls + group-key columns, nothing else.
  for (const auto& proj : compiled.projections) {
    auto fn = agg_name(*proj);
    if (fn.has_value()) {
      if (proj->args.size() > 1) {
        return aorta::util::invalid_argument_error(
            "aggregate takes at most one argument: " + proj->to_string());
      }
      const Expr* arg = proj->args.empty() ? nullptr : proj->args[0].get();
      if (arg != nullptr && arg->kind == Expr::Kind::kColumnRef &&
          arg->column == "*") {
        arg = nullptr;  // COUNT(*)
      }
      if (*fn != "count" && arg == nullptr) {
        return aorta::util::invalid_argument_error(
            "aggregate needs a column argument: " + proj->to_string());
      }
      ExprPtr norm = arg == nullptr ? nullptr : normalize(*arg);
      std::string key = norm == nullptr ? "*" : norm->to_string();
      std::size_t idx = 0;
      for (; idx < spec->arg_keys.size(); ++idx) {
        if (spec->arg_keys[idx] == key) break;
      }
      if (idx == spec->arg_keys.size()) {
        spec->arg_keys.push_back(key);
        spec->arg_exprs.push_back(std::move(norm));
      }
      SubItem item;
      item.is_group = false;
      item.index = idx;
      if (*fn == "count") item.op = AggOp::kCount;
      else if (*fn == "sum") item.op = AggOp::kSum;
      else if (*fn == "avg") item.op = AggOp::kAvg;
      else if (*fn == "min") item.op = AggOp::kMin;
      else item.op = AggOp::kMax;
      item.label = proj->to_string();
      spec->items.push_back(std::move(item));
      continue;
    }
    if (proj->kind == Expr::Kind::kColumnRef && proj->column != "*") {
      auto it = std::find(spec->group_cols.begin(), spec->group_cols.end(),
                          proj->column);
      if (it != spec->group_cols.end()) {
        SubItem item;
        item.is_group = true;
        item.index = static_cast<std::size_t>(it - spec->group_cols.begin());
        item.label = proj->to_string();
        spec->items.push_back(std::move(item));
        continue;
      }
    }
    return aorta::util::invalid_argument_error(
        "projection must be an aggregate or a GROUP BY column: " +
        proj->to_string());
  }

  // Normalized predicate texts, sorted (conjunct order must not change
  // the hash).
  for (const auto& p : compiled.event_predicates) {
    ExprPtr norm = normalize(*p);
    spec->pred_keys.push_back(norm->to_string());
    spec->preds.push_back(std::move(norm));
  }
  std::sort(spec->pred_keys.begin(), spec->pred_keys.end());

  auto na = compiled.needed_attrs.find(compiled.event_alias);
  if (na != compiled.needed_attrs.end()) spec->needed = na->second;
  return Status::ok();
}

Status AggregateCache::attach(const std::string& name,
                              std::uint64_t generation,
                              const CompiledQuery& compiled,
                              std::uint64_t epoch_ticks,
                              double sample_period_s, EmitFn emit) {
  Spec spec;
  if (Status s = build_spec(compiled, sample_period_s, &spec);
      !s.is_ok()) {
    return s;
  }

  // The canonical query hash: everything that determines the entry's
  // evaluation — event type, sample cadence and phase, window shape,
  // normalized predicates and aggregate arguments — but NOT the GROUP BY
  // columns (distinct groupings share an entry) and NOT the aggregate ops
  // (every op folds from the same pane partials). The phase mirrors the
  // subscription a private registration would have created, so sharing
  // never shifts emission ticks.
  const device::DeviceTypeId type = compiled.event_type();
  const std::uint64_t phase = broker_->tick_count() % epoch_ticks;
  std::string key = type;
  key += '\x1f';
  key += std::to_string(epoch_ticks) + "|" + std::to_string(phase) + "|" +
         std::to_string(spec.window) + "|" + std::to_string(spec.slide) + "|";
  for (const auto& p : spec.pred_keys) key += p + "&";
  key += "|";
  {
    std::vector<std::string> sorted_args = spec.arg_keys;
    std::sort(sorted_args.begin(), sorted_args.end());
    for (const auto& a : sorted_args) key += a + ",";
  }
  if (!options_.shared) {
    // Ablation: a per-AQ key runs the same machinery without sharing.
    key += "|gen" + std::to_string(generation);
  }

  // Find a compatible entry: same hash AND the grouping's columns are a
  // subset of the attributes the entry's subscription acquires (the
  // subsumption rule — an entry cannot group by what it never reads).
  Entry* entry = nullptr;
  bool fresh = false;
  for (std::uint64_t id : by_hash_[key]) {
    Entry* candidate = entries_.at(id).get();
    bool ok = true;
    for (const auto& col : spec.group_cols) {
      if (candidate->needed.count(col) == 0) {
        ok = false;
        break;
      }
    }
    if (ok) {
      entry = candidate;
      break;
    }
  }
  if (entry == nullptr) {
    fresh = true;
    auto owned = std::make_unique<Entry>();
    owned->id = next_entry_id_++;
    owned->hash_key = key;
    owned->type = type;
    owned->period = epoch_ticks;
    owned->phase = phase;
    owned->window = spec.window;
    owned->slide = spec.slide;
    owned->window_panes = spec.window / spec.slide;
    owned->needed = spec.needed;
    owned->schema = compiled.schemas.at(compiled.event_alias);
    const std::vector<std::string> aliases{kAlias};
    const std::map<std::string, const comm::Schema*> schemas{
        {kAlias, &owned->schema}};
    for (auto& p : spec.preds) {
      auto prog = EvalProgram::compile(*p, aliases, schemas,
                                       catalog_->functions());
      owned->pred_programs.push_back(
          prog.is_ok() ? std::optional<EvalProgram>(std::move(prog).value())
                       : std::nullopt);
      owned->preds.push_back(std::move(p));
    }
    for (std::size_t i = 0; i < spec.arg_keys.size(); ++i) {
      ArgCol arg;
      arg.key = spec.arg_keys[i];
      arg.expr = std::move(spec.arg_exprs[i]);
      if (arg.expr != nullptr) {
        auto prog = EvalProgram::compile(*arg.expr, aliases, schemas,
                                         catalog_->functions());
        if (prog.is_ok()) arg.program = std::move(prog).value();
      }
      owned->args.push_back(std::move(arg));
    }
    std::uint64_t id = owned->id;
    owned->subscription = broker_->subscribe(
        type, std::set<std::string>(spec.needed), epoch_ticks,
        [this, id](const std::vector<comm::Tuple>& tuples,
                   std::uint64_t issue_tick) {
          on_batch(id, tuples, issue_tick);
        });
    entry = owned.get();
    entries_.emplace(id, std::move(owned));
    by_hash_[key].push_back(id);
    ++stats_.misses;
  }

  // Find or create the grouping for this column list.
  Grouping* grouping = nullptr;
  for (auto& g : entry->groupings) {
    if (g->cols == spec.group_cols) {
      grouping = g.get();
      break;
    }
  }
  if (grouping == nullptr) {
    auto owned = std::make_unique<Grouping>();
    owned->cols = spec.group_cols;
    if (owned->cols.empty()) {
      // Ungrouped aggregates always have their one implicit group, so an
      // empty window still emits (count = 0, sum/avg/min/max = NULL).
      GroupState& g = owned->groups[""];
      g.args.resize(entry->args.size());
    }
    grouping = owned.get();
    entry->groupings.push_back(std::move(owned));
    if (!fresh) ++stats_.subsumptions;
  } else if (!fresh) {
    ++stats_.hits;
  }
  ++grouping->subscribers;

  // Warm-up: the first pane made only of samples this subscriber will
  // observe. Windows containing earlier panes are suppressed for it, so a
  // mid-stream join sees exactly what its private entry would have.
  const std::uint64_t tick = broker_->tick_count();
  const std::uint64_t first_sample =
      (tick - entry->phase) / entry->period + 1;
  auto sub = std::make_unique<Subscriber>();
  sub->name = name;
  sub->generation = generation;
  sub->min_pane = (first_sample + entry->slide - 1) / entry->slide;
  sub->items = std::move(spec.items);
  sub->emit = std::move(emit);
  sub->entry = entry;
  sub->grouping = grouping;
  entry->subs.push_back(generation);
  std::sort(entry->subs.begin(), entry->subs.end());
  subs_by_gen_.emplace(generation, std::move(sub));
  return Status::ok();
}

void AggregateCache::detach(std::uint64_t generation) {
  auto it = subs_by_gen_.find(generation);
  if (it == subs_by_gen_.end()) return;
  Subscriber& sub = *it->second;
  Entry* entry = sub.entry;
  entry->subs.erase(
      std::remove(entry->subs.begin(), entry->subs.end(), generation),
      entry->subs.end());
  if (--sub.grouping->subscribers == 0) {
    auto git = std::find_if(
        entry->groupings.begin(), entry->groupings.end(),
        [&](const std::unique_ptr<Grouping>& g) {
          return g.get() == sub.grouping;
        });
    if (git != entry->groupings.end()) entry->groupings.erase(git);
  }
  subs_by_gen_.erase(it);
  if (entry->subs.empty()) {
    broker_->unsubscribe(entry->subscription);
    auto& ids = by_hash_[entry->hash_key];
    ids.erase(std::remove(ids.begin(), ids.end(), entry->id), ids.end());
    if (ids.empty()) by_hash_.erase(entry->hash_key);
    entries_.erase(entry->id);
  }
}

bool AggregateCache::eval_pred(const Entry& entry, std::size_t i,
                               const comm::Tuple& tuple) const {
  if (entry.pred_programs[i].has_value()) {
    BindingFrame frame;
    frame.size = 1;
    frame.set(0, &tuple);
    return entry.pred_programs[i]->run_predicate(frame);
  }
  Env env;
  env.bind(kAlias, &tuple);
  return eval_predicate(*entry.preds[i], env, catalog_->functions());
}

Result<Value> AggregateCache::eval_arg(const ArgCol& arg,
                                       const comm::Tuple& tuple) const {
  if (arg.program.has_value()) {
    BindingFrame frame;
    frame.size = 1;
    frame.set(0, &tuple);
    return arg.program->run(frame);
  }
  Env env;
  env.bind(kAlias, &tuple);
  return eval(*arg.expr, env, catalog_->functions());
}

void AggregateCache::on_batch(std::uint64_t entry_id,
                              const std::vector<comm::Tuple>& tuples,
                              std::uint64_t issue_tick) {
  auto eit = entries_.find(entry_id);
  if (eit == entries_.end()) return;  // dropped with a batch in flight
  Entry& entry = *eit->second;
  const std::uint64_t sample = (issue_tick - entry.phase) / entry.period;

  stats_.tuples_evaluated += tuples.size();
  for (const comm::Tuple& tuple : tuples) {
    bool pass = true;
    for (std::size_t i = 0; i < entry.preds.size(); ++i) {
      if (!eval_pred(entry, i, tuple)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;

    // Evaluate every aggregate argument once; the per-arg contribution is
    // then folded into each grouping's matching group.
    struct Contribution {
      bool counts = false;   // non-null (COUNT domain)
      bool numeric = false;  // coercible (SUM/AVG/MIN/MAX domain)
      double x = 0.0;
    };
    std::vector<Contribution> contribs(entry.args.size());
    for (std::size_t a = 0; a < entry.args.size(); ++a) {
      Contribution& c = contribs[a];
      if (entry.args[a].expr == nullptr) {  // COUNT(*)
        c.counts = true;
        continue;
      }
      auto v = eval_arg(entry.args[a], tuple);
      if (!v.is_ok() || std::holds_alternative<std::monostate>(v.value())) {
        continue;  // NULLs never contribute
      }
      c.counts = true;
      c.numeric = device::value_as_double(v.value(), &c.x);
    }

    for (auto& grouping : entry.groupings) {
      std::string group_key;
      for (const auto& col : grouping->cols) {
        encode_value(tuple.get(col), &group_key);
      }
      auto [git, inserted] = grouping->groups.try_emplace(group_key);
      GroupState& group = git->second;
      if (inserted) {
        group.args.resize(entry.args.size());
        for (const auto& col : grouping->cols) {
          group.values.push_back(tuple.get(col));
        }
      }
      for (std::size_t a = 0; a < entry.args.size(); ++a) {
        const Contribution& c = contribs[a];
        ArgWindow& w = group.args[a];
        w.cur.degraded |= tuple.degraded();
        if (c.counts) ++w.cur.cnt;
        if (!c.numeric) continue;
        if (w.cur.n_num == 0) {
          w.cur.low = c.x;
          w.cur.high = c.x;
        }
        w.cur.sum += c.x;
        w.cur.low = std::min(w.cur.low, c.x);
        w.cur.high = std::max(w.cur.high, c.x);
        ++w.cur.n_num;
      }
    }
  }

  // Pane close: the batch that completes a pane triggers bookkeeping and
  // window emission at this same virtual instant — i.e. the epoch barrier
  // of the closing sample's tick.
  if ((sample + 1) % entry.slide != 0) return;
  const std::uint64_t pane = sample / entry.slide;
  std::vector<std::pair<Subscriber*, TimestampedRow>> out;
  close_pane(entry, pane, &out);
  // Deliveries run after all state mutation: an on_row hook may drop or
  // register AQs, so each staged row re-resolves its subscriber first.
  for (auto& [sub, row] : out) {
    auto sit = subs_by_gen_.find(sub->generation);
    if (sit == subs_by_gen_.end() || sit->second.get() != sub) continue;
    ++stats_.emissions;
    sub->emit(sub->name, row);
  }
}

void AggregateCache::close_pane(
    Entry& entry, std::uint64_t pane,
    std::vector<std::pair<Subscriber*, TimestampedRow>>* out) {
  ++stats_.panes_closed;
  const std::uint64_t low_pane =
      pane + 1 >= entry.window_panes ? pane + 1 - entry.window_panes : 0;

  for (auto& grouping : entry.groupings) {
    std::vector<std::string> dead;
    for (auto& [key, group] : grouping->groups) {
      bool live = false;
      for (ArgWindow& w : group.args) {
        // Close the open pane (only when it saw data), then expire
        // everything older than the window that ends at `pane`.
        if (w.cur.cnt > 0 || w.cur.n_num > 0 || w.cur.degraded) {
          if (w.cur.n_num > 0) {
            while (!w.mins.empty() && w.mins.back().second >= w.cur.low) {
              w.mins.pop_back();
            }
            w.mins.emplace_back(pane, w.cur.low);
            while (!w.maxs.empty() && w.maxs.back().second <= w.cur.high) {
              w.maxs.pop_back();
            }
            w.maxs.emplace_back(pane, w.cur.high);
          }
          w.panes.emplace_back(pane, w.cur);
          w.cur = PanePartial{};
        }
        while (!w.panes.empty() && w.panes.front().first < low_pane) {
          w.panes.pop_front();
        }
        while (!w.mins.empty() && w.mins.front().first < low_pane) {
          w.mins.pop_front();
        }
        while (!w.maxs.empty() && w.maxs.front().first < low_pane) {
          w.maxs.pop_front();
        }
        if (!w.panes.empty()) live = true;
      }
      if (!live && !grouping->cols.empty()) dead.push_back(key);
    }
    // Groups with no data anywhere in the window vanish (and emit
    // nothing) — the churn guarantee's "no debris".
    for (const auto& key : dead) grouping->groups.erase(key);
  }

  // Emission: per subscriber in registration (generation) order, per
  // group in encoded-key order — a deterministic schedule shared by the
  // cache-on and cache-off modes.
  const aorta::util::TimePoint now = loop_->now();
  for (std::uint64_t generation : entry.subs) {
    auto sit = subs_by_gen_.find(generation);
    if (sit == subs_by_gen_.end()) continue;
    Subscriber* sub = sit->second.get();
    if (pane + 1 < sub->min_pane + entry.window_panes) continue;  // warm-up
    for (const auto& [key, group] : sub->grouping->groups) {
      Row row;
      bool degraded = false;
      for (const SubItem& item : sub->items) {
        row.emplace_back(item.label, finalize(group, item, &degraded));
      }
      out->emplace_back(sub, TimestampedRow{now, std::move(row), degraded});
    }
  }
}

Value AggregateCache::finalize(const GroupState& group, const SubItem& item,
                               bool* degraded) const {
  if (item.is_group) return group.values[item.index];
  const ArgWindow& w = group.args[item.index];
  double sum = 0.0;
  std::uint64_t n_num = 0, cnt = 0;
  for (const auto& [pane, partial] : w.panes) {
    sum += partial.sum;
    n_num += partial.n_num;
    cnt += partial.cnt;
    *degraded |= partial.degraded;
  }
  switch (item.op) {
    case AggOp::kCount:
      return static_cast<std::int64_t>(cnt);
    case AggOp::kSum:
      return n_num == 0 ? Value{} : Value{sum};
    case AggOp::kAvg:
      return n_num == 0 ? Value{}
                        : Value{sum / static_cast<double>(n_num)};
    case AggOp::kMin:
      return w.mins.empty() ? Value{} : Value{w.mins.front().second};
    case AggOp::kMax:
      return w.maxs.empty() ? Value{} : Value{w.maxs.front().second};
  }
  return Value{};
}

}  // namespace aorta::query
