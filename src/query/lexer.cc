#include "query/lexer.h"

#include <cctype>
#include <cstdlib>
#include <set>

#include "util/strings.h"

namespace aorta::query {

using aorta::util::Result;

namespace {

const std::set<std::string>& keywords() {
  static const std::set<std::string> kw = {
      "CREATE", "ACTION", "AQ",    "AS",   "PROFILE", "SELECT", "FROM",
      "WHERE",  "AND",    "OR",    "NOT",  "TRUE",    "FALSE",  "DROP",
      "NULL",   "EVERY",  "SHOW",  "QUERIES", "ACTIONS", "DEVICES",
      "EXPLAIN", "GROUP", "BY", "WINDOW"};
  return kw;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> lex(std::string_view input) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = input.size();

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- comments to end of line
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }

    Token token;
    token.offset = i;

    if (is_ident_start(c)) {
      std::size_t start = i;
      while (i < n && is_ident_char(input[i])) ++i;
      std::string word(input.substr(start, i - start));
      std::string upper = aorta::util::to_lower(word);
      for (char& ch : upper) ch = static_cast<char>(std::toupper(ch));
      if (keywords().count(upper) > 0) {
        token.type = TokenType::kKeyword;
        token.text = upper;
      } else {
        token.type = TokenType::kIdentifier;
        token.text = std::move(word);
      }
      tokens.push_back(std::move(token));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      std::size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
                       ((input[i] == '+' || input[i] == '-') && i > start &&
                        (input[i - 1] == 'e' || input[i - 1] == 'E')))) {
        ++i;
      }
      std::string text(input.substr(start, i - start));
      char* end = nullptr;
      token.number = std::strtod(text.c_str(), &end);
      if (end != text.c_str() + text.size()) {
        return Result<std::vector<Token>>(aorta::util::parse_error(
            "malformed number '" + text + "' at offset " + std::to_string(start)));
      }
      token.type = TokenType::kNumber;
      token.text = std::move(text);
      tokens.push_back(std::move(token));
      continue;
    }

    if (c == '"' || c == '\'') {
      char quote = c;
      std::size_t start = ++i;
      std::string value;
      while (i < n && input[i] != quote) {
        value += input[i];
        ++i;
      }
      if (i >= n) {
        return Result<std::vector<Token>>(aorta::util::parse_error(
            "unterminated string at offset " + std::to_string(start - 1)));
      }
      ++i;  // closing quote
      token.type = TokenType::kString;
      token.text = std::move(value);
      tokens.push_back(std::move(token));
      continue;
    }

    // Multi-char comparison operators first.
    if (i + 1 < n) {
      std::string two(input.substr(i, 2));
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        token.type = TokenType::kSymbol;
        token.text = two == "!=" ? "<>" : two;
        tokens.push_back(std::move(token));
        i += 2;
        continue;
      }
    }
    if (std::string("(),.;+-*/<>=").find(c) != std::string::npos) {
      token.type = TokenType::kSymbol;
      token.text = std::string(1, c);
      tokens.push_back(std::move(token));
      ++i;
      continue;
    }

    return Result<std::vector<Token>>(aorta::util::parse_error(
        std::string("unexpected character '") + c + "' at offset " +
        std::to_string(i)));
  }

  tokens.push_back(Token{TokenType::kEnd, "", 0.0, n});
  return tokens;
}

}  // namespace aorta::query
