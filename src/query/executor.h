// The continuous query executor: Aorta's event-driven evaluation loop.
//
// Action-embedded queries are "event-driven continuous queries" (Section
// 2.2). The executor samples each registered query's event table every
// epoch through the communication layer's shared acquisition plane (the
// ScanBroker): each AQ is a broker subscription carrying its needed
// attributes and epoch period, so co-located queries over the same device
// table share one batched sensory sweep per epoch. Events are detected as
// rising edges of the sensory event predicates (an object starts moving);
// candidate devices for each embedded action are enumerated by evaluating
// the join predicates (coverage(...)); instantiated action requests are
// deposited into the per-action shared operators. At the end of each
// epoch every operator flushes: probe -> schedule -> execute under locks.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "comm/scan_broker.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/action_operator.h"
#include "query/agg_cache.h"
#include "query/compile.h"
#include "query/predicate_index.h"

namespace aorta::query {

struct QueryStats {
  std::uint64_t epochs = 0;            // evaluations performed
  std::uint64_t events = 0;            // rising edges detected
  std::uint64_t requests_issued = 0;   // action requests deposited
};

// Engine-wide compiled-evaluation counters: how much of the per-row
// expression work runs through slot-resolved EvalPrograms vs the
// tree-walking fallback (query/eval_program.h).
struct EvalStats {
  std::uint64_t programs_compiled = 0;  // programs cached across queries
  std::uint64_t programs_fallback = 0;  // expressions left on the tree walker
  std::uint64_t compiled_evals = 0;     // program executions (hot path)
  std::uint64_t fallback_evals = 0;     // tree-walk executions (hot path)
};

// Predicate-index matching counters (query/predicate_index.h): how many
// tuple probes ran, how many candidate AQs they produced, how many of
// those needed a residual program run vs. an exact-cover skip, and how
// many registered AQs the index pruned away without evaluating.
struct IndexStats {
  std::uint64_t probes = 0;          // tuple probes against group indexes
  std::uint64_t candidates = 0;      // candidate AQs emitted by probes
  std::uint64_t residual_evals = 0;  // candidates confirmed by their program
  std::uint64_t exact_skips = 0;     // candidates accepted without a run
  std::uint64_t pruned = 0;          // indexed AQs skipped per probe
};

// One projected row of a one-shot SELECT.
using Row = std::vector<std::pair<std::string, device::Value>>;

// A row produced by a continuous query at event time. `degraded` marks
// rows evaluated over last-known-good values from a quarantined device
// (the broker's degradation marker, carried to server deliveries).
struct TimestampedRow {
  aorta::util::TimePoint at;
  Row row;
  bool degraded = false;
};

// One entry of the engine's event trace (observability: what happened,
// when, for which query).
struct TraceEntry {
  aorta::util::TimePoint at;
  std::string query;   // owning query id ("" for engine-level entries)
  std::string kind;    // "event", "request", "batch", "outcome", ...
  std::string detail;
};

class ContinuousQueryExecutor {
 public:
  struct Options {
    aorta::util::Duration epoch = aorta::util::Duration::seconds(1.0);
    std::string scheduler_name = "SRFAE";
    bool use_probing = true;  // Section 6.2 ablations
    bool use_locks = true;
    int max_retries = 1;  // failover rounds per failed action request
    // Health supervision (nullable = off), forwarded to action operators.
    device::HealthView* health = nullptr;
    // Worker shard index this executor runs on (-1 = unsharded engine),
    // forwarded to action operators so requests carry their owning shard.
    int shard = -1;
    // Predicate-index matching (the sub-linear fan-out path): AQs with the
    // same (type, period, phase, needed-attrs) share one broker
    // subscription and a compiled-predicate index; each delivered tuple
    // probes the index and only candidate AQs run their programs. false =
    // exhaustive ablation: one subscription per AQ, every program runs on
    // every tuple (the pre-index behaviour, byte-identical output).
    bool predicate_index = true;
    // Shared-aggregate cache (query/agg_cache.h): continuous aggregate AQs
    // with the same canonical query hash share one broker subscription and
    // one incremental window accumulation. false = ablation: every
    // aggregate AQ gets a private cache entry running the identical
    // machinery (byte-identical output, N× the evaluation cost).
    bool aggregate_cache = true;
  };

  // Multi-tenant hooks a query can be registered with (src/server): an
  // owner tag identifying the registering session/tenant, and a callback
  // receiving every projected row at event time (in addition to the
  // bounded ring served by recent_results).
  struct AqHooks {
    std::string owner;
    std::function<void(const std::string& name, const TimestampedRow& row)>
        on_row;
  };

  ContinuousQueryExecutor(device::DeviceRegistry* registry,
                          comm::CommLayer* comm, comm::ScanBroker* broker,
                          sync::Prober* prober, sync::LockManager* locks,
                          aorta::util::EventLoop* loop, Catalog* catalog,
                          aorta::util::Rng rng, Options options);
  ~ContinuousQueryExecutor();

  // Register a compiled continuous query under `name`. Starts being
  // evaluated from the next epoch tick.
  aorta::util::Status register_aq(const std::string& name, double epoch_s,
                                  const SelectStmt& stmt,
                                  std::string source_sql, AqHooks hooks = {});

  aorta::util::Status drop_aq(const std::string& name);
  std::vector<std::string> aq_names() const;

  // Owner tag the query was registered with ("" if unknown / untagged).
  std::string aq_owner(const std::string& name) const;

  // Engine ticks between evaluations of a registered query (0 if unknown).
  // An epoch_s shorter than the engine epoch is clamped to 1 with a logged
  // warning at registration.
  std::uint64_t aq_epoch_ticks(const std::string& name) const;

  // Begin epoch ticking (idempotent).
  void start();

  // One-shot SELECT: acquires tuples, evaluates predicates, projects the
  // non-action select items. `done` receives the rows.
  void run_select(const SelectStmt& stmt,
                  std::function<void(aorta::util::Result<std::vector<Row>>)> done);

  // ---- results / observability --------------------------------------------
  // Rows a continuous query's projections produced at its last events
  // (bounded ring, newest last). Empty for queries with no projections.
  std::vector<TimestampedRow> recent_results(const std::string& name) const;

  // The engine's recent trace (bounded ring, newest last).
  const std::deque<TraceEntry>& trace() const { return trace_; }
  void record_trace(TraceEntry entry);

  // Observer invoked on every trace entry as it is recorded (the server
  // layer routes "outcome" entries to the owning session's mailbox).
  void set_trace_sink(std::function<void(const TraceEntry&)> sink) {
    trace_sink_ = std::move(sink);
  }

  // Span tracing (nullable = off): registration instants, per-AQ eval
  // spans, per-operator action-flush spans and one `epoch` span bracketing
  // each tick's processing window.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // ---- statistics --------------------------------------------------------
  const QueryStats* query_stats(const std::string& name) const;
  const EvalStats& eval_stats() const { return eval_stats_; }
  const IndexStats& index_stats() const { return index_stats_; }
  // Predicate-index entries across all delivery groups (== registered AQs
  // on the indexed path) and the number of groups (broker subscriptions).
  std::size_t index_entries() const;
  std::size_t index_group_count() const { return groups_.size(); }

  // Enroll `eval.index.*`-style counters/gauges under `prefix`. Per-type
  // entry gauges ("<prefix>types.<type>.entries") enroll lazily as device
  // types first gain an indexed AQ.
  void set_index_metrics(obs::MetricsRegistry* metrics, std::string prefix);
  // Shared-aggregate cache counters: evaluation cost under `eval_prefix`
  // ("eval.agg."), sharing outcomes under `cache_prefix`
  // ("broker.agg_cache.", including the live_windows gauge).
  void set_agg_metrics(obs::MetricsRegistry* metrics, std::string eval_prefix,
                       std::string cache_prefix);
  const AggStats& agg_stats() const { return agg_cache_->stats(); }
  std::size_t agg_entries() const { return agg_cache_->entry_count(); }
  std::size_t agg_subscribers() const {
    return agg_cache_->subscriber_count();
  }
  // Action outcomes per query, aggregated across all shared operators.
  QueryActionStats action_stats(const std::string& name) const;
  std::vector<const ActionOperator*> operators() const;
  sched::Scheduler* scheduler() { return scheduler_.get(); }

 private:
  struct DeliveryGroup;

  struct Aq {
    std::string name;
    // Distinguishes this registration from an earlier one under the same
    // name: batch-delivery callbacks check it so a drop + re-register
    // mid-epoch never feeds stale tuples to the new query (the broker's
    // never-recycled subscription ids give the same guarantee one layer
    // down).
    std::uint64_t generation = 0;
    AqHooks hooks;
    std::string source_sql;
    CompiledQuery compiled;
    // The query's subscription on the shared acquisition plane. On the
    // indexed path this is the owning group's shared subscription.
    comm::ScanBroker::SubscriptionId subscription = 0;
    std::uint64_t epoch_ticks = 1;  // evaluate every N engine epochs
    // Event-predicate state per event device for edge detection
    // (exhaustive path only; the indexed path uses last_true_seq).
    std::map<device::DeviceId, bool> last_state;
    // ---- indexed-path state ------------------------------------------
    DeliveryGroup* group = nullptr;  // null on the exhaustive path
    // Broker tick at registration: batches issued at or before it predate
    // this member and are skipped (mirrors never-recycled sub ids).
    std::uint64_t join_tick = 0;
    // Group deliveries to discount when deriving this member's epochs
    // stat (deliveries before the join, plus batches then in flight).
    std::uint64_t epochs_base = 0;
    // The index constraint covers the whole predicate set: candidacy
    // alone proves a match, no residual program run needed.
    bool index_exact = false;
    // Edge detection under pruning: the group row sequence of the last
    // row that satisfied the predicates, per device. A fire requires the
    // immediately preceding delivered row to NOT have satisfied them —
    // i.e. the stored seq is absent or != current seq - 1. Rows the
    // index prunes are guaranteed unsatisfied and need no bookkeeping;
    // rows the broker skips (unreachable devices) advance no sequence,
    // exactly like the exhaustive path's untouched last_state.
    std::map<device::DeviceId, std::uint64_t> last_true_seq;
    // Continuous aggregate query: evaluation lives in the shared
    // AggregateCache, not in a delivery group or private subscription.
    bool agg = false;
    // epochs is derived lazily on the indexed path (query_stats()).
    mutable QueryStats stats;
    // Projection outputs at event time (bounded ring).
    std::deque<TimestampedRow> results;
  };

  // AQs sharing (event type, period, phase, needed attrs) are
  // interchangeable from the broker's point of view: one subscription
  // feeds them all, and a per-group PredicateIndex picks which members'
  // programs each tuple runs. The key reproduces exactly the subscription
  // the exhaustive path would have created per AQ, so due-ness, tuple
  // projection and unreachable-device semantics are identical.
  using GroupKey = std::tuple<device::DeviceTypeId, std::uint64_t,
                              std::uint64_t, std::set<std::string>>;

  struct DeliveryGroup {
    GroupKey key;
    device::DeviceTypeId type;
    comm::ScanBroker::SubscriptionId subscription = 0;
    PredicateIndex index;
    std::map<std::uint64_t, Aq*> members;  // generation -> query
    std::uint64_t deliveries = 0;          // batches fanned out so far
    // Per-device count of rows delivered to this group (edge detection).
    std::map<device::DeviceId, std::uint64_t> row_seq;
  };

  // One group's share of a broker batch, staged until the batch's
  // delivery epilogue: members across all groups of the batch must be
  // processed in one global generation-ordered pass to reproduce the
  // exhaustive path's per-subscription side-effect order.
  struct StagedBatch {
    DeliveryGroup* group;
    std::vector<comm::Tuple> tuples;
    std::vector<std::uint64_t> seqs;  // row_seq assigned to each tuple
    std::uint64_t issue_tick = 0;
  };

  static constexpr std::size_t kResultCap = 256;
  static constexpr std::size_t kTraceCap = 1024;

  void on_tick();
  void process_event_tuple(Aq& aq, const comm::Tuple& tuple);
  // Indexed-path variants: stage a group's batch at fan-out, process all
  // staged batches at the broker's delivery epilogue, evaluate one
  // (member, tuple) pair. `candidate` distinguishes index candidates
  // (constraint satisfied; maybe exact) from residual-list members.
  void stage_group_batch(DeliveryGroup& group,
                         const std::vector<comm::Tuple>& tuples,
                         std::uint64_t issue_tick);
  void process_staged();
  void process_event_tuple_indexed(Aq& aq, const comm::Tuple& tuple,
                                   std::uint64_t seq, bool candidate);
  // Shared event tail (trace + projections + action fan-out), used by
  // both matching paths once a fire is decided.
  void fire_event(Aq& aq, const comm::Tuple& tuple, const BindingFrame& frame);

  // Candidate device enumeration for one action call of one event tuple.
  // `frame` carries the event tuple; the candidate slot is rebound per
  // enumerated device.
  std::vector<device::DeviceId> enumerate_candidates(
      Aq& aq, const CompiledActionCall& call, const BindingFrame& frame,
      const comm::Schema& candidate_schema);

  // Evaluate one compiled-or-fallback expression over a frame, counting
  // into eval_stats_. The Env for the fallback path is rebuilt from the
  // frame (rare: SELECT *, aggregates, unknown functions).
  aorta::util::Result<device::Value> eval_expr(
      const std::optional<EvalProgram>& program, const Expr& expr,
      const BindingFrame& frame, const std::vector<std::string>& aliases);
  bool eval_pred(const std::optional<EvalProgram>& program, const Expr& expr,
                 const BindingFrame& frame,
                 const std::vector<std::string>& aliases);
  void count_programs(const CompiledQuery& compiled);

  ActionOperator* operator_for(const ActionDef* action);

  device::DeviceRegistry* registry_;
  comm::CommLayer* comm_;
  comm::ScanBroker* broker_;
  sync::Prober* prober_;
  sync::LockManager* locks_;
  aorta::util::EventLoop* loop_;
  Catalog* catalog_;
  aorta::util::Rng rng_;
  Options options_;

  std::unique_ptr<sched::Scheduler> scheduler_;
  std::map<std::string, std::unique_ptr<Aq>> queries_;
  // Indexed-path state: delivery groups (one broker subscription + one
  // PredicateIndex each), the generation directory for epilogue-time
  // re-resolution (user hooks may drop AQs mid-pass), and the batches
  // staged between fan-out and the delivery epilogue.
  std::map<GroupKey, std::unique_ptr<DeliveryGroup>> groups_;
  std::map<std::uint64_t, Aq*> by_generation_;
  std::vector<StagedBatch> staged_;
  IndexStats index_stats_;
  obs::MetricsRegistry::Scoped index_metrics_;
  std::set<device::DeviceTypeId> index_metric_types_;
  // Shared windowed aggregation for aggregate AQs (query/agg_cache.h).
  std::unique_ptr<AggregateCache> agg_cache_;
  obs::MetricsRegistry::Scoped agg_eval_metrics_;
  obs::MetricsRegistry::Scoped agg_cache_metrics_;
  std::map<std::string, std::unique_ptr<ActionOperator>> operators_;
  // Schemas backing candidate tuples (per device type, stable addresses).
  std::map<device::DeviceTypeId, std::unique_ptr<comm::Schema>> schemas_;
  bool started_ = false;
  std::uint64_t next_generation_ = 1;
  std::uint64_t tick_no_ = 0;
  obs::Tracer* tracer_ = nullptr;
  EvalStats eval_stats_;
  std::deque<TraceEntry> trace_;
  std::function<void(const TraceEntry&)> trace_sink_;
};

}  // namespace aorta::query
