// Expression evaluation over device tuples.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "comm/tuple.h"
#include "query/ast.h"
#include "util/status.h"

namespace aorta::query {

// Engine-side scalar/boolean functions (coverage(), distance(), ...),
// evaluated over already-acquired values — as opposed to actions, which
// operate devices.
using ScalarFn = std::function<aorta::util::Result<device::Value>(
    const std::vector<device::Value>&)>;

class FunctionRegistry {
 public:
  aorta::util::Status add(std::string name, ScalarFn fn);
  const ScalarFn* find(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  std::map<std::string, ScalarFn> fns_;
};

// Binding environment: table alias -> tuple for the current row
// combination. Unqualified columns resolve against every bound tuple and
// must be unambiguous.
class Env {
 public:
  void bind(const std::string& alias, const comm::Tuple* tuple) {
    bindings_[alias] = tuple;
  }
  const comm::Tuple* lookup(const std::string& alias) const;
  const std::map<std::string, const comm::Tuple*>& bindings() const {
    return bindings_;
  }

 private:
  std::map<std::string, const comm::Tuple*> bindings_;
};

// Evaluate an expression. Comparisons involving NULL yield FALSE;
// arithmetic involving NULL yields NULL (SQL-ish three-valued logic
// collapsed to two values, which is what predicate evaluation needs).
// Action calls must not appear here — the compiler extracts them from the
// select list before evaluation; an unknown function is an error.
aorta::util::Result<device::Value> eval(const Expr& expr, const Env& env,
                                        const FunctionRegistry& functions);

// Convenience: evaluate as a predicate (errors and NULL count as false —
// a sensory read that failed must not fire an event).
bool eval_predicate(const Expr& expr, const Env& env,
                    const FunctionRegistry& functions);

// Collect the table aliases an expression references, resolving
// unqualified columns against `schemas` (alias -> schema). Unknown or
// ambiguous columns produce an error.
aorta::util::Status collect_aliases(
    const Expr& expr, const std::map<std::string, const comm::Schema*>& schemas,
    std::set<std::string>* aliases);

// Collect column names referenced per alias (projection pushdown input).
void collect_columns(const Expr& expr,
                     const std::map<std::string, const comm::Schema*>& schemas,
                     std::map<std::string, std::set<std::string>>* columns);

}  // namespace aorta::query
