// Expression evaluation over device tuples.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "comm/tuple.h"
#include "query/ast.h"
#include "util/status.h"

namespace aorta::query {

// Engine-side scalar/boolean functions (coverage(), distance(), ...),
// evaluated over already-acquired values — as opposed to actions, which
// operate devices.
using ScalarFn = std::function<aorta::util::Result<device::Value>(
    const std::vector<device::Value>&)>;

class FunctionRegistry {
 public:
  aorta::util::Status add(std::string name, ScalarFn fn);
  // Heterogeneous lookup: no temporary std::string per call. The returned
  // pointer stays valid for the registry's lifetime (map nodes are stable
  // under insertion), which lets compiled programs pre-bind it.
  const ScalarFn* find(std::string_view name) const;
  std::vector<std::string> names() const;

 private:
  std::map<std::string, ScalarFn, std::less<>> fns_;
};

// Binding environment: table alias -> tuple for the current row
// combination. Unqualified columns resolve against every bound tuple and
// must be unambiguous. This is the *fallback* evaluator's environment —
// hot paths run compiled EvalPrograms over a flat BindingFrame instead
// (query/eval_program.h). Queries bind at most two aliases, so a small
// sorted vector beats a node-based map.
class Env {
 public:
  using Binding = std::pair<std::string, const comm::Tuple*>;

  void bind(const std::string& alias, const comm::Tuple* tuple);
  const comm::Tuple* lookup(std::string_view alias) const;
  // Bindings in alias-sorted order (stable rendering, e.g. SELECT *).
  const std::vector<Binding>& bindings() const { return bindings_; }

 private:
  std::vector<Binding> bindings_;  // kept sorted by alias
};

// Shared leaf semantics for both evaluators (the tree-walking oracle below
// and the compiled EvalProgram): SQL-ish comparison / arithmetic over
// dynamically-typed values. Comparisons involving NULL yield FALSE;
// arithmetic involving NULL (or division by zero) yields NULL.
aorta::util::Result<device::Value> compare_values(BinaryOp op,
                                                  const device::Value& a,
                                                  const device::Value& b);
aorta::util::Result<device::Value> arithmetic_values(BinaryOp op,
                                                     const device::Value& a,
                                                     const device::Value& b);

// Evaluate an expression. Comparisons involving NULL yield FALSE;
// arithmetic involving NULL yields NULL (SQL-ish three-valued logic
// collapsed to two values, which is what predicate evaluation needs).
// Action calls must not appear here — the compiler extracts them from the
// select list before evaluation; an unknown function is an error.
aorta::util::Result<device::Value> eval(const Expr& expr, const Env& env,
                                        const FunctionRegistry& functions);

// Convenience: evaluate as a predicate (errors and NULL count as false —
// a sensory read that failed must not fire an event).
bool eval_predicate(const Expr& expr, const Env& env,
                    const FunctionRegistry& functions);

// Collect the table aliases an expression references, resolving
// unqualified columns against `schemas` (alias -> schema). Unknown or
// ambiguous columns produce an error.
aorta::util::Status collect_aliases(
    const Expr& expr, const std::map<std::string, const comm::Schema*>& schemas,
    std::set<std::string>* aliases);

// Collect column names referenced per alias (projection pushdown input).
void collect_columns(const Expr& expr,
                     const std::map<std::string, const comm::Schema*>& schemas,
                     std::map<std::string, std::set<std::string>>* columns);

}  // namespace aorta::query
