#include "query/executor.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/strings.h"

namespace aorta::query {

using aorta::util::Duration;
using aorta::util::Result;
using aorta::util::Status;
using device::Value;

namespace {

// Rebuild a tree-walker Env from a binding frame — only for expressions
// that did not compile to a program (SELECT *, aggregates, unknown
// functions).
Env env_from_frame(const BindingFrame& frame,
                   const std::vector<std::string>& aliases) {
  Env env;
  for (std::size_t i = 0; i < frame.size && i < aliases.size(); ++i) {
    if (frame.tuples[i] != nullptr) env.bind(aliases[i], frame.tuples[i]);
  }
  return env;
}

}  // namespace

Result<Value> ContinuousQueryExecutor::eval_expr(
    const std::optional<EvalProgram>& program, const Expr& expr,
    const BindingFrame& frame, const std::vector<std::string>& aliases) {
  if (program.has_value()) {
    ++eval_stats_.compiled_evals;
    return program->run(frame);
  }
  ++eval_stats_.fallback_evals;
  return eval(expr, env_from_frame(frame, aliases), catalog_->functions());
}

bool ContinuousQueryExecutor::eval_pred(
    const std::optional<EvalProgram>& program, const Expr& expr,
    const BindingFrame& frame, const std::vector<std::string>& aliases) {
  if (program.has_value()) {
    ++eval_stats_.compiled_evals;
    return program->run_predicate(frame);
  }
  ++eval_stats_.fallback_evals;
  return eval_predicate(expr, env_from_frame(frame, aliases),
                        catalog_->functions());
}

void ContinuousQueryExecutor::count_programs(const CompiledQuery& compiled) {
  eval_stats_.programs_compiled += compiled.program_count();
  eval_stats_.programs_fallback += compiled.fallback_count();
}

ContinuousQueryExecutor::ContinuousQueryExecutor(
    device::DeviceRegistry* registry, comm::CommLayer* comm,
    comm::ScanBroker* broker, sync::Prober* prober, sync::LockManager* locks,
    aorta::util::EventLoop* loop, Catalog* catalog, aorta::util::Rng rng,
    Options options)
    : registry_(registry),
      comm_(comm),
      broker_(broker),
      prober_(prober),
      locks_(locks),
      loop_(loop),
      catalog_(catalog),
      rng_(std::move(rng)),
      options_(std::move(options)) {
  scheduler_ = sched::make_scheduler(options_.scheduler_name);
  if (scheduler_ == nullptr) {
    AORTA_LOG(kError, "query") << "unknown scheduler '"
                               << options_.scheduler_name
                               << "', falling back to SRFAE";
    scheduler_ = sched::make_scheduler("SRFAE");
  }
  if (options_.predicate_index) {
    // Staged group batches are processed at each broker batch's delivery
    // epilogue: the same virtual time as the fan-out, before the tick
    // barrier can flush action operators.
    broker_->set_delivery_epilogue([this]() { process_staged(); });
  }
  agg_cache_ = std::make_unique<AggregateCache>(
      broker_, loop_, catalog_,
      AggregateCache::Options{options_.aggregate_cache});
}

ContinuousQueryExecutor::~ContinuousQueryExecutor() {
  if (options_.predicate_index) broker_->set_delivery_epilogue({});
}

Status ContinuousQueryExecutor::register_aq(const std::string& name,
                                            double epoch_s,
                                            const SelectStmt& stmt,
                                            std::string source_sql,
                                            AqHooks hooks) {
  if (queries_.count(name) > 0) {
    return aorta::util::already_exists_error("query already registered: " + name);
  }
  auto compiled = compile(stmt, *catalog_, *registry_);
  if (!compiled.is_ok()) return compiled.status();

  // Continuous aggregates run on the shared-aggregate cache (attached
  // below, after the epoch is resolved). GROUP BY / WINDOW only make sense
  // over aggregate projections.
  bool has_agg = AggregateCache::has_aggregates(compiled.value());
  if (!has_agg && (!compiled.value().group_by.empty() ||
                   compiled.value().window_s > 0.0 ||
                   compiled.value().every_s > 0.0)) {
    return aorta::util::invalid_argument_error(
        "GROUP BY / WINDOW require aggregate projections "
        "(count/sum/avg/min/max)");
  }

  auto aq = std::make_unique<Aq>();
  aq->name = name;
  aq->generation = next_generation_++;
  aq->hooks = std::move(hooks);
  aq->source_sql = std::move(source_sql);
  aq->compiled = std::move(compiled).value();
  count_programs(aq->compiled);

  if (epoch_s > 0.0) {
    double engine_epoch_s = options_.epoch.to_seconds();
    if (epoch_s < engine_epoch_s) {
      AORTA_LOG(kWarn, "query")
          << "AQ '" << name << "' requested an epoch of " << epoch_s
          << "s, shorter than the engine epoch of " << engine_epoch_s
          << "s; clamping to one engine epoch";
    }
    double ratio = epoch_s / engine_epoch_s;
    aq->epoch_ticks = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(ratio)));
  }

  if (has_agg) {
    // Continuous aggregate: evaluation and window emission live in the
    // shared AggregateCache (one broker subscription + one incremental
    // accumulation per canonical query hash), not in a delivery group or
    // private subscription. The emit callback re-resolves the query by
    // name + generation: a drop + re-register between pane close and
    // delivery must not feed the new registration.
    aq->agg = true;
    Status attached = agg_cache_->attach(
        name, aq->generation, aq->compiled, aq->epoch_ticks,
        static_cast<double>(aq->epoch_ticks) * options_.epoch.to_seconds(),
        [this, generation = aq->generation](const std::string& qname,
                                            const TimestampedRow& row) {
          auto found = queries_.find(qname);
          if (found == queries_.end() ||
              found->second->generation != generation) {
            return;
          }
          Aq& owner = *found->second;
          ++owner.stats.events;
          if (owner.hooks.on_row) owner.hooks.on_row(qname, row);
          owner.results.push_back(row);
          while (owner.results.size() > kResultCap) owner.results.pop_front();
        });
    if (!attached.is_ok()) return attached;
    AORTA_TRACE_INSTANT(tracer_, obs::SpanCat::kRegister, "register:" + name,
                        loop_->now(),
                        "aggregate every " + std::to_string(aq->epoch_ticks) +
                            " tick(s)");
    queries_.emplace(name, std::move(aq));
    return Status::ok();
  }

  // Make sure the shared operators for its actions exist.
  for (const auto& call : aq->compiled.actions) {
    if (operator_for(call.action) == nullptr) {
      return aorta::util::internal_error("could not create action operator for " +
                                         call.action->name);
    }
  }

  // Attach the query to the shared acquisition plane with its needed
  // event-table attributes (projection pushdown).
  std::set<std::string> needed;
  auto it = aq->compiled.needed_attrs.find(aq->compiled.event_alias);
  if (it != aq->compiled.needed_attrs.end()) needed = it->second;

  if (options_.predicate_index) {
    // Indexed path: AQs with the same (type, period, phase, needed) share
    // one subscription + one compiled-predicate index. The phase mirrors
    // what a fresh subscription would get (tick_count % period), so a
    // member joins an existing group only when that group's batches fire
    // exactly when its own private subscription would have.
    device::DeviceTypeId type = aq->compiled.event_type();
    std::uint64_t phase = broker_->tick_count() % aq->epoch_ticks;
    GroupKey key{type, aq->epoch_ticks, phase, needed};
    auto git = groups_.find(key);
    if (git == groups_.end()) {
      auto group = std::make_unique<DeliveryGroup>();
      group->key = key;
      group->type = type;
      group->subscription = broker_->subscribe(
          type, std::move(needed), aq->epoch_ticks,
          [this, g = group.get()](const std::vector<comm::Tuple>& tuples,
                                  std::uint64_t issue_tick) {
            stage_group_batch(*g, tuples, issue_tick);
          });
      if (index_metrics_.live() && index_metric_types_.insert(type).second) {
        index_metrics_.enroll_gauge(
            "types." + obs::MetricsRegistry::sanitize_component(type) +
                ".entries",
            [this, type]() {
              std::int64_t n = 0;
              for (const auto& [k, g] : groups_) {
                if (g->type == type) n += static_cast<std::int64_t>(
                    g->index.size());
              }
              return n;
            });
      }
      git = groups_.emplace(std::move(key), std::move(group)).first;
    }
    DeliveryGroup* group = git->second.get();
    aq->group = group;
    aq->subscription = group->subscription;
    aq->join_tick = broker_->tick_count();
    // Discount deliveries that predate this member — including batches
    // already in flight, which the join_tick guard will skip.
    aq->epochs_base =
        group->deliveries + broker_->pending_batches(group->subscription);
    const IndexableConjunct* conjunct =
        aq->compiled.index_conjunct ? &*aq->compiled.index_conjunct : nullptr;
    aq->index_exact = conjunct != nullptr && conjunct->exact;
    group->index.add(aq->generation, conjunct);
    group->members.emplace(aq->generation, aq.get());
    by_generation_.emplace(aq->generation, aq.get());
  } else {
    // Exhaustive ablation: one private subscription per AQ, every program
    // runs on every tuple. The query may be dropped while a batch is in
    // flight: re-resolve it by name at delivery instead of holding a
    // pointer into queries_. The generation check also covers a drop +
    // immediate re-register under the same name — a stale batch's tuples
    // must not feed the new query.
    aq->subscription = broker_->subscribe(
        aq->compiled.event_type(), std::move(needed), aq->epoch_ticks,
        [this, name, generation = aq->generation](
            const std::vector<comm::Tuple>& tuples, std::uint64_t) {
          auto found = queries_.find(name);
          if (found == queries_.end() ||
              found->second->generation != generation) {
            return;
          }
          ++found->second->stats.epochs;
          for (const comm::Tuple& tuple : tuples) {
            process_event_tuple(*found->second, tuple);
          }
          // Synchronous evaluation takes zero virtual time; the span is an
          // instant marking which AQ consumed which batch.
          AORTA_TRACE_INSTANT(tracer_, obs::SpanCat::kEval, "eval:" + name,
                              loop_->now(),
                              std::to_string(tuples.size()) + " tuple(s)");
        });
  }

  AORTA_TRACE_INSTANT(tracer_, obs::SpanCat::kRegister, "register:" + name,
                      loop_->now(),
                      "every " + std::to_string(aq->epoch_ticks) + " tick(s)");
  queries_.emplace(name, std::move(aq));
  return Status::ok();
}

Status ContinuousQueryExecutor::drop_aq(const std::string& name) {
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    return aorta::util::not_found_error("no such query: " + name);
  }
  Aq& aq = *it->second;
  if (aq.agg) {
    // Aggregate path: the cache tears down the subscriber, and the entry +
    // subscription with it when this was the last co-hashed AQ.
    agg_cache_->detach(aq.generation);
  } else if (aq.group != nullptr) {
    // Indexed path: remove this member's index entry and directory rows;
    // tear the group down only when its last member leaves.
    DeliveryGroup* group = aq.group;
    group->index.remove(aq.generation, aq.compiled.index_conjunct
                                           ? &*aq.compiled.index_conjunct
                                           : nullptr);
    group->members.erase(aq.generation);
    by_generation_.erase(aq.generation);
    if (group->members.empty()) {
      broker_->unsubscribe(group->subscription);
      // A batch staged for this group but not yet processed (drop from a
      // hook mid-epilogue) must not be walked after the group dies.
      staged_.erase(std::remove_if(staged_.begin(), staged_.end(),
                                   [group](const StagedBatch& s) {
                                     return s.group == group;
                                   }),
                    staged_.end());
      groups_.erase(group->key);
    }
  } else {
    broker_->unsubscribe(aq.subscription);
  }
  queries_.erase(it);
  return Status::ok();
}

std::vector<std::string> ContinuousQueryExecutor::aq_names() const {
  std::vector<std::string> out;
  for (const auto& [name, aq] : queries_) out.push_back(name);
  return out;
}

std::string ContinuousQueryExecutor::aq_owner(const std::string& name) const {
  auto it = queries_.find(name);
  return it == queries_.end() ? "" : it->second->hooks.owner;
}

std::uint64_t ContinuousQueryExecutor::aq_epoch_ticks(
    const std::string& name) const {
  auto it = queries_.find(name);
  return it == queries_.end() ? 0 : it->second->epoch_ticks;
}

ActionOperator* ContinuousQueryExecutor::operator_for(const ActionDef* action) {
  auto it = operators_.find(action->name);
  if (it != operators_.end()) return it->second.get();
  ActionOperator::Options op_options;
  op_options.use_probing = options_.use_probing;
  op_options.use_locks = options_.use_locks;
  op_options.max_retries = options_.max_retries;
  op_options.health = options_.health;
  op_options.shard = options_.shard;
  auto op = std::make_unique<ActionOperator>(action, prober_, locks_, registry_,
                                             loop_, scheduler_.get(),
                                             rng_.fork(), op_options);
  op->set_trace([this](const std::string& query, const std::string& kind,
                       const std::string& detail) {
    record_trace(TraceEntry{loop_->now(), query, kind, detail});
  });
  ActionOperator* raw = op.get();
  operators_.emplace(action->name, std::move(op));
  return raw;
}

void ContinuousQueryExecutor::start() {
  if (started_) return;
  started_ = true;
  loop_->schedule(options_.epoch, [this]() { on_tick(); });
}

void ContinuousQueryExecutor::on_tick() {
  ++tick_no_;
  // Advance the shared acquisition plane: the broker issues one batched
  // scan per device type with due subscriptions and fans the tuples out to
  // every due query. Once the last due subscriber has been served, flush
  // every action operator so requests from concurrent queries are
  // scheduled as one batch (the group optimization of Section 2.3 / the
  // "short time interval" batching of Section 5).
  if (AORTA_TRACE_ENABLED(tracer_)) {
    // Traced tick: an `epoch` span brackets the processing window (tick to
    // last action flush), with an `action` span per operator flush. The
    // closures below allocate, which is why the untraced path stays the
    // plain loop.
    aorta::util::TimePoint epoch_start = loop_->now();
    std::uint64_t tick_no = tick_no_;
    broker_->tick([this, epoch_start, tick_no]() {
      auto outstanding = std::make_shared<std::size_t>(1);
      std::function<void()> done = [this, epoch_start, tick_no,
                                    outstanding]() {
        if (--*outstanding > 0) return;
        AORTA_TRACE_SPAN(tracer_, obs::SpanCat::kEpoch,
                         "epoch:" + std::to_string(tick_no), epoch_start,
                         loop_->now(), std::string());
      };
      for (auto& [name, op] : operators_) {
        if (!op->has_pending()) continue;
        ++*outstanding;
        aorta::util::TimePoint flush_start = loop_->now();
        op->flush([this, name = name, flush_start, done]() {
          AORTA_TRACE_SPAN(tracer_, obs::SpanCat::kAction, "flush:" + name,
                           flush_start, loop_->now(), std::string());
          done();
        });
      }
      done();
    });
  } else {
    broker_->tick([this]() {
      for (auto& [name, op] : operators_) {
        if (op->has_pending()) {
          op->flush([]() {});
        }
      }
    });
  }

  // Fixed cadence, independent of how long evaluation takes.
  loop_->schedule(options_.epoch, [this]() { on_tick(); });
}

void ContinuousQueryExecutor::process_event_tuple(Aq& aq,
                                                  const comm::Tuple& tuple) {
  const CompiledQuery& cq = aq.compiled;
  BindingFrame frame;
  frame.size = cq.binding_aliases.size();
  frame.set(cq.event_binding, &tuple);

  bool satisfied = true;
  for (std::size_t i = 0; i < cq.event_predicates.size(); ++i) {
    if (!eval_pred(cq.event_programs[i], *cq.event_predicates[i], frame,
                   cq.binding_aliases)) {
      satisfied = false;
      break;
    }
  }

  // Edge detection: an event fires when the predicates become true for a
  // device that previously did not satisfy them (the object *started*
  // moving). Level-triggered queries (no sensory predicates) fire every
  // epoch while satisfied.
  bool fire;
  if (aq.compiled.edge_triggered) {
    bool& last = aq.last_state[tuple.source_device()];
    fire = satisfied && !last;
    last = satisfied;
  } else {
    fire = satisfied;
  }
  if (!fire) return;
  fire_event(aq, tuple, frame);
}

// ---- indexed matching path -----------------------------------------------

void ContinuousQueryExecutor::stage_group_batch(
    DeliveryGroup& group, const std::vector<comm::Tuple>& tuples,
    std::uint64_t issue_tick) {
  ++group.deliveries;
  StagedBatch staged;
  staged.group = &group;
  staged.tuples = tuples;  // the broker's fan-out copy dies with the call
  staged.seqs.reserve(tuples.size());
  for (const comm::Tuple& tuple : tuples) {
    staged.seqs.push_back(++group.row_seq[tuple.source_device()]);
  }
  staged.issue_tick = issue_tick;
  staged_.push_back(std::move(staged));
  AORTA_TRACE_INSTANT(tracer_, obs::SpanCat::kEval, "eval:" + group.type,
                      loop_->now(),
                      std::to_string(tuples.size()) + " tuple(s), " +
                          std::to_string(group.members.size()) +
                          " member(s)");
}

void ContinuousQueryExecutor::process_staged() {
  if (staged_.empty()) return;
  std::vector<StagedBatch> staged = std::move(staged_);
  staged_.clear();

  // Probe each tuple, then evaluate the (member, tuple) pairs in global
  // (generation, tuple) order — the exhaustive path's per-subscription
  // order, since subscription ids were handed out in generation order.
  struct Pair {
    std::uint64_t generation;
    std::uint32_t batch;
    std::uint32_t tuple;
    bool candidate;
  };
  std::vector<Pair> pairs;
  std::vector<PredicateIndex::Handle> candidates;
  for (std::size_t b = 0; b < staged.size(); ++b) {
    const StagedBatch& s = staged[b];
    std::size_t indexed =
        s.group->index.size() - s.group->index.residual_size();
    for (std::size_t t = 0; t < s.tuples.size(); ++t) {
      candidates.clear();
      s.group->index.probe(s.tuples[t], &candidates);
      ++index_stats_.probes;
      index_stats_.candidates += candidates.size();
      index_stats_.pruned += indexed - candidates.size();
      for (PredicateIndex::Handle h : candidates) {
        pairs.push_back({h, static_cast<std::uint32_t>(b),
                         static_cast<std::uint32_t>(t), true});
      }
      for (PredicateIndex::Handle h : s.group->index.residuals()) {
        pairs.push_back({h, static_cast<std::uint32_t>(b),
                         static_cast<std::uint32_t>(t), false});
      }
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    if (a.generation != b.generation) return a.generation < b.generation;
    return a.tuple < b.tuple;
  });

  for (const Pair& p : pairs) {
    // Re-resolve per pair: an earlier pair's hooks (row delivery, action
    // traces) may have dropped or replaced members of any group.
    auto it = by_generation_.find(p.generation);
    if (it == by_generation_.end()) continue;
    Aq& aq = *it->second;
    const StagedBatch& s = staged[p.batch];
    if (aq.join_tick >= s.issue_tick) continue;  // joined after issue
    process_event_tuple_indexed(aq, s.tuples[p.tuple], s.seqs[p.tuple],
                                p.candidate);
  }
}

void ContinuousQueryExecutor::process_event_tuple_indexed(
    Aq& aq, const comm::Tuple& tuple, std::uint64_t seq, bool candidate) {
  const CompiledQuery& cq = aq.compiled;
  BindingFrame frame;
  frame.size = cq.binding_aliases.size();
  frame.set(cq.event_binding, &tuple);

  bool satisfied;
  if (candidate && aq.index_exact) {
    // The index constraint covers the whole predicate set: candidacy IS
    // the verdict.
    satisfied = true;
    ++index_stats_.exact_skips;
  } else {
    if (candidate) ++index_stats_.residual_evals;
    satisfied = true;
    for (std::size_t i = 0; i < cq.event_predicates.size(); ++i) {
      if (!eval_pred(cq.event_programs[i], *cq.event_predicates[i], frame,
                     cq.binding_aliases)) {
        satisfied = false;
        break;
      }
    }
  }

  bool fire;
  if (cq.edge_triggered) {
    // Seq-based edge detection (see Aq::last_true_seq): fire when this
    // row satisfies the predicates and the previous delivered row for the
    // device did not.
    auto it = aq.last_true_seq.find(tuple.source_device());
    fire = satisfied &&
           (it == aq.last_true_seq.end() || it->second + 1 != seq);
    if (satisfied) {
      if (it != aq.last_true_seq.end()) {
        it->second = seq;
      } else {
        aq.last_true_seq.emplace(tuple.source_device(), seq);
      }
    }
  } else {
    fire = satisfied;
  }
  if (!fire) return;
  fire_event(aq, tuple, frame);
}

void ContinuousQueryExecutor::fire_event(Aq& aq, const comm::Tuple& tuple,
                                         const BindingFrame& frame) {
  const CompiledQuery& cq = aq.compiled;
  ++aq.stats.events;
  record_trace(TraceEntry{loop_->now(), aq.name, "event",
                          "device " + tuple.source_device() +
                              (tuple.degraded() ? " (degraded)" : "")});

  // Materialize the query's projections against the event tuple — the
  // continuous result stream of a monitoring query.
  if (!cq.projections.empty()) {
    Row row;
    for (std::size_t i = 0; i < cq.projections.size(); ++i) {
      auto v = eval_expr(cq.projection_programs[i], *cq.projections[i], frame,
                         cq.binding_aliases);
      row.emplace_back(cq.projections[i]->to_string(),
                       v.is_ok() ? std::move(v).value() : device::Value{});
    }
    TimestampedRow stamped{loop_->now(), std::move(row), tuple.degraded()};
    if (aq.hooks.on_row) aq.hooks.on_row(aq.name, stamped);
    aq.results.push_back(std::move(stamped));
    while (aq.results.size() > kResultCap) aq.results.pop_front();
  }

  for (const auto& call : cq.actions) {
    // Candidate schema for binding candidate tuples.
    const device::DeviceTypeId& cand_type =
        cq.table_types.at(call.candidate_alias);
    auto schema_it = schemas_.find(cand_type);
    if (schema_it == schemas_.end()) {
      const device::DeviceTypeInfo* info = registry_->type_info(cand_type);
      if (info == nullptr) continue;
      schema_it = schemas_
                      .emplace(cand_type, std::make_unique<comm::Schema>(
                                              comm::Schema::from_catalog(
                                                  info->catalog)))
                      .first;
    }

    std::vector<device::DeviceId> candidates =
        enumerate_candidates(aq, call, frame, *schema_it->second);
    if (candidates.empty()) continue;  // no device covers this event

    // Instantiate the request. Arguments are evaluated against the event
    // tuple; the binding argument (which identifies the executing device)
    // is finalized per selected device at execution time.
    sched::ActionRequest request;
    request.query_id = aq.name;
    request.candidates = std::move(candidates);
    for (std::size_t a = 0; a < call.args.size(); ++a) {
      if (a == call.action->binding_param) {
        request.action_args.push_back(Value{});  // filled at execution
        continue;
      }
      auto v = eval_expr(call.arg_programs[a], *call.args[a], frame,
                         cq.binding_aliases);
      request.action_args.push_back(v.is_ok() ? std::move(v).value() : Value{});
    }
    if (call.action->request_params) {
      Status s = call.action->request_params(request.action_args, &request);
      if (!s.is_ok()) {
        AORTA_LOG(kWarn, "query")
            << aq.name << ": request_params failed: " << s.to_string();
        continue;
      }
    }
    ++aq.stats.requests_issued;
    record_trace(TraceEntry{loop_->now(), aq.name, "request",
                            call.action->name + " with " +
                                std::to_string(request.candidates.size()) +
                                " candidate(s)"});
    operator_for(call.action)->enqueue(std::move(request));
  }
}

std::vector<device::DeviceId> ContinuousQueryExecutor::enumerate_candidates(
    Aq& aq, const CompiledActionCall& call, const BindingFrame& frame,
    const comm::Schema& candidate_schema) {
  const CompiledQuery& cq = aq.compiled;
  std::vector<device::DeviceId> out;

  if (call.candidate_alias == cq.event_alias) {
    // Action on the event device itself (e.g. beep(s.id)).
    const comm::Tuple* event_tuple = frame[cq.event_binding];
    if (event_tuple != nullptr) out.push_back(event_tuple->source_device());
    return out;
  }

  const device::DeviceTypeId& cand_type =
      cq.table_types.at(call.candidate_alias);
  BindingFrame joined = frame;
  for (const device::DeviceId& id : registry_->ids_of_type(cand_type)) {
    const auto* attrs = registry_->static_attrs(id);
    if (attrs == nullptr) continue;
    comm::Tuple cand(&candidate_schema, id);
    for (const auto& [name, value] : *attrs) cand.set_by_name(name, value);

    joined.set(call.candidate_binding, &cand);
    bool ok = true;
    for (std::size_t i = 0; i < cq.join_predicates.size(); ++i) {
      if (!eval_pred(cq.join_programs[i], *cq.join_predicates[i], joined,
                     cq.binding_aliases)) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(id);
  }
  return out;
}

const QueryStats* ContinuousQueryExecutor::query_stats(
    const std::string& name) const {
  auto it = queries_.find(name);
  if (it == queries_.end()) return nullptr;
  const Aq& aq = *it->second;
  if (aq.group != nullptr) {
    // Indexed path: epochs derives from the group's delivery count so
    // per-tick work stays O(groups), not O(members). The base discounts
    // deliveries that predate this member; the clamp covers the window
    // where a discounted in-flight batch has not landed yet.
    std::uint64_t delivered = aq.group->deliveries;
    aq.stats.epochs =
        delivered >= aq.epochs_base ? delivered - aq.epochs_base : 0;
  }
  return &aq.stats;
}

std::size_t ContinuousQueryExecutor::index_entries() const {
  std::size_t n = 0;
  for (const auto& [key, group] : groups_) n += group->index.size();
  return n;
}

void ContinuousQueryExecutor::set_index_metrics(obs::MetricsRegistry* metrics,
                                                std::string prefix) {
  index_metrics_ = obs::MetricsRegistry::Scoped(metrics, std::move(prefix));
  if (!index_metrics_.live()) return;
  index_metrics_.enroll_counter("probes", &index_stats_.probes);
  index_metrics_.enroll_counter("candidates", &index_stats_.candidates);
  index_metrics_.enroll_counter("residual_evals",
                                &index_stats_.residual_evals);
  index_metrics_.enroll_counter("exact_skips", &index_stats_.exact_skips);
  index_metrics_.enroll_counter("pruned", &index_stats_.pruned);
  index_metrics_.enroll_gauge("entries", [this]() {
    return static_cast<std::int64_t>(index_entries());
  });
  index_metrics_.enroll_gauge("groups", [this]() {
    return static_cast<std::int64_t>(groups_.size());
  });
}

void ContinuousQueryExecutor::set_agg_metrics(obs::MetricsRegistry* metrics,
                                              std::string eval_prefix,
                                              std::string cache_prefix) {
  agg_eval_metrics_ =
      obs::MetricsRegistry::Scoped(metrics, std::move(eval_prefix));
  agg_cache_metrics_ =
      obs::MetricsRegistry::Scoped(metrics, std::move(cache_prefix));
  const AggStats& stats = agg_cache_->stats();
  if (agg_eval_metrics_.live()) {
    agg_eval_metrics_.enroll_counter("tuples_evaluated",
                                     &stats.tuples_evaluated);
    agg_eval_metrics_.enroll_counter("emissions", &stats.emissions);
    agg_eval_metrics_.enroll_counter("panes_closed", &stats.panes_closed);
  }
  if (agg_cache_metrics_.live()) {
    agg_cache_metrics_.enroll_counter("hits", &stats.hits);
    agg_cache_metrics_.enroll_counter("misses", &stats.misses);
    agg_cache_metrics_.enroll_counter("subsumptions", &stats.subsumptions);
    agg_cache_metrics_.enroll_gauge("live_windows", [this]() {
      return static_cast<std::int64_t>(agg_cache_->entry_count());
    });
  }
}

QueryActionStats ContinuousQueryExecutor::action_stats(
    const std::string& name) const {
  QueryActionStats total;
  for (const auto& [op_name, op] : operators_) {
    auto it = op->query_stats().find(name);
    if (it == op->query_stats().end()) continue;
    total.requests += it->second.requests;
    total.usable += it->second.usable;
    total.degraded += it->second.degraded;
    total.failed += it->second.failed;
    total.no_candidate += it->second.no_candidate;
  }
  return total;
}

std::vector<TimestampedRow> ContinuousQueryExecutor::recent_results(
    const std::string& name) const {
  auto it = queries_.find(name);
  if (it == queries_.end()) return {};
  return {it->second->results.begin(), it->second->results.end()};
}

void ContinuousQueryExecutor::record_trace(TraceEntry entry) {
  if (trace_sink_) trace_sink_(entry);
  trace_.push_back(std::move(entry));
  while (trace_.size() > kTraceCap) trace_.pop_front();
}

std::vector<const ActionOperator*> ContinuousQueryExecutor::operators() const {
  std::vector<const ActionOperator*> out;
  for (const auto& [name, op] : operators_) out.push_back(op.get());
  return out;
}

void ContinuousQueryExecutor::run_select(
    const SelectStmt& stmt,
    std::function<void(Result<std::vector<Row>>)> done) {
  if (!stmt.group_by.empty() || stmt.window_s > 0.0) {
    done(Result<std::vector<Row>>(aorta::util::invalid_argument_error(
        "GROUP BY / WINDOW apply to continuous queries (CREATE AQ), not "
        "one-shot SELECT")));
    return;
  }
  auto compiled = compile(stmt, *catalog_, *registry_, /*one_shot=*/true);
  if (!compiled.is_ok()) {
    done(Result<std::vector<Row>>(compiled.status()));
    return;
  }
  auto q = std::make_shared<CompiledQuery>(std::move(compiled).value());
  count_programs(*q);

  // One live acquisition per table (one-shot SELECTs read sensory
  // attributes on every table, unlike continuous candidate enumeration
  // which is restricted to the static cache). Acquisitions go through the
  // shared plane, so concurrent SELECTs — and SELECTs racing an AQ's
  // epoch batch — dedupe against in-flight reads and the freshness cache.
  struct MultiScan {
    std::vector<std::string> aliases;
    std::vector<std::vector<comm::Tuple>> tuples;
    std::size_t outstanding = 0;
  };
  auto multi = std::make_shared<MultiScan>();
  for (const auto& ref : q->tables) multi->aliases.push_back(ref.alias);
  multi->tuples.resize(multi->aliases.size());
  multi->outstanding = multi->aliases.size();

  // Aggregate projections (COUNT/SUM/AVG/MIN/MAX) collapse the result to
  // one row. Mixing aggregates with plain projections is rejected (no
  // GROUP BY support).
  struct Agg {
    enum class Kind { kCount, kSum, kAvg, kMin, kMax };
    Kind kind;
    const Expr* arg;  // null for COUNT(*)
    // Compiled form of `arg` (aggregate calls themselves never lower —
    // count/sum/... are not scalar functions — but their argument does).
    std::optional<EvalProgram> arg_program;
    std::string label;
    double acc = 0.0;
    double low = 0.0;
    double high = 0.0;
    std::size_t n = 0;
  };
  auto aggs = std::make_shared<std::vector<Agg>>();
  {
    std::size_t plain = 0;
    for (const auto& proj : q->projections) {
      if (proj->kind != Expr::Kind::kFuncCall) {
        ++plain;
        continue;
      }
      std::string fn = aorta::util::to_lower(proj->func_name);
      Agg agg;
      if (fn == "count") agg.kind = Agg::Kind::kCount;
      else if (fn == "sum") agg.kind = Agg::Kind::kSum;
      else if (fn == "avg") agg.kind = Agg::Kind::kAvg;
      else if (fn == "min") agg.kind = Agg::Kind::kMin;
      else if (fn == "max") agg.kind = Agg::Kind::kMax;
      else {
        ++plain;
        continue;
      }
      if (proj->args.size() > 1) {
        done(Result<std::vector<Row>>(aorta::util::invalid_argument_error(
            "aggregate takes at most one argument: " + proj->to_string())));
        return;
      }
      agg.arg = proj->args.empty() ? nullptr : proj->args[0].get();
      if (agg.arg != nullptr && agg.arg->kind == Expr::Kind::kColumnRef &&
          agg.arg->column == "*") {
        agg.arg = nullptr;  // COUNT(*)
      }
      if (agg.kind != Agg::Kind::kCount && agg.arg == nullptr) {
        done(Result<std::vector<Row>>(aorta::util::invalid_argument_error(
            "aggregate needs a column argument: " + proj->to_string())));
        return;
      }
      if (agg.arg != nullptr) {
        auto p = EvalProgram::compile(*agg.arg, q->binding_aliases,
                                      q->schema_ptrs(), catalog_->functions());
        if (p.is_ok()) {
          agg.arg_program = std::move(p).value();
          ++eval_stats_.programs_compiled;
        } else {
          ++eval_stats_.programs_fallback;
        }
      }
      agg.label = proj->to_string();
      aggs->push_back(std::move(agg));
    }
    if (!aggs->empty() && plain > 0) {
      done(Result<std::vector<Row>>(aorta::util::invalid_argument_error(
          "cannot mix aggregates with plain projections (no GROUP BY)")));
      return;
    }
  }

  auto finish = [this, q, multi, aggs, done = std::move(done)]() {
    std::vector<Row> rows;

    // SELECT * renders bindings in alias-sorted order (stable across the
    // FROM clause's phrasing).
    std::vector<std::size_t> star_order(multi->aliases.size());
    for (std::size_t i = 0; i < star_order.size(); ++i) star_order[i] = i;
    std::sort(star_order.begin(), star_order.end(),
              [&](std::size_t a, std::size_t b) {
                return multi->aliases[a] < multi->aliases[b];
              });

    auto emit = [&](const BindingFrame& frame) {
      bool ok = true;
      for (std::size_t i = 0; i < q->event_predicates.size(); ++i) {
        if (!eval_pred(q->event_programs[i], *q->event_predicates[i], frame,
                       q->binding_aliases)) {
          ok = false;
        }
      }
      for (std::size_t i = 0; i < q->join_predicates.size(); ++i) {
        if (!eval_pred(q->join_programs[i], *q->join_predicates[i], frame,
                       q->binding_aliases)) {
          ok = false;
        }
      }
      if (!ok) return;
      if (!aggs->empty()) {
        for (Agg& agg : *aggs) {
          double x = 0.0;
          if (agg.arg != nullptr) {
            auto v = eval_expr(agg.arg_program, *agg.arg, frame,
                               q->binding_aliases);
            if (!v.is_ok() ||
                std::holds_alternative<std::monostate>(v.value())) {
              continue;  // NULLs never contribute
            }
            if (!device::value_as_double(v.value(), &x)) {
              // Non-numeric values still count for COUNT(col).
              if (agg.kind != Agg::Kind::kCount) continue;
              x = 0.0;
            }
          }
          if (agg.n == 0) {
            agg.low = x;
            agg.high = x;
          }
          agg.acc += x;
          agg.low = std::min(agg.low, x);
          agg.high = std::max(agg.high, x);
          ++agg.n;
        }
        return;
      }
      Row row;
      for (std::size_t p = 0; p < q->projections.size(); ++p) {
        const auto& proj = q->projections[p];
        if (proj->kind == Expr::Kind::kColumnRef && proj->column == "*") {
          for (std::size_t k : star_order) {
            const comm::Tuple* tuple = frame[k];
            if (tuple == nullptr || tuple->schema() == nullptr) continue;
            for (std::size_t i = 0; i < tuple->schema()->size(); ++i) {
              row.emplace_back(
                  multi->aliases[k] + "." + tuple->schema()->fields()[i].name,
                  tuple->at(i));
            }
          }
          continue;
        }
        auto v = eval_expr(q->projection_programs[p], *proj, frame,
                           q->binding_aliases);
        row.emplace_back(proj->to_string(),
                         v.is_ok() ? std::move(v).value() : Value{});
      }
      rows.push_back(std::move(row));
    };

    // Nested-loop join over the scanned tables (at most two by the
    // compiler's restriction). Frame slots follow the FROM-clause order,
    // which is exactly multi->aliases' order.
    BindingFrame frame;
    frame.size = multi->aliases.size();
    if (multi->tuples.size() == 1) {
      for (const comm::Tuple& tuple : multi->tuples[0]) {
        frame.set(0, &tuple);
        emit(frame);
      }
    } else {
      for (const comm::Tuple& a : multi->tuples[0]) {
        for (const comm::Tuple& b : multi->tuples[1]) {
          frame.set(0, &a);
          frame.set(1, &b);
          emit(frame);
        }
      }
    }
    if (!aggs->empty()) {
      Row row;
      for (const Agg& agg : *aggs) {
        Value v;
        switch (agg.kind) {
          case Agg::Kind::kCount:
            v = static_cast<std::int64_t>(agg.n);
            break;
          case Agg::Kind::kSum:
            v = agg.n == 0 ? Value{} : Value{agg.acc};
            break;
          case Agg::Kind::kAvg:
            v = agg.n == 0 ? Value{}
                           : Value{agg.acc / static_cast<double>(agg.n)};
            break;
          case Agg::Kind::kMin:
            v = agg.n == 0 ? Value{} : Value{agg.low};
            break;
          case Agg::Kind::kMax:
            v = agg.n == 0 ? Value{} : Value{agg.high};
            break;
        }
        row.emplace_back(agg.label, std::move(v));
      }
      rows.clear();
      rows.push_back(std::move(row));
    }
    done(std::move(rows));
  };

  for (std::size_t t = 0; t < multi->aliases.size(); ++t) {
    std::set<std::string> needed;
    auto it = q->needed_attrs.find(multi->aliases[t]);
    if (it != q->needed_attrs.end()) needed = it->second;
    broker_->acquire_once(
        q->table_types.at(multi->aliases[t]), std::move(needed),
        [multi, t, finish](std::vector<comm::Tuple> tuples) {
          multi->tuples[t] = std::move(tuples);
          if (--multi->outstanding == 0) finish();
        });
  }
}

}  // namespace aorta::query
