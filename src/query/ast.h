// Abstract syntax for the declarative interface.
//
// Statements supported (Section 2.2's examples plus management verbs):
//   CREATE ACTION name(Type p1, ...) AS "lib/..." PROFILE "profiles/..."
//   CREATE AQ name [EVERY <seconds>] AS SELECT action(args...) FROM t a [, t2 b] WHERE expr
//   SELECT cols/exprs FROM t a [, t2 b] [WHERE expr]      (one-shot)
//   DROP AQ name
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "device/types.h"

namespace aorta::query {

// ------------------------------------------------------------ expressions

enum class BinaryOp {
  kEq, kNe, kLt, kLe, kGt, kGe,  // comparisons
  kAdd, kSub, kMul, kDiv,        // arithmetic
  kAnd, kOr,                     // logical
};

std::string_view binary_op_name(BinaryOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind { kLiteral, kColumnRef, kFuncCall, kBinary, kNot };
  Kind kind = Kind::kLiteral;

  // kLiteral
  device::Value literal;

  // kColumnRef: qualifier may be empty ("accel_x" vs "s.accel_x").
  std::string qualifier;
  std::string column;

  // kFuncCall
  std::string func_name;
  std::vector<ExprPtr> args;

  // kBinary / kNot
  BinaryOp op = BinaryOp::kEq;
  ExprPtr lhs;
  ExprPtr rhs;  // kNot uses lhs only

  // Builders.
  static ExprPtr make_literal(device::Value v);
  static ExprPtr make_column(std::string qualifier, std::string column);
  static ExprPtr make_func(std::string name, std::vector<ExprPtr> args);
  static ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr make_not(ExprPtr operand);

  ExprPtr clone() const;
  std::string to_string() const;
};

// ------------------------------------------------------------- statements

struct TableRef {
  std::string table;  // virtual device table: sensor / camera / phone
  std::string alias;  // defaults to the table name
};

struct SelectStmt {
  std::vector<ExprPtr> select_list;  // columns, scalar exprs, or action calls
  std::vector<TableRef> from;
  ExprPtr where;  // may be null

  // Continuous aggregation clauses (DESIGN.md §15). GROUP BY partitions
  // window aggregates by the listed columns; WINDOW w [EVERY e] makes the
  // aggregates sliding (window w seconds, advancing every e seconds;
  // omitted EVERY means tumbling, e == w). Both are 0 when absent, which
  // the executor treats as a per-epoch window (w == e == one AQ epoch).
  std::vector<ExprPtr> group_by;
  double window_s = 0.0;
  double every_s = 0.0;
};

struct CreateActionStmt {
  std::string name;
  struct Param {
    std::string type_name;  // String | Double | Int | Location
    std::string name;
  };
  std::vector<Param> params;
  std::string library_path;  // AS "lib/users/sendphoto.dll"
  std::string profile_path;  // PROFILE "profiles/users/sendphoto.xml"
};

struct CreateAqStmt {
  std::string name;
  double epoch_s = 0.0;  // EVERY clause; 0 = engine default
  SelectStmt select;
};

struct DropAqStmt {
  std::string name;
};

// SHOW QUERIES | SHOW ACTIONS | SHOW DEVICES: introspection over the
// catalog and the registry through the declarative interface.
struct ShowStmt {
  enum class Target { kQueries, kActions, kDevices };
  Target target = Target::kQueries;
};

struct Statement {
  enum class Kind {
    kSelect, kCreateAction, kCreateAq, kDropAq, kShow, kExplain
  };
  Kind kind = Kind::kSelect;
  SelectStmt select;
  CreateActionStmt create_action;
  CreateAqStmt create_aq;
  DropAqStmt drop_aq;
  ShowStmt show;
};

}  // namespace aorta::query
