#include "query/ast.h"

#include "util/strings.h"

namespace aorta::query {

std::string_view binary_op_name(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

ExprPtr Expr::make_literal(device::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::make_column(std::string qualifier, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr Expr::make_func(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kFuncCall;
  e->func_name = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr Expr::make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr Expr::make_not(ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kNot;
  e->lhs = std::move(operand);
  return e;
}

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->qualifier = qualifier;
  e->column = column;
  e->func_name = func_name;
  for (const auto& a : args) e->args.push_back(a->clone());
  e->op = op;
  if (lhs != nullptr) e->lhs = lhs->clone();
  if (rhs != nullptr) e->rhs = rhs->clone();
  return e;
}

std::string Expr::to_string() const {
  switch (kind) {
    case Kind::kLiteral:
      return device::value_to_string(literal);
    case Kind::kColumnRef:
      return qualifier.empty() ? column : qualifier + "." + column;
    case Kind::kFuncCall: {
      std::string out = func_name + "(";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->to_string();
      }
      return out + ")";
    }
    case Kind::kBinary:
      return "(" + lhs->to_string() + " " + std::string(binary_op_name(op)) +
             " " + rhs->to_string() + ")";
    case Kind::kNot:
      return "(NOT " + lhs->to_string() + ")";
  }
  return "?";
}

}  // namespace aorta::query
