// Shared incremental aggregation for continuous queries (DESIGN.md §15).
//
// The ScanBroker dedupes *reads*; this cache dedupes *computation*. Every
// continuous aggregate AQ (SELECT avg(s.temp) ... GROUP BY s.hops WINDOW
// 30s EVERY 5s) canonicalizes to a query hash over its event type, sample
// period and phase, window/slide shape, normalized predicate set and
// normalized aggregate list — everything EXCEPT the GROUP BY columns. AQs
// with the same hash share one cache entry: one broker subscription, one
// predicate+argument evaluation per delivered tuple, one set of
// incremental pane partials. Distinct GROUP BY column lists attach as
// *groupings* of the entry (the subsumption rule: a grouping may attach
// only when its columns are a subset of the attributes the entry's
// subscription already acquires), each accumulating its own group map from
// the same once-evaluated tuples — so 1000 dashboard tenants watching the
// same building aggregate cost one evaluation per tuple, not 1000.
//
// Window semantics are defined in *samples* (one sample = one AQ epoch
// batch): a pane is `slide` consecutive samples, a window is
// `window/slide` consecutive panes, and emission happens at every pane
// close, which coincides with the engine's epoch barrier for the batch
// that completed the pane. SUM/COUNT/AVG re-fold the ≤ window/slide
// retained pane partials at emission; MIN/MAX keep per-group monotonic
// deques of per-pane extrema so a window extremum is a deque front, not a
// rescan. Subscribers that join mid-stream only see windows made entirely
// of panes after their join (min_pane warm-up), which keeps a shared
// entry's output byte-identical to the private entry the
// `Config::aggregate_cache=false` ablation would have built.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/scan_broker.h"
#include "query/compile.h"
#include "util/event_loop.h"

namespace aorta::query {

struct TimestampedRow;  // executor.h

// Aggregate-cache sharing counters (`broker.agg_cache.*`) and evaluation
// counters (`eval.agg.*`). A miss creates a new entry; a hit attaches to
// an existing entry + existing grouping; a subsumption attaches a new
// grouping to an existing entry. tuples_evaluated counts once per
// (entry, delivered tuple) — the quantity N co-hashed AQs would each have
// paid without the cache.
struct AggStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t subsumptions = 0;
  std::uint64_t tuples_evaluated = 0;
  std::uint64_t emissions = 0;     // rows emitted to subscribers
  std::uint64_t panes_closed = 0;  // pane boundaries processed
};

class AggregateCache {
 public:
  struct Options {
    // false = the Config::aggregate_cache=false ablation: the attach key
    // includes the AQ generation, so every AQ gets a private entry and
    // runs the identical accumulation machinery without sharing.
    bool shared = true;
  };

  // Receives every emitted window row for the named AQ (the executor
  // routes it into hooks.on_row and the bounded results ring).
  using EmitFn =
      std::function<void(const std::string& name, const TimestampedRow& row)>;

  AggregateCache(comm::ScanBroker* broker, aorta::util::EventLoop* loop,
                 const Catalog* catalog, Options options);
  ~AggregateCache();

  // Does the compiled query's select list contain aggregate calls?
  static bool has_aggregates(const CompiledQuery& compiled);

  // Attach a continuous aggregate AQ. `epoch_ticks` is its sample period
  // in engine ticks, `sample_period_s` the same period in seconds (window
  // validation). Fails on invalid aggregate shape (multi-table, embedded
  // actions, non-grouped plain projections, windows that don't divide).
  aorta::util::Status attach(const std::string& name, std::uint64_t generation,
                             const CompiledQuery& compiled,
                             std::uint64_t epoch_ticks, double sample_period_s,
                             EmitFn emit);

  // Detach by registration generation. Empty groupings and entries are
  // torn down eagerly (the churn guarantee: after the last subscriber
  // leaves, no entry, subscription or group state survives).
  void detach(std::uint64_t generation);

  const AggStats& stats() const { return stats_; }
  std::size_t entry_count() const { return entries_.size(); }
  std::size_t subscriber_count() const { return subs_by_gen_.size(); }

 private:
  enum class AggOp : std::uint8_t { kCount, kSum, kAvg, kMin, kMax };

  // One pane's accumulation for one aggregate argument of one group.
  // `n_num` counts numeric contributions (sum/avg/min/max domain), `cnt`
  // counts non-null contributions (count domain) — mirroring the one-shot
  // aggregate's NULL/non-numeric skip rules exactly.
  struct PanePartial {
    double sum = 0.0;
    double low = 0.0;
    double high = 0.0;
    std::uint64_t n_num = 0;
    std::uint64_t cnt = 0;
    bool degraded = false;
  };

  // Sliding state for one aggregate argument of one group: the open pane,
  // the ring of closed panes still inside some window, and the monotonic
  // min/max deques over those panes.
  struct ArgWindow {
    PanePartial cur;
    std::deque<std::pair<std::uint64_t, PanePartial>> panes;
    std::deque<std::pair<std::uint64_t, double>> mins;  // increasing
    std::deque<std::pair<std::uint64_t, double>> maxs;  // decreasing
  };

  struct GroupState {
    std::vector<device::Value> values;  // the group's key column values
    std::vector<ArgWindow> args;        // parallel to Entry::args
  };

  // One distinct GROUP BY column list over an entry. Grouping the same
  // once-evaluated tuples by a coarser (or different) key costs one map
  // update per tuple, not a re-evaluation.
  struct Grouping {
    std::vector<std::string> cols;  // event-table column names, clause order
    std::map<std::string, GroupState> groups;  // encoded key -> state
    std::size_t subscribers = 0;
  };

  // One select-list item of a subscriber, rendered per emitted row.
  struct SubItem {
    bool is_group = false;
    std::size_t index = 0;  // grouping col index / entry arg index
    AggOp op = AggOp::kCount;
    std::string label;  // the subscriber's own projection text
  };

  struct Entry;

  struct Subscriber {
    std::string name;
    std::uint64_t generation = 0;
    std::uint64_t min_pane = 0;  // first pane fully after the join
    std::vector<SubItem> items;
    EmitFn emit;
    Entry* entry = nullptr;
    Grouping* grouping = nullptr;
  };

  // One normalized aggregate argument, evaluated once per passing tuple.
  // `expr == nullptr` is the COUNT(*) pseudo-argument.
  struct ArgCol {
    std::string key;  // canonical text ("e.temp", "*")
    ExprPtr expr;
    std::optional<EvalProgram> program;
  };

  struct Entry {
    std::uint64_t id = 0;
    std::string hash_key;  // canonical hash input (+generation if !shared)
    device::DeviceTypeId type;
    std::uint64_t period = 1;  // sample period in engine ticks
    std::uint64_t phase = 0;
    std::uint64_t window = 1;  // in samples
    std::uint64_t slide = 1;   // in samples
    std::uint64_t window_panes = 1;  // window / slide
    std::set<std::string> needed;    // attrs the subscription acquires
    comm::Schema schema;             // event-table schema (owned)
    std::vector<ExprPtr> preds;      // canonicalized to alias "e"
    std::vector<std::optional<EvalProgram>> pred_programs;
    std::vector<ArgCol> args;
    std::vector<std::unique_ptr<Grouping>> groupings;
    std::vector<std::uint64_t> subs;  // subscriber generations, ascending
    comm::ScanBroker::SubscriptionId subscription = 0;
  };

  // The normalized shape distilled from one AQ's compiled query; feeds
  // both the hash and the entry/subscriber construction.
  struct Spec {
    std::vector<ExprPtr> preds;             // alias-normalized clones
    std::vector<std::string> pred_keys;     // sorted canonical texts
    std::vector<ExprPtr> arg_exprs;         // normalized distinct args
    std::vector<std::string> arg_keys;      // parallel canonical texts
    std::vector<std::string> group_cols;    // clause order
    std::vector<SubItem> items;             // select-list rendering plan
    std::uint64_t window = 1;               // samples
    std::uint64_t slide = 1;                // samples
    std::set<std::string> needed;           // full pushdown set
  };

  aorta::util::Status build_spec(const CompiledQuery& compiled,
                                 double sample_period_s, Spec* spec) const;

  void on_batch(std::uint64_t entry_id, const std::vector<comm::Tuple>& tuples,
                std::uint64_t issue_tick);
  void close_pane(Entry& entry, std::uint64_t pane,
                  std::vector<std::pair<Subscriber*, TimestampedRow>>* out);
  device::Value finalize(const GroupState& group, const SubItem& item,
                         bool* degraded) const;

  aorta::util::Result<device::Value> eval_arg(const ArgCol& arg,
                                              const comm::Tuple& tuple) const;
  bool eval_pred(const Entry& entry, std::size_t i,
                 const comm::Tuple& tuple) const;

  comm::ScanBroker* broker_;
  aorta::util::EventLoop* loop_;
  const Catalog* catalog_;
  Options options_;

  std::map<std::uint64_t, std::unique_ptr<Entry>> entries_;  // by entry id
  // Entries per hash, attach order. Usually one; a second appears when a
  // co-hashed AQ groups by a column outside the first entry's subscribed
  // attribute set (the subsumption rule refuses the attach).
  std::map<std::string, std::vector<std::uint64_t>> by_hash_;
  std::map<std::uint64_t, std::unique_ptr<Subscriber>> subs_by_gen_;
  std::uint64_t next_entry_id_ = 1;
  AggStats stats_;
};

}  // namespace aorta::query
