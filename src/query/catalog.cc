#include "query/catalog.h"

namespace aorta::query {

using aorta::util::Status;

Status Catalog::register_action(ActionDef action) {
  if (action.name.empty()) {
    return aorta::util::invalid_argument_error("action needs a name");
  }
  auto [it, inserted] = actions_.emplace(action.name, std::move(action));
  if (!inserted) {
    return aorta::util::already_exists_error("action already registered: " +
                                             it->first);
  }
  return Status::ok();
}

const ActionDef* Catalog::find_action(const std::string& name) const {
  auto it = actions_.find(name);
  return it == actions_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::action_names() const {
  std::vector<std::string> out;
  for (const auto& [name, def] : actions_) out.push_back(name);
  return out;
}

Status Catalog::bind_action_impl(const std::string& name, ActionImpl impl) {
  auto it = actions_.find(name);
  if (it == actions_.end()) {
    return aorta::util::not_found_error("no such action: " + name);
  }
  it->second.impl = std::move(impl);
  return Status::ok();
}

std::shared_ptr<ProfileCostModel> ProfileCostModel::from_profile(
    const device::ActionProfile& profile,
    const device::AtomicOpCostTable& op_costs) {
  double estimate = profile.estimate_cost_s(op_costs, nullptr);
  return std::make_shared<ProfileCostModel>(op_costs, estimate);
}

}  // namespace aorta::query
