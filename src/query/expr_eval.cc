#include "query/expr_eval.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/strings.h"

namespace aorta::query {

using aorta::util::Result;
using aorta::util::Status;
using device::Value;

Status FunctionRegistry::add(std::string name, ScalarFn fn) {
  auto [it, inserted] = fns_.emplace(std::move(name), std::move(fn));
  if (!inserted) {
    return aorta::util::already_exists_error("function already registered: " +
                                             it->first);
  }
  return Status::ok();
}

const ScalarFn* FunctionRegistry::find(std::string_view name) const {
  auto it = fns_.find(name);
  return it == fns_.end() ? nullptr : &it->second;
}

std::vector<std::string> FunctionRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [name, fn] : fns_) out.push_back(name);
  return out;
}

void Env::bind(const std::string& alias, const comm::Tuple* tuple) {
  auto it = std::lower_bound(
      bindings_.begin(), bindings_.end(), alias,
      [](const Binding& b, const std::string& a) { return b.first < a; });
  if (it != bindings_.end() && it->first == alias) {
    it->second = tuple;
    return;
  }
  bindings_.insert(it, Binding{alias, tuple});
}

const comm::Tuple* Env::lookup(std::string_view alias) const {
  for (const Binding& b : bindings_) {
    if (b.first == alias) return b.second;
  }
  return nullptr;
}

namespace {

Result<Value> resolve_column(const Expr& expr, const Env& env) {
  if (!expr.qualifier.empty()) {
    const comm::Tuple* tuple = env.lookup(expr.qualifier);
    if (tuple == nullptr) {
      return Result<Value>(aorta::util::not_found_error(
          "unbound table alias: " + expr.qualifier));
    }
    return tuple->get(expr.column);
  }
  // Unqualified: search all bindings; must match exactly one schema.
  const comm::Tuple* found = nullptr;
  for (const auto& [alias, tuple] : env.bindings()) {
    if (tuple != nullptr && tuple->schema() != nullptr &&
        tuple->schema()->index_of(expr.column).has_value()) {
      if (found != nullptr) {
        return Result<Value>(aorta::util::invalid_argument_error(
            "ambiguous column: " + expr.column));
      }
      found = tuple;
    }
  }
  if (found == nullptr) {
    return Result<Value>(
        aorta::util::not_found_error("unknown column: " + expr.column));
  }
  return found->get(expr.column);
}

bool is_null(const Value& v) { return std::holds_alternative<std::monostate>(v); }

}  // namespace

Result<Value> compare_values(BinaryOp op, const Value& a, const Value& b) {
  if (is_null(a) || is_null(b)) return Value{false};

  // Numeric comparison when both coerce.
  double da, db;
  if (device::value_as_double(a, &da) && device::value_as_double(b, &db)) {
    switch (op) {
      case BinaryOp::kEq: return Value{da == db};
      case BinaryOp::kNe: return Value{da != db};
      case BinaryOp::kLt: return Value{da < db};
      case BinaryOp::kLe: return Value{da <= db};
      case BinaryOp::kGt: return Value{da > db};
      case BinaryOp::kGe: return Value{da >= db};
      default: break;
    }
  }
  // String comparison.
  const std::string* sa = std::get_if<std::string>(&a);
  const std::string* sb = std::get_if<std::string>(&b);
  if (sa != nullptr && sb != nullptr) {
    switch (op) {
      case BinaryOp::kEq: return Value{*sa == *sb};
      case BinaryOp::kNe: return Value{*sa != *sb};
      case BinaryOp::kLt: return Value{*sa < *sb};
      case BinaryOp::kLe: return Value{*sa <= *sb};
      case BinaryOp::kGt: return Value{*sa > *sb};
      case BinaryOp::kGe: return Value{*sa >= *sb};
      default: break;
    }
  }
  // Location equality.
  const device::Location* la = std::get_if<device::Location>(&a);
  const device::Location* lb = std::get_if<device::Location>(&b);
  if (la != nullptr && lb != nullptr &&
      (op == BinaryOp::kEq || op == BinaryOp::kNe)) {
    bool eq = *la == *lb;
    return Value{op == BinaryOp::kEq ? eq : !eq};
  }
  return Result<Value>(aorta::util::invalid_argument_error(
      "incomparable values: " + device::value_to_string(a) + " vs " +
      device::value_to_string(b)));
}

Result<Value> arithmetic_values(BinaryOp op, const Value& a, const Value& b) {
  if (is_null(a) || is_null(b)) return Value{};
  double da, db;
  if (!device::value_as_double(a, &da) || !device::value_as_double(b, &db)) {
    // String concatenation with '+'.
    const std::string* sa = std::get_if<std::string>(&a);
    const std::string* sb = std::get_if<std::string>(&b);
    if (op == BinaryOp::kAdd && sa != nullptr && sb != nullptr) {
      return Value{*sa + *sb};
    }
    return Result<Value>(aorta::util::invalid_argument_error(
        "non-numeric operand to arithmetic"));
  }
  switch (op) {
    case BinaryOp::kAdd: return Value{da + db};
    case BinaryOp::kSub: return Value{da - db};
    case BinaryOp::kMul: return Value{da * db};
    case BinaryOp::kDiv:
      if (db == 0.0) return Value{};  // NULL on division by zero
      return Value{da / db};
    default:
      return Result<Value>(aorta::util::internal_error("bad arithmetic op"));
  }
}

Result<Value> eval(const Expr& expr, const Env& env,
                   const FunctionRegistry& functions) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kColumnRef:
      return resolve_column(expr, env);
    case Expr::Kind::kFuncCall: {
      const ScalarFn* fn = functions.find(expr.func_name);
      if (fn == nullptr) {
        return Result<Value>(aorta::util::not_found_error(
            "unknown function: " + expr.func_name));
      }
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const auto& arg : expr.args) {
        auto v = eval(*arg, env, functions);
        if (!v.is_ok()) return v;
        args.push_back(std::move(v).value());
      }
      return (*fn)(args);
    }
    case Expr::Kind::kBinary: {
      if (expr.op == BinaryOp::kAnd || expr.op == BinaryOp::kOr) {
        auto lhs = eval(*expr.lhs, env, functions);
        if (!lhs.is_ok()) return lhs;
        bool l = device::value_truthy(lhs.value());
        // Short-circuit.
        if (expr.op == BinaryOp::kAnd && !l) return Value{false};
        if (expr.op == BinaryOp::kOr && l) return Value{true};
        auto rhs = eval(*expr.rhs, env, functions);
        if (!rhs.is_ok()) return rhs;
        return Value{device::value_truthy(rhs.value())};
      }
      auto lhs = eval(*expr.lhs, env, functions);
      if (!lhs.is_ok()) return lhs;
      auto rhs = eval(*expr.rhs, env, functions);
      if (!rhs.is_ok()) return rhs;
      switch (expr.op) {
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return compare_values(expr.op, lhs.value(), rhs.value());
        default:
          return arithmetic_values(expr.op, lhs.value(), rhs.value());
      }
    }
    case Expr::Kind::kNot: {
      auto operand = eval(*expr.lhs, env, functions);
      if (!operand.is_ok()) return operand;
      return Value{!device::value_truthy(operand.value())};
    }
  }
  return Result<Value>(aorta::util::internal_error("bad expression kind"));
}

bool eval_predicate(const Expr& expr, const Env& env,
                    const FunctionRegistry& functions) {
  auto v = eval(expr, env, functions);
  return v.is_ok() && device::value_truthy(v.value());
}

Status collect_aliases(const Expr& expr,
                       const std::map<std::string, const comm::Schema*>& schemas,
                       std::set<std::string>* aliases) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return Status::ok();
    case Expr::Kind::kColumnRef: {
      if (expr.column == "*") return Status::ok();
      if (!expr.qualifier.empty()) {
        auto it = schemas.find(expr.qualifier);
        if (it == schemas.end()) {
          return aorta::util::not_found_error("unknown table alias: " +
                                              expr.qualifier);
        }
        if (it->second != nullptr &&
            !it->second->index_of(expr.column).has_value()) {
          return aorta::util::not_found_error(
              "table " + expr.qualifier + " has no column " + expr.column);
        }
        aliases->insert(expr.qualifier);
        return Status::ok();
      }
      std::string found;
      for (const auto& [alias, schema] : schemas) {
        if (schema != nullptr && schema->index_of(expr.column).has_value()) {
          if (!found.empty()) {
            return aorta::util::invalid_argument_error("ambiguous column: " +
                                                       expr.column);
          }
          found = alias;
        }
      }
      if (found.empty()) {
        return aorta::util::not_found_error("unknown column: " + expr.column);
      }
      aliases->insert(found);
      return Status::ok();
    }
    case Expr::Kind::kFuncCall: {
      for (const auto& arg : expr.args) {
        AORTA_RETURN_IF_ERROR(collect_aliases(*arg, schemas, aliases));
      }
      return Status::ok();
    }
    case Expr::Kind::kBinary:
      AORTA_RETURN_IF_ERROR(collect_aliases(*expr.lhs, schemas, aliases));
      return collect_aliases(*expr.rhs, schemas, aliases);
    case Expr::Kind::kNot:
      return collect_aliases(*expr.lhs, schemas, aliases);
  }
  return Status::ok();
}

void collect_columns(const Expr& expr,
                     const std::map<std::string, const comm::Schema*>& schemas,
                     std::map<std::string, std::set<std::string>>* columns) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return;
    case Expr::Kind::kColumnRef: {
      if (expr.column == "*") return;
      if (!expr.qualifier.empty()) {
        (*columns)[expr.qualifier].insert(expr.column);
        return;
      }
      for (const auto& [alias, schema] : schemas) {
        if (schema != nullptr && schema->index_of(expr.column).has_value()) {
          (*columns)[alias].insert(expr.column);
          return;  // first match; ambiguity reported by collect_aliases
        }
      }
      return;
    }
    case Expr::Kind::kFuncCall:
      for (const auto& arg : expr.args) collect_columns(*arg, schemas, columns);
      return;
    case Expr::Kind::kBinary:
      collect_columns(*expr.lhs, schemas, columns);
      collect_columns(*expr.rhs, schemas, columns);
      return;
    case Expr::Kind::kNot:
      collect_columns(*expr.lhs, schemas, columns);
      return;
  }
}

}  // namespace aorta::query
