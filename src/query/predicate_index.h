// Compiled-predicate index: sub-linear matching of swept tuples against
// registered continuous queries.
//
// Exhaustive matching runs every subscribed AQ's EvalProgram on every
// tuple the ScanBroker delivers — O(tuples x AQs), which caps the service
// at a few thousand AQs per worker. This index inverts the hot path, in
// the spirit of pub/sub predicate indexing and search-engine skip
// pruning: at register time the compile pass distills each AQ's event
// predicates into one IndexableConjunct (compile.h) — a necessary
// per-slot constraint — and the executor files it here. Per tuple, one
// probe per populated slot yields the candidate AQs whose constraint the
// tuple satisfies; only those run their residual EvalPrograms. AQs whose
// predicates don't distill (function calls, ORs, cross-column compares)
// sit on a residual list and are evaluated exhaustively, so semantics
// are exactly those of the unindexed path.
//
// Structures, per event-schema slot:
//  - point equality     -> std::map keyed by the constant
//  - string equality    -> hash buckets
//  - one-sided bounds   -> ordered maps of bound constants, walked only
//                          over the matching prefix/suffix (output-
//                          sensitive: cost is O(log n + matches))
//  - two-sided ranges   -> an interval treap keyed by the low bound with
//                          a max-high subtree augmentation for pruning
//  - kNever entries     -> counted but never probed (contradictory
//                          predicates match nothing)
//
// Determinism: the treap's heap priorities are a splitmix64 of the entry
// handle — no RNG, no pointer-order dependence — so the tree shape, and
// therefore probe output order, is a pure function of the registered
// handle set. Callers that need a canonical order still sort by handle;
// handles here are AQ generations, which are unique and monotonic.
// Instances are confined to one executor (one worker loop) each; there
// is no cross-loop shared state.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "comm/tuple.h"
#include "query/compile.h"

namespace aorta::query {

class PredicateIndex {
 public:
  // Entry identity. The executor uses the AQ generation: unique for the
  // lifetime of the process, so stale removals can never alias.
  using Handle = std::uint64_t;

  // File `conjunct` under `handle`. A null conjunct goes on the residual
  // list (the AQ must be evaluated for every tuple). The conjunct is
  // copied; the caller's storage need not outlive the index.
  void add(Handle handle, const IndexableConjunct* conjunct);

  // Remove `handle`, which must have been added with an equal conjunct
  // (the executor passes the CompiledQuery's own, which is immutable).
  void remove(Handle handle, const IndexableConjunct* conjunct);

  // Append every indexed handle whose constraint `tuple` satisfies.
  // Residual-list handles are NOT appended — iterate residuals() too.
  // A slot value that is NULL, non-numeric (for numeric constraints),
  // non-string (for string equality), or NaN satisfies nothing, exactly
  // matching compare_values() semantics: such comparisons are false.
  void probe(const comm::Tuple& tuple, std::vector<Handle>* out) const;

  const std::vector<Handle>& residuals() const { return residual_; }

  // Total entries filed (indexed + residual + never-match).
  std::size_t size() const { return entries_; }
  std::size_t residual_size() const { return residual_.size(); }
  std::size_t never_size() const { return never_; }

 private:
  // One-sided bound constraints sharing a constant, split by strictness
  // so the boundary key emits exactly the right set.
  struct Bound {
    std::vector<Handle> strict;
    std::vector<Handle> incl;
    bool empty() const { return strict.empty() && incl.empty(); }
  };

  // Interval treap node (two-sided ranges). BST-ordered by (lo, handle),
  // heap-ordered by the handle-derived priority.
  struct RangeNode {
    double lo, hi;
    bool lo_strict, hi_strict;
    Handle handle;
    std::uint64_t priority;
    double max_hi;  // max hi over this subtree
    std::unique_ptr<RangeNode> left, right;
  };

  struct SlotIndex {
    std::map<double, std::vector<Handle>> eq;
    std::map<double, Bound> lower;  // key = low bound  (x > / >= key)
    std::map<double, Bound> upper;  // key = high bound (x < / <= key)
    std::unordered_map<std::string, std::vector<Handle>> str_eq;
    std::unique_ptr<RangeNode> ranges;
    std::size_t entries = 0;

    bool empty() const { return entries == 0; }
  };

  static void pull_max_hi(RangeNode* n);
  static bool node_before(const RangeNode& a, double lo, Handle handle);
  static std::unique_ptr<RangeNode> range_insert(std::unique_ptr<RangeNode>,
                                                 std::unique_ptr<RangeNode>);
  static std::unique_ptr<RangeNode> range_remove(std::unique_ptr<RangeNode>,
                                                 double lo, Handle handle);
  static void range_probe(const RangeNode* node, double x,
                          std::vector<Handle>* out);

  std::map<std::uint32_t, SlotIndex> slots_;
  std::vector<Handle> residual_;  // registration order
  std::size_t never_ = 0;
  std::size_t entries_ = 0;
};

}  // namespace aorta::query
