// Recursive-descent parser for the declarative interface.
#pragma once

#include "query/ast.h"
#include "util/status.h"

namespace aorta::query {

// Parse one statement (a trailing ';' is allowed).
aorta::util::Result<Statement> parse(std::string_view input);

// Parse an expression in isolation (tests, stored predicates).
aorta::util::Result<ExprPtr> parse_expression(std::string_view input);

}  // namespace aorta::query
