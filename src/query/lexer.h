// Lexer for Aorta's SQL-style declarative interface (Section 2.2).
#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace aorta::query {

enum class TokenType {
  kKeyword,     // CREATE, ACTION, AQ, AS, PROFILE, SELECT, FROM, WHERE,
                // AND, OR, NOT, TRUE, FALSE, DROP, NULL
  kIdentifier,  // snapshot, sensor, accel_x, photo ...
  kNumber,      // 500, 3.25, -1.5e3
  kString,      // "photos/admin" or 'photos/admin'
  kSymbol,      // ( ) , . ; + - * / and comparison operators
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;       // keywords uppercased; identifiers as written
  double number = 0.0;    // valid for kNumber
  std::size_t offset = 0; // byte offset for error messages

  bool is_keyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool is_symbol(std::string_view s) const {
    return type == TokenType::kSymbol && text == s;
  }
};

// Tokenize a statement. Keywords are recognized case-insensitively;
// comparison operators are single tokens (<=, >=, <>, !=, =, <, >).
aorta::util::Result<std::vector<Token>> lex(std::string_view input);

}  // namespace aorta::query
