// Shared action operators.
//
// Section 2.3: "we make concurrent queries that have the same embedded
// action ... share a single action operator in their query plans. We add
// the query ID to the input tuples ... so that the operator knows which
// tuples are for which query. Such action operator sharing saves system
// resources and facilitates group optimization of actions."
//
// Within an evaluation epoch every query deposits its instantiated action
// requests here; at the end of the epoch the operator runs the pipeline
// that ties the whole system together:
//   probe candidates (Section 4)  ->  exclude unavailable devices,
//   gather physical status        ->  build the scheduler's device view,
//   schedule the batch (Section 5)->  multi-query cost-based optimization,
//   execute under device locks    ->  action atomicity (Section 4).
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "device/health.h"
#include "query/catalog.h"
#include "sched/scheduler.h"
#include "sync/lock_manager.h"
#include "sync/prober.h"
#include "util/stats.h"

namespace aorta::query {

// Outcome counters per originating query.
struct QueryActionStats {
  std::uint64_t requests = 0;
  std::uint64_t usable = 0;
  std::uint64_t degraded = 0;   // blurred / wrong position / partial
  std::uint64_t failed = 0;     // device error, timeout
  std::uint64_t no_candidate = 0;  // every candidate probed dead

  std::uint64_t total_bad() const { return degraded + failed + no_candidate; }
};

struct ActionOperatorStats {
  std::uint64_t batches = 0;
  std::uint64_t requests = 0;
  std::uint64_t retries = 0;  // failover re-dispatches
  // Candidates removed before probing because their device is quarantined
  // (health supervision saves the probe *and* the doomed action attempt).
  std::uint64_t quarantine_filtered = 0;
  aorta::util::Summary batch_size;
  aorta::util::Summary service_makespan_s;
  aorta::util::Summary actual_makespan_s;
};

class ActionOperator {
 public:
  struct Options {
    bool use_probing = true;  // Section 6.2 ablation switches
    bool use_locks = true;
    // Failover rounds: a request whose action fails on its selected device
    // is rescheduled on its remaining candidates up to this many times.
    int max_retries = 1;
    // Health supervision (nullable = off): quarantined devices are removed
    // from candidate lists before probing, and per-device action outcomes
    // are reported back.
    device::HealthView* health = nullptr;
    // Worker shard this operator's scheduler belongs to (-1 = unsharded).
    // Stamped onto every enqueued request so cross-shard action routing is
    // visible end to end.
    int shard = -1;
  };

  ActionOperator(const ActionDef* action, sync::Prober* prober,
                 sync::LockManager* locks, device::DeviceRegistry* registry,
                 aorta::util::EventLoop* loop, sched::Scheduler* scheduler,
                 aorta::util::Rng rng, Options options);

  const std::string& action_name() const { return action_->name; }

  // Observability hook: called with (query_id, kind, detail) at batch
  // scheduling and per-request outcome. Query id is empty for
  // batch-level entries.
  using TraceFn = std::function<void(const std::string& query,
                                     const std::string& kind,
                                     const std::string& detail)>;
  void set_trace(TraceFn trace) { trace_ = std::move(trace); }

  // Deposit one instantiated request (already tagged with its query id).
  void enqueue(sched::ActionRequest request);

  // Schedule and execute everything deposited since the last flush.
  // `done` fires when all actions completed; per-query outcomes are
  // accumulated into stats().
  void flush(std::function<void()> done);

  bool has_pending() const { return !pending_.empty(); }

  const ActionOperatorStats& stats() const { return stats_; }
  const std::map<std::string, QueryActionStats>& query_stats() const {
    return query_stats_;
  }
  // Makespans of every scheduling round (for experiment reporting).
  const std::vector<sched::ScheduleResult>& schedule_history() const {
    return schedule_history_;
  }

 private:
  void run_batch(std::vector<sched::ActionRequest> batch,
                 std::vector<sync::ProbeInfo> probes, std::function<void()> done,
                 int attempt);

  const ActionDef* action_;
  sync::Prober* prober_;
  sync::LockManager* locks_;
  device::DeviceRegistry* registry_;
  aorta::util::EventLoop* loop_;
  sched::Scheduler* scheduler_;
  aorta::util::Rng rng_;
  Options options_;

  std::vector<sched::ActionRequest> pending_;
  std::uint64_t next_request_id_ = 1;

  ActionOperatorStats stats_;
  std::map<std::string, QueryActionStats> query_stats_;
  std::vector<sched::ScheduleResult> schedule_history_;
  TraceFn trace_;
};

}  // namespace aorta::query
