#include "query/compile.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/strings.h"

namespace aorta::query {

using aorta::util::Result;
using aorta::util::Status;

namespace {

// Split a WHERE tree into top-level conjuncts.
void split_conjuncts(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == Expr::Kind::kBinary && expr.op == BinaryOp::kAnd) {
    split_conjuncts(*expr.lhs, out);
    split_conjuncts(*expr.rhs, out);
    return;
  }
  out->push_back(&expr);
}

// Does the expression reference any sensory attribute of `alias`?
bool references_sensory(const Expr& expr, const std::string& alias,
                        const comm::Schema& schema) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return false;
    case Expr::Kind::kColumnRef: {
      const comm::Field* field = nullptr;
      if (expr.qualifier == alias) {
        field = schema.field(expr.column);
      } else if (expr.qualifier.empty()) {
        field = schema.field(expr.column);
      }
      return field != nullptr && field->sensory;
    }
    case Expr::Kind::kFuncCall: {
      for (const auto& arg : expr.args) {
        if (references_sensory(*arg, alias, schema)) return true;
      }
      return false;
    }
    case Expr::Kind::kBinary:
      return references_sensory(*expr.lhs, alias, schema) ||
             references_sensory(*expr.rhs, alias, schema);
    case Expr::Kind::kNot:
      return references_sensory(*expr.lhs, alias, schema);
  }
  return false;
}

// Distill the event programs' IndexHints into one per-slot constraint and
// keep the most selective slot (see IndexableConjunct in compile.h). Works
// purely on compiled shapes: any predicate without a hint (or hinting a
// non-event binding, which classification should already preclude) makes
// the result inexact but never unsound — it just stays a residual filter.
std::optional<IndexableConjunct> distill_index_conjunct(
    const std::vector<std::optional<EvalProgram>>& event_programs,
    std::size_t event_binding, const comm::Schema& event_schema) {
  struct SlotAcc {
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
    bool lo_strict = false;
    bool hi_strict = false;
    bool has_num = false;
    bool has_str = false;
    bool never = false;
    std::string str;
    std::size_t hints = 0;
  };
  std::map<std::uint32_t, SlotAcc> slots;
  std::size_t hinted = 0;
  for (const auto& program : event_programs) {
    if (!program) continue;
    auto hint = program->index_hint();
    if (!hint || hint->binding != event_binding) continue;
    ++hinted;
    SlotAcc& acc = slots[hint->slot];
    ++acc.hints;
    if (hint->is_string) {
      if (acc.has_str && acc.str != hint->str) acc.never = true;
      acc.has_str = true;
      acc.str = hint->str;
      continue;
    }
    acc.has_num = true;
    if (std::isnan(hint->num)) {
      // Every comparison against NaN is false; the predicate set can
      // never hold.
      acc.never = true;
      continue;
    }
    switch (hint->op) {
      case BinaryOp::kEq:
        if (hint->num > acc.lo || (hint->num == acc.lo && !acc.lo_strict)) {
          acc.lo = hint->num;
          acc.lo_strict = false;
        }
        if (hint->num < acc.hi || (hint->num == acc.hi && !acc.hi_strict)) {
          acc.hi = hint->num;
          acc.hi_strict = false;
        }
        break;
      case BinaryOp::kGt:
      case BinaryOp::kGe: {
        bool strict = hint->op == BinaryOp::kGt;
        if (hint->num > acc.lo || (hint->num == acc.lo && strict)) {
          acc.lo = hint->num;
          acc.lo_strict = strict;
        }
        break;
      }
      case BinaryOp::kLt:
      case BinaryOp::kLe: {
        bool strict = hint->op == BinaryOp::kLt;
        if (hint->num < acc.hi || (hint->num == acc.hi && strict)) {
          acc.hi = hint->num;
          acc.hi_strict = strict;
        }
        break;
      }
      default:
        break;  // index_hint() never reports kNe or non-comparisons
    }
  }
  if (slots.empty()) return std::nullopt;

  std::optional<IndexableConjunct> best;
  for (const auto& [slot, acc] : slots) {
    IndexableConjunct c;
    c.slot = slot;
    if (slot < event_schema.fields().size()) {
      c.attr = event_schema.fields()[slot].name;
    }
    c.lo = acc.lo;
    c.hi = acc.hi;
    c.lo_strict = acc.lo_strict;
    c.hi_strict = acc.hi_strict;
    c.str = acc.str;
    bool empty_interval =
        acc.lo > acc.hi ||
        (acc.lo == acc.hi && (acc.lo_strict || acc.hi_strict));
    if (acc.never || (acc.has_num && acc.has_str) ||
        (acc.has_num && empty_interval)) {
      // Contradiction (two distinct strings, string && numeric bound on
      // one slot, or an empty interval): nothing can match. kNever is the
      // most selective possible entry, so it wins outright.
      c.kind = IndexableConjunct::Kind::kNever;
      c.selectivity = 0.0;
    } else if (acc.has_str) {
      c.kind = IndexableConjunct::Kind::kStrEq;
      c.selectivity = 0.01;
    } else if (acc.lo == acc.hi) {  // both inclusive, else empty_interval
      c.kind = IndexableConjunct::Kind::kPointEq;
      c.selectivity = 0.01;
    } else if (std::isinf(acc.lo) && std::isinf(acc.hi)) {
      continue;  // no usable bound on this slot (cannot happen today)
    } else if (std::isinf(acc.hi)) {
      c.kind = IndexableConjunct::Kind::kLower;
      c.selectivity = 0.4;
    } else if (std::isinf(acc.lo)) {
      c.kind = IndexableConjunct::Kind::kUpper;
      c.selectivity = 0.4;
    } else {
      c.kind = IndexableConjunct::Kind::kRange;
      c.selectivity = 0.2;
    }
    // All hints on the winning slot + nothing unhinted = the constraint
    // IS the predicate set: candidacy alone proves a match.
    c.exact = !event_programs.empty() && hinted == event_programs.size() &&
              acc.hints == hinted;
    if (!best || c.selectivity < best->selectivity) best = c;
  }
  return best;
}

}  // namespace

// Local helper: propagate a Status failure out of compile() as a Result.
#define RETURN_IF_ERROR_R(expr)                             \
  do {                                                      \
    ::aorta::util::Status _s = (expr);                      \
    if (!_s.is_ok()) return Result<CompiledQuery>(_s);      \
  } while (false)

Result<CompiledQuery> compile(const SelectStmt& stmt, const Catalog& catalog,
                              const device::DeviceRegistry& registry,
                              bool one_shot) {
  CompiledQuery q;

  // ---- FROM: virtual tables ------------------------------------------
  if (stmt.from.empty()) {
    return Result<CompiledQuery>(
        aorta::util::parse_error("query needs a FROM clause"));
  }
  if (stmt.from.size() > 2) {
    return Result<CompiledQuery>(aorta::util::invalid_argument_error(
        "at most 2 tables are supported (event table + candidate table)"));
  }

  // Schemas per alias, built from the registered device catalogs and owned
  // by the compiled query (program slot resolution needs them, and EXPLAIN
  // outlives this call).
  for (const auto& ref : stmt.from) {
    const device::DeviceTypeInfo* info = registry.type_info(ref.table);
    if (info == nullptr) {
      return Result<CompiledQuery>(aorta::util::not_found_error(
          "unknown virtual table (device type): " + ref.table));
    }
    if (q.table_types.count(ref.alias) > 0) {
      return Result<CompiledQuery>(
          aorta::util::invalid_argument_error("duplicate alias: " + ref.alias));
    }
    q.tables.push_back(ref);
    q.table_types[ref.alias] = ref.table;
    q.binding_aliases.push_back(ref.alias);
    q.schemas[ref.alias] = comm::Schema::from_catalog(info->catalog);
  }
  std::map<std::string, const comm::Schema*> schemas = q.schema_ptrs();

  // ---- WHERE: conjunct classification -----------------------------------
  std::vector<const Expr*> conjuncts;
  if (stmt.where != nullptr) split_conjuncts(*stmt.where, &conjuncts);

  // First pass: find the event table = the unique alias with single-alias
  // sensory predicates.
  std::set<std::string> event_candidates;
  for (const Expr* c : conjuncts) {
    std::set<std::string> aliases;
    RETURN_IF_ERROR_R(collect_aliases(*c, schemas, &aliases));
    if (aliases.size() == 1) {
      const std::string& alias = *aliases.begin();
      if (references_sensory(*c, alias, *schemas.at(alias))) {
        event_candidates.insert(alias);
      }
    }
  }
  if (event_candidates.size() > 1) {
    if (!one_shot) {
      return Result<CompiledQuery>(aorta::util::invalid_argument_error(
          "sensory event predicates must reference a single table"));
    }
    // One-shot SELECTs have no event semantics: scan everything live.
    event_candidates = {stmt.from.front().alias};
  }
  if (event_candidates.size() == 1) {
    q.event_alias = *event_candidates.begin();
    q.edge_triggered = true;
  } else {
    q.event_alias = stmt.from.front().alias;
    q.edge_triggered = false;
  }

  // Second pass: classify conjuncts.
  for (const Expr* c : conjuncts) {
    std::set<std::string> aliases;
    RETURN_IF_ERROR_R(collect_aliases(*c, schemas, &aliases));
    if (aliases.empty() ||
        (aliases.size() == 1 && *aliases.begin() == q.event_alias)) {
      q.event_predicates.push_back(c->clone());
    } else {
      // Join / candidate predicates: in continuous mode candidate-table
      // sensory attributes are not available before probing, so reject
      // them with a clear message. One-shot SELECTs scan live and may use
      // them freely.
      if (!one_shot) {
        for (const std::string& alias : aliases) {
          if (alias != q.event_alias &&
              references_sensory(*c, alias, *schemas.at(alias))) {
            return Result<CompiledQuery>(aorta::util::invalid_argument_error(
                "candidate-table predicates may only use static attributes: " +
                c->to_string()));
          }
        }
      }
      q.join_predicates.push_back(c->clone());
    }
  }

  // ---- SELECT list: actions vs projections -------------------------------
  for (const auto& item : stmt.select_list) {
    if (item->kind == Expr::Kind::kFuncCall) {
      const ActionDef* action = catalog.find_action(item->func_name);
      if (action != nullptr) {
        CompiledActionCall call;
        call.action = action;
        if (item->args.size() != action->params.size()) {
          return Result<CompiledQuery>(aorta::util::invalid_argument_error(
              aorta::util::str_format("action %s expects %zu arguments, got %zu",
                                      action->name.c_str(),
                                      action->params.size(),
                                      item->args.size())));
        }
        for (const auto& arg : item->args) call.args.push_back(arg->clone());

        // Candidate table: the alias referenced by the binding argument;
        // falls back to the event table (action on the event device, e.g.
        // beep(s.id)).
        std::set<std::string> binding_aliases;
        RETURN_IF_ERROR_R(collect_aliases(
            *call.args[action->binding_param], schemas, &binding_aliases));
        if (binding_aliases.size() > 1) {
          return Result<CompiledQuery>(aorta::util::invalid_argument_error(
              "action binding argument must reference one table"));
        }
        call.candidate_alias = binding_aliases.empty() ? q.event_alias
                                                       : *binding_aliases.begin();

        // The candidate table's device type must match the action's.
        const auto& cand_type = q.table_types.at(call.candidate_alias);
        if (cand_type != action->device_type) {
          return Result<CompiledQuery>(aorta::util::invalid_argument_error(
              "action " + action->name + " operates " + action->device_type +
              " devices, but its binding argument references table " +
              cand_type));
        }
        q.actions.push_back(std::move(call));
        continue;
      }
    }
    q.projections.push_back(item->clone());
  }

  // ---- compiled evaluation ------------------------------------------------
  // Lower every hot-path expression to a slot-resolved program once.
  // Whatever does not lower (SELECT *, aggregates, unknown functions)
  // keeps the tree-walking evaluator as its per-row fallback.
  for (std::size_t i = 0; i < q.binding_aliases.size(); ++i) {
    if (q.binding_aliases[i] == q.event_alias) q.event_binding = i;
  }
  auto lower = [&](const Expr& e) -> std::optional<EvalProgram> {
    auto p = EvalProgram::compile(e, q.binding_aliases, schemas,
                                  catalog.functions());
    if (!p.is_ok()) return std::nullopt;
    return std::move(p).value();
  };
  for (const auto& p : q.event_predicates) q.event_programs.push_back(lower(*p));
  for (const auto& p : q.join_predicates) q.join_programs.push_back(lower(*p));
  for (const auto& p : q.projections) q.projection_programs.push_back(lower(*p));
  for (auto& call : q.actions) {
    for (std::size_t i = 0; i < q.binding_aliases.size(); ++i) {
      if (q.binding_aliases[i] == call.candidate_alias) {
        call.candidate_binding = i;
      }
    }
    for (std::size_t a = 0; a < call.args.size(); ++a) {
      call.arg_programs.push_back(a == call.action->binding_param
                                      ? std::nullopt
                                      : lower(*call.args[a]));
    }
  }

  // ---- projection pushdown ----------------------------------------------
  for (const Expr* c : conjuncts) collect_columns(*c, schemas, &q.needed_attrs);
  for (const auto& item : stmt.select_list) {
    if (item->kind == Expr::Kind::kColumnRef && item->column == "*") {
      // SELECT *: need everything from every table.
      for (const auto& [alias, schema] : schemas) {
        for (const auto& f : schema->fields()) {
          q.needed_attrs[alias].insert(f.name);
        }
      }
      continue;
    }
    collect_columns(*item, schemas, &q.needed_attrs);
  }
  for (const auto& g : stmt.group_by) {
    collect_columns(*g, schemas, &q.needed_attrs);
    q.group_by.push_back(g->clone());
  }
  q.window_s = stmt.window_s;
  q.every_s = stmt.every_s;

  // ---- predicate-index metadata ------------------------------------------
  // One-shot SELECTs scan once and never register with the index.
  if (!one_shot) {
    q.index_conjunct = distill_index_conjunct(
        q.event_programs, q.event_binding, *schemas.at(q.event_alias));
  }

  return q;
}

}  // namespace aorta::query

namespace aorta::query {

std::map<std::string, const comm::Schema*> CompiledQuery::schema_ptrs() const {
  std::map<std::string, const comm::Schema*> out;
  for (const auto& [alias, schema] : schemas) out[alias] = &schema;
  return out;
}

namespace {

void count_programs(const std::vector<std::optional<EvalProgram>>& programs,
                    std::size_t* compiled, std::size_t* fallback) {
  for (const auto& p : programs) {
    if (p.has_value()) ++*compiled;
    else ++*fallback;
  }
}

}  // namespace

std::size_t CompiledQuery::program_count() const {
  std::size_t compiled = 0, fallback = 0;
  count_programs(event_programs, &compiled, &fallback);
  count_programs(join_programs, &compiled, &fallback);
  count_programs(projection_programs, &compiled, &fallback);
  for (const auto& call : actions) {
    count_programs(call.arg_programs, &compiled, &fallback);
  }
  return compiled;
}

std::size_t CompiledQuery::fallback_count() const {
  std::size_t compiled = 0, fallback = 0;
  count_programs(event_programs, &compiled, &fallback);
  count_programs(join_programs, &compiled, &fallback);
  count_programs(projection_programs, &compiled, &fallback);
  for (const auto& call : actions) {
    count_programs(call.arg_programs, &compiled, &fallback);
    // The binding-param slot is intentionally empty, not a fallback.
    if (fallback > 0) --fallback;
  }
  return fallback;
}

std::string CompiledQuery::describe() const {
  std::string out;
  out += "plan:\n";
  out += "  event table: " + event_alias + " (" + table_types.at(event_alias) +
         "), " + (edge_triggered ? "edge-triggered" : "level-triggered") + "\n";
  out += "  event predicates (pushed into the scan):\n";
  if (event_predicates.empty()) out += "    <none>\n";
  for (const auto& p : event_predicates) {
    out += "    " + p->to_string() + "\n";
  }
  out += "  join/candidate predicates:\n";
  if (join_predicates.empty()) out += "    <none>\n";
  for (const auto& p : join_predicates) {
    out += "    " + p->to_string() + "\n";
  }
  if (!actions.empty()) {
    out += "  embedded actions (shared operators):\n";
    for (const auto& call : actions) {
      out += "    " + call.action->name + " on " + call.action->device_type +
             " via candidate table " + call.candidate_alias + "\n";
    }
  }
  if (!projections.empty()) {
    out += "  projections:\n";
    for (const auto& p : projections) {
      out += "    " + p->to_string() + "\n";
    }
  }
  std::size_t instrs = 0, folded = 0;
  auto tally = [&](const std::vector<std::optional<EvalProgram>>& programs) {
    for (const auto& p : programs) {
      if (!p.has_value()) continue;
      instrs += p->instruction_count();
      folded += p->folded_nodes();
    }
  };
  tally(event_programs);
  tally(join_programs);
  tally(projection_programs);
  for (const auto& call : actions) tally(call.arg_programs);
  out += "  compiled evaluation: " + std::to_string(program_count()) +
         " program(s), " + std::to_string(instrs) + " instruction(s), " +
         std::to_string(folded) + " node(s) constant-folded, " +
         std::to_string(fallback_count()) + " fallback expr(s)\n";
  out += "  scan attributes (projection pushdown):\n";
  for (const auto& [alias, attrs] : needed_attrs) {
    out += "    " + alias + ": ";
    bool first = true;
    for (const auto& a : attrs) {
      if (!first) out += ", ";
      out += a;
      first = false;
    }
    out += "\n";
  }
  return out;
}

}  // namespace aorta::query
