// The query engine's catalog: registered actions, scalar functions and
// continuous queries.
//
// Actions are "Aorta system built-in or user-defined functions that
// operate devices" (Section 2.2). A user-defined action is registered via
// CREATE ACTION with a library path and an XML action profile; because
// this reproduction cannot dlopen 2005-era DLLs, implementations are bound
// programmatically through Aorta::register_action_impl() and the library
// path is retained as metadata — the declarative surface is unchanged.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "device/profile.h"
#include "query/ast.h"
#include "query/expr_eval.h"
#include "sched/cost_model.h"
#include "sched/executor.h"

namespace aorta::query {

// Executes one instantiated action on one device. `args` are the evaluated
// action arguments in declaration order.
using ActionImpl = std::function<void(
    const device::DeviceId& device, const std::vector<device::Value>& args,
    std::function<void(aorta::util::Result<sched::ActionOutcome>)> done)>;

// Derives the cost-relevant request parameters from the evaluated action
// arguments (e.g. photo(): the target location into target_x/y/z). May be
// null for actions whose cost is status-independent.
using RequestParamsFn = std::function<aorta::util::Status(
    const std::vector<device::Value>& args, sched::ActionRequest* request)>;

struct ActionParam {
  device::AttrType type = device::AttrType::kString;
  std::string name;
};

struct ActionDef {
  std::string name;
  std::vector<ActionParam> params;
  device::DeviceTypeId device_type;  // the type of devices it operates

  // Which argument identifies/binds the executing device, and which static
  // device attribute it matches (photo(c.ip, ...) binds arg 0 to "ip").
  std::size_t binding_param = 0;
  std::string binding_attr = "id";

  device::ActionProfile profile;
  std::shared_ptr<const sched::CostModel> cost_model;
  ActionImpl impl;
  RequestParamsFn request_params;

  std::string library_path;  // metadata from CREATE ACTION
};

// A registered continuous action-embedded query.
struct RegisteredAq {
  std::string name;
  double epoch_s = 0.0;  // 0 = engine default
  std::string source_sql;
};

class Catalog {
 public:
  aorta::util::Status register_action(ActionDef action);
  const ActionDef* find_action(const std::string& name) const;
  std::vector<std::string> action_names() const;

  // Late-bind an implementation to an action registered via CREATE ACTION.
  aorta::util::Status bind_action_impl(const std::string& name, ActionImpl impl);

  FunctionRegistry& functions() { return functions_; }
  const FunctionRegistry& functions() const { return functions_; }

 private:
  std::map<std::string, ActionDef> actions_;
  FunctionRegistry functions_;
};

// Generic profile-driven cost model for user-defined actions: cost is the
// action profile estimated with default unit counts (status-independent),
// plus the request's base cost; execution changes no tracked status.
class ProfileCostModel : public sched::CostModel {
 public:
  ProfileCostModel(device::AtomicOpCostTable op_costs, double fixed_estimate_s)
      : op_costs_(std::move(op_costs)), fixed_estimate_s_(fixed_estimate_s) {}

  // Computes the profile estimate once at construction (no dynamic units).
  static std::shared_ptr<ProfileCostModel> from_profile(
      const device::ActionProfile& profile,
      const device::AtomicOpCostTable& op_costs);

  double cost_s(const sched::ActionRequest& request,
                const sched::DeviceStatus&) const override {
    return fixed_estimate_s_ + request.base_cost_s;
  }
  void apply(const sched::ActionRequest&, sched::DeviceStatus*) const override {}

 private:
  device::AtomicOpCostTable op_costs_;
  double fixed_estimate_s_;
};

}  // namespace aorta::query
