#include "query/predicate_index.h"

#include <algorithm>
#include <cmath>

namespace aorta::query {

namespace {

// Deterministic heap priority from the entry handle (splitmix64 finisher).
// No RNG and no pointer values: the treap shape is a pure function of the
// registered handle set, which keeps parallel-runtime replays byte-stable.
std::uint64_t priority_of(std::uint64_t h) {
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

void erase_handle(std::vector<PredicateIndex::Handle>* v,
                  PredicateIndex::Handle h) {
  auto it = std::find(v->begin(), v->end(), h);
  if (it != v->end()) v->erase(it);
}

}  // namespace

// ---- interval treap ------------------------------------------------------

void PredicateIndex::pull_max_hi(RangeNode* n) {
  n->max_hi = n->hi;
  if (n->left && n->left->max_hi > n->max_hi) n->max_hi = n->left->max_hi;
  if (n->right && n->right->max_hi > n->max_hi) n->max_hi = n->right->max_hi;
}

// BST order: (lo, handle). Handles are unique, so the order is total.
bool PredicateIndex::node_before(const RangeNode& a, double lo,
                                 Handle handle) {
  if (a.lo != lo) return a.lo < lo;
  return a.handle < handle;
}

std::unique_ptr<PredicateIndex::RangeNode> PredicateIndex::range_insert(
    std::unique_ptr<RangeNode> root, std::unique_ptr<RangeNode> node) {
  if (!root) {
    pull_max_hi(node.get());
    return node;
  }
  if (node->priority > root->priority) {
    // `node` becomes the new subtree root: split `root` around it.
    // Because `node` is a fresh single node, splitting is just repeated
    // insertion of the two halves — do it recursively via rotation-free
    // split.
    std::unique_ptr<RangeNode> less, more;
    // Split root's tree by (node->lo, node->handle).
    struct Splitter {
      double lo;
      Handle handle;
      void split(std::unique_ptr<RangeNode> t, std::unique_ptr<RangeNode>* l,
                 std::unique_ptr<RangeNode>* r) {
        if (!t) {
          l->reset();
          r->reset();
          return;
        }
        if (node_before(*t, lo, handle)) {
          split(std::move(t->right), &t->right, r);
          pull_max_hi(t.get());
          *l = std::move(t);
        } else {
          split(std::move(t->left), l, &t->left);
          pull_max_hi(t.get());
          *r = std::move(t);
        }
      }
    } splitter{node->lo, node->handle};
    splitter.split(std::move(root), &less, &more);
    node->left = std::move(less);
    node->right = std::move(more);
    pull_max_hi(node.get());
    return node;
  }
  if (node_before(*node, root->lo, root->handle)) {
    root->left = range_insert(std::move(root->left), std::move(node));
  } else {
    root->right = range_insert(std::move(root->right), std::move(node));
  }
  pull_max_hi(root.get());
  return root;
}

std::unique_ptr<PredicateIndex::RangeNode> PredicateIndex::range_remove(
    std::unique_ptr<RangeNode> root, double lo, Handle handle) {
  if (!root) return nullptr;
  if (root->lo == lo && root->handle == handle) {
    // Merge the children (both heaps; standard treap join).
    struct Joiner {
      std::unique_ptr<RangeNode> join(std::unique_ptr<RangeNode> a,
                                      std::unique_ptr<RangeNode> b) {
        if (!a) return b;
        if (!b) return a;
        if (a->priority > b->priority) {
          a->right = join(std::move(a->right), std::move(b));
          pull_max_hi(a.get());
          return a;
        }
        b->left = join(std::move(a), std::move(b->left));
        pull_max_hi(b.get());
        return b;
      }
    } joiner;
    return joiner.join(std::move(root->left), std::move(root->right));
  }
  if (node_before(*root, lo, handle)) {
    root->right = range_remove(std::move(root->right), lo, handle);
  } else {
    root->left = range_remove(std::move(root->left), lo, handle);
  }
  pull_max_hi(root.get());
  return root;
}

void PredicateIndex::range_probe(const RangeNode* node, double x,
                                 std::vector<Handle>* out) {
  // Prune whole subtrees whose every high bound lies strictly below x.
  // (max_hi == x with a strict bound survives the prune; the node-level
  // check below rejects it exactly.)
  if (node == nullptr || node->max_hi < x) return;
  range_probe(node->left.get(), x, out);
  // Nodes (and right descendants) with lo > x cannot contain x.
  if (node->lo > x) return;
  bool lo_ok = x > node->lo || (x == node->lo && !node->lo_strict);
  bool hi_ok = x < node->hi || (x == node->hi && !node->hi_strict);
  if (lo_ok && hi_ok) out->push_back(node->handle);
  range_probe(node->right.get(), x, out);
}

// ---- add / remove --------------------------------------------------------

void PredicateIndex::add(Handle handle, const IndexableConjunct* conjunct) {
  ++entries_;
  if (conjunct == nullptr) {
    residual_.push_back(handle);
    return;
  }
  using Kind = IndexableConjunct::Kind;
  if (conjunct->kind == Kind::kNever) {
    ++never_;
    return;
  }
  SlotIndex& s = slots_[conjunct->slot];
  ++s.entries;
  switch (conjunct->kind) {
    case Kind::kPointEq:
      s.eq[conjunct->lo].push_back(handle);
      break;
    case Kind::kStrEq:
      s.str_eq[conjunct->str].push_back(handle);
      break;
    case Kind::kLower: {
      Bound& b = s.lower[conjunct->lo];
      (conjunct->lo_strict ? b.strict : b.incl).push_back(handle);
      break;
    }
    case Kind::kUpper: {
      Bound& b = s.upper[conjunct->hi];
      (conjunct->hi_strict ? b.strict : b.incl).push_back(handle);
      break;
    }
    case Kind::kRange: {
      auto node = std::make_unique<RangeNode>();
      node->lo = conjunct->lo;
      node->hi = conjunct->hi;
      node->lo_strict = conjunct->lo_strict;
      node->hi_strict = conjunct->hi_strict;
      node->handle = handle;
      node->priority = priority_of(handle);
      node->max_hi = conjunct->hi;
      s.ranges = range_insert(std::move(s.ranges), std::move(node));
      break;
    }
    case Kind::kNever:
      break;  // handled above
  }
}

void PredicateIndex::remove(Handle handle, const IndexableConjunct* conjunct) {
  if (entries_ > 0) --entries_;
  if (conjunct == nullptr) {
    erase_handle(&residual_, handle);
    return;
  }
  using Kind = IndexableConjunct::Kind;
  if (conjunct->kind == Kind::kNever) {
    if (never_ > 0) --never_;
    return;
  }
  auto sit = slots_.find(conjunct->slot);
  if (sit == slots_.end()) return;
  SlotIndex& s = sit->second;
  if (s.entries > 0) --s.entries;
  switch (conjunct->kind) {
    case Kind::kPointEq: {
      auto it = s.eq.find(conjunct->lo);
      if (it != s.eq.end()) {
        erase_handle(&it->second, handle);
        if (it->second.empty()) s.eq.erase(it);
      }
      break;
    }
    case Kind::kStrEq: {
      auto it = s.str_eq.find(conjunct->str);
      if (it != s.str_eq.end()) {
        erase_handle(&it->second, handle);
        if (it->second.empty()) s.str_eq.erase(it);
      }
      break;
    }
    case Kind::kLower: {
      auto it = s.lower.find(conjunct->lo);
      if (it != s.lower.end()) {
        erase_handle(conjunct->lo_strict ? &it->second.strict
                                         : &it->second.incl,
                     handle);
        if (it->second.empty()) s.lower.erase(it);
      }
      break;
    }
    case Kind::kUpper: {
      auto it = s.upper.find(conjunct->hi);
      if (it != s.upper.end()) {
        erase_handle(conjunct->hi_strict ? &it->second.strict
                                         : &it->second.incl,
                     handle);
        if (it->second.empty()) s.upper.erase(it);
      }
      break;
    }
    case Kind::kRange:
      s.ranges = range_remove(std::move(s.ranges), conjunct->lo, handle);
      break;
    case Kind::kNever:
      break;
  }
  if (s.empty()) slots_.erase(sit);
}

// ---- probe ---------------------------------------------------------------

void PredicateIndex::probe(const comm::Tuple& tuple,
                           std::vector<Handle>* out) const {
  for (const auto& [slot, s] : slots_) {
    const device::Value& v = tuple.at(slot);
    if (const std::string* str = std::get_if<std::string>(&v)) {
      auto it = s.str_eq.find(*str);
      if (it != s.str_eq.end()) {
        out->insert(out->end(), it->second.begin(), it->second.end());
      }
      continue;  // a string satisfies no numeric constraint
    }
    // Numeric coercion mirroring compare_values(): bool and int compare
    // as doubles; everything else (NULL, locations) never satisfies a
    // numeric constraint.
    double x;
    if (!device::value_as_double(v, &x) || std::isnan(x)) {
      // NULL / location / NaN: every comparison is false. (The NaN guard
      // also keeps std::map probes away from unordered keys.)
      continue;
    }
    // Point equality.
    if (auto it = s.eq.find(x); it != s.eq.end()) {
      out->insert(out->end(), it->second.begin(), it->second.end());
    }
    // Lower bounds: every entry with key < x, plus inclusive ones at x.
    for (auto it = s.lower.begin(); it != s.lower.end() && it->first <= x;
         ++it) {
      out->insert(out->end(), it->second.incl.begin(), it->second.incl.end());
      if (it->first < x) {
        out->insert(out->end(), it->second.strict.begin(),
                    it->second.strict.end());
      }
    }
    // Upper bounds: every entry with key > x, plus inclusive ones at x.
    for (auto it = s.upper.lower_bound(x); it != s.upper.end(); ++it) {
      out->insert(out->end(), it->second.incl.begin(), it->second.incl.end());
      if (it->first > x) {
        out->insert(out->end(), it->second.strict.begin(),
                    it->second.strict.end());
      }
    }
    // Two-sided ranges.
    range_probe(s.ranges.get(), x, out);
  }
}

}  // namespace aorta::query
