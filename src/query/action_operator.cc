#include "query/action_operator.h"

#include <algorithm>
#include <set>

#include "sched/executor.h"
#include "util/logging.h"
#include "util/strings.h"

namespace aorta::query {

using aorta::util::Result;

ActionOperator::ActionOperator(const ActionDef* action, sync::Prober* prober,
                               sync::LockManager* locks,
                               device::DeviceRegistry* registry,
                               aorta::util::EventLoop* loop,
                               sched::Scheduler* scheduler, aorta::util::Rng rng,
                               Options options)
    : action_(action),
      prober_(prober),
      locks_(locks),
      registry_(registry),
      loop_(loop),
      scheduler_(scheduler),
      rng_(std::move(rng)),
      options_(options) {}

void ActionOperator::enqueue(sched::ActionRequest request) {
  request.id = next_request_id_++;
  request.action_name = action_->name;
  request.shard = options_.shard;
  ++stats_.requests;
  ++query_stats_[request.query_id].requests;
  pending_.push_back(std::move(request));
}

void ActionOperator::flush(std::function<void()> done) {
  if (pending_.empty()) {
    done();
    return;
  }
  std::vector<sched::ActionRequest> batch = std::move(pending_);
  pending_.clear();

  // Health supervision: drop quarantined devices from candidate lists
  // before probing, so neither a probe nor an action attempt is wasted on
  // a device the supervisor already isolated.
  if (options_.health != nullptr) {
    std::vector<sched::ActionRequest> admitted;
    for (auto& r : batch) {
      std::vector<device::DeviceId> live;
      for (auto& c : r.candidates) {
        if (options_.health->is_quarantined(c)) {
          ++stats_.quarantine_filtered;
        } else {
          live.push_back(c);
        }
      }
      if (live.empty()) {
        ++query_stats_[r.query_id].no_candidate;
        if (trace_) {
          trace_(r.query_id, "outcome",
                 action_->name + ": no candidate (all quarantined)");
        }
        continue;
      }
      r.candidates = std::move(live);
      admitted.push_back(std::move(r));
    }
    batch = std::move(admitted);
    if (batch.empty()) {
      done();
      return;
    }
  }
  ++stats_.batches;
  stats_.batch_size.add(static_cast<double>(batch.size()));

  // Distinct candidate devices across the batch.
  std::set<device::DeviceId> candidate_set;
  for (const auto& r : batch) {
    candidate_set.insert(r.candidates.begin(), r.candidates.end());
  }
  std::vector<device::DeviceId> candidates(candidate_set.begin(),
                                           candidate_set.end());

  if (options_.use_probing) {
    // Probe every candidate; unresponsive devices are excluded from the
    // device selection optimization (Section 4).
    prober_->probe_candidates(
        candidates,
        [this, batch = std::move(batch), done = std::move(done)](
            std::vector<sync::ProbeInfo> probes) mutable {
          run_batch(std::move(batch), std::move(probes), std::move(done),
                    /*attempt=*/0);
        });
    return;
  }

  // Probing disabled (ablation): trust the registry blindly — every listed
  // device is assumed alive with unknown (default) physical status.
  std::vector<sync::ProbeInfo> assumed;
  for (const auto& id : candidates) {
    if (registry_->find(id) != nullptr) {
      sync::ProbeInfo info;
      info.id = id;
      assumed.push_back(std::move(info));
    }
  }
  run_batch(std::move(batch), std::move(assumed), std::move(done),
            /*attempt=*/0);
}

void ActionOperator::run_batch(std::vector<sched::ActionRequest> batch,
                               std::vector<sync::ProbeInfo> probes,
                               std::function<void()> done, int attempt) {
  // Scheduler's device view: probed physical status plus numeric static
  // attributes (camera poses etc.), which per-device cost resolution
  // needs (PhotoCostModel's target_x/y/z -> pan/tilt conversion).
  std::vector<sched::SchedDevice> devices;
  std::set<device::DeviceId> alive;
  // "What kind of device physical status is concerned and how it is
  // considered in the optimization is specified in the action profile"
  // (Section 4): keep only the status attributes the profile names.
  const std::vector<std::string>& wanted = action_->profile.status_attrs();
  for (const auto& probe : probes) {
    sched::SchedDevice dev;
    dev.id = probe.id;
    if (wanted.empty()) {
      dev.status = probe.status;
    } else {
      for (const std::string& attr : wanted) {
        auto it = probe.status.find(attr);
        if (it != probe.status.end()) dev.status.emplace(attr, it->second);
      }
    }
    if (const auto* attrs = registry_->static_attrs(probe.id)) {
      for (const auto& [name, value] : *attrs) {
        if (const double* d = std::get_if<double>(&value)) {
          dev.status.emplace(name, *d);
        } else if (const std::int64_t* i = std::get_if<std::int64_t>(&value)) {
          dev.status.emplace(name, static_cast<double>(*i));
        } else if (const device::Location* loc =
                       std::get_if<device::Location>(&value)) {
          dev.status.emplace("pose_x", loc->x);
          dev.status.emplace("pose_y", loc->y);
          dev.status.emplace("pose_z", loc->z);
        }
      }
    }
    devices.push_back(std::move(dev));
    alive.insert(probe.id);
  }

  // Restrict candidate sets to devices that answered their probe; requests
  // whose candidates all died fail outright.
  std::vector<sched::ActionRequest> schedulable;
  for (auto& r : batch) {
    std::vector<device::DeviceId> live;
    for (auto& c : r.candidates) {
      if (alive.count(c) > 0) live.push_back(c);
    }
    if (live.empty()) {
      ++query_stats_[r.query_id].no_candidate;
      continue;
    }
    r.candidates = std::move(live);
    schedulable.push_back(std::move(r));
  }
  if (schedulable.empty()) {
    done();
    return;
  }

  sched::ScheduleResult schedule = scheduler_->schedule(
      schedulable, devices, *action_->cost_model, rng_);
  stats_.service_makespan_s.add(schedule.service_makespan_s);
  if (trace_) {
    trace_("", "batch",
           action_->name + ": " + std::to_string(schedulable.size()) +
               " request(s) on " + std::to_string(devices.size()) +
               " device(s), planned makespan " +
               aorta::util::str_format("%.2fs", schedule.service_makespan_s));
  }

  // Execute through the registered action implementation, under locks.
  auto execute_fn = [this](const device::DeviceId& device,
                           const sched::ActionRequest& request,
                           std::function<void(Result<sched::ActionOutcome>)> cb) {
    if (!action_->impl) {
      cb(Result<sched::ActionOutcome>(aorta::util::internal_error(
          "action " + action_->name + " has no bound implementation")));
      return;
    }
    // The binding argument (photo's c.ip, sendphoto's p.phone_no) is only
    // known once device selection picked the executor: fill it from the
    // chosen device's static attributes so implementations see the fully
    // instantiated argument list.
    std::vector<device::Value> args = request.action_args;
    if (action_->binding_param < args.size()) {
      if (const auto* attrs = registry_->static_attrs(device)) {
        auto it = attrs->find(action_->binding_attr);
        if (it != attrs->end()) args[action_->binding_param] = it->second;
      }
    }
    action_->impl(device, args, std::move(cb));
  };

  auto executor = std::make_shared<sched::ScheduleExecutor>(
      locks_, loop_, execute_fn, options_.use_locks);
  // Keep request metadata alive to map outcomes back to queries.
  auto requests_copy =
      std::make_shared<std::vector<sched::ActionRequest>>(schedulable);
  schedule_history_.push_back(schedule);

  // Device assignments, needed below to fail over a retried request away
  // from the device that just failed it.
  auto schedule_copy = std::make_shared<sched::ScheduleResult>(schedule);

  executor->execute(
      schedule, schedulable,
      [this, executor, requests_copy, schedule_copy, probes, attempt,
       done = std::move(done)](sched::ExecutionReport report) mutable {
        stats_.actual_makespan_s.add(report.actual_makespan_s);

        // Failover: a request whose action failed (device error or
        // timeout — not a merely degraded result) is retried on its
        // remaining candidates, up to max_retries rounds.
        std::vector<sched::ActionRequest> retry;
        for (auto& r : *requests_copy) {
          QueryActionStats& qs = query_stats_[r.query_id];
          auto it = report.outcomes.find(r.id);
          const bool failed = it == report.outcomes.end() || !it->second.ok;
          const sched::ScheduledItem* item = schedule_copy->find(r.id);
          // Feed health supervision per attempt on the scheduled device
          // (a degraded-but-delivered result still counts as the device
          // responding).
          if (options_.health != nullptr && item != nullptr) {
            options_.health->report(
                item->device, device::HealthOutcomeKind::kAction, !failed);
          }
          if (failed && attempt < options_.max_retries) {
            sched::ActionRequest next = r;
            if (item != nullptr) {
              std::erase(next.candidates, item->device);
            }
            if (!next.candidates.empty()) {
              ++stats_.retries;
              retry.push_back(std::move(next));
              continue;  // outcome accounted after the retry round
            }
          }
          if (failed) {
            ++qs.failed;
          } else if (it->second.usable()) {
            ++qs.usable;
          } else {
            ++qs.degraded;
          }
          if (trace_) {
            std::string where = item == nullptr ? "?" : item->device;
            std::string what =
                failed ? "failed"
                       : (it->second.usable() ? "usable" : it->second.detail);
            trace_(r.query_id, "outcome",
                   action_->name + " on " + where + ": " + what);
          }
        }

        if (retry.empty()) {
          done();
          return;
        }
        run_batch(std::move(retry), std::move(probes), std::move(done),
                  attempt + 1);
      });
}

}  // namespace aorta::query
