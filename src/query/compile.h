// Compilation of parsed SELECT statements into executable query plans.
//
// The plan separates, per Section 2's processing model:
//  - the *event table* (the virtual table whose sensory predicates define
//    the events of interest, e.g. sensor with s.accel_x > 500),
//  - per embedded action, the *candidate table* supplying devices for
//    device-selection optimization (e.g. camera, restricted by
//    coverage(c.id, s.loc)),
//  - predicate classification: event predicates (single-alias, pushed into
//    the event scan) vs join predicates (evaluated per event x candidate).
#pragma once

#include <optional>
#include <set>

#include "device/registry.h"
#include "query/catalog.h"

namespace aorta::query {

struct CompiledActionCall {
  const ActionDef* action = nullptr;
  std::vector<ExprPtr> args;    // evaluated per selected candidate device
  std::string candidate_alias;  // alias of the candidate table ("" = event table)
};

struct CompiledQuery {
  std::string name;
  double epoch_s = 0.0;

  std::vector<TableRef> tables;  // alias -> virtual table (device type)
  std::map<std::string, device::DeviceTypeId> table_types;

  std::string event_alias;  // always set (defaults to the first table)
  bool edge_triggered = false;  // true iff sensory event predicates exist

  std::vector<ExprPtr> event_predicates;  // reference only the event table
  std::vector<ExprPtr> join_predicates;   // everything else

  std::vector<CompiledActionCall> actions;
  std::vector<ExprPtr> projections;  // non-action select items

  // Attributes each scan must acquire (projection pushdown).
  std::map<std::string, std::set<std::string>> needed_attrs;

  device::DeviceTypeId event_type() const {
    return table_types.at(event_alias);
  }

  // Human-readable plan description (EXPLAIN output): the event table and
  // trigger mode, predicate classification, embedded actions with their
  // candidate tables, and the projection pushdown sets.
  std::string describe() const;
};

// Compile against the catalog (action/function names) and the registry
// (virtual table schemas). Restrictions: at most 2 tables (the event table
// and one candidate table — the paper's query pattern). In continuous
// mode (`one_shot == false`), candidate-table predicates may only
// reference non-sensory (static) attributes, because candidates are
// evaluated from the registry cache before probing; one-shot SELECTs scan
// every table live, so the restriction does not apply.
aorta::util::Result<CompiledQuery> compile(const SelectStmt& stmt,
                                           const Catalog& catalog,
                                           const device::DeviceRegistry& registry,
                                           bool one_shot = false);

}  // namespace aorta::query
