// Compilation of parsed SELECT statements into executable query plans.
//
// The plan separates, per Section 2's processing model:
//  - the *event table* (the virtual table whose sensory predicates define
//    the events of interest, e.g. sensor with s.accel_x > 500),
//  - per embedded action, the *candidate table* supplying devices for
//    device-selection optimization (e.g. camera, restricted by
//    coverage(c.id, s.loc)),
//  - predicate classification: event predicates (single-alias, pushed into
//    the event scan) vs join predicates (evaluated per event x candidate).
#pragma once

#include <optional>
#include <set>

#include "device/registry.h"
#include "query/catalog.h"
#include "query/eval_program.h"

namespace aorta::query {

struct CompiledActionCall {
  const ActionDef* action = nullptr;
  std::vector<ExprPtr> args;    // evaluated per selected candidate device
  // Compiled form of each argument, aligned with `args`; nullopt falls
  // back to the tree walker. The binding-param argument is never
  // evaluated (finalized per selected device), so its slot stays empty.
  std::vector<std::optional<EvalProgram>> arg_programs;
  std::string candidate_alias;  // alias of the candidate table ("" = event table)
  std::size_t candidate_binding = 0;  // frame slot of candidate_alias
};

// The predicate-index entry distilled from a continuous query's event
// predicates (see predicate_index.h). The compile pass intersects every
// IndexHint that lands on one event-schema slot into a single interval
// (or string-equality) constraint on that slot, then keeps the most
// selective slot. The constraint is a *necessary* condition: every tuple
// the full predicate set accepts satisfies it, so probing the index for
// it yields a candidate superset and the residual EvalProgram run
// preserves exact semantics. When `exact` is set the constraint is also
// *sufficient* (all event predicates hinted onto this one slot) and the
// executor may skip the residual run entirely.
struct IndexableConjunct {
  enum class Kind : std::uint8_t {
    kNever,    // contradictory conjuncts (x > 5 && x < 3): matches nothing
    kPointEq,  // slot == num
    kStrEq,    // slot == str
    kLower,    // slot > / >= num  (num in `lo`)
    kUpper,    // slot < / <= num  (num in `hi`)
    kRange,    // lo <(=) slot <(=) hi
  };

  Kind kind = Kind::kNever;
  std::uint32_t slot = 0;  // field slot in the event table's schema
  std::string attr;        // that field's name (for metrics / EXPLAIN)
  double lo = 0.0;         // valid for kPointEq / kLower / kRange
  double hi = 0.0;         // valid for kPointEq / kUpper / kRange
  bool lo_strict = false;
  bool hi_strict = false;
  std::string str;  // valid for kStrEq
  // Crude match-fraction estimate used only to rank candidate slots
  // (equality is assumed more selective than a range, a range more than
  // a half-line). Falls out of the peephole pass: no data statistics.
  double selectivity = 1.0;
  bool exact = false;
};

struct CompiledQuery {
  std::string name;
  double epoch_s = 0.0;

  std::vector<TableRef> tables;  // alias -> virtual table (device type)
  std::map<std::string, device::DeviceTypeId> table_types;

  std::string event_alias;  // always set (defaults to the first table)
  bool edge_triggered = false;  // true iff sensory event predicates exist

  std::vector<ExprPtr> event_predicates;  // reference only the event table
  std::vector<ExprPtr> join_predicates;   // everything else

  std::vector<CompiledActionCall> actions;
  std::vector<ExprPtr> projections;  // non-action select items

  // Continuous aggregation clauses, carried through from the statement
  // (the executor's AggregateCache consumes them; see DESIGN.md §15).
  std::vector<ExprPtr> group_by;
  double window_s = 0.0;
  double every_s = 0.0;

  // ---- compiled evaluation (query/eval_program.h) -----------------------
  // Frame layout: one slot per FROM alias, in FROM order. Expressions are
  // lowered once here; per row the executor fills a BindingFrame and runs
  // the programs instead of re-walking the trees. A nullopt program means
  // that expression stays on the tree-walking fallback (SELECT *,
  // aggregates, unknown functions).
  std::vector<std::string> binding_aliases;
  std::size_t event_binding = 0;  // frame slot of event_alias
  std::map<std::string, comm::Schema> schemas;  // owned, per alias
  std::vector<std::optional<EvalProgram>> event_programs;   // aligned
  std::vector<std::optional<EvalProgram>> join_programs;    // aligned
  std::vector<std::optional<EvalProgram>> projection_programs;  // aligned

  // Attributes each scan must acquire (projection pushdown).
  std::map<std::string, std::set<std::string>> needed_attrs;

  // Best indexable constraint over the event predicates, if any hinted
  // (continuous compiles only; nullopt puts the AQ on the residual list).
  std::optional<IndexableConjunct> index_conjunct;

  device::DeviceTypeId event_type() const {
    return table_types.at(event_alias);
  }

  // Alias -> schema pointer view over the owned schemas (program
  // compilation input).
  std::map<std::string, const comm::Schema*> schema_ptrs() const;

  // Number of expressions that compiled to programs / stayed on the
  // tree-walking fallback.
  std::size_t program_count() const;
  std::size_t fallback_count() const;

  // Human-readable plan description (EXPLAIN output): the event table and
  // trigger mode, predicate classification, embedded actions with their
  // candidate tables, and the projection pushdown sets.
  std::string describe() const;
};

// Compile against the catalog (action/function names) and the registry
// (virtual table schemas). Restrictions: at most 2 tables (the event table
// and one candidate table — the paper's query pattern). In continuous
// mode (`one_shot == false`), candidate-table predicates may only
// reference non-sensory (static) attributes, because candidates are
// evaluated from the registry cache before probing; one-shot SELECTs scan
// every table live, so the restriction does not apply.
aorta::util::Result<CompiledQuery> compile(const SelectStmt& stmt,
                                           const Catalog& catalog,
                                           const device::DeviceRegistry& registry,
                                           bool one_shot = false);

}  // namespace aorta::query
