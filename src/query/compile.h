// Compilation of parsed SELECT statements into executable query plans.
//
// The plan separates, per Section 2's processing model:
//  - the *event table* (the virtual table whose sensory predicates define
//    the events of interest, e.g. sensor with s.accel_x > 500),
//  - per embedded action, the *candidate table* supplying devices for
//    device-selection optimization (e.g. camera, restricted by
//    coverage(c.id, s.loc)),
//  - predicate classification: event predicates (single-alias, pushed into
//    the event scan) vs join predicates (evaluated per event x candidate).
#pragma once

#include <optional>
#include <set>

#include "device/registry.h"
#include "query/catalog.h"
#include "query/eval_program.h"

namespace aorta::query {

struct CompiledActionCall {
  const ActionDef* action = nullptr;
  std::vector<ExprPtr> args;    // evaluated per selected candidate device
  // Compiled form of each argument, aligned with `args`; nullopt falls
  // back to the tree walker. The binding-param argument is never
  // evaluated (finalized per selected device), so its slot stays empty.
  std::vector<std::optional<EvalProgram>> arg_programs;
  std::string candidate_alias;  // alias of the candidate table ("" = event table)
  std::size_t candidate_binding = 0;  // frame slot of candidate_alias
};

struct CompiledQuery {
  std::string name;
  double epoch_s = 0.0;

  std::vector<TableRef> tables;  // alias -> virtual table (device type)
  std::map<std::string, device::DeviceTypeId> table_types;

  std::string event_alias;  // always set (defaults to the first table)
  bool edge_triggered = false;  // true iff sensory event predicates exist

  std::vector<ExprPtr> event_predicates;  // reference only the event table
  std::vector<ExprPtr> join_predicates;   // everything else

  std::vector<CompiledActionCall> actions;
  std::vector<ExprPtr> projections;  // non-action select items

  // ---- compiled evaluation (query/eval_program.h) -----------------------
  // Frame layout: one slot per FROM alias, in FROM order. Expressions are
  // lowered once here; per row the executor fills a BindingFrame and runs
  // the programs instead of re-walking the trees. A nullopt program means
  // that expression stays on the tree-walking fallback (SELECT *,
  // aggregates, unknown functions).
  std::vector<std::string> binding_aliases;
  std::size_t event_binding = 0;  // frame slot of event_alias
  std::map<std::string, comm::Schema> schemas;  // owned, per alias
  std::vector<std::optional<EvalProgram>> event_programs;   // aligned
  std::vector<std::optional<EvalProgram>> join_programs;    // aligned
  std::vector<std::optional<EvalProgram>> projection_programs;  // aligned

  // Attributes each scan must acquire (projection pushdown).
  std::map<std::string, std::set<std::string>> needed_attrs;

  device::DeviceTypeId event_type() const {
    return table_types.at(event_alias);
  }

  // Alias -> schema pointer view over the owned schemas (program
  // compilation input).
  std::map<std::string, const comm::Schema*> schema_ptrs() const;

  // Number of expressions that compiled to programs / stayed on the
  // tree-walking fallback.
  std::size_t program_count() const;
  std::size_t fallback_count() const;

  // Human-readable plan description (EXPLAIN output): the event table and
  // trigger mode, predicate classification, embedded actions with their
  // candidate tables, and the projection pushdown sets.
  std::string describe() const;
};

// Compile against the catalog (action/function names) and the registry
// (virtual table schemas). Restrictions: at most 2 tables (the event table
// and one candidate table — the paper's query pattern). In continuous
// mode (`one_shot == false`), candidate-table predicates may only
// reference non-sensory (static) attributes, because candidates are
// evaluated from the registry cache before probing; one-shot SELECTs scan
// every table live, so the restriction does not apply.
aorta::util::Result<CompiledQuery> compile(const SelectStmt& stmt,
                                           const Catalog& catalog,
                                           const device::DeviceRegistry& registry,
                                           bool one_shot = false);

}  // namespace aorta::query
