#include "query/eval_program.h"

#include <algorithm>

#include "util/strings.h"

namespace aorta::query {

using aorta::util::Result;
using aorta::util::Status;
using device::Value;

namespace {

// A subtree is compile-time constant when it touches neither columns nor
// functions (functions may be stateful — coverage() reads the registry).
bool is_constant(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return true;
    case Expr::Kind::kColumnRef:
    case Expr::Kind::kFuncCall:
      return false;
    case Expr::Kind::kBinary:
      return is_constant(*expr.lhs) && is_constant(*expr.rhs);
    case Expr::Kind::kNot:
      return is_constant(*expr.lhs);
  }
  return false;
}

std::size_t node_count(const Expr& expr) {
  std::size_t n = 1;
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
    case Expr::Kind::kColumnRef:
      break;
    case Expr::Kind::kFuncCall:
      for (const auto& arg : expr.args) n += node_count(*arg);
      break;
    case Expr::Kind::kBinary:
      n += node_count(*expr.lhs) + node_count(*expr.rhs);
      break;
    case Expr::Kind::kNot:
      n += node_count(*expr.lhs);
      break;
  }
  return n;
}

bool is_comparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

// Inline numeric coercion for the VM's fast paths. Mirrors
// device::value_as_double (bool/int/double) but stays in this TU so the
// interpreter loop never pays a call for the overwhelmingly common
// all-numeric operand case. The slow paths below still route through
// compare_values / arithmetic_values, which define the semantics.
inline bool fast_num(const Value& v, double* out) {
  if (const double* d = std::get_if<double>(&v)) {
    *out = *d;
    return true;
  }
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v)) {
    *out = static_cast<double>(*i);
    return true;
  }
  if (const bool* b = std::get_if<bool>(&v)) {
    *out = *b ? 1.0 : 0.0;
    return true;
  }
  return false;
}

inline bool fast_is_null(const Value& v) {
  return std::holds_alternative<std::monostate>(v);
}

// Truthiness with the bool/double cases inlined; everything else (strings,
// locations) defers to device::value_truthy.
inline bool fast_truthy(const Value& v) {
  if (const bool* b = std::get_if<bool>(&v)) return *b;
  if (const double* d = std::get_if<double>(&v)) return *d != 0.0;
  if (fast_is_null(v)) return false;
  return device::value_truthy(v);
}

inline bool fast_compare(BinaryOp op, double a, double b) {
  switch (op) {
    case BinaryOp::kEq: return a == b;
    case BinaryOp::kNe: return a != b;
    case BinaryOp::kLt: return a < b;
    case BinaryOp::kLe: return a <= b;
    case BinaryOp::kGt: return a > b;
    default: return a >= b;  // kGe; the compiler never emits others here
  }
}

}  // namespace

// Lowers one Expr tree into a program. Collects errors as a Status so the
// recursive emitters can stay void; compile() checks it at the end.
class ProgramBuilder {
 public:
  ProgramBuilder(const std::vector<std::string>& binding_aliases,
                 const std::map<std::string, const comm::Schema*>& schemas,
                 const FunctionRegistry& functions)
      : binding_aliases_(binding_aliases),
        schemas_(schemas),
        functions_(functions) {}

  Result<EvalProgram> build(const Expr& expr) {
    if (binding_aliases_.size() > BindingFrame::kMaxBindings) {
      return Result<EvalProgram>(aorta::util::invalid_argument_error(
          "too many tables for a binding frame"));
    }
    emit(expr);
    if (!status_.is_ok()) return Result<EvalProgram>(status_);
    program_.fuse_compare_triples();
    return std::move(program_);
  }

 private:
  using OpCode = EvalProgram::OpCode;

  void fail(Status s) {
    if (status_.is_ok()) status_ = std::move(s);
  }

  void push_depth() {
    ++depth_;
    program_.max_stack_ = std::max(program_.max_stack_, depth_);
  }

  std::uint32_t intern_const(Value v) {
    program_.consts_.push_back(std::move(v));
    return static_cast<std::uint32_t>(program_.consts_.size() - 1);
  }

  std::uint32_t intern_name(const std::string& name) {
    for (std::size_t i = 0; i < program_.names_.size(); ++i) {
      if (program_.names_[i] == name) return static_cast<std::uint32_t>(i);
    }
    program_.names_.push_back(name);
    return static_cast<std::uint32_t>(program_.names_.size() - 1);
  }

  void emit_op(OpCode op, std::uint32_t a = 0, std::uint32_t b = 0,
               std::uint32_t c = 0) {
    program_.code_.push_back(EvalProgram::Instr{op, a, b, c});
  }

  void emit_const(Value v) {
    emit_op(OpCode::kPushConst, intern_const(std::move(v)));
    push_depth();
  }

  // Fold a constant subtree by running the reference evaluator once at
  // compile time (no columns or functions inside, so the empty Env cannot
  // be consulted). A folding that errors is emitted structurally instead:
  // the per-row evaluation must keep reporting that error.
  bool try_fold(const Expr& expr) {
    if (expr.kind == Expr::Kind::kLiteral || !is_constant(expr)) return false;
    Env empty;
    auto v = eval(expr, empty, functions_);
    if (!v.is_ok()) return false;
    program_.folded_nodes_ += node_count(expr) - 1;
    emit_const(std::move(v).value());
    return true;
  }

  std::int64_t binding_of(const std::string& alias) const {
    for (std::size_t i = 0; i < binding_aliases_.size(); ++i) {
      if (binding_aliases_[i] == alias) return static_cast<std::int64_t>(i);
    }
    return -1;
  }

  void emit_column(const Expr& expr) {
    if (!expr.qualifier.empty()) {
      std::int64_t binding = binding_of(expr.qualifier);
      if (binding < 0) {
        // The tree walker reports this per row, not at compile time, so
        // the program must too (e.g. the rhs of a short-circuited AND
        // must stay silently unevaluated).
        emit_op(OpCode::kLoadUnbound, 0, 0, intern_name(expr.qualifier));
        push_depth();
        return;
      }
      auto it = schemas_.find(expr.qualifier);
      const comm::Schema* schema = it == schemas_.end() ? nullptr : it->second;
      if (schema == nullptr) {
        fail(aorta::util::not_found_error("no schema for alias: " +
                                          expr.qualifier));
        return;
      }
      auto slot = schema->index_of(expr.column);
      if (!slot.has_value()) {
        // A bound tuple serves unknown names as NULL (Tuple::get), so the
        // reference to a column the schema lacks compiles to a NULL load
        // that still reports unbound aliases.
        emit_op(OpCode::kLoadMissing, static_cast<std::uint32_t>(binding), 0,
                intern_name(expr.qualifier));
        push_depth();
        return;
      }
      emit_op(OpCode::kLoadQual, static_cast<std::uint32_t>(binding),
              static_cast<std::uint32_t>(*slot), intern_name(expr.qualifier));
      push_depth();
      return;
    }
    // Unqualified: must resolve to exactly one schema, like the tree
    // walker's search over the bound tuples.
    std::int64_t binding = -1;
    std::size_t slot = 0;
    for (std::size_t i = 0; i < binding_aliases_.size(); ++i) {
      auto it = schemas_.find(binding_aliases_[i]);
      if (it == schemas_.end() || it->second == nullptr) continue;
      auto s = it->second->index_of(expr.column);
      if (!s.has_value()) continue;
      if (binding >= 0) {
        fail(aorta::util::invalid_argument_error("ambiguous column: " +
                                                 expr.column));
        return;
      }
      binding = static_cast<std::int64_t>(i);
      slot = *s;
    }
    if (binding < 0) {
      fail(aorta::util::not_found_error("unknown column: " + expr.column));
      return;
    }
    emit_op(OpCode::kLoadUnqual, static_cast<std::uint32_t>(binding),
            static_cast<std::uint32_t>(slot), intern_name(expr.column));
    push_depth();
  }

  void emit_logic(const Expr& expr) {
    bool is_and = expr.op == BinaryOp::kAnd;
    // Short-circuit folding: a constant, non-erroring lhs either decides
    // the result outright (the tree walker never evaluates rhs, so neither
    // may we — rhs may not even compile) or vanishes entirely.
    if (is_constant(*expr.lhs)) {
      Env empty;
      auto lhs = eval(*expr.lhs, empty, functions_);
      if (lhs.is_ok()) {
        bool l = device::value_truthy(lhs.value());
        program_.folded_nodes_ += node_count(*expr.lhs);
        if (is_and && !l) {
          program_.folded_nodes_ += node_count(*expr.rhs);
          emit_const(Value{false});
          return;
        }
        if (!is_and && l) {
          program_.folded_nodes_ += node_count(*expr.rhs);
          emit_const(Value{true});
          return;
        }
        emit(*expr.rhs);
        emit_op(OpCode::kBoolCast);
        return;
      }
    }
    emit(*expr.lhs);
    std::size_t jump_at = program_.code_.size();
    emit_op(is_and ? OpCode::kAndJump : OpCode::kOrJump);
    --depth_;  // fall-through pops the lhs value
    emit(*expr.rhs);
    emit_op(OpCode::kBoolCast);
    program_.code_[jump_at].a =
        static_cast<std::uint32_t>(program_.code_.size());
  }

  void emit(const Expr& expr) {
    if (!status_.is_ok()) return;
    if (try_fold(expr)) return;
    switch (expr.kind) {
      case Expr::Kind::kLiteral:
        emit_const(expr.literal);
        return;
      case Expr::Kind::kColumnRef:
        emit_column(expr);
        return;
      case Expr::Kind::kFuncCall: {
        const ScalarFn* fn = functions_.find(expr.func_name);
        if (fn == nullptr) {
          fail(aorta::util::not_found_error("unknown function: " +
                                            expr.func_name));
          return;
        }
        for (const auto& arg : expr.args) emit(*arg);
        program_.fns_.push_back(fn);
        emit_op(OpCode::kCall,
                static_cast<std::uint32_t>(program_.fns_.size() - 1),
                static_cast<std::uint32_t>(expr.args.size()));
        depth_ -= expr.args.size();
        push_depth();
        return;
      }
      case Expr::Kind::kBinary:
        if (expr.op == BinaryOp::kAnd || expr.op == BinaryOp::kOr) {
          emit_logic(expr);
          return;
        }
        emit(*expr.lhs);
        emit(*expr.rhs);
        emit_op(is_comparison(expr.op) ? OpCode::kCompare : OpCode::kArith,
                static_cast<std::uint32_t>(expr.op));
        --depth_;
        return;
      case Expr::Kind::kNot:
        emit(*expr.lhs);
        emit_op(OpCode::kNot);
        return;
    }
    fail(aorta::util::internal_error("bad expression kind"));
  }

  const std::vector<std::string>& binding_aliases_;
  const std::map<std::string, const comm::Schema*>& schemas_;
  const FunctionRegistry& functions_;
  EvalProgram program_;
  Status status_;
  std::size_t depth_ = 0;
};

Result<EvalProgram> EvalProgram::compile(
    const Expr& expr, const std::vector<std::string>& binding_aliases,
    const std::map<std::string, const comm::Schema*>& schemas,
    const FunctionRegistry& functions) {
  return ProgramBuilder(binding_aliases, schemas, functions).build(expr);
}

// Rewrites every [kLoadQual][kPushConst(numeric, non-null)][kCompare]
// triple — the shape of virtually every sensory predicate — into one
// kCmpQualConst with the constant pre-coerced to double, then remaps the
// short-circuit jump targets. Jump targets can only point at instruction
// boundaries that follow a kBoolCast (or the program end), never into the
// middle of a triple, so collapsing is safe.
void EvalProgram::fuse_compare_triples() {
  num_consts_.assign(consts_.size(), 0.0);
  std::vector<bool> numeric(consts_.size(), false);
  for (std::size_t i = 0; i < consts_.size(); ++i) {
    double d;
    if (fast_num(consts_[i], &d)) {
      num_consts_[i] = d;
      numeric[i] = true;
    }
  }

  std::vector<Instr> fused;
  fused.reserve(code_.size());
  std::vector<std::uint32_t> remap(code_.size() + 1, 0);
  for (std::size_t i = 0; i < code_.size();) {
    remap[i] = static_cast<std::uint32_t>(fused.size());
    if (i + 2 < code_.size() && code_[i].op == OpCode::kLoadQual &&
        code_[i + 1].op == OpCode::kPushConst &&
        code_[i + 2].op == OpCode::kCompare &&
        numeric[code_[i + 1].a]) {
      const Instr& load = code_[i];
      const Instr& cnst = code_[i + 1];
      const Instr& cmp = code_[i + 2];
      remap[i + 1] = remap[i + 2] = static_cast<std::uint32_t>(fused.size());
      fused.push_back(Instr{
          OpCode::kCmpQualConst, load.b, cnst.a,
          (load.c << 6) | (load.a << 4) | cmp.a});
      i += 3;
      continue;
    }
    fused.push_back(code_[i]);
    ++i;
  }
  remap[code_.size()] = static_cast<std::uint32_t>(fused.size());
  for (Instr& in : fused) {
    if (in.op == OpCode::kAndJump || in.op == OpCode::kOrJump) {
      in.a = remap[in.a];
    }
  }
  code_ = std::move(fused);
}

namespace {

// `c <op> x` is `x <mirror(op)> c`.
BinaryOp mirror_compare(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

}  // namespace

std::optional<IndexHint> EvalProgram::index_hint() const {
  IndexHint hint;
  // The peephole pass's own output is the common case: a sensory
  // predicate like `s.accel_x > 500` compiles to exactly one fused
  // compare, constant already coerced into num_consts_.
  if (code_.size() == 1 && code_[0].op == OpCode::kCmpQualConst) {
    const Instr& in = code_[0];
    hint.op = static_cast<BinaryOp>(in.c & 0xf);
    if (hint.op == BinaryOp::kNe) return std::nullopt;
    hint.binding = (in.c >> 4) & 0x3;
    hint.slot = in.a;
    hint.num = num_consts_[in.b];
    return hint;
  }
  // Unfused triples: unqualified column refs (kLoadUnqual is never
  // fused), string constants, and constant-on-the-left compares.
  if (code_.size() != 3 || code_[2].op != OpCode::kCompare) {
    return std::nullopt;
  }
  BinaryOp op = static_cast<BinaryOp>(code_[2].a);
  const Instr* load = nullptr;
  const Instr* cnst = nullptr;
  auto is_load = [](const Instr& in) {
    return in.op == OpCode::kLoadQual || in.op == OpCode::kLoadUnqual;
  };
  if (is_load(code_[0]) && code_[1].op == OpCode::kPushConst) {
    load = &code_[0];
    cnst = &code_[1];
  } else if (code_[0].op == OpCode::kPushConst && is_load(code_[1])) {
    load = &code_[1];
    cnst = &code_[0];
    op = mirror_compare(op);
  } else {
    return std::nullopt;
  }
  if (op == BinaryOp::kNe) return std::nullopt;
  hint.binding = load->a;
  hint.slot = load->b;
  hint.op = op;
  const Value& c = consts_[cnst->a];
  if (double d; fast_num(c, &d)) {
    hint.num = d;
    return hint;
  }
  if (const std::string* s = std::get_if<std::string>(&c)) {
    // String equality hashes; string ranges stay residual (compare_values
    // orders strings, but the interval structures are numeric).
    if (op != BinaryOp::kEq) return std::nullopt;
    hint.is_string = true;
    hint.str = *s;
    return hint;
  }
  return std::nullopt;  // NULL / location / bool-as-ref constants
}

namespace {

// One VM stack entry. Loads and consts push *references* into the tuple /
// constant pool (no variant copy on the hot path); operator results are
// immediates. Strings and locations only ever live behind kRef — produced
// by the slow paths, which park their owned Value in a side buffer.
// Deliberately trivial: the stack array is left uninitialized, every slot
// is written before it is read.
struct Slot {
  enum class Tag : std::uint8_t { kNull, kBool, kNum, kRef };
  Tag tag;
  union {
    bool b;
    double d;
    const Value* ref;
  };

  void set_null() { tag = Tag::kNull; }
  void set_bool(bool v) { tag = Tag::kBool; b = v; }
  void set_num(double v) { tag = Tag::kNum; d = v; }
  void set_ref(const Value* v) { tag = Tag::kRef; ref = v; }
};

inline bool slot_is_null(const Slot& s) {
  return s.tag == Slot::Tag::kNull ||
         (s.tag == Slot::Tag::kRef && fast_is_null(*s.ref));
}

inline bool slot_num(const Slot& s, double* out) {
  switch (s.tag) {
    case Slot::Tag::kNum: *out = s.d; return true;
    case Slot::Tag::kBool: *out = s.b ? 1.0 : 0.0; return true;
    case Slot::Tag::kRef: return fast_num(*s.ref, out);
    case Slot::Tag::kNull: return false;
  }
  return false;
}

inline bool slot_truthy(const Slot& s) {
  switch (s.tag) {
    case Slot::Tag::kBool: return s.b;
    case Slot::Tag::kNum: return s.d != 0.0;
    case Slot::Tag::kRef: return fast_truthy(*s.ref);
    case Slot::Tag::kNull: return false;
  }
  return false;
}

// Copies a slot out into an owned Value (slow paths, call arguments, the
// final result).
inline Value slot_value(const Slot& s) {
  switch (s.tag) {
    case Slot::Tag::kNull: return Value{};
    case Slot::Tag::kBool: return Value{s.b};
    case Slot::Tag::kNum: return Value{s.d};
    case Slot::Tag::kRef: return *s.ref;
  }
  return Value{};
}

}  // namespace

// The VM loop. kPredicateMode returns bool (errors -> false, no Status or
// Result ever materialized); value mode returns Result<Value> with the
// tree walker's exact error messages.
template <bool kPredicateMode>
auto EvalProgram::exec(const BindingFrame& frame) const {
  // Fails either mode uniformly; `make_error` is only invoked in value
  // mode, so predicate rows never pay for message construction.
  auto failed = [](auto&& make_error) {
    if constexpr (kPredicateMode) {
      return false;
    } else {
      return Result<Value>(make_error());
    }
  };

  constexpr std::size_t kInlineStack = 16;
  Slot inline_stack[kInlineStack];
  std::vector<Slot> heap_stack;
  Slot* stack = inline_stack;
  if (max_stack_ > kInlineStack) {
    heap_stack.resize(max_stack_);
    stack = heap_stack.data();
  }
  // Owned storage for slow-path results (string concat, function
  // returns). Lazily reserved: all-numeric predicates never touch it. The
  // one-time reserve bounds it (at most one park per instruction, no
  // backward jumps), so parked references stay stable.
  std::vector<Value> owned;
  auto park = [&](std::size_t slot, Value v) {
    if (owned.capacity() == 0) owned.reserve(code_.size());
    owned.push_back(std::move(v));
    stack[slot].set_ref(&owned.back());
  };

  std::size_t sp = 0;
  std::size_t pc = 0;
  const std::size_t n = code_.size();
  while (pc < n) {
    const Instr& in = code_[pc];
    switch (in.op) {
      case OpCode::kCmpQualConst: {
        // The fused fast lane: load a qualified column, compare against a
        // pre-coerced numeric constant, push the verdict.
        const comm::Tuple* t = frame.tuples[(in.c >> 4) & 0x3];
        if (t == nullptr) {
          return failed([&] {
            return aorta::util::not_found_error("unbound table alias: " +
                                                names_[in.c >> 6]);
          });
        }
        const Value& v = t->at(in.a);
        double d;
        if (const double* pd = std::get_if<double>(&v)) {
          d = *pd;
        } else if (fast_is_null(v)) {
          stack[sp++].set_bool(false);  // NULL cmp non-NULL const
          break;
        } else if (!fast_num(v, &d)) {
          // Non-numeric column value (string id, location): shared slow
          // path against the original constant.
          auto r = compare_values(static_cast<BinaryOp>(in.c & 0xf), v,
                                  consts_[in.b]);
          if (!r.is_ok()) {
            return failed([&] { return r.status(); });
          }
          park(sp, std::move(r).value());
          ++sp;
          break;
        }
        stack[sp++].set_bool(fast_compare(static_cast<BinaryOp>(in.c & 0xf),
                                          d, num_consts_[in.b]));
        break;
      }
      case OpCode::kPushConst:
        stack[sp++].set_ref(&consts_[in.a]);
        break;
      case OpCode::kLoadQual: {
        const comm::Tuple* t = frame.tuples[in.a];
        if (t == nullptr) {
          return failed([&] {
            return aorta::util::not_found_error("unbound table alias: " +
                                                names_[in.c]);
          });
        }
        stack[sp++].set_ref(&t->at(in.b));
        break;
      }
      case OpCode::kLoadUnqual: {
        const comm::Tuple* t = frame.tuples[in.a];
        if (t == nullptr) {
          return failed([&] {
            return aorta::util::not_found_error("unknown column: " +
                                                names_[in.c]);
          });
        }
        stack[sp++].set_ref(&t->at(in.b));
        break;
      }
      case OpCode::kLoadMissing: {
        if (frame.tuples[in.a] == nullptr) {
          return failed([&] {
            return aorta::util::not_found_error("unbound table alias: " +
                                                names_[in.c]);
          });
        }
        stack[sp++].set_null();
        break;
      }
      case OpCode::kLoadUnbound:
        return failed([&] {
          return aorta::util::not_found_error("unbound table alias: " +
                                              names_[in.c]);
        });
      case OpCode::kCall: {
        std::size_t argc = in.b;
        std::vector<Value> args;
        args.reserve(argc);
        for (std::size_t i = sp - argc; i < sp; ++i) {
          args.push_back(slot_value(stack[i]));
        }
        sp -= argc;
        auto r = (*fns_[in.a])(args);
        if (!r.is_ok()) {
          return failed([&] { return r.status(); });
        }
        park(sp, std::move(r).value());
        ++sp;
        break;
      }
      case OpCode::kCompare: {
        const Slot& a = stack[sp - 2];
        const Slot& b = stack[sp - 1];
        // Fast paths (NULL -> false, all-numeric inline) cover the sensory
        // predicates the executor runs per epoch; strings/locations and
        // type errors take the shared slow path.
        double da, db;
        if (slot_is_null(a) || slot_is_null(b)) {
          --sp;
          stack[sp - 1].set_bool(false);
        } else if (slot_num(a, &da) && slot_num(b, &db)) {
          --sp;
          stack[sp - 1].set_bool(fast_compare(static_cast<BinaryOp>(in.a),
                                              da, db));
        } else {
          auto r = compare_values(static_cast<BinaryOp>(in.a), slot_value(a),
                                  slot_value(b));
          if (!r.is_ok()) {
            return failed([&] { return r.status(); });
          }
          --sp;
          park(sp - 1, std::move(r).value());
        }
        break;
      }
      case OpCode::kArith: {
        const Slot& a = stack[sp - 2];
        const Slot& b = stack[sp - 1];
        double da, db;
        if (slot_is_null(a) || slot_is_null(b)) {
          --sp;
          stack[sp - 1].set_null();
        } else if (slot_num(a, &da) && slot_num(b, &db)) {
          --sp;
          switch (static_cast<BinaryOp>(in.a)) {
            case BinaryOp::kAdd: stack[sp - 1].set_num(da + db); break;
            case BinaryOp::kSub: stack[sp - 1].set_num(da - db); break;
            case BinaryOp::kMul: stack[sp - 1].set_num(da * db); break;
            default:  // kDiv; NULL on division by zero
              if (db == 0.0) {
                stack[sp - 1].set_null();
              } else {
                stack[sp - 1].set_num(da / db);
              }
              break;
          }
        } else {
          auto r = arithmetic_values(static_cast<BinaryOp>(in.a),
                                     slot_value(a), slot_value(b));
          if (!r.is_ok()) {
            return failed([&] { return r.status(); });
          }
          --sp;
          park(sp - 1, std::move(r).value());
        }
        break;
      }
      case OpCode::kNot:
        stack[sp - 1].set_bool(!slot_truthy(stack[sp - 1]));
        break;
      case OpCode::kBoolCast:
        stack[sp - 1].set_bool(slot_truthy(stack[sp - 1]));
        break;
      case OpCode::kAndJump:
        if (!slot_truthy(stack[sp - 1])) {
          stack[sp - 1].set_bool(false);
          pc = in.a;
          continue;
        }
        --sp;
        break;
      case OpCode::kOrJump:
        if (slot_truthy(stack[sp - 1])) {
          stack[sp - 1].set_bool(true);
          pc = in.a;
          continue;
        }
        --sp;
        break;
    }
    ++pc;
  }
  if constexpr (kPredicateMode) {
    return slot_truthy(stack[sp - 1]);
  } else {
    return Result<Value>(slot_value(stack[sp - 1]));
  }
}

Result<Value> EvalProgram::run(const BindingFrame& frame) const {
  return exec</*kPredicateMode=*/false>(frame);
}

bool EvalProgram::run_predicate(const BindingFrame& frame) const {
  return exec</*kPredicateMode=*/true>(frame);
}

std::string EvalProgram::disassemble() const {
  std::string out;
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const Instr& in = code_[i];
    out += aorta::util::str_format("%3zu: ", i);
    switch (in.op) {
      case OpCode::kPushConst:
        out += "push " + device::value_to_string(consts_[in.a]);
        break;
      case OpCode::kLoadQual:
        out += aorta::util::str_format("load %s[%u] slot %u",
                                       names_[in.c].c_str(), in.a, in.b);
        break;
      case OpCode::kLoadUnqual:
        out += aorta::util::str_format("load_unqual %s bind %u slot %u",
                                       names_[in.c].c_str(), in.a, in.b);
        break;
      case OpCode::kLoadMissing:
        out += aorta::util::str_format("load_missing bind %u (NULL)", in.a);
        break;
      case OpCode::kLoadUnbound:
        out += "load_unbound " + names_[in.c] + " (error)";
        break;
      case OpCode::kCmpQualConst:
        out += aorta::util::str_format(
            "cmp_fused %s[%u] slot %u %s %s", names_[in.c >> 6].c_str(),
            (in.c >> 4) & 0x3, in.a,
            std::string(binary_op_name(static_cast<BinaryOp>(in.c & 0xf)))
                .c_str(),
            device::value_to_string(consts_[in.b]).c_str());
        break;
      case OpCode::kCall:
        out += aorta::util::str_format("call fn#%u argc %u", in.a, in.b);
        break;
      case OpCode::kCompare:
        out += "cmp ";
        out += binary_op_name(static_cast<BinaryOp>(in.a));
        break;
      case OpCode::kArith:
        out += "arith ";
        out += binary_op_name(static_cast<BinaryOp>(in.a));
        break;
      case OpCode::kNot:
        out += "not";
        break;
      case OpCode::kBoolCast:
        out += "bool";
        break;
      case OpCode::kAndJump:
        out += aorta::util::str_format("and_jump -> %u", in.a);
        break;
      case OpCode::kOrJump:
        out += aorta::util::str_format("or_jump -> %u", in.a);
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace aorta::query
