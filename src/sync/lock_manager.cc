#include "sync/lock_manager.h"

#include <algorithm>

namespace aorta::sync {

using aorta::util::Status;

bool LockManager::try_lock(const device::DeviceId& id, const LockOwner& owner) {
  LockState& state = locks_[id];
  if (state.held) {
    ++stats_.contentions;
    return false;
  }
  state.held = true;
  state.holder = owner;
  ++stats_.acquisitions;
  return true;
}

void LockManager::lock(const device::DeviceId& id, const LockOwner& owner,
                       std::function<void()> granted) {
  LockState& state = locks_[id];
  if (!state.held) {
    state.held = true;
    state.holder = owner;
    ++stats_.acquisitions;
    // Deliver asynchronously for a uniform caller contract.
    loop_->schedule(aorta::util::Duration::zero(), std::move(granted));
    return;
  }
  ++stats_.contentions;
  Waiter waiter;
  waiter.owner = owner;
  waiter.granted = std::move(granted);
  state.waiters.push_back(std::move(waiter));
  stats_.max_queue_depth =
      std::max(stats_.max_queue_depth,
               static_cast<std::uint64_t>(state.waiters.size()));
}

Status LockManager::unlock(const device::DeviceId& id, const LockOwner& owner) {
  auto it = locks_.find(id);
  if (it == locks_.end() || !it->second.held) {
    return aorta::util::invalid_argument_error("unlock of unheld lock: " + id);
  }
  if (it->second.holder != owner) {
    return aorta::util::invalid_argument_error(
        "unlock of " + id + " by non-holder " + owner + " (held by " +
        it->second.holder + ")");
  }
  ++stats_.releases;
  it->second.held = false;
  it->second.holder.clear();
  grant_next(id);
  return Status::ok();
}

void LockManager::grant_next(const device::DeviceId& id) {
  LockState& state = locks_[id];
  if (state.held || state.waiters.empty()) return;
  Waiter next = std::move(state.waiters.front());
  state.waiters.pop_front();
  state.held = true;
  state.holder = next.owner;
  ++stats_.acquisitions;
  if (next.granted_st) {
    // A timed waiter: its timeout can no longer fire.
    loop_->cancel(next.timeout_event);
    loop_->schedule(aorta::util::Duration::zero(),
                    [cb = std::move(next.granted_st)]() {
                      cb(aorta::util::Status::ok());
                    });
  } else {
    loop_->schedule(aorta::util::Duration::zero(), std::move(next.granted));
  }
}

void LockManager::lock_with_timeout(const device::DeviceId& id,
                                    const LockOwner& owner,
                                    aorta::util::Duration timeout,
                                    std::function<void(aorta::util::Status)> done) {
  LockState& state = locks_[id];
  if (!state.held) {
    state.held = true;
    state.holder = owner;
    ++stats_.acquisitions;
    loop_->schedule(aorta::util::Duration::zero(),
                    [cb = std::move(done)]() { cb(aorta::util::Status::ok()); });
    return;
  }
  ++stats_.contentions;

  Waiter waiter;
  waiter.owner = owner;
  waiter.granted_st = std::move(done);
  waiter.waiter_id = next_waiter_id_++;
  waiter.timeout_event = loop_->schedule(
      timeout, [this, id, waiter_id = waiter.waiter_id]() {
        LockState& st = locks_[id];
        for (auto it = st.waiters.begin(); it != st.waiters.end(); ++it) {
          if (it->waiter_id != waiter_id) continue;
          auto cb = std::move(it->granted_st);
          st.waiters.erase(it);
          ++stats_.wait_timeouts;
          cb(aorta::util::timeout_error("lock wait on " + id + " timed out"));
          return;
        }
      });
  state.waiters.push_back(std::move(waiter));
  stats_.max_queue_depth =
      std::max(stats_.max_queue_depth,
               static_cast<std::uint64_t>(state.waiters.size()));
}

bool LockManager::is_locked(const device::DeviceId& id) const {
  auto it = locks_.find(id);
  return it != locks_.end() && it->second.held;
}

const LockOwner* LockManager::holder(const device::DeviceId& id) const {
  auto it = locks_.find(id);
  if (it == locks_.end() || !it->second.held) return nullptr;
  return &it->second.holder;
}

std::size_t LockManager::queue_depth(const device::DeviceId& id) const {
  auto it = locks_.find(id);
  return it == locks_.end() ? 0 : it->second.waiters.size();
}

}  // namespace aorta::sync
