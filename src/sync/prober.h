// Device probing: availability checking and physical-status acquisition.
//
// Section 4: "The probing mechanism is for the optimizer to examine each
// candidate before deciding whether it should be included in the device
// selection optimization ... A system-provided TIMEOUT value is set for
// each type of devices to break the probe on unresponsive devices. These
// malfunctioning devices will be automatically excluded in the device
// selection optimization. Additionally, by probing a candidate device the
// optimizer can gather information about the current physical status of
// the device."
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "comm/comm_module.h"
#include "util/status.h"

namespace aorta::sync {

struct ProbeInfo {
  device::DeviceId id;
  aorta::util::Duration rtt;            // measured round-trip time
  bool busy = false;                    // device reported in-flight work
  std::map<std::string, double> status; // physical status (pan/tilt/zoom, ...)
};

struct ProbeStats {
  std::uint64_t probes = 0;
  std::uint64_t responses = 0;
  std::uint64_t timeouts = 0;
};

class Prober {
 public:
  Prober(comm::CommLayer* comm, device::DeviceRegistry* registry,
         aorta::util::EventLoop* loop)
      : comm_(comm), registry_(registry), loop_(loop) {}

  // Probe one device. The timeout is the per-type TIMEOUT from the
  // registry's type info. Unresponsive devices yield kTimeout.
  void probe(const device::DeviceId& id,
             std::function<void(aorta::util::Result<ProbeInfo>)> done);

  // Probe a candidate set in parallel; deliver only the devices that
  // responded within their TIMEOUT (the others are excluded, as the paper
  // prescribes). Order of the result follows the input order.
  void probe_candidates(const std::vector<device::DeviceId>& candidates,
                        std::function<void(std::vector<ProbeInfo>)> done);

  const ProbeStats& stats() const { return stats_; }

 private:
  comm::CommLayer* comm_;
  device::DeviceRegistry* registry_;
  aorta::util::EventLoop* loop_;
  ProbeStats stats_;
};

}  // namespace aorta::sync
