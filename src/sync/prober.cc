#include "sync/prober.h"

#include <memory>

#include "util/strings.h"

namespace aorta::sync {

using aorta::util::Result;

void Prober::probe(const device::DeviceId& id,
                   std::function<void(Result<ProbeInfo>)> done) {
  device::Device* dev = registry_->find(id);
  if (dev == nullptr) {
    done(Result<ProbeInfo>(
        aorta::util::not_found_error("unknown device: " + id)));
    return;
  }
  comm::CommModule* module = comm_->module_for(dev->type_id());
  if (module == nullptr) {
    done(Result<ProbeInfo>(aorta::util::internal_error(
        "no comm module for device type " + dev->type_id())));
    return;
  }

  ++stats_.probes;
  aorta::util::TimePoint sent_at = loop_->now();
  module->request(
      id, "probe", {}, module->default_timeout(),
      [this, id, sent_at, done = std::move(done)](Result<net::Message> reply) {
        if (!reply.is_ok()) {
          ++stats_.timeouts;
          done(Result<ProbeInfo>(reply.status()));
          return;
        }
        ++stats_.responses;
        const net::Message& msg = reply.value();
        ProbeInfo info;
        info.id = id;
        info.rtt = loop_->now() - sent_at;
        info.busy = msg.field_int("busy") != 0;
        for (const auto& [key, value] : msg.fields) {
          if (aorta::util::starts_with(key, "status.")) {
            info.status[key.substr(7)] = msg.field_double(key);
          }
        }
        done(Result<ProbeInfo>(std::move(info)));
      });
}

void Prober::probe_candidates(const std::vector<device::DeviceId>& candidates,
                              std::function<void(std::vector<ProbeInfo>)> done) {
  if (candidates.empty()) {
    done({});
    return;
  }
  struct Job {
    std::vector<Result<ProbeInfo>> results;
    std::size_t outstanding;
    std::function<void(std::vector<ProbeInfo>)> done;
  };
  auto job = std::make_shared<Job>();
  job->outstanding = candidates.size();
  job->done = std::move(done);
  job->results.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    job->results.emplace_back(aorta::util::internal_error("pending"));
  }

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    probe(candidates[i], [job, i](Result<ProbeInfo> result) {
      job->results[i] = std::move(result);
      if (--job->outstanding == 0) {
        std::vector<ProbeInfo> alive;
        for (auto& r : job->results) {
          if (r.is_ok()) alive.push_back(std::move(r).value());
        }
        job->done(std::move(alive));
      }
    });
  }
}

}  // namespace aorta::sync
