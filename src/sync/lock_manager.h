// Device locking for action atomicity.
//
// Section 4: "When a device has been selected to execute an action, the
// optimizer will lock it until it finishes executing the action ...
// Subsequent actions on this device cannot start before the device is
// unlocked." This eliminated the concurrent-photo interference the paper
// observed (blurred photos, wrong positions, timeouts on busy cameras).
//
// These are *logical* locks held by the engine on behalf of a query's
// action request — they serialize access to a physical device, not to
// memory. Waiters queue FIFO and are granted asynchronously through the
// event loop, so a grant never re-enters the releaser's stack.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "device/types.h"
#include "util/event_loop.h"
#include "util/status.h"

namespace aorta::sync {

// Identifies a lock holder (a query id, request id, or scheduler name).
using LockOwner = std::string;

struct LockStats {
  std::uint64_t acquisitions = 0;
  std::uint64_t releases = 0;
  std::uint64_t contentions = 0;  // lock/try_lock hit a held lock
  std::uint64_t max_queue_depth = 0;
  std::uint64_t wait_timeouts = 0;  // lock_with_timeout waiters that gave up
};

class LockManager {
 public:
  explicit LockManager(aorta::util::EventLoop* loop) : loop_(loop) {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // Non-blocking acquire. Returns true iff the caller now holds the lock.
  bool try_lock(const device::DeviceId& id, const LockOwner& owner);

  // Queueing acquire: `granted` fires (via the event loop) once the caller
  // holds the lock. FIFO among waiters.
  void lock(const device::DeviceId& id, const LockOwner& owner,
            std::function<void()> granted);

  // Bounded acquire (the paper's future work on "more sophisticated device
  // synchronization mechanisms"): like lock(), but if the lock has not
  // been granted within `timeout`, the waiter is removed from the queue
  // and `done` fires with kTimeout. Real-time action requests use this so
  // a wedged device cannot strand a query forever.
  void lock_with_timeout(const device::DeviceId& id, const LockOwner& owner,
                         aorta::util::Duration timeout,
                         std::function<void(aorta::util::Status)> done);

  // Release. Fails if `owner` does not hold the lock (a bug in the
  // caller — surfaced rather than silently corrupting the queue).
  aorta::util::Status unlock(const device::DeviceId& id, const LockOwner& owner);

  bool is_locked(const device::DeviceId& id) const;
  const LockOwner* holder(const device::DeviceId& id) const;
  std::size_t queue_depth(const device::DeviceId& id) const;

  const LockStats& stats() const { return stats_; }

 private:
  struct Waiter {
    LockOwner owner;
    std::function<void()> granted;                         // plain waiters
    std::function<void(aorta::util::Status)> granted_st;   // timed waiters
    std::uint64_t waiter_id = 0;
    aorta::util::EventId timeout_event = 0;
  };
  struct LockState {
    LockOwner holder;
    bool held = false;
    std::deque<Waiter> waiters;
  };

  void grant_next(const device::DeviceId& id);

  aorta::util::EventLoop* loop_;
  std::map<device::DeviceId, LockState> locks_;
  LockStats stats_;
  std::uint64_t next_waiter_id_ = 1;
};

// RAII helper for synchronous critical sections (scheduler simulations
// lock a device timeline while building a schedule).
class DeviceLockGuard {
 public:
  DeviceLockGuard(LockManager* manager, device::DeviceId id, LockOwner owner)
      : manager_(manager), id_(std::move(id)), owner_(std::move(owner)) {
    held_ = manager_->try_lock(id_, owner_);
  }
  ~DeviceLockGuard() {
    if (held_) (void)manager_->unlock(id_, owner_);
  }
  DeviceLockGuard(const DeviceLockGuard&) = delete;
  DeviceLockGuard& operator=(const DeviceLockGuard&) = delete;

  bool held() const { return held_; }

 private:
  LockManager* manager_;
  device::DeviceId id_;
  LockOwner owner_;
  bool held_;
};

}  // namespace aorta::sync
