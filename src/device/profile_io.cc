#include "device/profile_io.h"

#include "util/strings.h"
#include "util/xml.h"

namespace aorta::device {

using aorta::util::Result;

std::string device_type_to_xml(const DeviceTypeInfo& info) {
  std::string out = aorta::util::str_format(
      "<device_type id=\"%s\" probe_timeout_ms=\"%lld\">\n",
      info.type_id.c_str(),
      static_cast<long long>(info.probe_timeout.to_micros() / 1000));
  out += aorta::util::str_format(
      "<link latency_mean_s=\"%.17g\" latency_jitter_s=\"%.17g\" "
      "loss_prob=\"%.17g\" bandwidth_bytes_per_s=\"%.17g\"/>\n",
      info.link.latency_mean_s, info.link.latency_jitter_s,
      info.link.loss_prob, info.link.bandwidth_bytes_per_s);
  out += info.catalog.to_xml();
  out += info.op_costs.to_xml();
  out += "</device_type>\n";
  return out;
}

Result<DeviceTypeInfo> device_type_from_xml(std::string_view xml) {
  auto doc = aorta::util::xml_parse(xml);
  if (!doc.is_ok()) return Result<DeviceTypeInfo>(doc.status());
  const aorta::util::XmlNode& root = *doc.value();
  if (root.name != "device_type") {
    return Result<DeviceTypeInfo>(aorta::util::parse_error(
        "expected <device_type>, got <" + root.name + ">"));
  }

  DeviceTypeInfo info;
  info.type_id = root.attr("id");
  if (info.type_id.empty()) {
    return Result<DeviceTypeInfo>(
        aorta::util::parse_error("<device_type> missing id"));
  }
  AORTA_ASSIGN_OR_RETURN_RESULT(
      std::int64_t timeout_ms, root.attr_int_checked("probe_timeout_ms", 2000),
      DeviceTypeInfo);
  info.probe_timeout = aorta::util::Duration::millis(timeout_ms);

  if (const aorta::util::XmlNode* link = root.child("link")) {
    AORTA_ASSIGN_OR_RETURN_RESULT(
        info.link.latency_mean_s,
        link->attr_double_checked("latency_mean_s", 0.002), DeviceTypeInfo);
    AORTA_ASSIGN_OR_RETURN_RESULT(
        info.link.latency_jitter_s,
        link->attr_double_checked("latency_jitter_s", 0.0), DeviceTypeInfo);
    AORTA_ASSIGN_OR_RETURN_RESULT(info.link.loss_prob,
                                  link->attr_double_checked("loss_prob", 0.0),
                                  DeviceTypeInfo);
    AORTA_ASSIGN_OR_RETURN_RESULT(
        info.link.bandwidth_bytes_per_s,
        link->attr_double_checked("bandwidth_bytes_per_s", 1e7),
        DeviceTypeInfo);
  }

  const aorta::util::XmlNode* catalog = root.child("catalog");
  if (catalog == nullptr) {
    return Result<DeviceTypeInfo>(
        aorta::util::parse_error("<device_type> missing <catalog>"));
  }
  auto parsed_catalog = DeviceCatalog::from_xml(catalog->to_string());
  if (!parsed_catalog.is_ok()) {
    return Result<DeviceTypeInfo>(parsed_catalog.status());
  }
  info.catalog = std::move(parsed_catalog).value();
  if (info.catalog.type_id() != info.type_id) {
    return Result<DeviceTypeInfo>(aorta::util::parse_error(
        "catalog device_type mismatches <device_type id>"));
  }

  if (const aorta::util::XmlNode* costs = root.child("atomic_operation_cost")) {
    auto parsed_costs = AtomicOpCostTable::from_xml(costs->to_string());
    if (!parsed_costs.is_ok()) {
      return Result<DeviceTypeInfo>(parsed_costs.status());
    }
    info.op_costs = std::move(parsed_costs).value();
  } else {
    info.op_costs = AtomicOpCostTable(info.type_id);
  }
  return info;
}

}  // namespace aorta::device
