#include "device/profile.h"

#include <algorithm>
#include <functional>

#include "util/strings.h"

namespace aorta::device {

using aorta::util::Result;
using aorta::util::Status;
using aorta::util::XmlNode;

// ---------------------------------------------------------------- catalog

DeviceCatalog::DeviceCatalog(DeviceTypeId type_id, std::vector<AttrSpec> attrs)
    : type_id_(std::move(type_id)), attrs_(std::move(attrs)) {}

const AttrSpec* DeviceCatalog::find(std::string_view name) const {
  for (const auto& a : attrs_) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

std::string DeviceCatalog::to_xml() const {
  std::string out = "<catalog device_type=\"" + aorta::util::xml_escape(type_id_) + "\">\n";
  for (const auto& a : attrs_) {
    out += aorta::util::str_format(
        "  <attribute name=\"%s\" type=\"%s\" sensory=\"%s\" getter=\"%s\" "
        "unit=\"%s\" description=\"%s\"/>\n",
        a.name.c_str(), std::string(attr_type_name(a.type)).c_str(),
        a.sensory ? "true" : "false", a.getter.c_str(), a.unit.c_str(),
        aorta::util::xml_escape(a.description).c_str());
  }
  out += "</catalog>\n";
  return out;
}

Result<DeviceCatalog> DeviceCatalog::from_xml(std::string_view xml) {
  auto doc = aorta::util::xml_parse(xml);
  if (!doc.is_ok()) return Result<DeviceCatalog>(doc.status());
  const XmlNode& root = *doc.value();
  if (root.name != "catalog") {
    return Result<DeviceCatalog>(
        aorta::util::parse_error("expected <catalog>, got <" + root.name + ">"));
  }
  DeviceCatalog catalog;
  catalog.type_id_ = root.attr("device_type");
  if (catalog.type_id_.empty()) {
    return Result<DeviceCatalog>(
        aorta::util::parse_error("<catalog> missing device_type"));
  }
  for (const XmlNode* node : root.children_named("attribute")) {
    AttrSpec spec;
    spec.name = node->attr("name");
    if (spec.name.empty()) {
      return Result<DeviceCatalog>(
          aorta::util::parse_error("<attribute> missing name"));
    }
    if (!attr_type_from_name(node->attr("type", "double"), &spec.type)) {
      return Result<DeviceCatalog>(aorta::util::parse_error(
          "unknown attribute type: " + node->attr("type")));
    }
    spec.sensory = node->attr("sensory", "true") == "true";
    spec.getter = node->attr("getter");
    spec.unit = node->attr("unit");
    spec.description = node->attr("description");
    catalog.attrs_.push_back(std::move(spec));
  }
  return catalog;
}

// ------------------------------------------------------------- cost table

Status AtomicOpCostTable::add(AtomicOpCost op) {
  if (find(op.name) != nullptr) {
    return aorta::util::already_exists_error("duplicate atomic op: " + op.name);
  }
  ops_.push_back(std::move(op));
  return Status::ok();
}

const AtomicOpCost* AtomicOpCostTable::find(std::string_view name) const {
  for (const auto& op : ops_) {
    if (op.name == name) return &op;
  }
  return nullptr;
}

std::string AtomicOpCostTable::to_xml() const {
  std::string out = "<atomic_operation_cost device_type=\"" +
                    aorta::util::xml_escape(type_id_) + "\">\n";
  for (const auto& op : ops_) {
    out += aorta::util::str_format(
        "  <operation name=\"%s\" fixed_s=\"%.17g\" per_unit_s=\"%.17g\" unit=\"%s\"/>\n",
        op.name.c_str(), op.fixed_s, op.per_unit_s, op.unit.c_str());
  }
  out += "</atomic_operation_cost>\n";
  return out;
}

Result<AtomicOpCostTable> AtomicOpCostTable::from_xml(std::string_view xml) {
  auto doc = aorta::util::xml_parse(xml);
  if (!doc.is_ok()) return Result<AtomicOpCostTable>(doc.status());
  const XmlNode& root = *doc.value();
  if (root.name != "atomic_operation_cost") {
    return Result<AtomicOpCostTable>(aorta::util::parse_error(
        "expected <atomic_operation_cost>, got <" + root.name + ">"));
  }
  AtomicOpCostTable table(root.attr("device_type"));
  for (const XmlNode* node : root.children_named("operation")) {
    AtomicOpCost op;
    op.name = node->attr("name");
    if (op.name.empty()) {
      return Result<AtomicOpCostTable>(
          aorta::util::parse_error("<operation> missing name"));
    }
    AORTA_ASSIGN_OR_RETURN_RESULT(op.fixed_s,
                                  node->attr_double_checked("fixed_s", 0.0),
                                  AtomicOpCostTable);
    AORTA_ASSIGN_OR_RETURN_RESULT(op.per_unit_s,
                                  node->attr_double_checked("per_unit_s", 0.0),
                                  AtomicOpCostTable);
    op.unit = node->attr("unit");
    Status s = table.add(std::move(op));
    if (!s.is_ok()) return Result<AtomicOpCostTable>(s);
  }
  return table;
}

// ---------------------------------------------------------- action profile

std::unique_ptr<ActionProfileNode> ActionProfileNode::op(std::string name,
                                                         double units) {
  auto node = std::make_unique<ActionProfileNode>();
  node->kind = Kind::kOp;
  node->op_name = std::move(name);
  node->units = units;
  return node;
}

std::unique_ptr<ActionProfileNode> ActionProfileNode::seq(
    std::vector<std::unique_ptr<ActionProfileNode>> children) {
  auto node = std::make_unique<ActionProfileNode>();
  node->kind = Kind::kSeq;
  node->children = std::move(children);
  return node;
}

std::unique_ptr<ActionProfileNode> ActionProfileNode::par(
    std::vector<std::unique_ptr<ActionProfileNode>> children) {
  auto node = std::make_unique<ActionProfileNode>();
  node->kind = Kind::kPar;
  node->children = std::move(children);
  return node;
}

ActionProfile::ActionProfile(std::string action_name, DeviceTypeId device_type,
                             std::unique_ptr<ActionProfileNode> root,
                             std::vector<std::string> status_attrs)
    : action_name_(std::move(action_name)),
      device_type_(std::move(device_type)),
      root_(std::move(root)),
      status_attrs_(std::move(status_attrs)) {}

namespace {

double estimate_node(const ActionProfileNode& node, const AtomicOpCostTable& costs,
                     const std::function<double(const std::string&)>& units_for) {
  switch (node.kind) {
    case ActionProfileNode::Kind::kOp: {
      const AtomicOpCost* op = costs.find(node.op_name);
      if (op == nullptr) return 0.0;  // unknown op contributes nothing
      double units = node.units;
      if (units_for) {
        double dynamic = units_for(node.op_name);
        if (dynamic >= 0.0) units = dynamic;
      }
      return op->cost_s(units);
    }
    case ActionProfileNode::Kind::kSeq: {
      double total = 0.0;
      for (const auto& c : node.children) total += estimate_node(*c, costs, units_for);
      return total;
    }
    case ActionProfileNode::Kind::kPar: {
      double peak = 0.0;
      for (const auto& c : node.children) {
        peak = std::max(peak, estimate_node(*c, costs, units_for));
      }
      return peak;
    }
  }
  return 0.0;
}

std::string node_to_xml(const ActionProfileNode& node, int indent) {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  switch (node.kind) {
    case ActionProfileNode::Kind::kOp:
      return pad + aorta::util::str_format("<op name=\"%s\" units=\"%.17g\"/>\n",
                                           node.op_name.c_str(), node.units);
    case ActionProfileNode::Kind::kSeq:
    case ActionProfileNode::Kind::kPar: {
      const char* tag = node.kind == ActionProfileNode::Kind::kSeq ? "seq" : "par";
      std::string out = pad + "<" + tag + ">\n";
      for (const auto& c : node.children) out += node_to_xml(*c, indent + 1);
      out += pad + "</" + tag + ">\n";
      return out;
    }
  }
  return "";
}

Result<std::unique_ptr<ActionProfileNode>> node_from_xml(const XmlNode& xml) {
  using NodePtr = std::unique_ptr<ActionProfileNode>;
  if (xml.name == "op") {
    if (!xml.has_attr("name")) {
      return Result<NodePtr>(aorta::util::parse_error("<op> missing name"));
    }
    AORTA_ASSIGN_OR_RETURN_RESULT(double units,
                                  xml.attr_double_checked("units", 1.0),
                                  NodePtr);
    return ActionProfileNode::op(xml.attr("name"), units);
  }
  if (xml.name == "seq" || xml.name == "par") {
    std::vector<NodePtr> children;
    for (const auto& c : xml.children) {
      auto child = node_from_xml(*c);
      if (!child.is_ok()) return child;
      children.push_back(std::move(child).value());
    }
    if (children.empty()) {
      return Result<NodePtr>(
          aorta::util::parse_error("<" + xml.name + "> must have children"));
    }
    return xml.name == "seq" ? ActionProfileNode::seq(std::move(children))
                             : ActionProfileNode::par(std::move(children));
  }
  return Result<NodePtr>(
      aorta::util::parse_error("unexpected profile element <" + xml.name + ">"));
}

}  // namespace

double ActionProfile::estimate_cost_s(
    const AtomicOpCostTable& costs,
    const std::function<double(const std::string&)>& units_for) const {
  if (root_ == nullptr) return 0.0;
  return estimate_node(*root_, costs, units_for);
}

std::string ActionProfile::to_xml() const {
  std::string out = aorta::util::str_format(
      "<action_profile action=\"%s\" device_type=\"%s\" status_attrs=\"%s\">\n",
      action_name_.c_str(), device_type_.c_str(),
      aorta::util::join(status_attrs_, ",").c_str());
  if (root_ != nullptr) out += node_to_xml(*root_, 1);
  out += "</action_profile>\n";
  return out;
}

Result<ActionProfile> ActionProfile::from_xml(std::string_view xml) {
  auto doc = aorta::util::xml_parse(xml);
  if (!doc.is_ok()) return Result<ActionProfile>(doc.status());
  const XmlNode& root = *doc.value();
  if (root.name != "action_profile") {
    return Result<ActionProfile>(aorta::util::parse_error(
        "expected <action_profile>, got <" + root.name + ">"));
  }
  if (root.children.size() != 1) {
    return Result<ActionProfile>(aorta::util::parse_error(
        "<action_profile> must have exactly one composition root"));
  }
  auto tree = node_from_xml(*root.children[0]);
  if (!tree.is_ok()) return Result<ActionProfile>(tree.status());

  std::vector<std::string> status_attrs;
  for (const auto& s : aorta::util::split(root.attr("status_attrs"), ',')) {
    std::string t(aorta::util::trim(s));
    if (!t.empty()) status_attrs.push_back(std::move(t));
  }
  return ActionProfile(root.attr("action"), root.attr("device_type"),
                       std::move(tree).value(), std::move(status_attrs));
}

}  // namespace aorta::device
