#include "device/types.h"

#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace aorta::device {

std::string Location::to_string() const {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "(%.3g, %.3g, %.3g)", x, y, z);
  return buf;
}

bool Location::parse(const std::string& text, Location* out) {
  std::string s(aorta::util::trim(text));
  if (!s.empty() && s.front() == '(' && s.back() == ')') {
    s = s.substr(1, s.size() - 2);
  }
  auto parts = aorta::util::split(s, ',');
  if (parts.size() != 3) return false;
  double vals[3];
  for (int i = 0; i < 3; ++i) {
    std::string p(aorta::util::trim(parts[static_cast<std::size_t>(i)]));
    char* end = nullptr;
    vals[i] = std::strtod(p.c_str(), &end);
    if (end == p.c_str() || *end != '\0') return false;
  }
  *out = Location{vals[0], vals[1], vals[2]};
  return true;
}

std::string value_to_string(const Value& v) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "NULL"; }
    std::string operator()(bool b) const { return b ? "TRUE" : "FALSE"; }
    std::string operator()(std::int64_t i) const { return std::to_string(i); }
    std::string operator()(double d) const {
      return aorta::util::str_format("%.6g", d);
    }
    std::string operator()(const std::string& s) const { return "'" + s + "'"; }
    std::string operator()(const Location& loc) const { return loc.to_string(); }
  };
  return std::visit(Visitor{}, v);
}

bool value_as_double(const Value& v, double* out) {
  if (const bool* b = std::get_if<bool>(&v)) {
    *out = *b ? 1.0 : 0.0;
    return true;
  }
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v)) {
    *out = static_cast<double>(*i);
    return true;
  }
  if (const double* d = std::get_if<double>(&v)) {
    *out = *d;
    return true;
  }
  return false;
}

bool value_truthy(const Value& v) {
  struct Visitor {
    bool operator()(std::monostate) const { return false; }
    bool operator()(bool b) const { return b; }
    bool operator()(std::int64_t i) const { return i != 0; }
    bool operator()(double d) const { return d != 0.0; }
    bool operator()(const std::string& s) const { return !s.empty(); }
    bool operator()(const Location&) const { return true; }
  };
  return std::visit(Visitor{}, v);
}

bool value_equal(const Value& a, const Value& b) {
  // Numeric values compare across int/double/bool; others require same type.
  double da, db;
  if (value_as_double(a, &da) && value_as_double(b, &db)) return da == db;
  return a == b;
}

std::string_view attr_type_name(AttrType t) {
  switch (t) {
    case AttrType::kBool:
      return "bool";
    case AttrType::kInt:
      return "int";
    case AttrType::kDouble:
      return "double";
    case AttrType::kString:
      return "string";
    case AttrType::kLocation:
      return "location";
  }
  return "?";
}

bool attr_type_from_name(std::string_view name, AttrType* out) {
  if (name == "bool") *out = AttrType::kBool;
  else if (name == "int") *out = AttrType::kInt;
  else if (name == "double") *out = AttrType::kDouble;
  else if (name == "string") *out = AttrType::kString;
  else if (name == "location") *out = AttrType::kLocation;
  else return false;
  return true;
}

}  // namespace aorta::device
