#include "device/registry.h"

#include "util/logging.h"

namespace aorta::device {

using aorta::util::Status;

Status DeviceRegistry::register_type(DeviceTypeInfo info) {
  if (info.type_id.empty()) {
    return aorta::util::invalid_argument_error("empty device type id");
  }
  auto [it, inserted] = types_.emplace(info.type_id, std::move(info));
  (void)it;
  if (!inserted) {
    return aorta::util::already_exists_error("device type already registered");
  }
  return Status::ok();
}

const DeviceTypeInfo* DeviceRegistry::type_info(const DeviceTypeId& type_id) const {
  auto it = types_.find(type_id);
  return it == types_.end() ? nullptr : &it->second;
}

std::vector<DeviceTypeId> DeviceRegistry::type_ids() const {
  std::vector<DeviceTypeId> out;
  out.reserve(types_.size());
  for (const auto& [id, info] : types_) out.push_back(id);
  return out;
}

Status DeviceRegistry::add(std::unique_ptr<Device> device) {
  if (device == nullptr) {
    return aorta::util::invalid_argument_error("null device");
  }
  const DeviceTypeInfo* info = type_info(device->type_id());
  if (info == nullptr) {
    return aorta::util::not_found_error("unregistered device type: " +
                                        device->type_id());
  }
  const DeviceId id = device->id();
  if (devices_.count(id) > 0) {
    return aorta::util::already_exists_error("device already added: " + id);
  }

  device->bind(network_, loop_, rng_.fork());
  Status attach = network_->attach(id, device.get(), info->link);
  if (!attach.is_ok()) return attach;

  static_attr_cache_[id] = device->static_attrs();
  devices_.emplace(id, std::move(device));
  AORTA_LOG(kInfo, "registry") << "device joined: " << id;
  return Status::ok();
}

Status DeviceRegistry::remove(const DeviceId& id) {
  auto it = devices_.find(id);
  if (it == devices_.end()) {
    return aorta::util::not_found_error("device not found: " + id);
  }
  (void)network_->detach(id);
  static_attr_cache_.erase(id);
  devices_.erase(it);
  AORTA_LOG(kInfo, "registry") << "device left: " << id;
  return Status::ok();
}

Device* DeviceRegistry::find(const DeviceId& id) {
  auto it = devices_.find(id);
  return it == devices_.end() ? nullptr : it->second.get();
}

const Device* DeviceRegistry::find(const DeviceId& id) const {
  auto it = devices_.find(id);
  return it == devices_.end() ? nullptr : it->second.get();
}

std::vector<Device*> DeviceRegistry::devices_of_type(const DeviceTypeId& type_id) {
  std::vector<Device*> out;
  for (auto& [id, dev] : devices_) {
    if (dev->type_id() == type_id) out.push_back(dev.get());
  }
  return out;
}

std::vector<DeviceId> DeviceRegistry::ids_of_type(const DeviceTypeId& type_id) const {
  std::vector<DeviceId> out;
  for (const auto& [id, dev] : devices_) {
    if (dev->type_id() == type_id) out.push_back(id);
  }
  return out;
}

const std::map<std::string, Value>* DeviceRegistry::static_attrs(
    const DeviceId& id) const {
  auto it = static_attr_cache_.find(id);
  return it == static_attr_cache_.end() ? nullptr : &it->second;
}

}  // namespace aorta::device
