// Serialization of complete device-type registrations.
//
// Section 3.1: profiles "are generated and registered to the system and
// are updated dynamically by the system administrator". This module turns
// a DeviceTypeInfo into one XML document bundling the catalog, the
// atomic_operation_cost table, the link model and the per-type probe
// TIMEOUT — and back — so an administrator can keep type registrations as
// files (see Aorta::export_device_types / register_type_from_xml).
#pragma once

#include "device/registry.h"
#include "util/status.h"

namespace aorta::device {

// One self-contained XML document for the type.
std::string device_type_to_xml(const DeviceTypeInfo& info);

// Parse a document produced by device_type_to_xml (or written by hand).
aorta::util::Result<DeviceTypeInfo> device_type_from_xml(std::string_view xml);

}  // namespace aorta::device
