// Base class for simulated physical devices.
//
// A Device is a network endpoint that speaks a small message protocol:
//   probe      -> replies with availability + physical status snapshot
//   read_attr  -> replies with the current value of a sensory attribute
//   <other>    -> device-specific operations (handled by subclasses)
//
// The base class also models the *unreliability* that Section 4 motivates:
// random per-operation glitches, refusal/latency under overload (a busy
// camera failing the second concurrent request), and an online/offline
// switch for devices that leave the world entirely.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "device/types.h"
#include "net/network.h"
#include "util/rng.h"
#include "util/status.h"

namespace aorta::device {

// Knobs for the failure model. Defaults are "perfectly reliable"; concrete
// device types ship presets matching the paper's observations.
struct Reliability {
  // Probability that any single operation spontaneously fails (radio bit
  // errors, firmware hiccups). Failed operations return an error reply.
  double glitch_prob = 0.0;

  // Probability that a request arriving while the device is already
  // executing one or more operations is silently dropped — the caller
  // observes a connection timeout. Grows with the number of concurrent
  // operations: p = busy_drop_base + busy_drop_per_op * (active_ops - 1).
  double busy_drop_base = 0.0;
  double busy_drop_per_op = 0.0;

  // Latency multiplier per extra concurrent operation (resource
  // contention inside the device).
  double busy_slowdown_per_op = 0.0;
};

struct DeviceOpStats {
  std::uint64_t ops_started = 0;
  std::uint64_t ops_completed = 0;
  std::uint64_t ops_glitched = 0;
  std::uint64_t requests_dropped_busy = 0;
  std::uint64_t probes_answered = 0;
  std::uint64_t max_concurrent_ops = 0;
};

class Device : public net::Endpoint {
 public:
  Device(DeviceId id, DeviceTypeId type_id, Location location);
  ~Device() override = default;

  const DeviceId& id() const { return id_; }
  const DeviceTypeId& type_id() const { return type_id_; }
  const Location& location() const { return location_; }

  // Wired up by the registry when the device joins the network.
  void bind(net::Network* network, aorta::util::EventLoop* loop,
            aorta::util::Rng rng);

  // Power switch. An offline device never replies; the network sees the
  // dead interface (accepting() below) and fails requests to it fast.
  void set_online(bool online) { online_ = online; }
  bool online() const { return online_; }

  // net::Endpoint: an offline device stops accepting traffic, so requests
  // to it bounce instead of timing out at full duration — including
  // requests already in flight when the power was cut.
  bool accepting() const override { return online_; }

  Reliability& reliability() { return reliability_; }
  const DeviceOpStats& op_stats() const { return op_stats_; }

  // Number of operations currently executing (used by the interference
  // models of subclasses and by the overload failure model here).
  int active_ops() const { return active_ops_; }

  // Static, non-sensory attributes (location, IP, phone number). Cached by
  // the registry; never re-fetched over the network (Section 3.2).
  virtual std::map<std::string, Value> static_attrs() const;

  // Live value of a sensory attribute at the current simulated time.
  virtual aorta::util::Result<Value> read_attribute(const std::string& name) = 0;

  // Physical status relevant for cost estimation (e.g. pan/tilt/zoom).
  // Returned in probe replies (Section 4: "by probing a candidate device
  // the optimizer can gather information about [its] current physical
  // status").
  virtual std::map<std::string, double> status_snapshot() const = 0;

  // net::Endpoint
  void on_message(const net::Message& msg) final;

 protected:
  // Device-specific operations ("ptz_move", "beep", "recv_mms", ...).
  virtual void handle_op(const net::Message& msg) = 0;

  // Run `body` after the op's service time elapses, tracking concurrency
  // and applying the overload-slowdown model. `service_s` is the nominal
  // duration of the operation on an idle device.
  void run_op(double service_s, std::function<void()> body);

  // True if this op should spontaneously fail (and was counted).
  bool roll_glitch();

  void send_reply(const net::Message& request, net::Message reply);
  net::Message make_reply(const net::Message& request, std::string kind);

  aorta::util::EventLoop* loop() { return loop_; }
  const aorta::util::EventLoop* loop() const { return loop_; }
  aorta::util::Rng& rng() { return rng_; }

 private:
  DeviceId id_;
  DeviceTypeId type_id_;
  Location location_;
  bool online_ = true;

  net::Network* network_ = nullptr;
  aorta::util::EventLoop* loop_ = nullptr;
  aorta::util::Rng rng_{0};

  Reliability reliability_;
  int active_ops_ = 0;
  DeviceOpStats op_stats_;
};

}  // namespace aorta::device
