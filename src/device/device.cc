#include "device/device.h"

#include <algorithm>

#include "net/rpc.h"
#include "util/logging.h"
#include "util/strings.h"

namespace aorta::device {

using aorta::util::Duration;

Device::Device(DeviceId id, DeviceTypeId type_id, Location location)
    : id_(std::move(id)), type_id_(std::move(type_id)), location_(location) {}

void Device::bind(net::Network* network, aorta::util::EventLoop* loop,
                  aorta::util::Rng rng) {
  network_ = network;
  loop_ = loop;
  rng_ = std::move(rng);
}

std::map<std::string, Value> Device::static_attrs() const {
  return {{"id", id_}, {"loc", location_}};
}

void Device::on_message(const net::Message& msg) {
  if (!online_) return;  // an offline device is silent; callers time out

  // Overload model: a device already busy with one or more operations may
  // drop an incoming request entirely ("it will fail to execute the second
  // action or has a very long delay for it", Section 4).
  if (active_ops_ > 0 && msg.kind != "probe") {
    double p = reliability_.busy_drop_base +
               reliability_.busy_drop_per_op * (active_ops_ - 1);
    if (rng_.chance(std::min(p, 0.95))) {
      ++op_stats_.requests_dropped_busy;
      return;
    }
  }

  if (msg.kind == "probe") {
    ++op_stats_.probes_answered;
    net::Message reply = make_reply(msg, "probe_ack");
    reply.set_int("busy", active_ops_ > 0 ? 1 : 0);
    for (const auto& [key, value] : status_snapshot()) {
      reply.set_double("status." + key, value);
    }
    send_reply(msg, std::move(reply));
    return;
  }

  if (msg.kind == "read_attr") {
    std::string attr = msg.field("attr");
    net::Message reply = make_reply(msg, "read_attr_ack");
    // Sensor-board glitches corrupt individual acquisitions.
    if (roll_glitch()) {
      reply.set("ok", "0");
      reply.set("error", "acquisition glitch");
      send_reply(msg, std::move(reply));
      return;
    }
    auto value = read_attribute(attr);
    if (value.is_ok()) {
      reply.set("ok", "1");
      reply.set("value", value_to_string(value.value()));
      // Typed duplicates make parsing on the engine side lossless.
      if (const double* d = std::get_if<double>(&value.value())) {
        reply.set_double("value_double", *d);
      } else if (const std::int64_t* i = std::get_if<std::int64_t>(&value.value())) {
        reply.set_int("value_int", *i);
      }
    } else {
      reply.set("ok", "0");
      reply.set("error", value.status().to_string());
    }
    send_reply(msg, std::move(reply));
    return;
  }

  handle_op(msg);
}

void Device::run_op(double service_s, std::function<void()> body) {
  ++active_ops_;
  ++op_stats_.ops_started;
  op_stats_.max_concurrent_ops = std::max(
      op_stats_.max_concurrent_ops, static_cast<std::uint64_t>(active_ops_));

  double slowdown = 1.0 + reliability_.busy_slowdown_per_op * (active_ops_ - 1);
  loop_->schedule(Duration::seconds(service_s * slowdown), [this, body]() {
    --active_ops_;
    ++op_stats_.ops_completed;
    body();
  });
}

bool Device::roll_glitch() {
  if (rng_.chance(reliability_.glitch_prob)) {
    ++op_stats_.ops_glitched;
    return true;
  }
  return false;
}

void Device::send_reply(const net::Message& request, net::Message reply) {
  (void)request;
  // A device that went offline mid-operation (power loss) cannot reply:
  // callers observe a timeout even for work that was in flight.
  if (!online_) return;
  if (network_ != nullptr) network_->send(std::move(reply));
}

net::Message Device::make_reply(const net::Message& request, std::string kind) {
  net::Message reply = net::make_reply(request, std::move(kind));
  return reply;
}

}  // namespace aorta::device
