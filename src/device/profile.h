// Device profiles: catalogs, atomic operation cost tables, action profiles.
//
// Section 3.1: "we use device profiles to describe the physical
// characteristics of devices ... a device catalog is an XML text file that
// keeps the names of the attributes supported by the type of devices ...
// for each type of devices, there is also an atomic_operation_cost.xml
// file ... [listing] all atomic operations on the type of devices and
// their corresponding estimated costs."
//
// Section 2.3: "the action profile ... specifies the composition of an
// action in terms of the sequential and/or parallel execution of a number
// of atomic operations."
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "device/types.h"
#include "util/status.h"
#include "util/xml.h"

namespace aorta::device {

// One attribute of a virtual device table. Sensory attributes must be
// acquired live from the device; non-sensory attributes are static and may
// be served from the registry cache (Section 3.2).
struct AttrSpec {
  std::string name;
  AttrType type = AttrType::kDouble;
  bool sensory = true;
  std::string getter;       // name of the built-in acquisition method
  std::string unit;         // informational, e.g. "mg", "lux", "degC"
  std::string description;  // semantics, for the catalog
};

// Catalog of a device type.
class DeviceCatalog {
 public:
  DeviceCatalog() = default;
  DeviceCatalog(DeviceTypeId type_id, std::vector<AttrSpec> attrs);

  const DeviceTypeId& type_id() const { return type_id_; }
  const std::vector<AttrSpec>& attrs() const { return attrs_; }
  const AttrSpec* find(std::string_view name) const;

  std::string to_xml() const;
  static aorta::util::Result<DeviceCatalog> from_xml(std::string_view xml);

 private:
  DeviceTypeId type_id_;
  std::vector<AttrSpec> attrs_;
};

// Cost of one atomic operation: cost(units) = fixed_s + per_unit_s * units.
// A fixed op (e.g. "snap medium photo") has per_unit_s = 0; a rate op
// (e.g. "pan" with unit "degree") charges per unit of work. These numbers
// are the "estimated costs ... measured by our homegrown programs" of
// Section 3.1 — ours are calibrated to the published photo() cost range.
struct AtomicOpCost {
  std::string name;
  double fixed_s = 0.0;
  double per_unit_s = 0.0;
  std::string unit;  // "" for fixed ops

  double cost_s(double units) const { return fixed_s + per_unit_s * units; }
};

// Per-device-type atomic_operation_cost.xml.
class AtomicOpCostTable {
 public:
  AtomicOpCostTable() = default;
  explicit AtomicOpCostTable(DeviceTypeId type_id) : type_id_(std::move(type_id)) {}

  const DeviceTypeId& type_id() const { return type_id_; }

  aorta::util::Status add(AtomicOpCost op);
  const AtomicOpCost* find(std::string_view name) const;
  const std::vector<AtomicOpCost>& ops() const { return ops_; }

  std::string to_xml() const;
  static aorta::util::Result<AtomicOpCostTable> from_xml(std::string_view xml);

 private:
  DeviceTypeId type_id_;
  std::vector<AtomicOpCost> ops_;
};

// Action profile: composition tree over atomic operations.
struct ActionProfileNode {
  enum class Kind { kOp, kSeq, kPar };
  Kind kind = Kind::kOp;
  std::string op_name;   // kOp only
  double units = 1.0;    // kOp only: default unit count when the cost model
                         // has no status-derived value for this op
  std::vector<std::unique_ptr<ActionProfileNode>> children;  // kSeq/kPar

  static std::unique_ptr<ActionProfileNode> op(std::string name, double units = 1.0);
  static std::unique_ptr<ActionProfileNode> seq(
      std::vector<std::unique_ptr<ActionProfileNode>> children);
  static std::unique_ptr<ActionProfileNode> par(
      std::vector<std::unique_ptr<ActionProfileNode>> children);
};

class ActionProfile {
 public:
  ActionProfile() = default;
  ActionProfile(std::string action_name, DeviceTypeId device_type,
                std::unique_ptr<ActionProfileNode> root,
                std::vector<std::string> status_attrs = {});

  ActionProfile(ActionProfile&&) = default;
  ActionProfile& operator=(ActionProfile&&) = default;

  const std::string& action_name() const { return action_name_; }
  const DeviceTypeId& device_type() const { return device_type_; }
  const ActionProfileNode* root() const { return root_.get(); }

  // Physical-status attributes this action's cost depends on and that its
  // execution changes (e.g. camera pan/tilt/zoom). The prober fetches
  // these before device selection (Section 4, last paragraph).
  const std::vector<std::string>& status_attrs() const { return status_attrs_; }

  // Estimate the action cost. `units_for(op_name)` supplies the
  // status-dependent unit count for rate ops (e.g. degrees of pan needed
  // from the device's current head position); it returns a negative value
  // when it has no opinion, in which case the profile default is used.
  // Sequential children add; parallel children take the max.
  double estimate_cost_s(const AtomicOpCostTable& costs,
                         const std::function<double(const std::string&)>& units_for) const;

  std::string to_xml() const;
  static aorta::util::Result<ActionProfile> from_xml(std::string_view xml);

 private:
  std::string action_name_;
  DeviceTypeId device_type_;
  std::unique_ptr<ActionProfileNode> root_;
  std::vector<std::string> status_attrs_;
};

}  // namespace aorta::device
