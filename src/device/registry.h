// Device registry: the communication layer's dynamic, logical view of the
// device network.
//
// Manages device lifecycle (join / leave / temporary departure), caches
// static non-sensory attributes, and groups devices by type so the query
// engine can treat "each type of devices [as] a virtual relational table"
// (Section 3.2). Device profiles (catalog + atomic op cost table) are
// registered per type, as maintained by the system administrator in the
// paper (Section 3.1).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "device/device.h"
#include "device/profile.h"
#include "net/network.h"
#include "util/status.h"

namespace aorta::device {

// Everything the system knows about a device type.
struct DeviceTypeInfo {
  DeviceTypeId type_id;
  DeviceCatalog catalog;
  AtomicOpCostTable op_costs;
  net::LinkModel link;                      // default link for this type
  aorta::util::Duration probe_timeout =     // per-type TIMEOUT (Section 4)
      aorta::util::Duration::millis(2000);
};

class DeviceRegistry {
 public:
  DeviceRegistry(net::Network* network, aorta::util::EventLoop* loop,
                 aorta::util::Rng rng)
      : network_(network), loop_(loop), rng_(std::move(rng)) {}

  // ---- type management -------------------------------------------------
  aorta::util::Status register_type(DeviceTypeInfo info);
  const DeviceTypeInfo* type_info(const DeviceTypeId& type_id) const;
  std::vector<DeviceTypeId> type_ids() const;

  // ---- device lifecycle ------------------------------------------------

  // Add a device: binds it to the network/loop with its type's link model
  // and caches its static attributes. The type must be registered.
  aorta::util::Status add(std::unique_ptr<Device> device);

  // Remove a device from the network permanently (device leaves).
  aorta::util::Status remove(const DeviceId& id);

  // ---- lookup ------------------------------------------------------------
  Device* find(const DeviceId& id);
  const Device* find(const DeviceId& id) const;
  std::vector<Device*> devices_of_type(const DeviceTypeId& type_id);
  std::vector<DeviceId> ids_of_type(const DeviceTypeId& type_id) const;
  std::size_t size() const { return devices_.size(); }

  // Cached non-sensory attributes ("non-sensory data may be stored
  // statically", Section 3.2).
  const std::map<std::string, Value>* static_attrs(const DeviceId& id) const;

  net::Network& network() { return *network_; }
  aorta::util::EventLoop& loop() { return *loop_; }

 private:
  net::Network* network_;
  aorta::util::EventLoop* loop_;
  aorta::util::Rng rng_;
  std::map<DeviceTypeId, DeviceTypeInfo> types_;
  std::map<DeviceId, std::unique_ptr<Device>> devices_;
  std::map<DeviceId, std::map<std::string, Value>> static_attr_cache_;
};

}  // namespace aorta::device
