// Core value types shared by the device, communication and query layers.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <variant>

namespace aorta::device {

using DeviceId = std::string;      // e.g. "cam1", "mote7", "phone_mgr"
using DeviceTypeId = std::string;  // e.g. "camera", "sensor", "phone"

// A position in the pervasive lab, metres. Motes are fixed at points of
// interest; cameras are ceiling-mounted (Section 6.1).
struct Location {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  double distance_to(const Location& other) const {
    double dx = x - other.x, dy = y - other.y, dz = z - other.z;
    return std::sqrt(dx * dx + dy * dy + dz * dz);
  }
  bool operator==(const Location&) const = default;

  std::string to_string() const;
  // Parses "(x, y, z)" or "x,y,z"; returns false on malformed input.
  static bool parse(const std::string& text, Location* out);
};

// Dynamically-typed attribute value. Virtual device tables (Section 3.2)
// expose sensory attributes (live readings, device status) and non-sensory
// attributes (locations, IPs, phone numbers) through this one type; the
// query engine's Value is an alias of it.
using Value = std::variant<std::monostate, bool, std::int64_t, double,
                           std::string, Location>;

// Human-readable rendering ("500", "3.25", "'photos/admin'", "(1,2,0)").
std::string value_to_string(const Value& v);

// Numeric coercion: bool/int/double -> double. Returns false otherwise.
bool value_as_double(const Value& v, double* out);

// Truthiness for predicate evaluation: null/false/0/"" are false.
bool value_truthy(const Value& v);

bool value_equal(const Value& a, const Value& b);

// Declared type of an attribute in a device catalog.
enum class AttrType { kBool, kInt, kDouble, kString, kLocation };

std::string_view attr_type_name(AttrType t);
bool attr_type_from_name(std::string_view name, AttrType* out);

}  // namespace aorta::device
