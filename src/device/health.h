// Device health view: the narrow interface lower layers use to consult
// and feed device health supervision.
//
// The concrete state machine (Healthy -> Suspect -> Quarantined, EWMA
// success tracking, capped-backoff re-probes) lives in core/health.h; the
// layers that produce and consume health signals — the comm modules, the
// ScanBroker's sweeps, the action operators' candidate lists — sit below
// the core library, so they depend only on this interface and receive a
// pointer at wiring time (nullptr = supervision off).
#pragma once

#include "device/types.h"

namespace aorta::device {

// What kind of interaction with the device produced an outcome.
enum class HealthOutcomeKind {
  kRead,    // a sensory read_attr round trip
  kProbe,   // an availability probe
  kAction,  // an action executed on the device
};

class HealthView {
 public:
  virtual ~HealthView() = default;

  // True if the device is quarantined: broker sweeps skip it (serving
  // last-known-good values instead) and action scheduling removes it from
  // candidate lists until a backoff re-probe succeeds.
  virtual bool is_quarantined(const DeviceId& id) const = 0;

  // Report the outcome of one interaction with the device.
  virtual void report(const DeviceId& id, HealthOutcomeKind kind, bool ok) = 0;
};

}  // namespace aorta::device
