// Smart building: environmental monitoring with actuation and device churn.
//
// Demonstrates the parts of Aorta the other examples don't:
//  - actions on the *event device itself* (beep the mote whose temperature
//    crosses a threshold — a one-table action-embedded query);
//  - level-triggered vs edge-triggered queries;
//  - devices joining and leaving the network while queries run (Section
//    4's dynamic membership), with probing keeping the device view honest;
//  - sine/noise signal generators standing in for diurnal light and HVAC
//    temperature curves.
#include <cstdio>

#include "core/aorta.h"

using namespace aorta;

int main() {
  core::Config config;
  config.seed = 21;
  core::Aorta sys(config);

  // Motes across three rooms; temperature rises in room B mid-run.
  (void)sys.add_mote("room_a", {2.0, 2.0, 1.5});
  (void)sys.add_mote("room_b", {8.0, 2.0, 1.5});
  (void)sys.add_mote("room_c", {14.0, 2.0, 1.5});

  // Diurnal-ish light and stable temperatures...
  for (const char* id : {"room_a", "room_b", "room_c"}) {
    (void)sys.mote(id)->set_signal(
        "light", devices::sine_signal(400.0, 250.0, 240.0));
    (void)sys.mote(id)->set_signal("temp", devices::constant_signal(22.0));
  }
  // ...except room B, which overheats from t=60s to t=120s.
  auto hot = std::make_unique<devices::ScriptedSignal>(22.0);
  hot->add_spike(util::TimePoint::from_micros(60'000'000),
                 util::Duration::seconds(60), 31.0);
  (void)sys.mote("room_b")->set_signal("temp", std::move(hot));

  // Edge-triggered: beep the overheating room's own mote once when the
  // threshold is crossed (action bound to the event device).
  auto r1 = sys.exec(
      "CREATE AQ overheat_alarm AS "
      "SELECT beep(s.id) FROM sensor s WHERE s.temp > 28");
  // Level-triggered low-light blink every 30 s epoch while it is dark.
  auto r2 = sys.exec(
      "CREATE AQ night_light EVERY 30 AS "
      "SELECT blink(s.id) FROM sensor s WHERE s.light < 200");
  for (const auto& r : {&r1, &r2}) {
    std::printf("%s\n", r->is_ok() ? (*r)->message.c_str()
                                   : r->status().to_string().c_str());
  }

  sys.run_for(util::Duration::seconds(150));

  // A technician unplugs room C's mote...
  std::printf("\n[t=150s] room_c mote unplugged\n");
  sys.mote("room_c")->set_online(false);
  sys.run_for(util::Duration::seconds(60));

  // ...and a new mote joins the network while everything keeps running.
  std::printf("[t=210s] room_d mote joins\n");
  (void)sys.add_mote("room_d", {20.0, 2.0, 1.5});
  (void)sys.mote("room_d")->set_signal("light", devices::constant_signal(80.0));
  sys.run_for(util::Duration::seconds(90));

  std::printf("\nafter 5 simulated minutes:\n");
  for (const char* name : {"overheat_alarm", "night_light"}) {
    const query::QueryStats* qs = sys.query_stats(name);
    query::QueryActionStats as = sys.action_stats(name);
    std::printf("  %-15s epochs=%-5llu events=%-4llu usable=%-4llu "
                "failed=%llu\n",
                name, static_cast<unsigned long long>(qs->epochs),
                static_cast<unsigned long long>(qs->events),
                static_cast<unsigned long long>(as.usable),
                static_cast<unsigned long long>(as.failed + as.no_candidate));
  }
  for (const char* id : {"room_a", "room_b", "room_d"}) {
    const devices::Mica2Mote* mote = sys.mote(id);
    std::printf("  %-8s beeps=%llu blinks=%llu\n", id,
                static_cast<unsigned long long>(mote->beeps()),
                static_cast<unsigned long long>(mote->blinks()));
  }
  core::SystemStats stats = sys.stats();
  std::printf("  probes: %llu sent, %llu timed out (the unplugged mote)\n",
              static_cast<unsigned long long>(stats.probes.probes),
              static_cast<unsigned long long>(stats.probes.timeouts));

  // Inspect the live state declaratively.
  auto rows = sys.exec("SELECT s.id, s.temp, s.light FROM sensor s");
  if (rows.is_ok()) {
    std::printf("\ncurrent sensor table (%s):\n", rows->message.c_str());
    for (const auto& row : rows->rows) {
      std::printf(" ");
      for (const auto& [column, value] : row) {
        std::printf(" %s=%s", column.c_str(),
                    device::value_to_string(value).c_str());
      }
      std::printf("\n");
    }
    std::printf("  (room_c is absent: its radio no longer answers scans)\n");
  }
  return 0;
}
