// Interactive Aorta shell: type statements against a live simulated lab.
//
//   $ ./examples/aorta_shell
//   aorta> SHOW DEVICES;
//   aorta> EXPLAIN CREATE AQ snap AS SELECT photo(c.ip, s.loc, 'd')
//          FROM sensor s, camera c WHERE s.accel_x > 500 AND coverage(c.id, s.loc);
//   aorta> CREATE AQ snap AS SELECT ... ;
//   aorta> RUN 120            -- advance simulated time by 120 seconds
//   aorta> SHOW QUERIES;
//   aorta> QUIT
//
// Meta commands (not SQL): RUN <seconds>, STATS, TRACE [n], RESULTS <aq>,
// HELP, QUIT.
// The lab: two PTZ cameras, three motes (one spiking each minute), and a
// phone — enough to exercise every built-in action.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "core/aorta.h"
#include "util/strings.h"

using namespace aorta;

namespace {

void print_rows(const core::ExecResult& result) {
  if (!result.message.empty()) std::printf("%s\n", result.message.c_str());
  for (const auto& row : result.rows) {
    std::printf(" ");
    for (const auto& [column, value] : row) {
      std::printf(" %s=%s", column.c_str(),
                  device::value_to_string(value).c_str());
    }
    std::printf("\n");
  }
}

void print_stats(core::Aorta& sys) {
  core::SystemStats stats = sys.stats();
  std::printf("simulated time : %s\n", sys.loop().now().to_string().c_str());
  std::printf("network        : %llu sent, %llu delivered, %llu lost\n",
              static_cast<unsigned long long>(stats.network.sent),
              static_cast<unsigned long long>(stats.network.delivered),
              static_cast<unsigned long long>(stats.network.dropped_loss));
  std::printf("probes         : %llu (%llu timeouts)\n",
              static_cast<unsigned long long>(stats.probes.probes),
              static_cast<unsigned long long>(stats.probes.timeouts));
  std::printf("device locks   : %llu acquired, %llu contended, %llu waits "
              "timed out\n",
              static_cast<unsigned long long>(stats.locks.acquisitions),
              static_cast<unsigned long long>(stats.locks.contentions),
              static_cast<unsigned long long>(stats.locks.wait_timeouts));
}

}  // namespace

int main() {
  core::Aorta sys(core::Config{});

  (void)sys.add_camera("cam1", "192.168.0.90", {{0, 0, 3}, 0.0});
  (void)sys.add_camera("cam2", "192.168.0.91", {{10, 8, 3}, 180.0});
  (void)sys.add_mote("door", {4, 2, 1});
  (void)sys.add_mote("window", {8, 6, 1});
  (void)sys.add_mote("hallway", {2, 7, 1}, /*hops=*/2);
  (void)sys.add_phone("manager", "+85291234567", {50, 50, 0});
  // The door rattles every minute.
  (void)sys.mote("door")->set_signal(
      "accel_x",
      devices::periodic_spike_signal(0.0, 800.0, util::Duration::seconds(60),
                                     util::Duration::seconds(2),
                                     util::Duration::seconds(15)));

  std::printf("Aorta shell — pervasive query processing on a simulated lab.\n");
  std::printf("Lab: cam1, cam2; motes door, window, hallway; phone manager.\n");
  std::printf("Type HELP for meta commands. End statements with ';'.\n\n");

  std::string buffer;
  std::string line;
  std::printf("aorta> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::string trimmed(util::trim(line));
    std::string upper = util::to_lower(trimmed);
    for (char& c : upper) c = static_cast<char>(std::toupper(c));

    if (buffer.empty()) {
      // Meta commands only at statement start.
      if (upper == "QUIT" || upper == "EXIT") break;
      if (upper == "HELP") {
        std::printf("meta commands:\n"
                    "  RUN <seconds>   advance simulated time\n"
                    "  STATS           system counters\n"
                    "  TRACE [n]       last n engine trace entries\n"
                    "  RESULTS <aq>    recent rows of a continuous query\n"
                    "  QUIT            leave\n"
                    "statements: CREATE ACTION / CREATE AQ / SELECT /\n"
                    "            EXPLAIN / SHOW QUERIES|ACTIONS|DEVICES /\n"
                    "            DROP AQ <name>  — end with ';'\n");
        std::printf("aorta> ");
        std::fflush(stdout);
        continue;
      }
      if (upper == "STATS") {
        print_stats(sys);
        std::printf("aorta> ");
        std::fflush(stdout);
        continue;
      }
      if (upper == "TRACE" || upper.rfind("TRACE ", 0) == 0) {
        std::size_t limit = 20;
        if (upper.size() > 6) {
          limit = static_cast<std::size_t>(
              std::max(1, std::atoi(trimmed.substr(6).c_str())));
        }
        const auto& trace = sys.executor().trace();
        std::size_t start = trace.size() > limit ? trace.size() - limit : 0;
        for (std::size_t i = start; i < trace.size(); ++i) {
          const auto& entry = trace[i];
          std::printf("  [%10.3f] %-8s %-12s %s\n", entry.at.to_seconds(),
                      entry.kind.c_str(),
                      entry.query.empty() ? "-" : entry.query.c_str(),
                      entry.detail.c_str());
        }
        if (trace.empty()) std::printf("  (trace empty)\n");
        std::printf("aorta> ");
        std::fflush(stdout);
        continue;
      }
      if (upper.rfind("RESULTS ", 0) == 0) {
        std::string name(util::trim(trimmed.substr(8)));
        auto rows = sys.executor().recent_results(name);
        if (rows.empty()) {
          std::printf("  (no results for '%s')\n", name.c_str());
        }
        for (const auto& tr : rows) {
          std::printf("  [%10.3f]", tr.at.to_seconds());
          for (const auto& [column, value] : tr.row) {
            std::printf(" %s=%s", column.c_str(),
                        device::value_to_string(value).c_str());
          }
          std::printf("\n");
        }
        std::printf("aorta> ");
        std::fflush(stdout);
        continue;
      }
      if (upper.rfind("RUN ", 0) == 0) {
        double seconds = std::atof(trimmed.substr(4).c_str());
        if (seconds <= 0) {
          std::printf("usage: RUN <seconds>\n");
        } else {
          sys.run_for(util::Duration::seconds(seconds));
          std::printf("advanced to %s\n", sys.loop().now().to_string().c_str());
        }
        std::printf("aorta> ");
        std::fflush(stdout);
        continue;
      }
    }

    buffer += line;
    buffer += ' ';
    if (trimmed.empty() || trimmed.back() != ';') {
      std::printf("   ... ");
      std::fflush(stdout);
      continue;
    }

    auto result = sys.exec(buffer);
    buffer.clear();
    if (result.is_ok()) {
      print_rows(result.value());
    } else {
      std::printf("error: %s\n", result.status().to_string().c_str());
    }
    std::printf("aorta> ");
    std::fflush(stdout);
  }
  std::printf("\nbye\n");
  return 0;
}
