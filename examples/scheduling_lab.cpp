// Scheduling lab: interactive comparison of the five action workload
// scheduling algorithms on a synthetic photo() workload.
//
//   $ ./examples/scheduling_lab [#requests] [#devices] [skewness] [seed]
//
// Prints each algorithm's makespan breakdown and, for the two algorithms
// the paper proposes, the per-device schedule timeline — handy for seeing
// *why* cost-aware ordering wins: watch the head positions chain.
#include <cstdio>
#include <cstdlib>
#include <map>

#include "sched/algorithms.h"
#include "sched/cost_model.h"
#include "sched/workload.h"

using namespace aorta;

int main(int argc, char** argv) {
  sched::WorkloadSpec spec;
  spec.n_requests = argc > 1 ? std::atoi(argv[1]) : 12;
  spec.n_devices = argc > 2 ? std::atoi(argv[2]) : 4;
  spec.skewness = argc > 3 ? std::atof(argv[3]) : 1.0;
  spec.seed = argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 42;

  std::printf("workload: %d photo() requests, %d cameras, skewness %.2f, "
              "seed %llu\n\n",
              spec.n_requests, spec.n_devices, spec.skewness,
              static_cast<unsigned long long>(spec.seed));

  sched::Workload w = sched::make_photo_workload(spec);
  auto model = sched::PhotoCostModel::axis2130();

  std::printf("%12s %12s %14s %12s %14s\n", "algorithm", "service (s)",
              "cost evals", "wall (ms)", "valid");
  std::map<std::string, sched::ScheduleResult> results;
  for (const auto& name : sched::paper_scheduler_names()) {
    auto scheduler = sched::make_scheduler(name);
    util::Rng rng(spec.seed + 1);
    sched::ScheduleResult result =
        scheduler->schedule(w.requests, w.devices, *model, rng);
    util::Status valid =
        sched::validate_schedule(result, w.requests, w.devices, *model);
    std::printf("%12s %12.2f %14llu %12.3f %14s\n", name.c_str(),
                result.service_makespan_s,
                static_cast<unsigned long long>(result.cost_evaluations),
                result.scheduling_wall_s * 1e3,
                valid.is_ok() ? "ok" : valid.to_string().c_str());
    results.emplace(name, std::move(result));
  }

  // Show the winning schedule as per-device timelines.
  for (const char* name : {"LERFA+SRFE", "SRFAE"}) {
    const sched::ScheduleResult& result = results.at(name);
    std::printf("\n%s schedule (request@start-finish per device):\n", name);
    std::map<std::string, std::vector<const sched::ScheduledItem*>> per_device;
    for (const auto& item : result.items) per_device[item.device].push_back(&item);
    for (const auto& [device_id, items] : per_device) {
      std::printf("  %-6s:", device_id.c_str());
      for (const auto* item : items) {
        std::printf(" r%llu@%.2f-%.2f",
                    static_cast<unsigned long long>(item->request_id),
                    item->start_s, item->finish_s);
      }
      std::printf("\n");
    }
  }
  return 0;
}
