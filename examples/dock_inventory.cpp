// Dock inventory: RFID-triggered surveillance.
//
// An RFID gate reads pallet tags at the loading dock (the smart-
// identification modality of the paper's related work [14]); whenever a
// tagged pallet passes, the covering camera photographs the dock and the
// query's projections log which tag passed when — consumed here through
// the continuous result stream.
#include <cstdio>

#include "core/aorta.h"
#include "devices/rfid_reader.h"

using namespace aorta;

int main() {
  core::Config config;
  config.seed = 41;
  core::Aorta sys(config);

  // The RFID type is an extension: register its type info and a generic
  // comm module (read_attr is all the engine needs from a pure sensor).
  (void)sys.registry().register_type(devices::rfid_type_info());
  sys.comm().register_module(std::make_unique<comm::CommModule>(
      &sys.registry(), &sys.comm().engine(), devices::RfidReader::kTypeId));

  (void)sys.add_camera("dock_cam", "192.168.0.95", {{0.0, 0.0, 4.0}, 0.0}, 30.0);

  auto reader = std::make_unique<devices::RfidReader>("gate1",
                                                      device::Location{6, 0, 1});
  // Three pallets roll through during the run.
  reader->add_passage({util::TimePoint::from_micros(20'000'000),
                       util::Duration::seconds(3), "PALLET-00017"});
  reader->add_passage({util::TimePoint::from_micros(65'000'000),
                       util::Duration::seconds(3), "PALLET-00023"});
  reader->add_passage({util::TimePoint::from_micros(140'000'000),
                       util::Duration::seconds(3), "PALLET-00017"});
  (void)sys.registry().add(std::move(reader));

  auto r = sys.exec(
      "CREATE AQ dock_watch AS "
      "SELECT g.last_tag, photo(c.ip, g.loc, 'photos/dock') "
      "FROM rfid g, camera c "
      "WHERE g.last_tag <> '' AND coverage(c.id, g.loc)");
  std::printf("%s\n", r.is_ok() ? r->message.c_str()
                                : r.status().to_string().c_str());

  sys.run_for(util::Duration::minutes(3));

  const query::QueryStats* qs = sys.query_stats("dock_watch");
  auto as = sys.action_stats("dock_watch");
  std::printf("\nafter 3 simulated minutes:\n");
  std::printf("  passages detected : %llu\n",
              static_cast<unsigned long long>(qs->events));
  std::printf("  dock photos       : %llu usable, %llu bad\n",
              static_cast<unsigned long long>(as.usable),
              static_cast<unsigned long long>(as.total_bad()));

  std::printf("\ninventory log (the query's continuous result stream):\n");
  for (const auto& entry : sys.executor().recent_results("dock_watch")) {
    std::printf("  [%8.1fs]", entry.at.to_seconds());
    for (const auto& [column, value] : entry.row) {
      std::printf(" %s=%s", column.c_str(),
                  device::value_to_string(value).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
