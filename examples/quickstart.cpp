// Quickstart: the paper's running example end to end.
//
// Builds a small pervasive lab (two PTZ cameras, one mote on a door),
// registers the Figure 1 snapshot query through the declarative
// interface, scripts a few door pushes, and lets the engine detect the
// events, pick the cheapest covering camera and take the photos.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/aorta.h"

using namespace aorta;

int main() {
  core::Config config;
  config.scheduler = "SRFAE";
  core::Aorta sys(config);

  // --- the pervasive lab ----------------------------------------------------
  // Two ceiling-mounted AXIS-2130-style cameras facing each other...
  (void)sys.add_camera("cam1", "192.168.0.90", {{0.0, 0.0, 3.0}, 0.0});
  (void)sys.add_camera("cam2", "192.168.0.91", {{10.0, 8.0, 3.0}, 180.0});
  // ...and a MICA2 mote attached to the lab door.
  (void)sys.add_mote("door_mote", {4.0, 2.0, 1.0});

  // Script three door pushes: the mote's accelerometer spikes at t=30s,
  // 90s and 150s for two seconds each.
  auto script = std::make_unique<devices::ScriptedSignal>(0.0);
  for (double t : {30.0, 90.0, 150.0}) {
    script->add_spike(util::TimePoint::from_micros(
                          static_cast<std::int64_t>(t * 1e6)),
                      util::Duration::seconds(2.0), 800.0);
  }
  (void)sys.mote("door_mote")->set_signal("accel_x", std::move(script));

  // --- the snapshot query (Figure 1 of the paper) ---------------------------
  auto result = sys.exec(
      "CREATE AQ snapshot AS "
      "SELECT photo(c.ip, s.loc, 'photos/admin') "
      "FROM sensor s, camera c "
      "WHERE s.accel_x > 500 AND coverage(c.id, s.loc)");
  if (!result.is_ok()) {
    std::fprintf(stderr, "failed: %s\n", result.status().to_string().c_str());
    return 1;
  }
  std::printf("registered: %s\n", result->message.c_str());

  // --- run three simulated minutes ------------------------------------------
  sys.run_for(util::Duration::minutes(3.0));

  // --- what happened ----------------------------------------------------------
  const query::QueryStats* qs = sys.query_stats("snapshot");
  query::QueryActionStats as = sys.action_stats("snapshot");
  std::printf("\nafter 3 simulated minutes:\n");
  std::printf("  epochs evaluated : %llu\n",
              static_cast<unsigned long long>(qs->epochs));
  std::printf("  events detected  : %llu (3 door pushes scripted)\n",
              static_cast<unsigned long long>(qs->events));
  std::printf("  photos usable    : %llu\n",
              static_cast<unsigned long long>(as.usable));
  std::printf("  photos bad       : %llu\n",
              static_cast<unsigned long long>(as.total_bad()));

  core::SystemStats stats = sys.stats();
  std::printf("  probes sent      : %llu (%llu timed out)\n",
              static_cast<unsigned long long>(stats.probes.probes),
              static_cast<unsigned long long>(stats.probes.timeouts));
  std::printf("  device locks     : %llu acquired, %llu contended\n",
              static_cast<unsigned long long>(stats.locks.acquisitions),
              static_cast<unsigned long long>(stats.locks.contentions));

  // A one-shot query against the live virtual tables.
  auto rows = sys.exec("SELECT s.id, s.accel_x, s.battery_v FROM sensor s");
  if (rows.is_ok()) {
    std::printf("\nSELECT s.id, s.accel_x, s.battery_v FROM sensor s  -> %s\n",
                rows->message.c_str());
    for (const auto& row : rows->rows) {
      std::printf(" ");
      for (const auto& [column, value] : row) {
        std::printf(" %s=%s", column.c_str(),
                    device::value_to_string(value).c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
