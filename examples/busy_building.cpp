// busy_building: the smart building as a *shared service*.
//
// smart_building.cpp drives Aorta as a single embedded caller; this demo
// puts the multi-tenant service layer (src/server) in front of the same
// instrumented building and lets three departments use it concurrently:
//
//   facilities  - registers comfort-monitoring AQs, polls temperatures
//   security    - registers an intrusion AQ (accel spike -> photo action)
//   research    - a scripted burst of ad-hoc SELECTs that runs into
//                 admission control
//
// Each department is a tenant with its own sessions, AQ namespace, quota
// and result mailbox; the run prints what each mailbox received and the
// service's per-tenant accounting.
#include <cstdio>
#include <string>
#include <vector>

#include "core/aorta.h"
#include "server/service.h"

using aorta::core::Aorta;
using aorta::core::Config;
using aorta::server::Delivery;
using aorta::server::QueryService;
using aorta::server::ServiceConfig;
using aorta::server::SessionId;
using aorta::util::Duration;
using aorta::util::TimePoint;

namespace {

const char* kind_name(Delivery::Kind kind) {
  switch (kind) {
    case Delivery::Kind::kResult: return "result";
    case Delivery::Kind::kError: return "error";
    case Delivery::Kind::kRow: return "row";
    case Delivery::Kind::kOutcome: return "outcome";
  }
  return "?";
}

void drain_and_print(QueryService& service, SessionId id,
                     const std::string& who) {
  aorta::server::Session* s = service.session(id);
  if (s == nullptr) return;
  std::vector<Delivery> mail = s->drain();
  std::printf("\n%s (session %llu, %zu deliveries, %llu dropped):\n",
              who.c_str(), static_cast<unsigned long long>(id), mail.size(),
              static_cast<unsigned long long>(s->mailbox_dropped()));
  std::size_t shown = 0;
  for (const Delivery& d : mail) {
    if (++shown > 6) {
      std::printf("  ... %zu more\n", mail.size() - shown + 1);
      break;
    }
    std::printf("  [%7.2fs] %-7s %s%s\n", d.at.to_seconds(),
                kind_name(d.kind),
                d.query.empty() ? "" : (d.query + ": ").c_str(),
                d.message.empty()
                    ? (std::to_string(d.rows.size()) + " row(s)").c_str()
                    : d.message.c_str());
  }
}

}  // namespace

int main() {
  Aorta sys(Config{});

  // The instrumented building: motes on doors, one camera per wing.
  (void)sys.add_camera("cam_east", "192.168.0.90", {{0, 0, 3}, 0.0});
  (void)sys.add_camera("cam_west", "192.168.0.91", {{12, 0, 3}, 3.14});
  for (int i = 0; i < 3; ++i) {
    std::string id = "door" + std::to_string(i);
    (void)sys.add_mote(id, {static_cast<double>(i * 4), 2, 1}, 1 + i);
    (void)sys.mote(id)->set_signal("temp",
                                   aorta::devices::constant_signal(21.5));
    auto accel = std::make_unique<aorta::devices::ScriptedSignal>(0.0);
    // Someone pushes door1 twice during the run.
    if (i == 1) {
      accel->add_spike(TimePoint() + Duration::seconds(20),
                       Duration::seconds(2), 850.0);
      accel->add_spike(TimePoint() + Duration::seconds(70),
                       Duration::seconds(2), 910.0);
    }
    (void)sys.mote(id)->set_signal("accel_x", std::move(accel));
  }

  ServiceConfig sc;
  sc.admission.queue_capacity = 8;  // small on purpose: research's burst
  sc.admission.policy = aorta::util::OverflowPolicy::kShedOldest;
  sc.admission.max_aqs_per_tenant = 2;
  sc.tenant_weights = {{"security", 2.0}};  // alarms beat batch analytics
  QueryService service(&sys, sc);

  SessionId facilities = service.connect("facilities");
  SessionId security = service.connect("security");
  SessionId research = service.connect("research");

  (void)service.submit(facilities,
                       "CREATE AQ comfort AS SELECT s.temp FROM sensor s "
                       "WHERE s.temp > 30");
  (void)service.submit(security,
                       "CREATE AQ intrusion AS SELECT photo(c.ip, s.loc, "
                       "'photos/security') FROM sensor s, camera c WHERE "
                       "s.accel_x > 500 AND coverage(c.id, s.loc)");
  // Tenant quota in action: security tries to register a third AQ later.
  (void)service.submit(security,
                       "CREATE AQ doors AS SELECT s.accel_x FROM sensor s "
                       "WHERE s.accel_x > 500");
  auto over_quota = service.submit(
      security, "CREATE AQ extra AS SELECT s.temp FROM sensor s");
  std::printf("security's 3rd AQ: %s\n",
              over_quota.is_ok() ? "accepted"
                                 : over_quota.status().to_string().c_str());

  // Research floods 24 ad-hoc SELECTs into a queue of 8.
  sys.loop().schedule(Duration::seconds(5), [&]() {
    for (int i = 0; i < 24; ++i) {
      (void)service.submit(research, "SELECT s.temp FROM sensor s");
    }
  });

  sys.run_for(Duration::minutes(2));

  drain_and_print(service, facilities, "facilities");
  drain_and_print(service, security, "security");
  drain_and_print(service, research, "research");

  std::printf("\nservice accounting:\n%s", service.stats_json().c_str());

  (void)service.disconnect(research);
  std::printf("research disconnected; active sessions: %zu\n",
              service.active_sessions());
  return 0;
}
