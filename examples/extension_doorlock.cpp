// Extending Aorta with a new device type — the paper's Section 8 future
// work ("extending the uniform data communication layer to support new
// types of devices"), done entirely through public extension points:
//
//   1. register the type's DeviceTypeInfo (catalog, atomic op costs, link);
//   2. register a CommModule subclass for its protocol;
//   3. register an ActionDef so queries can embed its actions;
//   4. add devices and write queries against the new virtual table.
//
// Scenario: when a door-mounted mote senses a push after hours, engage
// the door lock guarding that door (Aorta's device-selection optimization
// picks among the candidate locks the predicates admit).
#include <cstdio>

#include "core/aorta.h"
#include "devices/smart_lock.h"

using namespace aorta;

namespace {

// Step 2: the door lock's protocol adapter. CommModule's base already
// provides connect/close/send/receive and read_attr over the registered
// link; the subclass adds typed verbs.
class DoorLockComm : public comm::CommModule {
 public:
  DoorLockComm(device::DeviceRegistry* registry, comm::EngineNode* engine)
      : CommModule(registry, engine, devices::SmartLock::kTypeId) {}

  void engage(const device::DeviceId& id,
              std::function<void(util::Status)> done) {
    request(id, "engage", {}, default_timeout(),
            [done = std::move(done)](util::Result<net::Message> reply) {
              if (!reply.is_ok()) {
                done(reply.status());
              } else if (reply.value().field("ok") != "1") {
                done(util::action_failed_error(reply.value().field("error")));
              } else {
                done(util::Status::ok());
              }
            });
  }
};

}  // namespace

int main() {
  core::Config config;
  config.seed = 5;
  core::Aorta sys(config);

  // Step 1: the new device type.
  auto status = sys.registry().register_type(devices::doorlock_type_info());
  if (!status.is_ok()) {
    std::fprintf(stderr, "%s\n", status.to_string().c_str());
    return 1;
  }
  // Step 2: its comm module.
  auto module = std::make_unique<DoorLockComm>(&sys.registry(), &sys.comm().engine());
  DoorLockComm* doorlock_comm = module.get();
  sys.comm().register_module(std::move(module));

  // Step 3: the engage_lock(lock_id) action, registered exactly like a
  // user-defined action: profile + cost model + implementation.
  {
    query::ActionDef def;
    def.name = "engage_lock";
    def.params = {{device::AttrType::kString, "lock_id"}};
    def.device_type = devices::SmartLock::kTypeId;
    def.binding_param = 0;
    def.binding_attr = "id";
    device::ActionProfile profile("engage_lock", devices::SmartLock::kTypeId,
                                  device::ActionProfileNode::op("engage"));
    def.cost_model = query::ProfileCostModel::from_profile(
        profile, devices::doorlock_type_info().op_costs);
    def.profile = std::move(profile);
    def.impl = [doorlock_comm](const device::DeviceId& device,
                               const std::vector<device::Value>&,
                               std::function<void(util::Result<sched::ActionOutcome>)>
                                   done) {
      doorlock_comm->engage(device, [done = std::move(done)](util::Status s) {
        if (!s.is_ok()) {
          done(util::Result<sched::ActionOutcome>(s));
          return;
        }
        sched::ActionOutcome out;
        out.ok = true;
        done(out);
      });
    };
    (void)sys.catalog().register_action(std::move(def));
  }

  // Step 4: build the world and query the new table.
  (void)sys.add_mote("door_mote", {4, 0.5, 1});
  (void)sys.registry().add(
      std::make_unique<devices::SmartLock>("lock_front", device::Location{4, 0, 1}));
  (void)sys.registry().add(
      std::make_unique<devices::SmartLock>("lock_back", device::Location{4, 9, 1}));

  auto script = std::make_unique<devices::ScriptedSignal>(0.0);
  script->add_spike(util::TimePoint::from_micros(30'000'000),
                    util::Duration::seconds(2), 900.0);
  (void)sys.mote("door_mote")->set_signal("accel_x", std::move(script));

  // Engage a lock within 5 m of the sensed push (the distance predicate
  // builds the candidate set; device selection services the request).
  auto r = sys.exec(
      "CREATE AQ lockdown AS SELECT engage_lock(l.id) "
      "FROM sensor s, doorlock l "
      "WHERE s.accel_x > 500 AND distance(l.loc, s.loc) < 5");
  std::printf("%s\n", r.is_ok() ? r->message.c_str()
                                : r.status().to_string().c_str());

  sys.run_for(util::Duration::minutes(2));

  auto rows = sys.exec("SELECT l.id, l.engaged FROM doorlock l");
  if (rows.is_ok()) {
    std::printf("\ndoorlock table after the push event:\n");
    for (const auto& row : rows->rows) {
      std::printf(" ");
      for (const auto& [column, value] : row) {
        std::printf(" %s=%s", column.c_str(),
                    device::value_to_string(value).c_str());
      }
      std::printf("\n");
    }
  }
  auto as = sys.action_stats("lockdown");
  std::printf("\nlockdown: requests=%llu usable=%llu bad=%llu\n",
              static_cast<unsigned long long>(as.requests),
              static_cast<unsigned long long>(as.usable),
              static_cast<unsigned long long>(as.total_bad()));
  std::printf("(only lock_front is within 5 m; lock_back stays released)\n");
  return 0;
}
