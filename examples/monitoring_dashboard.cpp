// monitoring_dashboard: 200 dashboard tenants, 6 query shapes, one cache.
//
// The classic pervasive-monitoring dashboard: every occupant of a sensed
// building opens the same "building health" page, and every open page
// registers the same handful of continuous windowed aggregates — average
// temperature per floor, occupancy counts, peak vibration. Without
// sharing, 200 viewers would cost 200 aggregate pipelines over the same
// tuples. With the query-hash shared-aggregate cache (DESIGN.md §15) they
// collapse onto one cache entry per distinct shape: one broker
// subscription, one predicate/argument evaluation per tuple, one set of
// incremental window panes — the dashboards just subscribe to the
// emissions.
//
// The run registers 200 tenants across 6 shapes, lets the building run
// for two simulated minutes, prints the latest window per shape, and then
// shows the cache's scoreboard: entries vs subscribers and the per-tuple
// evaluations the cache refused to repeat.
#include <cstdio>
#include <string>
#include <vector>

#include "core/aorta.h"

using namespace aorta;
using util::Duration;

namespace {

// The 6 distinct queries behind the dashboard widgets. Tenants 0..199
// round-robin over them, so each shape carries ~33 identical subscribers.
const char* kWidgets[] = {
    // Average temperature per floor (hops doubles as the floor index in
    // the radio tree), 30-second window refreshed every 5.
    "SELECT avg(s.temp) FROM sensor s GROUP BY s.hops WINDOW 30s EVERY 5s",
    // Building-wide average: same hash as the per-floor widget (GROUP BY
    // is excluded from the canonical hash), so it subsumes into the same
    // entry instead of creating a second pipeline.
    "SELECT avg(s.temp) FROM sensor s WINDOW 30s EVERY 5s",
    // Sample counts per floor: the liveness widget.
    "SELECT count(*) FROM sensor s GROUP BY s.hops WINDOW 10s",
    // Peak vibration per floor over the last minute.
    "SELECT max(s.accel_x) FROM sensor s GROUP BY s.hops WINDOW 60s EVERY 10s",
    // Ambient light band, tumbling.
    "SELECT min(s.light), max(s.light) FROM sensor s WINDOW 20s",
    // Hot-spot watch: only tuples above the comfort threshold count.
    "SELECT count(s.temp) FROM sensor s WHERE s.temp > 24 "
    "GROUP BY s.hops WINDOW 30s EVERY 5s",
};
constexpr int kWidgetCount = 6;
constexpr int kTenants = 200;

}  // namespace

int main() {
  core::Config config;
  config.seed = 7;
  core::Aorta sys(config);

  // Three floors of motes; floor = hops in the radio tree. The third
  // floor runs warm so the hot-spot widget has something to count.
  for (int floor = 1; floor <= 3; ++floor) {
    for (int i = 0; i < 4; ++i) {
      std::string id = "f" + std::to_string(floor) + "m" + std::to_string(i);
      (void)sys.add_mote(id, {double(i) * 5, double(floor) * 3, 1}, floor);
      (void)sys.mote(id)->set_signal(
          "temp", devices::constant_signal(18.0 + 3.0 * floor + 0.25 * i));
      (void)sys.mote(id)->set_signal(
          "light", devices::constant_signal(60.0 + 20.0 * floor));
      (void)sys.mote(id)->set_signal(
          "accel_x", devices::periodic_spike_signal(
                         0.0, 400.0 + 100.0 * floor, Duration::seconds(25.0),
                         Duration::seconds(2.0),
                         Duration::seconds(double(4 * floor + i))));
    }
  }

  std::printf("monitoring_dashboard: %d tenants, %d widget shapes\n\n",
              kTenants, kWidgetCount);
  for (int t = 0; t < kTenants; ++t) {
    std::string name = "dash" + std::to_string(t);
    auto r = sys.exec("CREATE AQ " + name + " AS " +
                      kWidgets[t % kWidgetCount]);
    if (!r.is_ok()) {
      std::fprintf(stderr, "register failed: %s\n",
                   r.status().to_string().c_str());
      return 1;
    }
  }

  sys.run_for(Duration::minutes(2));

  std::printf("latest window per widget shape:\n");
  for (int wdx = 0; wdx < kWidgetCount; ++wdx) {
    std::printf("  [%d] %s\n", wdx, kWidgets[wdx]);
    auto rows = sys.executor().recent_results("dash" + std::to_string(wdx));
    // The tail of the result ring is the most recent emission: one row
    // per group (per-floor shapes emit three).
    std::size_t start = rows.size() >= 3 ? rows.size() - 3 : 0;
    for (std::size_t i = start; i < rows.size(); ++i) {
      std::printf("      %-14s", rows[i].at.to_string().c_str());
      for (const auto& [col, value] : rows[i].row) {
        std::printf("  %s=%s", col.c_str(),
                    device::value_to_string(value).c_str());
      }
      std::printf("\n");
    }
  }

  const query::AggStats& stats = sys.executor().agg_stats();
  std::printf("\nshared-aggregate cache scoreboard:\n");
  std::printf("  subscribers        : %zu dashboards\n",
              sys.executor().agg_subscribers());
  std::printf("  cache entries      : %zu shared pipelines\n",
              sys.executor().agg_entries());
  std::printf("  attach outcomes    : %llu misses, %llu hits, "
              "%llu subsumptions\n",
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.subsumptions));
  // Each ablation subscriber would run a private copy of its entry, so
  // the private bill is roughly the per-entry average times the fleet.
  std::uint64_t ablation_estimate = stats.tuples_evaluated /
                                    sys.executor().agg_entries() *
                                    sys.executor().agg_subscribers();
  std::printf("  tuples evaluated   : %llu (private per-tenant pipelines "
              "would have paid ~%llu)\n",
              static_cast<unsigned long long>(stats.tuples_evaluated),
              static_cast<unsigned long long>(ablation_estimate));
  std::printf("  window emissions   : %llu rows to %d dashboards\n",
              static_cast<unsigned long long>(stats.emissions), kTenants);
  return 0;
}
