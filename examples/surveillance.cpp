// Building surveillance: the paper's introduction scenario.
//
// "A surveillance application automatically operates remotely-controllable
// cameras to take photos based on the variation in the readings of
// acceleration sensors. In the meanwhile, it sends the photos to the cell
// phone of the human manager who may be currently off-duty."
//
// This example demonstrates:
//  - the CREATE ACTION path for a user-defined action (sendphoto_alert),
//    registered with a library path and an XML action profile (Section
//    2.2), then bound to a C++ implementation with register_action_impl;
//  - two continuous queries sharing the camera fleet;
//  - a phone that drops out of coverage mid-run — Aorta's probing detects
//    the dark handset and the MMS requests fail over cleanly.
#include <cstdio>

#include "core/aorta.h"
#include "util/strings.h"

using namespace aorta;

int main() {
  core::Config config;
  config.seed = 7;
  core::Aorta sys(config);

  // Lobby and corridor cameras.
  (void)sys.add_camera("cam_lobby", "192.168.0.90", {{0.0, 0.0, 3.0}, 0.0});
  (void)sys.add_camera("cam_corridor", "192.168.0.91", {{15.0, 0.0, 3.0}, 180.0});
  // Acceleration motes on the entrance door and a display case.
  (void)sys.add_mote("door", {3.0, 1.0, 1.0});
  (void)sys.add_mote("case", {12.0, 2.0, 1.0});
  // The manager's phone.
  (void)sys.add_phone("mgr_phone", "+85291234567", {100.0, 100.0, 0.0});

  // Intrusions: the door rattles at t=40s, the display case at t=100s and
  // again at t=220s (while the phone is out of coverage).
  auto door_signal = std::make_unique<devices::ScriptedSignal>(0.0);
  door_signal->add_spike(util::TimePoint::from_micros(40'000'000),
                         util::Duration::seconds(2), 900.0);
  (void)sys.mote("door")->set_signal("accel_x", std::move(door_signal));

  auto case_signal = std::make_unique<devices::ScriptedSignal>(0.0);
  case_signal->add_spike(util::TimePoint::from_micros(100'000'000),
                         util::Duration::seconds(2), 650.0);
  case_signal->add_spike(util::TimePoint::from_micros(220'000'000),
                         util::Duration::seconds(2), 700.0);
  (void)sys.mote("case")->set_signal("accel_x", std::move(case_signal));

  // ---- user-defined action via the declarative interface -------------------
  // The action profile (an XML text file in the paper; a virtual file
  // here) declares it runs on phones as transfer + MMS receive.
  sys.add_virtual_file("profiles/users/sendphoto_alert.xml",
                       "<action_profile action=\"sendphoto_alert\" "
                       "device_type=\"phone\">"
                       "<seq><op name=\"transfer\" units=\"81920\"/>"
                       "<op name=\"recv_mms\"/></seq>"
                       "</action_profile>");
  auto created = sys.exec(
      "CREATE ACTION sendphoto_alert(String phone_no, String photo_pathname) "
      "AS \"lib/users/sendphoto.dll\" "
      "PROFILE \"profiles/users/sendphoto_alert.xml\"");
  if (!created.is_ok()) {
    std::fprintf(stderr, "CREATE ACTION failed: %s\n",
                 created.status().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", created->message.c_str());

  // Bind the implementation (the reproduction's stand-in for the DLL).
  (void)sys.register_action_impl(
      "sendphoto_alert",
      [&sys](const device::DeviceId& device,
             const std::vector<device::Value>& args,
             std::function<void(util::Result<sched::ActionOutcome>)> done) {
        std::string path;
        if (args.size() > 1) {
          if (const auto* s = std::get_if<std::string>(&args[1])) path = *s;
        }
        sys.comm().phone().send_mms(
            device, path, 80 * 1024,
            [done = std::move(done)](util::Status status) {
              if (!status.is_ok()) {
                done(util::Result<sched::ActionOutcome>(status));
                return;
              }
              sched::ActionOutcome out;
              out.ok = true;
              done(out);
            });
      });

  // ---- the surveillance queries --------------------------------------------
  const char* queries[] = {
      // Photograph whatever moves, with the cheapest covering camera.
      "CREATE AQ watch_motion AS "
      "SELECT photo(c.ip, s.loc, 'photos/security') "
      "FROM sensor s, camera c "
      "WHERE s.accel_x > 500 AND coverage(c.id, s.loc)",
      // And alert the manager's phone.
      "CREATE AQ alert_manager AS "
      "SELECT sendphoto_alert(p.phone_no, 'photos/security/latest.jpg') "
      "FROM sensor s, phone p "
      "WHERE s.accel_x > 500",
  };
  for (const char* sql : queries) {
    auto r = sys.exec(sql);
    std::printf("%s\n", r.is_ok() ? r->message.c_str()
                                  : r.status().to_string().c_str());
  }

  // ---- run, with a coverage outage in the middle ----------------------------
  sys.run_for(util::Duration::seconds(180));
  std::printf("\n[t=180s] manager walks into the parking garage "
              "(phone out of coverage)\n");
  sys.network().partition("mgr_phone");
  sys.run_for(util::Duration::seconds(60));
  std::printf("[t=240s] phone back in coverage\n");
  sys.network().heal("mgr_phone");
  sys.run_for(util::Duration::seconds(60));

  // ---- report ---------------------------------------------------------------
  std::printf("\nafter 5 simulated minutes:\n");
  for (const char* name : {"watch_motion", "alert_manager"}) {
    const query::QueryStats* qs = sys.query_stats(name);
    query::QueryActionStats as = sys.action_stats(name);
    std::printf("  %-14s events=%llu usable=%llu degraded=%llu failed=%llu "
                "no_candidate=%llu\n",
                name, static_cast<unsigned long long>(qs->events),
                static_cast<unsigned long long>(as.usable),
                static_cast<unsigned long long>(as.degraded),
                static_cast<unsigned long long>(as.failed),
                static_cast<unsigned long long>(as.no_candidate));
  }
  const devices::MmsPhone* phone = sys.phone("mgr_phone");
  std::printf("  manager's inbox: %zu message(s)\n", phone->inbox().size());
  for (const auto& entry : phone->inbox()) {
    std::printf("    [%s] %s %s (%zu bytes)\n",
                entry.received_at.to_string().c_str(), entry.kind.c_str(),
                entry.body.c_str(), entry.bytes);
  }
  std::printf("  (the t=220s alert failed while the phone was dark — probing "
              "excluded it)\n");
  return 0;
}
