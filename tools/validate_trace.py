#!/usr/bin/env python3
"""Schema validation for exported Chrome trace-event JSON (obs::Tracer).

Hand-rolled (stdlib only — no jsonschema dependency) validator for the
subset of the trace-event format the Tracer emits, which is also what
Perfetto / chrome://tracing need to load the file:

    {
      "displayTimeUnit": "ms",
      "traceEvents": [
        {"ph": "M", "pid": 1, "name": "process_name"|"thread_name",
         "args": {"name": <str>}, ...},
        {"ph": "X", "pid": 1, "tid": <int>, "name": <str>, "cat": <str>,
         "ts": <number >= 0>, "dur": <number >= 0>, ...}
      ]
    }

Usage: validate_trace.py TRACE.json [TRACE2.json ...]
Exits non-zero on the first malformed file. Also enforces that a trace
holds at least one "X" span — an empty trace artifact means the
instrumentation silently recorded nothing.
"""

import json
import sys

KNOWN_CATS = {"parse", "register", "sweep", "rpc", "eval", "action",
              "delivery", "epoch", "health", "fragment", "merge"}


def fail(path, msg):
    print(f"{path}: INVALID: {msg}")
    return 1


def validate(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or not JSON: {e}")

    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    if doc.get("displayTimeUnit") != "ms":
        return fail(path, "displayTimeUnit missing or not 'ms'")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(path, "traceEvents missing or not an array")

    spans = 0
    cats = set()
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            return fail(path, f"{where} is not an object")
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") not in ("process_name", "thread_name"):
                return fail(path, f"{where}: metadata name {ev.get('name')!r}")
            if not isinstance(ev.get("pid"), int):
                return fail(path, f"{where}: metadata pid missing")
            args = ev.get("args")
            if not isinstance(args, dict) or not isinstance(
                    args.get("name"), str):
                return fail(path, f"{where}: metadata args.name missing")
        elif ph == "X":
            spans += 1
            if not isinstance(ev.get("name"), str) or not ev["name"]:
                return fail(path, f"{where}: span name missing")
            cat = ev.get("cat")
            if not isinstance(cat, str) or cat not in KNOWN_CATS:
                return fail(path, f"{where}: unknown span category {cat!r}")
            cats.add(cat)
            for field in ("ts", "dur"):
                v = ev.get(field)
                if not isinstance(v, (int, float)) or isinstance(v, bool) \
                        or v < 0:
                    return fail(path, f"{where}: {field} must be a "
                                      f"non-negative number, got {v!r}")
            if not isinstance(ev.get("pid"), int):
                return fail(path, f"{where}: span pid missing")
            if not isinstance(ev.get("tid"), int):
                return fail(path, f"{where}: span tid missing")
        else:
            return fail(path, f"{where}: unexpected ph {ph!r}")

    if spans == 0:
        return fail(path, "no 'X' span events (empty trace artifact)")
    print(f"{path}: OK ({spans} spans across {len(cats)} categories: "
          f"{', '.join(sorted(cats))})")
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    rc = 0
    for path in argv[1:]:
        rc |= validate(path)
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
