#!/usr/bin/env python3
"""Schema validation for a MetricsRegistry JSON snapshot.

Hand-rolled (stdlib only) validator for the document
MetricsRegistry::write_json / QueryService::stats_json renders:

  * the whole document is one JSON object of nested objects;
  * every leaf is a number or a boolean (counters/gauges), except
    histogram leaves, which are objects holding at least
    {"count", "p50", "p99", "max"} (plus the optional bucket export);
  * object keys at every level are in sorted order — the determinism
    guarantee ("same counters in, same bytes out") depends on it;
  * the canonical system sections are present.

Usage: validate_metrics.py SNAPSHOT.json [SNAPSHOT2.json ...]
"""

import json
import sys

REQUIRED_SECTIONS = {"admission", "eval", "health", "network", "scan_broker",
                     "sessions"}
HISTOGRAM_KEYS = {"count", "p50", "p99", "max"}
# Present only in sharded snapshots: the reliable backplane's dispatcher
# counters and replay-buffer gauges (DESIGN.md §14). When a "net" section
# exists at all, these leaves must be under net.reliable.
RELIABLE_KEYS = {"calls", "attempts", "retries", "giveups",
                 "budget_exhausted", "replay_depth", "replay_hwm"}
# Shared-aggregate cache (DESIGN.md §15). Wherever an "agg_cache" section
# appears (engine-level "broker.agg_cache" or a worker's re-rooted
# "shard.N.broker.agg_cache"), it must carry the sharing counters; an
# "agg" section under any "eval" must carry the evaluation counters.
AGG_CACHE_KEYS = {"hits", "misses", "subsumptions", "live_windows"}
AGG_EVAL_KEYS = {"tuples_evaluated", "emissions", "panes_closed"}


def fail(path, msg):
    print(f"{path}: INVALID: {msg}")
    return 1


def is_histogram(node):
    return isinstance(node, dict) and HISTOGRAM_KEYS <= set(node)


def check_node(path, node, where):
    if is_histogram(node):
        for k in HISTOGRAM_KEYS:
            v = node[k]
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                return fail(path, f"{where}.{k}: histogram field must be a "
                                  f"number, got {v!r}")
        return 0
    if isinstance(node, dict):
        keys = list(node)
        if keys != sorted(keys):
            return fail(path, f"{where}: keys not sorted: {keys}")
        for k, v in node.items():
            rc = check_node(path, v, f"{where}.{k}")
            if rc:
                return rc
        return 0
    if isinstance(node, bool) or isinstance(node, (int, float)):
        return 0
    return fail(path, f"{where}: leaf must be number/bool/histogram, "
                      f"got {type(node).__name__}")


def check_agg_sections(path, node, where):
    """Recursively enforce the aggregate-cache schema; returns #violations."""
    if not isinstance(node, dict) or is_histogram(node):
        return 0
    rc = 0
    for k, v in node.items():
        if k == "agg_cache" and isinstance(v, dict):
            missing = AGG_CACHE_KEYS - set(v)
            if missing:
                rc += fail(path, f"{where}.{k} missing: {sorted(missing)}")
        if k == "eval" and isinstance(v, dict):
            agg = v.get("agg")
            if isinstance(agg, dict):
                missing = AGG_EVAL_KEYS - set(agg)
                if missing:
                    rc += fail(path,
                               f"{where}.{k}.agg missing: {sorted(missing)}")
        rc += check_agg_sections(path, v, f"{where}.{k}")
    return rc


def validate(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or not JSON: {e}")
    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    missing = REQUIRED_SECTIONS - set(doc)
    if missing:
        return fail(path, f"missing sections: {sorted(missing)}")
    if "net" in doc:
        reliable = doc["net"].get("reliable")
        if not isinstance(reliable, dict):
            return fail(path, "net section lacks a reliable subsection")
        missing = RELIABLE_KEYS - set(reliable)
        if missing:
            return fail(path, f"net.reliable missing: {sorted(missing)}")
    rc = check_node(path, doc, "$")
    if rc:
        return rc
    if check_agg_sections(path, doc, "$"):
        return 1
    print(f"{path}: OK ({len(doc)} top-level sections)")
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    rc = 0
    for path in argv[1:]:
        rc |= validate(path)
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
