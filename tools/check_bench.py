#!/usr/bin/env python3
"""Bench regression gate: compare bench result JSON against committed baselines.

Each baseline file (bench/baselines/*.json) names a results file and a list
of checks over dotted paths into it:

    {
      "results": "bench_shared_scan.json",
      "checks": [
        {"path": "saving_at_32", "min": 5.0},
        {"path": "sweep.5.shared.events", "equals": 736},
        {"path": "events_identical", "equals": true}
      ]
    }

Rules per check (any combination):
    min      value must be >= min
    max      value must be <= max
    equals   value must equal (numbers: within "tol", default 1e-9)

Path segments are object keys; integer segments index arrays
("sweep.5.shared.events" -> results["sweep"][5]["shared"]["events"]).

The bench workloads run in simulated time on a deterministic event loop,
so simulation-derived metrics are identical across machines — baselines
can pin them tightly. Wall-clock metrics (rows/sec) should only get
directional bounds, if gated at all.

Every rule of every check is evaluated (no first-mismatch-wins): after the
per-check log, failures are replayed as one aligned per-metric diff table
(results file, metric path, actual value, violated bound) so a regression
across many metrics reads as one table, not a scavenger hunt.

Exit code 0 when every check passes, 1 otherwise. Stdlib only.
"""

import argparse
import json
import os
import sys


def resolve(doc, path):
    node = doc
    for seg in path.split("."):
        if isinstance(node, list):
            try:
                node = node[int(seg)]
            except (ValueError, IndexError):
                raise KeyError(path)
        elif isinstance(node, dict):
            if seg not in node:
                raise KeyError(path)
            node = node[seg]
        else:
            raise KeyError(path)
    return node


def run_check(check, doc):
    """Returns (actual, [(rule-description, ok), ...]) — every min/max/equals
    rule is evaluated independently so a failure report can say exactly
    which bound broke, not just that one of them did."""
    path = check["path"]
    value = resolve(doc, path)
    rules = []
    is_num = isinstance(value, (int, float)) and not isinstance(value, bool)
    if "min" in check:
        rules.append((f">= {check['min']}", is_num and value >= check["min"]))
    if "max" in check:
        rules.append((f"<= {check['max']}", is_num and value <= check["max"]))
    if "equals" in check:
        want = check["equals"]
        if isinstance(want, bool) or isinstance(value, bool):
            ok = value is want
        elif isinstance(want, (int, float)) and isinstance(value, (int, float)):
            ok = abs(value - want) <= check.get("tol", 1e-9)
        else:
            ok = value == want
        rules.append((f"== {want!r}", ok))
    if not rules:
        raise ValueError(f"check for {path!r} has no min/max/equals rule")
    return value, rules


def print_diff_table(failures):
    """Aligned per-metric diff of every failed rule, printed after the full
    run so one glance shows the complete regression surface."""
    headers = ("results file", "metric", "actual", "expected")
    rows = [(f, p, a, e) for f, p, a, e in failures]
    widths = [max(len(headers[i]), max(len(r[i]) for r in rows))
              for i in range(4)]
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print("\nFailed checks:")
    print(line)
    print("  ".join("-" * w for w in widths))
    for r in rows:
        print("  ".join(r[i].ljust(widths[i]) for i in range(4)))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baselines", default="bench/baselines",
                    help="directory of baseline specs (default: %(default)s)")
    ap.add_argument("--results", default="results",
                    help="directory of bench result JSON (default: %(default)s)")
    args = ap.parse_args()

    specs = sorted(
        f for f in os.listdir(args.baselines) if f.endswith(".json"))
    if not specs:
        print(f"error: no baseline specs in {args.baselines}", file=sys.stderr)
        return 1

    failures = 0
    checks_run = 0
    failed_rows = []  # (results file, metric path, actual, expected)
    for spec_name in specs:
        with open(os.path.join(args.baselines, spec_name)) as f:
            spec = json.load(f)
        results_path = os.path.join(args.results, spec["results"])
        try:
            with open(results_path) as f:
                doc = json.load(f)
        except FileNotFoundError:
            print(f"FAIL {spec_name}: missing results file {results_path}")
            failures += 1
            continue
        except json.JSONDecodeError as e:
            print(f"FAIL {spec_name}: invalid JSON in {results_path}: {e}")
            failures += 1
            continue

        for check in spec["checks"]:
            checks_run += 1
            try:
                value, rules = run_check(check, doc)
            except KeyError:
                print(f"FAIL {spec['results']} :: {check['path']}: "
                      f"path not found")
                failed_rows.append((spec["results"], check["path"],
                                    "<path not found>", "present"))
                failures += 1
                continue
            ok = all(rule_ok for _, rule_ok in rules)
            status = "ok  " if ok else "FAIL"
            print(f"{status} {spec['results']} :: {check['path']} = "
                  f"{value!r} (want "
                  f"{' and '.join(rule for rule, _ in rules)})")
            if not ok:
                failures += 1
                for rule, rule_ok in rules:
                    if not rule_ok:
                        failed_rows.append((spec["results"], check["path"],
                                            repr(value), rule))

    if failed_rows:
        print_diff_table(failed_rows)
    print(f"\n{checks_run} check(s), {failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
