// Tests for the extension features: lock acquisition timeouts, SHOW
// statements, and the door-lock device type registered purely through the
// public extension points (Section 8 future work).
#include <gtest/gtest.h>

#include "core/aorta.h"
#include "devices/smart_lock.h"

namespace aorta {
namespace {

using util::Duration;

// ------------------------------------------------------ lock_with_timeout

struct LockTimeoutFixture : public ::testing::Test {
  LockTimeoutFixture() : loop(&clock), locks(&loop) {}
  util::SimClock clock;
  util::EventLoop loop;
  sync::LockManager locks;
};

TEST_F(LockTimeoutFixture, GrantsImmediatelyWhenFree) {
  bool granted = false;
  locks.lock_with_timeout("cam1", "a", Duration::seconds(1),
                          [&](util::Status s) { granted = s.is_ok(); });
  loop.run_all();
  EXPECT_TRUE(granted);
  EXPECT_TRUE(locks.is_locked("cam1"));
}

TEST_F(LockTimeoutFixture, TimesOutWhenHeldTooLong) {
  ASSERT_TRUE(locks.try_lock("cam1", "holder"));
  bool timed_out = false;
  locks.lock_with_timeout("cam1", "waiter", Duration::millis(500),
                          [&](util::Status s) {
                            timed_out = s.code() == util::StatusCode::kTimeout;
                          });
  loop.run_all();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(locks.stats().wait_timeouts, 1u);
  EXPECT_EQ(locks.queue_depth("cam1"), 0u);  // waiter removed
  // The holder still owns the lock; a later unlock works normally.
  EXPECT_TRUE(locks.unlock("cam1", "holder").is_ok());
}

TEST_F(LockTimeoutFixture, GrantBeforeDeadlineCancelsTimeout) {
  ASSERT_TRUE(locks.try_lock("cam1", "holder"));
  bool granted = false;
  locks.lock_with_timeout("cam1", "waiter", Duration::seconds(10),
                          [&](util::Status s) { granted = s.is_ok(); });
  loop.run_for(Duration::millis(100));
  ASSERT_TRUE(locks.unlock("cam1", "holder").is_ok());
  loop.run_all();  // includes the (cancelled) timeout's slot
  EXPECT_TRUE(granted);
  EXPECT_EQ(locks.stats().wait_timeouts, 0u);
  ASSERT_NE(locks.holder("cam1"), nullptr);
  EXPECT_EQ(*locks.holder("cam1"), "waiter");
}

TEST_F(LockTimeoutFixture, MixedWaitersKeepFifoOrder) {
  ASSERT_TRUE(locks.try_lock("cam1", "holder"));
  std::vector<std::string> grants;
  locks.lock("cam1", "plain", [&]() { grants.push_back("plain"); });
  locks.lock_with_timeout("cam1", "timed", Duration::seconds(60),
                          [&](util::Status s) {
                            if (s.is_ok()) grants.push_back("timed");
                          });
  ASSERT_TRUE(locks.unlock("cam1", "holder").is_ok());
  loop.run_for(Duration::millis(10));  // do not run into the 60 s deadline
  ASSERT_EQ(grants.size(), 1u);  // "plain" first (FIFO), still holding
  ASSERT_TRUE(locks.unlock("cam1", "plain").is_ok());
  loop.run_for(Duration::millis(10));
  EXPECT_EQ(grants, (std::vector<std::string>{"plain", "timed"}));
  ASSERT_TRUE(locks.unlock("cam1", "timed").is_ok());
}

TEST_F(LockTimeoutFixture, TimedOutWaiterDoesNotReceiveLaterGrant) {
  ASSERT_TRUE(locks.try_lock("cam1", "holder"));
  int calls = 0;
  locks.lock_with_timeout("cam1", "waiter", Duration::millis(100),
                          [&](util::Status) { ++calls; });
  loop.run_for(Duration::millis(200));  // timeout fires
  ASSERT_TRUE(locks.unlock("cam1", "holder").is_ok());
  loop.run_all();
  EXPECT_EQ(calls, 1);                      // exactly once
  EXPECT_FALSE(locks.is_locked("cam1"));    // nothing left to grant
}

// ------------------------------------------------------------ SHOW verbs

struct ShowFixture : public ::testing::Test {
  ShowFixture() : sys(core::Config{}) {
    (void)sys.add_camera("cam1", "10.0.0.1", {{0, 0, 3}, 0.0});
    (void)sys.add_mote("mote1", {1, 1, 1});
  }
  core::Aorta sys;
};

TEST_F(ShowFixture, ShowDevicesListsEveryDevice) {
  auto r = sys.exec("SHOW DEVICES");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  ASSERT_EQ(r->rows.size(), 2u);
  std::set<std::string> ids;
  for (const auto& row : r->rows) {
    for (const auto& [column, value] : row) {
      if (column == "id") ids.insert(std::get<std::string>(value));
    }
  }
  EXPECT_TRUE(ids.count("cam1"));
  EXPECT_TRUE(ids.count("mote1"));
}

TEST_F(ShowFixture, ShowActionsListsBuiltins) {
  auto r = sys.exec("SHOW ACTIONS");
  ASSERT_TRUE(r.is_ok());
  std::set<std::string> names;
  for (const auto& row : r->rows) {
    for (const auto& [column, value] : row) {
      if (column == "name") names.insert(std::get<std::string>(value));
    }
  }
  EXPECT_TRUE(names.count("photo"));
  EXPECT_TRUE(names.count("sendphoto"));
  EXPECT_TRUE(names.count("beep"));
  EXPECT_TRUE(names.count("blink"));
}

TEST_F(ShowFixture, ShowQueriesTracksRegistrations) {
  auto empty = sys.exec("SHOW QUERIES");
  ASSERT_TRUE(empty.is_ok());
  EXPECT_TRUE(empty->rows.empty());

  ASSERT_TRUE(sys.exec("CREATE AQ q AS SELECT s.id FROM sensor s "
                       "WHERE s.accel_x > 500")
                  .is_ok());
  auto one = sys.exec("SHOW QUERIES");
  ASSERT_TRUE(one.is_ok());
  ASSERT_EQ(one->rows.size(), 1u);

  ASSERT_TRUE(sys.exec("DROP AQ q").is_ok());
  auto gone = sys.exec("SHOW QUERIES");
  ASSERT_TRUE(gone.is_ok());
  EXPECT_TRUE(gone->rows.empty());
}

TEST_F(ShowFixture, ShowRejectsUnknownTarget) {
  EXPECT_FALSE(sys.exec("SHOW TABLES").is_ok());
  EXPECT_FALSE(sys.exec("SHOW").is_ok());
}

// --------------------------------------------------- door lock extension

// The example's comm module, reproduced here to exercise the extension
// path under test.
class DoorLockComm : public comm::CommModule {
 public:
  DoorLockComm(device::DeviceRegistry* registry, comm::EngineNode* engine)
      : CommModule(registry, engine, devices::SmartLock::kTypeId) {}

  void engage(const device::DeviceId& id,
              std::function<void(util::Status)> done) {
    request(id, "engage", {}, default_timeout(),
            [done = std::move(done)](util::Result<net::Message> reply) {
              if (!reply.is_ok()) {
                done(reply.status());
              } else if (reply.value().field("ok") != "1") {
                done(util::action_failed_error(reply.value().field("error")));
              } else {
                done(util::Status::ok());
              }
            });
  }
};

struct DoorLockFixture : public ::testing::Test {
  DoorLockFixture() : sys(core::Config{.seed = 9}) {
    EXPECT_TRUE(
        sys.registry().register_type(devices::doorlock_type_info()).is_ok());
    auto module = std::make_unique<DoorLockComm>(&sys.registry(),
                                                 &sys.comm().engine());
    doorlock_comm = module.get();
    sys.comm().register_module(std::move(module));

    query::ActionDef def;
    def.name = "engage_lock";
    def.params = {{device::AttrType::kString, "lock_id"}};
    def.device_type = devices::SmartLock::kTypeId;
    def.binding_param = 0;
    def.binding_attr = "id";
    device::ActionProfile profile("engage_lock", devices::SmartLock::kTypeId,
                                  device::ActionProfileNode::op("engage"));
    def.cost_model = query::ProfileCostModel::from_profile(
        profile, devices::doorlock_type_info().op_costs);
    def.profile = std::move(profile);
    DoorLockComm* module_ptr = doorlock_comm;
    def.impl = [module_ptr](const device::DeviceId& device,
                            const std::vector<device::Value>&,
                            std::function<void(util::Result<sched::ActionOutcome>)>
                                done) {
      module_ptr->engage(device, [done = std::move(done)](util::Status s) {
        if (!s.is_ok()) {
          done(util::Result<sched::ActionOutcome>(s));
          return;
        }
        sched::ActionOutcome out;
        out.ok = true;
        done(out);
      });
    };
    EXPECT_TRUE(sys.catalog().register_action(std::move(def)).is_ok());
  }

  devices::SmartLock* add_lock(const std::string& id, device::Location loc) {
    auto lock = std::make_unique<devices::SmartLock>(id, loc);
    lock->reliability().glitch_prob = 0.0;
    devices::SmartLock* raw = lock.get();
    EXPECT_TRUE(sys.registry().add(std::move(lock)).is_ok());
    return raw;
  }

  core::Aorta sys;
  DoorLockComm* doorlock_comm = nullptr;
};

TEST_F(DoorLockFixture, ModuleResolvableThroughCommLayer) {
  EXPECT_EQ(sys.comm().module_for("doorlock"), doorlock_comm);
}

TEST_F(DoorLockFixture, NewVirtualTableQueryable) {
  add_lock("lock1", {1, 2, 0});
  add_lock("lock2", {5, 5, 0});
  auto rows = sys.exec("SELECT l.id, l.engaged, l.battery_v FROM doorlock l");
  ASSERT_TRUE(rows.is_ok()) << rows.status().to_string();
  EXPECT_EQ(rows->rows.size(), 2u);
}

TEST_F(DoorLockFixture, ActionEmbeddedQueryDrivesTheNewDevice) {
  (void)sys.add_mote("door_mote", {1, 1, 1});
  sys.mote("door_mote")->reliability().glitch_prob = 0.0;
  auto link = net::LinkModel::mote_radio();
  link.loss_prob = 0.0;
  ASSERT_TRUE(sys.network().set_link("door_mote", link).is_ok());
  devices::SmartLock* lock = add_lock("lock1", {1, 0, 1});

  auto script = std::make_unique<devices::ScriptedSignal>(0.0);
  script->add_spike(util::TimePoint::from_micros(10'000'000),
                    util::Duration::seconds(2), 900.0);
  (void)sys.mote("door_mote")->set_signal("accel_x", std::move(script));

  ASSERT_TRUE(sys.exec("CREATE AQ lockdown AS SELECT engage_lock(l.id) "
                       "FROM sensor s, doorlock l "
                       "WHERE s.accel_x > 500 AND distance(l.loc, s.loc) < 5")
                  .is_ok());
  sys.run_for(util::Duration::seconds(60));

  EXPECT_TRUE(lock->is_engaged());
  EXPECT_EQ(lock->transitions(), 1u);
  EXPECT_EQ(sys.action_stats("lockdown").usable, 1u);
}

TEST_F(DoorLockFixture, ProbingCoversTheNewTypeToo) {
  devices::SmartLock* lock = add_lock("lock1", {1, 1, 0});
  bool alive = false;
  sys.prober().probe("lock1", [&](util::Result<sync::ProbeInfo> info) {
    alive = info.is_ok();
    if (info.is_ok()) {
      EXPECT_DOUBLE_EQ(info.value().status.at("engaged"), 0.0);
    }
  });
  sys.run_for(util::Duration::seconds(5));
  EXPECT_TRUE(alive);

  lock->set_online(false);
  bool dead = false;
  sys.prober().probe("lock1", [&](util::Result<sync::ProbeInfo> info) {
    dead = !info.is_ok();
  });
  sys.run_for(util::Duration::seconds(5));
  EXPECT_TRUE(dead);
}

}  // namespace
}  // namespace aorta
