// Scripted fault plans: XML parsing/validation, round-tripping, and the
// deterministic execution of crash/revive, partition/heal and loss/glitch
// spikes through Aorta::apply_fault_plan.
#include <gtest/gtest.h>

#include "core/aorta.h"
#include "devices/mote.h"
#include "shard/plane.h"
#include "util/fault_plan.h"

namespace aorta {
namespace {

using util::Duration;
using util::FaultEvent;
using util::FaultPlan;

TEST(FaultPlanTest, ParsesAllKindsAndSortsByTime) {
  auto plan = FaultPlan::from_xml(
      "<fault_plan>"
      "<event at=\"40\" kind=\"revive\" device=\"m1\"/>"
      "<event at=\"10\" kind=\"crash\" device=\"m1\"/>"
      "<event at=\"15\" kind=\"partition\" device=\"m2\"/>"
      "<event at=\"25\" kind=\"heal\" device=\"m2\"/>"
      "<event at=\"50\" kind=\"loss\" device=\"m2\" prob=\"0.9\" for=\"10\"/>"
      "<event at=\"60\" kind=\"glitch\" device=\"c1\" prob=\"0.5\" for=\"5\"/>"
      "</fault_plan>");
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  const std::vector<FaultEvent>& ev = plan.value().events;
  ASSERT_EQ(ev.size(), 6u);
  // Sorted by at_s regardless of document order.
  EXPECT_EQ(ev[0].kind, FaultEvent::Kind::kCrash);
  EXPECT_DOUBLE_EQ(ev[0].at_s, 10.0);
  EXPECT_EQ(ev[0].target, "m1");
  EXPECT_EQ(ev[1].kind, FaultEvent::Kind::kPartition);
  EXPECT_EQ(ev[2].kind, FaultEvent::Kind::kHeal);
  EXPECT_EQ(ev[3].kind, FaultEvent::Kind::kRevive);
  EXPECT_EQ(ev[4].kind, FaultEvent::Kind::kLossSpike);
  EXPECT_DOUBLE_EQ(ev[4].prob, 0.9);
  EXPECT_DOUBLE_EQ(ev[4].for_s, 10.0);
  EXPECT_EQ(ev[5].kind, FaultEvent::Kind::kGlitchSpike);
}

TEST(FaultPlanTest, ShardTargetedEventsParseAndRoundTrip) {
  auto plan = FaultPlan::from_xml(
      "<fault_plan>"
      "<event at=\"10\" kind=\"crash\" shard=\"1\"/>"
      "<event at=\"20\" kind=\"revive\" shard=\"1\"/>"
      "<event at=\"30\" kind=\"partition\" shard=\"0\"/>"
      "<event at=\"40\" kind=\"heal\" shard=\"0\"/>"
      "</fault_plan>");
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  const std::vector<FaultEvent>& ev = plan.value().events;
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev[0].shard, 1);
  EXPECT_TRUE(ev[0].target.empty());
  EXPECT_EQ(ev[2].shard, 0);

  auto again = FaultPlan::from_xml(plan.value().to_xml());
  ASSERT_TRUE(again.is_ok()) << again.status().to_string();
  ASSERT_EQ(again.value().events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(again.value().events[i].shard, ev[i].shard);
    EXPECT_EQ(again.value().events[i].kind, ev[i].kind);
  }
}

TEST(FaultPlanTest, RejectsMalformedShardEvents) {
  auto bad = [](const std::string& body) {
    auto r = FaultPlan::from_xml("<fault_plan>" + body + "</fault_plan>");
    EXPECT_FALSE(r.is_ok()) << body;
  };
  // Exactly one of device/shard; spikes are link/device-level only.
  bad("<event at=\"1\" kind=\"crash\" device=\"m1\" shard=\"0\"/>");
  bad("<event at=\"1\" kind=\"loss\" shard=\"0\" prob=\"0.5\" for=\"2\"/>");
  bad("<event at=\"1\" kind=\"glitch\" shard=\"0\" prob=\"0.5\" for=\"2\"/>");
  bad("<event at=\"1\" kind=\"crash\" shard=\"-2\"/>");
  bad("<event at=\"1\" kind=\"crash\" shard=\"x\"/>");
}

TEST(FaultPlanTest, BackplaneVerbsParseAndRoundTrip) {
  auto plan = FaultPlan::from_xml(
      "<fault_plan>"
      "<event at=\"5\" kind=\"duplicate\" device=\"czar\" factor=\"1.5\""
      " for=\"10\"/>"
      "<event at=\"6\" kind=\"reorder\" device=\"shard-0\" prob=\"0.3\""
      " window=\"0.004\" for=\"10\"/>"
      "<event at=\"7\" kind=\"delay\" device=\"shard-1\" add=\"0.002\""
      " for=\"10\"/>"
      "<event at=\"8\" kind=\"reorder\" shard=\"1\" prob=\"0.2\""
      " window=\"0.01\" for=\"2\"/>"
      "</fault_plan>");
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  const std::vector<FaultEvent>& ev = plan.value().events;
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev[0].kind, FaultEvent::Kind::kDuplicateSpike);
  EXPECT_DOUBLE_EQ(ev[0].factor, 1.5);
  EXPECT_EQ(ev[1].kind, FaultEvent::Kind::kReorderSpike);
  EXPECT_DOUBLE_EQ(ev[1].prob, 0.3);
  EXPECT_DOUBLE_EQ(ev[1].window_s, 0.004);
  EXPECT_EQ(ev[2].kind, FaultEvent::Kind::kDelaySpike);
  EXPECT_DOUBLE_EQ(ev[2].add_s, 0.002);
  EXPECT_EQ(ev[3].shard, 1);  // backplane verbs may target a shard

  auto again = FaultPlan::from_xml(plan.value().to_xml());
  ASSERT_TRUE(again.is_ok()) << again.status().to_string();
  ASSERT_EQ(again.value().events.size(), 4u);
  EXPECT_DOUBLE_EQ(again.value().events[0].factor, 1.5);
  EXPECT_DOUBLE_EQ(again.value().events[1].window_s, 0.004);
  EXPECT_DOUBLE_EQ(again.value().events[2].add_s, 0.002);
  EXPECT_EQ(again.value().events[3].shard, 1);
}

TEST(FaultPlanTest, RejectsMalformedBackplaneVerbs) {
  auto bad = [](const std::string& body) {
    auto r = FaultPlan::from_xml("<fault_plan>" + body + "</fault_plan>");
    EXPECT_FALSE(r.is_ok()) << body;
  };
  // duplicate: factor must be >= 1 and present.
  bad("<event at=\"1\" kind=\"duplicate\" device=\"czar\" factor=\"0.5\""
      " for=\"2\"/>");
  bad("<event at=\"1\" kind=\"duplicate\" device=\"czar\" for=\"2\"/>");
  // reorder: window must be > 0; prob bounded like loss.
  bad("<event at=\"1\" kind=\"reorder\" device=\"czar\" prob=\"0.3\""
      " window=\"0\" for=\"2\"/>");
  bad("<event at=\"1\" kind=\"reorder\" device=\"czar\" prob=\"1.5\""
      " window=\"0.01\" for=\"2\"/>");
  // delay: negative add rejected.
  bad("<event at=\"1\" kind=\"delay\" device=\"czar\" add=\"-0.001\""
      " for=\"2\"/>");
  // All spikes need a positive duration.
  bad("<event at=\"1\" kind=\"delay\" device=\"czar\" add=\"0.001\"/>");
}

TEST(FaultPlanTest, RejectsMalformedPlans) {
  auto bad = [](const std::string& body) {
    auto r = FaultPlan::from_xml("<fault_plan>" + body + "</fault_plan>");
    EXPECT_FALSE(r.is_ok()) << body;
  };
  bad("<event at=\"1\" kind=\"meteor\" device=\"m1\"/>");      // unknown kind
  bad("<event at=\"1\" kind=\"crash\"/>");                     // no device
  bad("<event at=\"-1\" kind=\"crash\" device=\"m1\"/>");      // negative at
  bad("<event at=\"1\" kind=\"loss\" device=\"m1\" prob=\"1.5\" for=\"2\"/>");
  bad("<event at=\"1\" kind=\"loss\" device=\"m1\" prob=\"0.5\"/>");  // no for
  bad("<event at=\"x\" kind=\"crash\" device=\"m1\"/>");       // non-numeric
  EXPECT_FALSE(FaultPlan::from_xml("<wrong_root/>").is_ok());
}

TEST(FaultPlanTest, RoundTripsThroughXml) {
  auto plan = FaultPlan::from_xml(
      "<fault_plan>"
      "<event at=\"10\" kind=\"crash\" device=\"m1\"/>"
      "<event at=\"50\" kind=\"loss\" device=\"m2\" prob=\"0.25\" for=\"10\"/>"
      "</fault_plan>");
  ASSERT_TRUE(plan.is_ok());
  auto again = FaultPlan::from_xml(plan.value().to_xml());
  ASSERT_TRUE(again.is_ok()) << again.status().to_string();
  ASSERT_EQ(again.value().events.size(), plan.value().events.size());
  for (std::size_t i = 0; i < again.value().events.size(); ++i) {
    EXPECT_EQ(again.value().events[i].kind, plan.value().events[i].kind);
    EXPECT_EQ(again.value().events[i].target, plan.value().events[i].target);
    EXPECT_DOUBLE_EQ(again.value().events[i].at_s,
                     plan.value().events[i].at_s);
    EXPECT_DOUBLE_EQ(again.value().events[i].prob,
                     plan.value().events[i].prob);
  }
}

// ---------------------------------------------------------- apply + run

struct FaultPlanSystemFixture : public ::testing::Test {
  FaultPlanSystemFixture() {
    core::Config cfg;
    cfg.seed = 4;
    sys = std::make_unique<core::Aorta>(cfg);
    EXPECT_TRUE(sys->add_mote("m1", {1, 0, 1}).is_ok());
    sys->mote("m1")->reliability().glitch_prob = 0.0;
  }

  FaultPlan parse(const std::string& xml) {
    auto plan = FaultPlan::from_xml(xml);
    EXPECT_TRUE(plan.is_ok()) << plan.status().to_string();
    return plan.is_ok() ? std::move(plan).value() : FaultPlan{};
  }

  std::unique_ptr<core::Aorta> sys;
};

TEST_F(FaultPlanSystemFixture, ApplyValidatesTargetsUpFront) {
  FaultPlan plan = parse(
      "<fault_plan><event at=\"1\" kind=\"crash\" device=\"ghost\"/>"
      "</fault_plan>");
  util::Status s = sys->apply_fault_plan(plan);
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), util::StatusCode::kNotFound);

  FaultPlan plan2 = parse(
      "<fault_plan><event at=\"1\" kind=\"partition\" device=\"nowhere\"/>"
      "</fault_plan>");
  EXPECT_FALSE(sys->apply_fault_plan(plan2).is_ok());

  // Backplane verbs validate their endpoint up front too.
  FaultPlan plan3 = parse(
      "<fault_plan><event at=\"1\" kind=\"duplicate\" device=\"ghost\""
      " factor=\"2\" for=\"1\"/></fault_plan>");
  util::Status s3 = sys->apply_fault_plan(plan3);
  EXPECT_FALSE(s3.is_ok());
  EXPECT_EQ(s3.code(), util::StatusCode::kNotFound);
}

TEST_F(FaultPlanSystemFixture, CrashAndReviveToggleTheDevice) {
  FaultPlan plan = parse(
      "<fault_plan>"
      "<event at=\"2\" kind=\"crash\" device=\"m1\"/>"
      "<event at=\"5\" kind=\"revive\" device=\"m1\"/>"
      "</fault_plan>");
  ASSERT_TRUE(sys->apply_fault_plan(plan).is_ok());
  EXPECT_TRUE(sys->mote("m1")->online());
  sys->run_for(Duration::seconds(3));
  EXPECT_FALSE(sys->mote("m1")->online());
  sys->run_for(Duration::seconds(3));
  EXPECT_TRUE(sys->mote("m1")->online());
}

TEST_F(FaultPlanSystemFixture, PartitionAndHealDriveTheLink) {
  FaultPlan plan = parse(
      "<fault_plan>"
      "<event at=\"1\" kind=\"partition\" device=\"m1\"/>"
      "<event at=\"4\" kind=\"heal\" device=\"m1\"/>"
      "</fault_plan>");
  ASSERT_TRUE(sys->apply_fault_plan(plan).is_ok());
  sys->run_for(Duration::seconds(2));
  EXPECT_TRUE(sys->network().is_partitioned("m1"));
  sys->run_for(Duration::seconds(3));
  EXPECT_FALSE(sys->network().is_partitioned("m1"));
}

TEST_F(FaultPlanSystemFixture, LossSpikeRestoresTheOriginalLink) {
  // Loss spikes ride the chaos field (drawn from the network's isolated
  // chaos RNG stream), leaving the link's base loss_prob untouched so the
  // main RNG stream never shifts.
  const net::LinkModel* before = sys->network().link("m1");
  ASSERT_NE(before, nullptr);
  const double base_loss = before->loss_prob;
  FaultPlan plan = parse(
      "<fault_plan>"
      "<event at=\"1\" kind=\"loss\" device=\"m1\" prob=\"0.99\" for=\"3\"/>"
      "</fault_plan>");
  ASSERT_TRUE(sys->apply_fault_plan(plan).is_ok());
  sys->run_for(Duration::seconds(2));
  EXPECT_DOUBLE_EQ(sys->network().link("m1")->chaos_loss_prob, 0.99);
  EXPECT_DOUBLE_EQ(sys->network().link("m1")->loss_prob, base_loss);
  sys->run_for(Duration::seconds(3));
  EXPECT_DOUBLE_EQ(sys->network().link("m1")->chaos_loss_prob, 0.0);
  EXPECT_DOUBLE_EQ(sys->network().link("m1")->loss_prob, base_loss);
}

TEST_F(FaultPlanSystemFixture, BackplaneVerbsSpikeAndRestoreChaosFields) {
  FaultPlan plan = parse(
      "<fault_plan>"
      "<event at=\"1\" kind=\"duplicate\" device=\"m1\" factor=\"1.5\""
      " for=\"3\"/>"
      "<event at=\"1\" kind=\"reorder\" device=\"m1\" prob=\"0.3\""
      " window=\"0.004\" for=\"3\"/>"
      "<event at=\"1\" kind=\"delay\" device=\"m1\" add=\"0.002\" for=\"3\"/>"
      "</fault_plan>");
  ASSERT_TRUE(sys->apply_fault_plan(plan).is_ok());
  sys->run_for(Duration::seconds(2));
  const net::LinkModel* spiked = sys->network().link("m1");
  ASSERT_NE(spiked, nullptr);
  EXPECT_DOUBLE_EQ(spiked->chaos_dup_factor, 1.5);
  EXPECT_DOUBLE_EQ(spiked->chaos_reorder_prob, 0.3);
  EXPECT_DOUBLE_EQ(spiked->chaos_reorder_window_s, 0.004);
  EXPECT_DOUBLE_EQ(spiked->chaos_delay_s, 0.002);
  sys->run_for(Duration::seconds(3));
  const net::LinkModel* restored = sys->network().link("m1");
  EXPECT_DOUBLE_EQ(restored->chaos_dup_factor, 1.0);
  EXPECT_DOUBLE_EQ(restored->chaos_reorder_prob, 0.0);
  EXPECT_DOUBLE_EQ(restored->chaos_delay_s, 0.0);
  EXPECT_FALSE(restored->has_chaos());
}

TEST_F(FaultPlanSystemFixture, GlitchSpikeRestoresDeviceReliability) {
  FaultPlan plan = parse(
      "<fault_plan>"
      "<event at=\"1\" kind=\"glitch\" device=\"m1\" prob=\"0.8\" for=\"2\"/>"
      "</fault_plan>");
  ASSERT_TRUE(sys->apply_fault_plan(plan).is_ok());
  sys->run_for(Duration::seconds(2));
  EXPECT_DOUBLE_EQ(sys->mote("m1")->reliability().glitch_prob, 0.8);
  sys->run_for(Duration::seconds(2));
  EXPECT_DOUBLE_EQ(sys->mote("m1")->reliability().glitch_prob, 0.0);
}

TEST_F(FaultPlanSystemFixture, UnshardedSystemRejectsShardEvents) {
  FaultPlan plan = parse(
      "<fault_plan><event at=\"1\" kind=\"crash\" shard=\"0\"/>"
      "</fault_plan>");
  util::Status s = sys->apply_fault_plan(plan);
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("no sharded plane"), std::string::npos);
}

// A shard-targeted crash/revive pair through Plane::apply_fault_plan
// takes one worker off the network and brings it back; the czar's
// supervision marks the shard down in between (the bench_chaos scenario).
TEST(FaultPlanShardTest, ShardCrashIsRewrittenToWorkerPartition) {
  core::Config cfg;
  cfg.seed = 4;
  core::Aorta sys(cfg);
  shard::Plane plane(&sys, shard::Plane::Options{.num_shards = 2});
  for (int i = 0; i < 4; ++i) {
    std::string id = "m" + std::to_string(i);
    ASSERT_TRUE(plane.add_mote(id, {double(i), 0, 1}).is_ok());
  }

  auto parsed = FaultPlan::from_xml(
      "<fault_plan>"
      "<event at=\"2\" kind=\"crash\" shard=\"0\"/>"
      "<event at=\"10\" kind=\"revive\" shard=\"0\"/>"
      "</fault_plan>");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();

  // Bounds are validated against the plane's own shard count.
  auto oob = FaultPlan::from_xml(
      "<fault_plan><event at=\"1\" kind=\"crash\" shard=\"7\"/>"
      "</fault_plan>");
  ASSERT_TRUE(oob.is_ok());
  EXPECT_FALSE(plane.apply_fault_plan(oob.value()).is_ok());

  ASSERT_TRUE(plane.apply_fault_plan(parsed.value()).is_ok());
  sys.run_for(Duration::seconds(1));
  EXPECT_FALSE(sys.network().is_partitioned("shard-0"));
  sys.run_for(Duration::seconds(5));  // crash fired, heartbeats silent
  EXPECT_TRUE(sys.network().is_partitioned("shard-0"));
  EXPECT_FALSE(plane.czar().worker_live(0));
  EXPECT_TRUE(plane.czar().worker_live(1));
  sys.run_for(Duration::seconds(6));  // revive fired, first heartbeat back
  EXPECT_FALSE(sys.network().is_partitioned("shard-0"));
  EXPECT_TRUE(plane.czar().worker_live(0));
}

TEST_F(FaultPlanSystemFixture, PlansCompose) {
  FaultPlan a = parse(
      "<fault_plan><event at=\"1\" kind=\"crash\" device=\"m1\"/>"
      "</fault_plan>");
  FaultPlan b = parse(
      "<fault_plan><event at=\"2\" kind=\"revive\" device=\"m1\"/>"
      "</fault_plan>");
  ASSERT_TRUE(sys->apply_fault_plan(a).is_ok());
  ASSERT_TRUE(sys->apply_fault_plan(b).is_ok());
  sys->run_for(Duration::seconds(1.5));
  EXPECT_FALSE(sys->mote("m1")->online());
  sys->run_for(Duration::seconds(1));
  EXPECT_TRUE(sys->mote("m1")->online());
}

}  // namespace
}  // namespace aorta
