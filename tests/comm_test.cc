// Tests for the uniform data communication layer: schemas/tuples, the
// basic communication methods, and the scan operators over virtual tables.
#include <gtest/gtest.h>

#include "comm/scan_operator.h"
#include "devices/camera.h"
#include "devices/mote.h"
#include "devices/phone.h"

namespace aorta {
namespace {

using device::Value;
using util::Duration;

// ---------------------------------------------------------- schema/tuple

TEST(SchemaTest, FromCatalogPreservesOrderAndSensoryFlags) {
  comm::Schema schema = comm::Schema::from_catalog(
      devices::sensor_type_info().catalog);
  EXPECT_EQ(schema.table_name(), "sensor");
  ASSERT_GE(schema.size(), 5u);
  EXPECT_EQ(schema.fields()[0].name, "id");
  EXPECT_FALSE(schema.fields()[0].sensory);
  ASSERT_TRUE(schema.index_of("accel_x").has_value());
  EXPECT_TRUE(schema.field("accel_x")->sensory);
  EXPECT_FALSE(schema.index_of("nonexistent").has_value());
  EXPECT_EQ(schema.field("nonexistent"), nullptr);
}

TEST(TupleTest, GetSetByNameAndIndex) {
  comm::Schema schema("t", {{"a", device::AttrType::kDouble, true},
                            {"b", device::AttrType::kString, false}});
  comm::Tuple tuple(&schema, "dev1");
  EXPECT_EQ(tuple.source_device(), "dev1");
  // Unset values are NULL.
  EXPECT_TRUE(std::holds_alternative<std::monostate>(tuple.get("a")));
  tuple.set_by_name("a", Value{1.5});
  tuple.set(1, Value{std::string("x")});
  EXPECT_TRUE(device::value_equal(tuple.get("a"), Value{1.5}));
  EXPECT_TRUE(device::value_equal(tuple.at(1), Value{std::string("x")}));
  // Unknown names are NULL / ignored.
  EXPECT_TRUE(std::holds_alternative<std::monostate>(tuple.get("zzz")));
  tuple.set_by_name("zzz", Value{2.0});  // no crash
  EXPECT_NE(tuple.to_string().find("a=1.5"), std::string::npos);
}

TEST(TupleTest, UnknownNameReturnsNullSentinel) {
  comm::Schema schema("t", {{"a", device::AttrType::kDouble, true}});
  comm::Tuple tuple(&schema, "dev1");
  tuple.set(0, Value{3.0});
  // Unknown names resolve to the shared NULL sentinel, which callers can
  // identify by address. Known names never alias it.
  EXPECT_EQ(&tuple.get("nope"), &comm::Tuple::null_sentinel());
  EXPECT_NE(&tuple.get("a"), &comm::Tuple::null_sentinel());
  EXPECT_TRUE(
      std::holds_alternative<std::monostate>(comm::Tuple::null_sentinel()));
  // A schema-less tuple resolves every name to the sentinel.
  comm::Tuple bare(nullptr, "dev2");
  EXPECT_EQ(&bare.get("a"), &comm::Tuple::null_sentinel());
  // The sentinel is a distinct object per process, not per call.
  EXPECT_EQ(&comm::Tuple::null_sentinel(), &comm::Tuple::null_sentinel());
}

// ---------------------------------------------------------------- fixture

struct CommFixture : public ::testing::Test {
  CommFixture()
      : loop(&clock),
        network(&loop, util::Rng(1)),
        registry(&network, &loop, util::Rng(2)),
        comm(&registry, &network) {
    (void)registry.register_type(devices::camera_type_info());
    (void)registry.register_type(devices::sensor_type_info());
    (void)registry.register_type(devices::phone_type_info());
  }

  devices::Mica2Mote* add_mote(const std::string& id, double temp = 20.0) {
    auto mote = std::make_unique<devices::Mica2Mote>(
        id, device::Location{1, 2, 3});
    mote->reliability().glitch_prob = 0.0;
    (void)mote->set_signal("temp", devices::constant_signal(temp));
    devices::Mica2Mote* raw = mote.get();
    EXPECT_TRUE(registry.add(std::move(mote)).is_ok());
    (void)network.set_link(id, net::LinkModel::perfect());
    return raw;
  }

  util::SimClock clock;
  util::EventLoop loop;
  net::Network network;
  device::DeviceRegistry registry;
  comm::CommLayer comm;
};

// ------------------------------------------------------------ comm layer

TEST_F(CommFixture, ModuleLookupByDeviceType) {
  EXPECT_EQ(comm.module_for("camera"), &comm.camera());
  EXPECT_EQ(comm.module_for("sensor"), &comm.mote());
  EXPECT_EQ(comm.module_for("phone"), &comm.phone());
  EXPECT_EQ(comm.module_for("toaster"), nullptr);
}

TEST_F(CommFixture, ConnectEstablishesLogicalSession) {
  add_mote("m1");
  bool connected = false;
  comm.mote().connect("m1", [&](util::Status s) { connected = s.is_ok(); });
  loop.run_all();
  EXPECT_TRUE(connected);
  EXPECT_TRUE(comm.mote().is_connected("m1"));
  comm.mote().close("m1");
  EXPECT_FALSE(comm.mote().is_connected("m1"));
}

TEST_F(CommFixture, ConnectFailsForSilentDevice) {
  devices::Mica2Mote* mote = add_mote("m1");
  mote->set_online(false);
  bool failed = false;
  // Offline devices bounce requests at delivery time (net/network.cc), so
  // the failure is kUnavailable and arrives before the RPC timeout.
  comm.mote().connect("m1", [&](util::Status s) {
    failed = s.code() == util::StatusCode::kUnavailable;
  });
  loop.run_all();
  EXPECT_TRUE(failed);
  EXPECT_FALSE(comm.mote().is_connected("m1"));
}

TEST_F(CommFixture, ReadFailsFastWhenDeviceGoesOfflineMidFlight) {
  devices::Mica2Mote* mote = add_mote("m1");
  net::LinkModel slow = net::LinkModel::perfect();
  slow.latency_mean_s = 0.050;
  (void)network.set_link("m1", slow);
  bool failed = false;
  comm.mote().read_attr("m1", "temp", [&](util::Result<Value> v) {
    failed = v.status().code() == util::StatusCode::kUnavailable;
  });
  // Power the mote off while the read request is still in flight: the
  // network bounces it at delivery time instead of letting the RPC sit
  // until its full timeout.
  loop.schedule(Duration::millis(10), [&]() { mote->set_online(false); });
  loop.run_all();
  EXPECT_TRUE(failed);
  EXPECT_LT(clock.now().to_seconds(), 0.5);  // well under the RPC timeout
}

TEST_F(CommFixture, ReadAttrDecodesTypedValues) {
  add_mote("m1", 23.5);
  bool done = false;
  comm.mote().read_attr("m1", "temp", [&](util::Result<Value> v) {
    done = true;
    ASSERT_TRUE(v.is_ok());
    EXPECT_TRUE(device::value_equal(v.value(), Value{23.5}));
  });
  loop.run_all();
  EXPECT_TRUE(done);
}

TEST_F(CommFixture, ReadAttrSurfacesDeviceErrors) {
  add_mote("m1");
  bool failed = false;
  comm.mote().read_attr("m1", "flux_capacitance", [&](util::Result<Value> v) {
    failed = !v.is_ok();
  });
  loop.run_all();
  EXPECT_TRUE(failed);
}

// --------------------------------------------------------- scan operator

TEST_F(CommFixture, ScanProducesOneTuplePerDevice) {
  add_mote("m1", 20.0);
  add_mote("m2", 30.0);
  comm::ScanOperator scan(&registry, &comm, "sensor");

  std::vector<comm::Tuple> tuples;
  scan.scan([&](std::vector<comm::Tuple> out) { tuples = std::move(out); });
  loop.run_all();

  ASSERT_EQ(tuples.size(), 2u);
  for (const auto& tuple : tuples) {
    // Non-sensory attributes filled from the cache...
    EXPECT_TRUE(device::value_equal(tuple.get("loc"),
                                    Value{device::Location{1, 2, 3}}));
    // ...sensory attributes acquired live.
    double temp = 0;
    ASSERT_TRUE(device::value_as_double(tuple.get("temp"), &temp));
    EXPECT_TRUE(temp == 20.0 || temp == 30.0);
  }
  EXPECT_EQ(scan.stats().tuples_produced, 2u);
  EXPECT_GT(scan.stats().sensory_reads, 0u);
}

TEST_F(CommFixture, ProjectionPushdownFetchesOnlyNeededAttrs) {
  add_mote("m1");
  comm::ScanOperator scan(&registry, &comm, "sensor", {"temp", "loc"});

  std::vector<comm::Tuple> tuples;
  scan.scan([&](std::vector<comm::Tuple> out) { tuples = std::move(out); });
  loop.run_all();

  ASSERT_EQ(tuples.size(), 1u);
  // Needed sensory attr acquired; unneeded sensory attrs left NULL.
  EXPECT_FALSE(std::holds_alternative<std::monostate>(tuples[0].get("temp")));
  EXPECT_TRUE(std::holds_alternative<std::monostate>(tuples[0].get("accel_x")));
  EXPECT_TRUE(std::holds_alternative<std::monostate>(tuples[0].get("light")));
  // Exactly two sensory reads: temp and battery? No: only temp is needed
  // and sensory (loc is non-sensory, cache-only).
  EXPECT_EQ(scan.stats().sensory_reads, 1u);
}

TEST_F(CommFixture, UnreachableDeviceYieldsNoTuple) {
  add_mote("m1");
  devices::Mica2Mote* dead = add_mote("m2");
  dead->set_online(false);

  comm::ScanOperator scan(&registry, &comm, "sensor", {"temp"});
  std::vector<comm::Tuple> tuples;
  scan.scan([&](std::vector<comm::Tuple> out) { tuples = std::move(out); });
  loop.run_all();

  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0].source_device(), "m1");
  EXPECT_EQ(scan.stats().devices_skipped, 1u);
  EXPECT_GT(scan.stats().sensory_read_failures, 0u);
}

TEST_F(CommFixture, ScanOfEmptyTableCompletesImmediately) {
  comm::ScanOperator scan(&registry, &comm, "camera");
  bool done = false;
  scan.scan([&](std::vector<comm::Tuple> out) {
    done = true;
    EXPECT_TRUE(out.empty());
  });
  EXPECT_TRUE(done);  // synchronous for an empty table
}

TEST_F(CommFixture, ScanDeviceFetchesSingleTuple) {
  add_mote("m1", 25.0);
  comm::ScanOperator scan(&registry, &comm, "sensor", {"temp"});

  bool done = false;
  scan.scan_device("m1", [&](util::Result<comm::Tuple> tuple) {
    done = true;
    ASSERT_TRUE(tuple.is_ok());
    EXPECT_TRUE(device::value_equal(tuple.value().get("temp"), Value{25.0}));
  });
  loop.run_all();
  EXPECT_TRUE(done);

  bool missing = false;
  scan.scan_device("ghost", [&](util::Result<comm::Tuple> tuple) {
    missing = !tuple.is_ok();
  });
  loop.run_all();
  EXPECT_TRUE(missing);
}

TEST_F(CommFixture, ScanDeviceReportsUnreachable) {
  devices::Mica2Mote* mote = add_mote("m1");
  mote->set_online(false);
  comm::ScanOperator scan(&registry, &comm, "sensor", {"temp"});
  bool unavailable = false;
  scan.scan_device("m1", [&](util::Result<comm::Tuple> tuple) {
    unavailable = tuple.status().code() == util::StatusCode::kUnavailable;
  });
  loop.run_all();
  EXPECT_TRUE(unavailable);
}

}  // namespace
}  // namespace aorta
