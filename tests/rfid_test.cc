// Tests for the RFID reader extension type and string-valued sensory
// events through the full stack, plus XML parser fuzzing.
#include <gtest/gtest.h>

#include "core/aorta.h"
#include "devices/rfid_reader.h"
#include "util/xml.h"

namespace aorta {
namespace {

using device::Value;
using util::Duration;
using util::TimePoint;

struct RfidFixture : public ::testing::Test {
  RfidFixture() : sys(core::Config{.seed = 43}) {
    EXPECT_TRUE(sys.registry().register_type(devices::rfid_type_info()).is_ok());
    sys.comm().register_module(std::make_unique<comm::CommModule>(
        &sys.registry(), &sys.comm().engine(), devices::RfidReader::kTypeId));
    auto reader = std::make_unique<devices::RfidReader>(
        "gate1", device::Location{6, 0, 1});
    reader->reliability().glitch_prob = 0.0;
    gate = reader.get();
    EXPECT_TRUE(sys.registry().add(std::move(reader)).is_ok());
  }

  core::Aorta sys;
  devices::RfidReader* gate = nullptr;
};

TEST_F(RfidFixture, TagVisibleOnlyDuringItsDwellWindow) {
  gate->add_passage({TimePoint::from_micros(10'000'000), Duration::seconds(2),
                     "TAG-A"});
  auto before = gate->read_attribute("last_tag");
  ASSERT_TRUE(before.is_ok());
  EXPECT_TRUE(device::value_equal(before.value(), Value{std::string("")}));

  sys.run_for(Duration::seconds(11));
  auto during = gate->read_attribute("last_tag");
  EXPECT_TRUE(device::value_equal(during.value(), Value{std::string("TAG-A")}));

  sys.run_for(Duration::seconds(5));
  auto after = gate->read_attribute("last_tag");
  EXPECT_TRUE(device::value_equal(after.value(), Value{std::string("")}));
  EXPECT_EQ(gate->passages_seen(), 1u);
}

TEST_F(RfidFixture, OverlappingPassagesLaterWins) {
  gate->add_passage({TimePoint::from_micros(10'000'000), Duration::seconds(4),
                     "TAG-A"});
  gate->add_passage({TimePoint::from_micros(12'000'000), Duration::seconds(2),
                     "TAG-B"});
  sys.run_for(Duration::seconds(13));
  auto tag = gate->read_attribute("last_tag");
  EXPECT_TRUE(device::value_equal(tag.value(), Value{std::string("TAG-B")}));
}

TEST_F(RfidFixture, StringEventPredicateDrivesActions) {
  ASSERT_TRUE(
      sys.add_camera("dock_cam", "10.0.0.5", {{0, 0, 4}, 0.0}, 30.0).is_ok());
  sys.camera("dock_cam")->reliability().glitch_prob = 0.0;
  sys.camera("dock_cam")->set_fatigue_coeff(0.0);
  gate->add_passage({TimePoint::from_micros(15'000'000), Duration::seconds(3),
                     "PALLET-1"});
  gate->add_passage({TimePoint::from_micros(60'000'000), Duration::seconds(3),
                     "PALLET-2"});

  ASSERT_TRUE(sys.exec("CREATE AQ watch AS "
                       "SELECT g.last_tag, photo(c.ip, g.loc, 'd') "
                       "FROM rfid g, camera c "
                       "WHERE g.last_tag <> '' AND coverage(c.id, g.loc)")
                  .is_ok());
  sys.run_for(Duration::minutes(2));

  EXPECT_EQ(sys.query_stats("watch")->events, 2u);
  EXPECT_EQ(sys.action_stats("watch").usable, 2u);
  auto rows = sys.executor().recent_results("watch");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(device::value_equal(rows[0].row[0].second,
                                  Value{std::string("PALLET-1")}));
  EXPECT_TRUE(device::value_equal(rows[1].row[0].second,
                                  Value{std::string("PALLET-2")}));
}

TEST_F(RfidFixture, OneShotSelectReadsTheGate) {
  gate->add_passage({TimePoint::from_micros(5'000'000), Duration::seconds(10),
                     "TAG-X"});
  sys.run_for(Duration::seconds(6));
  auto r = sys.exec("SELECT g.id, g.last_tag, g.tags_seen FROM rfid g");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_TRUE(device::value_equal(r->rows[0][1].second,
                                  Value{std::string("TAG-X")}));
  EXPECT_TRUE(device::value_equal(r->rows[0][2].second,
                                  Value{std::int64_t{1}}));
}

TEST_F(RfidFixture, ReaderRejectsOperations) {
  bool got_error = false;
  comm::CommModule* module = sys.comm().module_for("rfid");
  ASSERT_NE(module, nullptr);
  module->request("gate1", "erase_tag", {}, Duration::seconds(1),
                  [&](util::Result<net::Message> reply) {
                    ASSERT_TRUE(reply.is_ok());
                    got_error = reply.value().kind == "error";
                  });
  sys.run_for(Duration::seconds(2));
  EXPECT_TRUE(got_error);
}

// ------------------------------------------------------------- XML fuzz

TEST(XmlFuzzTest, RandomInputNeverCrashes) {
  const std::vector<std::string> pieces = {
      "<",       ">",      "/>",       "</",    "a",    "tag",  "=",
      "\"v\"",   "'w'",    " ",        "&lt;",  "&amp;", "&bogus;",
      "<!--",    "-->",    "<?xml?>",  "text",  "\n",   "\t",   "<a>",
      "</a>",    "<b c=\"d\">", "0", "\"", "'",
  };
  util::Rng rng(20260708);
  for (int round = 0; round < 3000; ++round) {
    std::string input;
    int n = static_cast<int>(rng.uniform_int(0, 30));
    for (int i = 0; i < n; ++i) input += pieces[rng.index(pieces.size())];
    auto result = util::xml_parse(input);
    (void)result;  // parse or clean error; surviving is the property
  }
  SUCCEED();
}

TEST(XmlFuzzTest, DeeplyNestedDocumentParses) {
  std::string open, close;
  for (int i = 0; i < 200; ++i) {
    open += "<n>";
    close += "</n>";
  }
  auto result = util::xml_parse(open + close);
  EXPECT_TRUE(result.is_ok());
}

}  // namespace
}  // namespace aorta
