// Reliable backplane under chaos (DESIGN.md §14).
//
// The contract under test: with Config::reliable_backplane, a czar-link
// storm — loss, duplication, reordering, fixed delay — changes *when*
// backplane messages arrive but never *what* the client observes. The
// retry/ack/replay machinery (ReliableCall retries, idempotency-window
// dedup, replay buffers trimmed by cumulative acks, gap NACKs) must make a
// lossy run deliver byte-identical events to a lossless run of the same
// seed; the ablation flag must restore the old fail-fast behaviour where a
// single dropped stream message stalls delivery.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "core/aorta.h"
#include "net/network.h"
#include "net/rpc.h"
#include "server/service.h"
#include "server/session.h"
#include "shard/fragment.h"
#include "shard/plane.h"
#include "util/fault_plan.h"

namespace aorta {
namespace {

using server::Delivery;
using server::QueryService;
using server::ServiceConfig;
using server::SessionId;
using shard::Plane;
using util::Duration;
using util::TimePoint;

std::string value_key(const device::Value& v) {
  char buf[96];
  if (std::holds_alternative<std::monostate>(v)) return "null";
  if (const bool* b = std::get_if<bool>(&v)) return *b ? "true" : "false";
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v)) {
    return std::to_string(*i);
  }
  if (const double* d = std::get_if<double>(&v)) {
    std::snprintf(buf, sizeof(buf), "%.17g", *d);
    return buf;
  }
  if (const std::string* s = std::get_if<std::string>(&v)) return *s;
  const auto& loc = std::get<device::Location>(v);
  std::snprintf(buf, sizeof(buf), "(%.17g,%.17g,%.17g)", loc.x, loc.y, loc.z);
  return buf;
}

// Keyed by the row's *production* instant (Delivery::at carries the
// worker-side timestamp for kRow), so a lossy and a lossless run compare
// equal even though the lossy run released each row a little later.
std::string event_key(const Delivery& d) {
  std::string key = d.query;
  key += "@" + std::to_string(d.at.to_micros());
  for (const query::Row& row : d.rows) {
    for (const auto& [name, value] : row) {
      key += "|" + name + "=" + value_key(value);
    }
  }
  key += d.degraded ? "|degraded" : "";
  return key;
}

struct ChaosRun {
  std::vector<std::string> events;  // kRow keys in delivery order
  shard::CzarStats czar;
  net::ReliableCallStats reliable;
  // Summed over the workers.
  std::uint64_t replay_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t replay_hwm = 0;       // max, not sum
  std::size_t replay_depth_end = 0;
};

// A sharded workload with steady continuous-row traffic. Device links are
// the clean backplane model so every event-content difference between two
// runs can only come from the backplane protocol itself.
ChaosRun run_sharded(std::uint64_t seed, const std::string& fault_plan_xml,
                     double run_s, double cutoff_s, bool reliable) {
  core::Config config;
  config.seed = seed;
  config.reliable_backplane = reliable;
  core::Aorta sys(config);
  ServiceConfig cfg;
  cfg.num_shards = 2;
  cfg.mailbox_capacity = 1 << 20;
  QueryService service(&sys, cfg);

  for (int i = 0; i < 8; ++i) {
    std::string id = "m" + std::to_string(i);
    EXPECT_TRUE(service.plane()->add_mote(id, {double(i), 0, 1}).is_ok());
    devices::Mica2Mote* mote = service.plane()->mote(id);
    mote->reliability().glitch_prob = 0.0;
    (void)mote->set_signal("temp", devices::constant_signal(15.0 + i));
    (void)mote->set_signal(
        "accel_x",
        devices::periodic_spike_signal(0.0, 900.0, Duration::seconds(3.0),
                                       Duration::seconds(1.0),
                                       Duration::seconds(0.25 * i)));
    (void)sys.network().set_link(id, Plane::backplane());
  }

  SessionId id = service.connect("acme");
  for (int k = 0; k < 4; ++k) {
    std::string sql = "CREATE AQ temp" + std::to_string(k) +
                      " AS SELECT s.temp FROM sensor s WHERE s.temp > " +
                      std::to_string(12 + 2 * k);
    EXPECT_TRUE(service.submit(id, sql).is_ok()) << sql;
  }
  for (int k = 0; k < 2; ++k) {
    std::string sql = "CREATE AQ spike" + std::to_string(k) +
                      " AS SELECT s.accel_x, s.temp FROM sensor s "
                      "WHERE s.accel_x > " +
                      std::to_string(100 + 300 * k);
    EXPECT_TRUE(service.submit(id, sql).is_ok()) << sql;
  }
  if (!fault_plan_xml.empty()) {
    auto plan = util::FaultPlan::from_xml(fault_plan_xml);
    EXPECT_TRUE(plan.is_ok()) << plan.status().to_string();
    EXPECT_TRUE(service.plane()->apply_fault_plan(plan.value()).is_ok());
  }
  sys.run_for(Duration::seconds(run_s));

  ChaosRun out;
  const std::int64_t cutoff_us = static_cast<std::int64_t>(cutoff_s * 1e6);
  for (const Delivery& d : service.session(id)->drain()) {
    EXPECT_NE(d.kind, Delivery::Kind::kError) << d.message;
    if (d.kind != Delivery::Kind::kRow) continue;
    // Only rows produced before the cutoff: both runs have converged on
    // those by the end of the run (the storm ends well before it).
    if (d.at.to_micros() > cutoff_us) continue;
    out.events.push_back(event_key(d));
  }
  out.czar = service.plane()->czar().stats();
  out.reliable = service.plane()->czar().reliable_stats();
  for (int i = 0; i < cfg.num_shards; ++i) {
    const shard::WorkerStats& w = service.plane()->worker(i).stats();
    out.replay_sent += w.replay_sent;
    out.acks_received += w.acks_received;
    out.replay_hwm = std::max(out.replay_hwm, w.replay_hwm);
    out.replay_depth_end += service.plane()->worker(i).replay_depth();
  }
  return out;
}

// The storm hits only the czar's link: czar<->worker traffic is pure
// backplane, while the worker links also carry device traffic whose
// content must stay out of scope.
constexpr const char* kCzarStorm =
    "<fault_plan>"
    "<event at=\"3\" kind=\"loss\" device=\"czar\" prob=\"0.1\" for=\"7\"/>"
    "<event at=\"3\" kind=\"duplicate\" device=\"czar\" factor=\"1.5\""
    " for=\"7\"/>"
    "<event at=\"3\" kind=\"reorder\" device=\"czar\" prob=\"0.3\""
    " window=\"0.004\" for=\"7\"/>"
    "<event at=\"3\" kind=\"delay\" device=\"czar\" add=\"0.002\""
    " for=\"7\"/>"
    "</fault_plan>";

TEST(ChaosBackplaneTest, StormVsLosslessDeliversByteIdenticalEvents) {
  for (std::uint64_t seed : {42ull, 7ull}) {
    ChaosRun clean = run_sharded(seed, "", 16.0, 11.0, /*reliable=*/true);
    ChaosRun storm =
        run_sharded(seed, kCzarStorm, 16.0, 11.0, /*reliable=*/true);

    ASSERT_FALSE(clean.events.empty()) << "seed " << seed;
    // Exactly-once: no loss, no duplication, unchanged order — the lossy
    // run's delivered events are byte-identical to the lossless run's.
    EXPECT_EQ(clean.events, storm.events) << "seed " << seed;

    // The storm actually engaged the machinery (these are not vacuous
    // passes): duplicates were dropped, gaps were NACKed and replayed.
    EXPECT_GT(storm.czar.dup_msgs_dropped, 0u) << "seed " << seed;
    EXPECT_GT(storm.czar.nacks_sent, 0u) << "seed " << seed;
    EXPECT_GT(storm.replay_sent, 0u) << "seed " << seed;
    EXPECT_GT(storm.acks_received, 0u) << "seed " << seed;
    // ...while the clean run never needed it.
    EXPECT_EQ(clean.czar.dup_msgs_dropped, 0u) << "seed " << seed;
    EXPECT_EQ(clean.czar.nacks_sent, 0u) << "seed " << seed;
    EXPECT_EQ(clean.replay_sent, 0u) << "seed " << seed;

    // Replay-buffer memory stays bounded: acks trim it every heartbeat,
    // so the high-water mark is far below the eviction limit and the
    // buffers are nearly empty once the storm has passed.
    EXPECT_GT(storm.replay_hwm, 0u) << "seed " << seed;
    EXPECT_LT(storm.replay_hwm, 1024u) << "seed " << seed;
    EXPECT_LT(storm.replay_depth_end, 256u) << "seed " << seed;
  }
}

TEST(ChaosBackplaneTest, RegistrationRetriesThroughALossyBackplane) {
  // Fragment registration happens *inside* the storm window: the RPCs are
  // chaos-dropped and must be retried (same idempotency key, fresh
  // request_id) until they land. Without retries the AQs would never
  // produce a row.
  const std::string storm =
      "<fault_plan>"
      "<event at=\"0.01\" kind=\"loss\" device=\"czar\" prob=\"0.3\""
      " for=\"6\"/>"
      "</fault_plan>";
  ChaosRun run = run_sharded(42, storm, 16.0, 15.0, /*reliable=*/true);
  EXPECT_GT(run.reliable.retries, 0u);
  EXPECT_GT(run.reliable.attempts, run.reliable.calls);
  EXPECT_GT(run.czar.rows_received, 0u);
  ASSERT_FALSE(run.events.empty());
}

TEST(ChaosBackplaneTest, AblationFlagRestoresFailFastStall) {
  // Config::reliable_backplane = false routes around ReliableCall, acks,
  // NACKs and replay: the first chaos-dropped stream message leaves a
  // permanent seq gap, in-seq consumption stalls behind it, and delivery
  // dries up — visibly fewer events than the lossless ablation run.
  const std::string storm =
      "<fault_plan>"
      "<event at=\"2\" kind=\"loss\" device=\"czar\" prob=\"0.25\""
      " for=\"8\"/>"
      "</fault_plan>";
  ChaosRun clean = run_sharded(42, "", 14.0, 14.0, /*reliable=*/false);
  ChaosRun lossy = run_sharded(42, storm, 14.0, 14.0, /*reliable=*/false);

  ASSERT_FALSE(clean.events.empty());
  EXPECT_LT(lossy.events.size(), clean.events.size());
  // The reliability machinery stayed ablated on both sides.
  EXPECT_EQ(clean.czar.nacks_sent, 0u);
  EXPECT_EQ(lossy.czar.nacks_sent, 0u);
  EXPECT_EQ(lossy.czar.acks_sent, 0u);
  EXPECT_EQ(lossy.replay_sent, 0u);
  // The stall is observable: out-of-order messages piled up behind the gap.
  EXPECT_GT(lossy.czar.ooo_buffered, 0u);
}

// ---- idempotent dispatch ---------------------------------------------------

// A bare network peer speaking the fragment protocol straight at a worker,
// so the test controls idempotency keys and generations byte-for-byte.
class TestPeer : public net::Endpoint {
 public:
  TestPeer(net::Network* network, net::NodeId self)
      : self_(std::move(self)), rpc_(network, self_) {}

  void on_message(const net::Message& msg) override {
    if (rpc_.on_reply(msg)) return;
  }

  // Send a fragment_register carrying an explicit (spec.gen, idem key) and
  // collect the reply kind into `replies`.
  void send_register(const shard::FragmentSpec& spec, std::uint64_t idem_gen,
                     std::uint64_t idem_seq,
                     std::vector<std::string>* replies) {
    net::Message tmp;
    shard::fragment_to_fields(spec, &tmp);
    tmp.set_int(shard::kIdemGenField, static_cast<std::int64_t>(idem_gen));
    tmp.set_int(shard::kIdemSeqField, static_cast<std::int64_t>(idem_seq));
    rpc_.call("shard-0", shard::kFragmentRegister, tmp.fields,
              Duration::seconds(2.0),
              [replies](util::Result<net::Message> reply) {
                replies->push_back(reply.is_ok() ? reply.value().kind
                                                 : reply.status().to_string());
              });
  }

 private:
  net::NodeId self_;
  net::RpcClient rpc_;
};

TEST(ChaosBackplaneTest, IdempotencyWindowDedupsAcrossGenerationBumps) {
  core::Aorta sys(core::Config{});
  ServiceConfig cfg;
  cfg.num_shards = 1;
  QueryService service(&sys, cfg);
  ASSERT_TRUE(service.plane()->add_mote("m0", {0, 0, 1}).is_ok());
  shard::Worker& worker = service.plane()->worker(0);

  TestPeer peer(&sys.network(), "tester");
  ASSERT_TRUE(
      sys.network().attach("tester", &peer, Plane::backplane()).is_ok());
  sys.run_for(Duration::millis(200));

  shard::FragmentSpec spec;
  spec.name = "q1";
  spec.sql = "CREATE AQ q1 AS SELECT s.temp FROM sensor s";
  spec.shard = 0;
  spec.num_shards = 1;
  spec.gen = 1;
  std::vector<std::string> replies;

  // First copy executes; the worker adopts generation 1.
  peer.send_register(spec, /*idem_gen=*/1, /*idem_seq=*/0, &replies);
  sys.run_for(Duration::millis(300));
  ASSERT_EQ(replies, std::vector<std::string>{shard::kFragmentAck});
  EXPECT_EQ(worker.stats().fragments_registered, 1u);
  EXPECT_EQ(worker.fragment_count(), 1u);

  // A retry/chaos duplicate of the same key: served from the idempotency
  // window — the cached ack comes back, nothing re-executes.
  peer.send_register(spec, 1, 0, &replies);
  sys.run_for(Duration::millis(300));
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[1], shard::kFragmentAck);
  EXPECT_EQ(worker.stats().dup_requests, 1u);
  EXPECT_EQ(worker.stats().fragments_registered, 1u);

  // Generation bump: the worker drops q1 and starts fresh with q2.
  shard::FragmentSpec spec2 = spec;
  spec2.name = "q2";
  spec2.sql = "CREATE AQ q2 AS SELECT s.temp FROM sensor s";
  spec2.gen = 2;
  peer.send_register(spec2, /*idem_gen=*/2, /*idem_seq=*/1, &replies);
  sys.run_for(Duration::millis(300));
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[2], shard::kFragmentAck);
  EXPECT_EQ(worker.stats().fragments_registered, 2u);
  EXPECT_EQ(worker.fragment_count(), 1u);  // q1 dropped by the bump

  // A straggling duplicate from *before* the bump still hits its cached
  // reply: the window's keys embed the generation, so it survives the
  // bump instead of re-registering a stale fragment.
  peer.send_register(spec, 1, 0, &replies);
  sys.run_for(Duration::millis(300));
  ASSERT_EQ(replies.size(), 4u);
  EXPECT_EQ(replies[3], shard::kFragmentAck);
  EXPECT_EQ(worker.stats().dup_requests, 2u);
  EXPECT_EQ(worker.stats().fragments_registered, 2u);
  EXPECT_EQ(worker.fragment_count(), 1u);

  // A *new* request still carrying the superseded generation is refused
  // as stale — never adopted backwards.
  shard::FragmentSpec spec3 = spec;
  spec3.name = "q3";
  spec3.sql = "CREATE AQ q3 AS SELECT s.temp FROM sensor s";
  spec3.gen = 1;
  peer.send_register(spec3, /*idem_gen=*/1, /*idem_seq=*/7, &replies);
  sys.run_for(Duration::millis(300));
  ASSERT_EQ(replies.size(), 5u);
  EXPECT_EQ(replies[4], shard::kFragmentStale);
  EXPECT_EQ(worker.stats().stale_gen_requests, 1u);
  EXPECT_EQ(worker.fragment_count(), 1u);

  ASSERT_TRUE(sys.network().detach("tester").is_ok());
}

// ---- partial SELECT surfacing ----------------------------------------------

TEST(ChaosBackplaneTest, PartialSelectIsMarkedAndAggregatesAreRejected) {
  core::Config config;
  config.seed = 42;
  core::Aorta sys(config);
  ServiceConfig cfg;
  cfg.num_shards = 2;
  cfg.mailbox_capacity = 1 << 20;
  QueryService service(&sys, cfg);
  for (int i = 0; i < 8; ++i) {
    std::string id = "m" + std::to_string(i);
    ASSERT_TRUE(service.plane()->add_mote(id, {double(i), 0, 1}).is_ok());
    service.plane()->mote(id)->reliability().glitch_prob = 0.0;
    (void)service.plane()->mote(id)->set_signal(
        "temp", devices::constant_signal(20.0 + i));
    (void)sys.network().set_link(id, Plane::backplane());
  }
  SessionId id = service.connect("acme");
  sys.run_for(Duration::seconds(1.5));

  // Shard 1 falls off the backplane. Its register RPC burns through the
  // reliable retries (still live at dispatch time) and gives up; the
  // result must say so instead of passing off a subset as the answer.
  sys.network().partition("shard-1");
  auto plain = service.submit(id, "SELECT s.temp FROM sensor s");
  ASSERT_TRUE(plain.is_ok());
  sys.run_for(Duration::seconds(10.0));

  bool saw_partial = false;
  for (const Delivery& d : service.session(id)->drain()) {
    if (d.kind != Delivery::Kind::kResult ||
        d.statement_id != plain.value()) {
      continue;
    }
    saw_partial = true;
    EXPECT_EQ(d.shards_answered, 1);
    EXPECT_EQ(d.shards_total, 2);
    EXPECT_NE(d.message.find("[partial]"), std::string::npos) << d.message;
    EXPECT_FALSE(d.rows.empty());  // shard 0's slice still came back
  }
  EXPECT_TRUE(saw_partial);
  EXPECT_EQ(service.tenant_stats().at("acme").partial_results, 1u);
  EXPECT_GE(service.plane()->czar().stats().partial_selects, 1u);
  EXPECT_FALSE(service.plane()->czar().worker_live(1));
  const net::ReliableCallStats& rs = service.plane()->czar().reliable_stats();
  EXPECT_GE(rs.retries, 1u);
  EXPECT_GE(rs.giveups, 1u);

  // An aggregate over a subset of the shards would be wrong, not smaller:
  // the partial is rejected outright.
  auto agg = service.submit(id, "SELECT count(*) FROM sensor s");
  ASSERT_TRUE(agg.is_ok());
  sys.run_for(Duration::seconds(10.0));
  bool saw_error = false;
  for (const Delivery& d : service.session(id)->drain()) {
    if (d.statement_id != agg.value()) continue;
    ASSERT_EQ(d.kind, Delivery::Kind::kError) << d.message;
    EXPECT_NE(d.message.find("partial aggregate"), std::string::npos)
        << d.message;
    saw_error = true;
  }
  EXPECT_TRUE(saw_error);
}

}  // namespace
}  // namespace aorta
